/**
 * @file
 * Perf-trajectory runner: machine-readable benchmark results for the
 * regression gate (EXPERIMENTS.md "Perf trajectory").
 *
 * Emits two JSON files (default: current directory):
 *
 *  - BENCH_hotpath.json -- microkernel numbers: the nearest-error
 *    scan over a 4MB-cache plane at every supported SIMD width, the
 *    SECDED batch encode/decode kernels, and the server's indexed
 *    challenge evaluation. Per-op p50/p99 latency plus ops/s, and
 *    derived hardware-independent ratios (SIMD speedup over scalar).
 *
 *  - BENCH_server.json -- end-to-end batch front-end throughput
 *    (frames/s, per-batch p50/p99) at several thread counts, with
 *    durability off and on, plus derived ratios (scaling, journaling
 *    overhead).
 *
 *  tools/bench_compare.py diffs a fresh run against the checked-in
 *  baselines and fails on regression; CI runs it in --ratios-only
 *  mode so the gate is hardware-independent.
 *
 * Flags: --out-dir <dir>, --hotpath-only, --server-only, --smoke
 * (or AUTHENTICACHE_QUICK=1) for a fast CI run.
 */

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/challenge.hpp"
#include "core/error_index.hpp"
#include "core/nearest_scan.hpp"
#include "core/remap.hpp"
#include "ecc/secded.hpp"
#include "mc/mapgen.hpp"
#include "server/durability.hpp"
#include "server/server.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

using namespace authenticache;

namespace {

using Clock = std::chrono::steady_clock;

double
nsSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::nano>(Clock::now() - t0)
        .count();
}

/** One benchmark row: throughput plus latency percentiles. */
struct Series
{
    std::string name;
    std::string simd;
    double opsPerS = 0.0;
    double p50Ns = 0.0;
    double p99Ns = 0.0;
    std::uint64_t ops = 0;
};

double
percentile(std::vector<double> &samples, double p)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    std::size_t i = static_cast<std::size_t>(
        p * static_cast<double>(samples.size() - 1));
    return samples[i];
}

Series
makeSeries(const std::string &name, const std::string &simd,
           std::uint64_t ops_per_sample, std::vector<double> samples)
{
    Series s;
    s.name = name;
    s.simd = simd;
    s.ops = ops_per_sample * samples.size();
    double total_ns = 0.0;
    for (double v : samples)
        total_ns += v;
    s.opsPerS = total_ns > 0.0
                    ? static_cast<double>(s.ops) / (total_ns * 1e-9)
                    : 0.0;
    // Percentiles are per *sample*; divide by ops_per_sample for a
    // per-op figure where a sample batches many ops.
    s.p50Ns = percentile(samples, 0.50) /
              static_cast<double>(ops_per_sample);
    s.p99Ns = percentile(samples, 0.99) /
              static_cast<double>(ops_per_sample);
    return s;
}

/** Minimal JSON writer (fixed field order, no external deps). */
class Json
{
  public:
    explicit Json(std::ostream &os_) : os(os_)
    {
        os.precision(12);
    }

    void
    open()
    {
        os << "{";
        firsts.push_back(true);
    }
    void
    close()
    {
        firsts.pop_back();
        os << "\n}\n";
    }

    void
    field(const std::string &key, const std::string &value)
    {
        pre();
        os << '"' << key << "\": \"" << value << '"';
    }
    void
    field(const std::string &key, const char *value)
    {
        field(key, std::string(value));
    }
    void
    field(const std::string &key, double value)
    {
        pre();
        os << '"' << key << "\": " << value;
    }
    void
    field(const std::string &key, std::uint64_t value)
    {
        pre();
        os << '"' << key << "\": " << value;
    }
    void
    field(const std::string &key, bool value)
    {
        pre();
        os << '"' << key << "\": " << (value ? "true" : "false");
    }

    void
    openArray(const std::string &key)
    {
        pre();
        os << '"' << key << "\": [";
        firsts.push_back(true);
    }
    void
    closeArray()
    {
        firsts.pop_back();
        os << "\n" << indent() << "  ]";
    }
    void
    openObject(const std::string &key = "")
    {
        pre();
        if (!key.empty())
            os << '"' << key << "\": ";
        os << "{";
        firsts.push_back(true);
    }
    void
    closeObject()
    {
        firsts.pop_back();
        os << "\n" << indent() << "  }";
    }

  private:
    void
    pre()
    {
        if (!firsts.back())
            os << ",";
        firsts.back() = false;
        os << "\n" << indent() << "  ";
    }
    std::string
    indent() const
    {
        return std::string(2 * (firsts.size() - 1), ' ');
    }

    std::ostream &os;
    std::vector<bool> firsts; ///< "next element is first" per depth.
};

void
writeSeries(Json &j, const Series &s)
{
    j.openObject();
    j.field("name", s.name);
    j.field("simd", s.simd);
    j.field("ops", s.ops);
    j.field("ops_per_s", s.opsPerS);
    j.field("p50_ns", s.p50Ns);
    j.field("p99_ns", s.p99Ns);
    j.closeObject();
}

// ---------------------------------------------------------------
// Hot-path microkernels.
// ---------------------------------------------------------------

struct HotpathResult
{
    std::vector<Series> series;
    std::map<std::string, double> derived;
};

double
opsRate(const std::vector<Series> &all, const std::string &name,
        const std::string &simd)
{
    for (const auto &s : all)
        if (s.name == name && s.simd == simd)
            return s.opsPerS;
    return 0.0;
}

HotpathResult
runHotpath(bool quick)
{
    HotpathResult out;
    util::Rng rng(0xBE7C);

    // Nearest-error scan on a 4MB cache (8192 sets x 8 ways): the
    // acceptance plane for the SIMD speedup ratio.
    const core::CacheGeometry geom(4 * 1024 * 1024);
    const std::size_t errors = 4096;
    const std::size_t queries = quick ? 2000 : 20000;
    auto plane = mc::randomPlane(geom, errors, rng);

    std::vector<sim::LinePoint> qpts;
    qpts.reserve(queries);
    for (std::size_t i = 0; i < queries; ++i)
        qpts.push_back(geom.pointOf(rng.nextBelow(geom.lines())));

    std::uint64_t checksum_ref = 0;
    for (util::SimdLevel level : util::supportedSimdLevels()) {
        std::vector<double> samples;
        samples.reserve(queries);
        std::uint64_t checksum = 0;
        for (const auto &q : qpts) {
            auto t0 = Clock::now();
            auto r = core::nearestErrorScan(plane, q, level);
            samples.push_back(nsSince(t0));
            checksum += r.distance + r.at.set + r.at.way;
        }
        if (level == util::SimdLevel::Scalar)
            checksum_ref = checksum;
        else if (checksum != checksum_ref) {
            std::cerr << "FAIL: nearest scan diverged at "
                      << util::simdLevelName(level) << "\n";
            std::exit(1);
        }
        out.series.push_back(
            makeSeries("nearest_scan_4mb",
                       util::simdLevelName(level), 1,
                       std::move(samples)));
    }

    // SECDED batch kernels: encode + decode over a word buffer.
    const std::size_t words = quick ? (1u << 14) : (1u << 16);
    const std::size_t reps = quick ? 8 : 24;
    std::vector<std::uint64_t> data(words);
    for (auto &w : data)
        w = rng.next();
    std::vector<std::uint32_t> check(words);
    std::vector<ecc::DecodeResult> dec(words);
    ecc::SecdedCodec codec(64);

    for (util::SimdLevel level : util::supportedSimdLevels()) {
        std::vector<double> enc_samples, dec_samples;
        for (std::size_t r = 0; r < reps; ++r) {
            auto t0 = Clock::now();
            codec.encodeBatch(data.data(), check.data(), words,
                              level);
            enc_samples.push_back(nsSince(t0));
            t0 = Clock::now();
            codec.decodeBatch(data.data(), check.data(), dec.data(),
                              words, level);
            dec_samples.push_back(nsSince(t0));
        }
        out.series.push_back(
            makeSeries("secded_encode_batch",
                       util::simdLevelName(level), words,
                       std::move(enc_samples)));
        out.series.push_back(
            makeSeries("secded_decode_batch",
                       util::simdLevelName(level), words,
                       std::move(dec_samples)));
    }

    // Indexed challenge evaluation (the server's expected-response
    // path): 64-bit challenges against an indexed map.
    const core::VddMv level_mv = 700.0;
    core::ErrorMap map = mc::randomErrorMap(geom, level_mv, 60, rng);
    auto indexes = core::buildErrorIndexes(map);
    core::EvalScratch scratch;
    const std::size_t evals = quick ? 200 : 2000;
    std::vector<core::Challenge> challenges;
    challenges.reserve(evals);
    for (std::size_t i = 0; i < evals; ++i)
        challenges.push_back(
            core::randomChallenge(geom, level_mv, 64, rng));

    for (util::SimdLevel level : util::supportedSimdLevels()) {
        std::vector<double> samples;
        samples.reserve(evals);
        for (const auto &ch : challenges) {
            auto t0 = Clock::now();
            auto resp =
                core::evaluateIndexed(indexes, ch, scratch, level);
            samples.push_back(nsSince(t0));
            (void)resp;
        }
        out.series.push_back(
            makeSeries("evaluate_indexed_64bit",
                       util::simdLevelName(level), 1,
                       std::move(samples)));
    }

    const std::string widest =
        util::simdLevelName(util::detectedSimdLevel());
    auto ratio = [&](const std::string &name) {
        double scalar = opsRate(out.series, name, "scalar");
        double wide = opsRate(out.series, name, widest);
        return scalar > 0.0 ? wide / scalar : 0.0;
    };
    out.derived["nearest_scan_simd_speedup"] =
        ratio("nearest_scan_4mb");
    out.derived["secded_encode_simd_speedup"] =
        ratio("secded_encode_batch");
    out.derived["secded_decode_simd_speedup"] =
        ratio("secded_decode_batch");
    out.derived["evaluate_indexed_simd_speedup"] =
        ratio("evaluate_indexed_64bit");
    return out;
}

// ---------------------------------------------------------------
// Server batch front end.
// ---------------------------------------------------------------

constexpr core::VddMv kLevel = 700.0;
constexpr std::uint64_t kServerSeed = 0x7B40;

struct Flood
{
    server::ServerConfig cfg;
    server::AuthenticationServer srv;
    std::vector<std::uint64_t> ids;
    std::vector<std::unique_ptr<protocol::InMemoryChannel>> chans;
    std::vector<std::unique_ptr<protocol::ServerEndpoint>> ends;
    std::optional<server::DurabilityManager> dur;

    explicit Flood(std::size_t n_devices,
                   const std::string &durable_dir = "")
        : cfg([] {
              server::ServerConfig c;
              c.challengeBits = 64;
              c.verifier.pIntra = 0.08;
              c.maxPendingSessions = 1 << 20;
              c.sessionShards = 16;
              return c;
          }()),
          srv(cfg, kServerSeed)
    {
        core::CacheGeometry geom(256 * 1024);
        for (std::size_t i = 0; i < n_devices; ++i) {
            std::uint64_t id = 1000 + i;
            util::Rng mr = util::Rng::forStream(0xBE9C, id);
            srv.database().enroll(server::DeviceRecord(
                id, mc::randomErrorMap(geom, kLevel, 60, mr),
                {kLevel}, {}));
            ids.push_back(id);
            chans.push_back(
                std::make_unique<protocol::InMemoryChannel>());
            ends.push_back(
                std::make_unique<protocol::ServerEndpoint>(
                    *chans.back()));
        }
        if (!durable_dir.empty()) {
            dur.emplace(
                server::DurabilityConfig{durable_dir, 4096},
                srv.database());
            srv.attachDurability(&*dur);
        }
    }
};

util::BitVec
honest(const server::DeviceRecord &rec, const core::Challenge &ch)
{
    core::LogicalRemap remap(rec.mapKey(),
                             rec.physicalMap().geometry());
    return core::evaluate(remap.mapErrorMap(rec.physicalMap()), ch);
}

struct ServerRun
{
    Series series;
    std::uint64_t accepted = 0;
};

ServerRun
runServer(std::size_t n_devices, std::size_t rounds, unsigned threads,
          bool durable, const std::string &label)
{
    std::string dur_dir;
    if (durable) {
        dur_dir = (std::filesystem::temp_directory_path() /
                   "authbench_runner_dur")
                      .string();
        std::filesystem::remove_all(dur_dir);
        std::filesystem::create_directories(dur_dir);
    }
    Flood flood(n_devices, dur_dir);
    util::ThreadPool pool(threads);

    std::vector<double> batch_ns;
    std::uint64_t frames = 0;
    for (std::size_t r = 0; r < rounds; ++r) {
        std::vector<server::Frame> batch;
        batch.reserve(n_devices);
        for (std::size_t i = 0; i < n_devices; ++i)
            batch.push_back(server::Frame{
                protocol::encodeMessage(
                    protocol::AuthRequest{flood.ids[i]}),
                flood.ends[i].get()});
        auto t0 = Clock::now();
        flood.srv.handleBatch(batch, pool);
        batch_ns.push_back(nsSince(t0));
        frames += batch.size();

        batch.clear();
        for (std::size_t i = 0; i < n_devices; ++i) {
            auto frame = flood.chans[i]->receiveAtClient();
            if (!frame)
                continue;
            auto msg = protocol::decodeMessage(*frame);
            auto *ch = std::get_if<protocol::ChallengeMsg>(&msg);
            if (!ch)
                continue;
            const auto &rec =
                flood.srv.database().at(flood.ids[i]);
            batch.push_back(server::Frame{
                protocol::encodeMessage(protocol::ResponseMsg{
                    ch->nonce, honest(rec, ch->challenge)}),
                flood.ends[i].get()});
        }
        t0 = Clock::now();
        flood.srv.handleBatch(batch, pool);
        batch_ns.push_back(nsSince(t0));
        frames += batch.size();
        for (auto &chan : flood.chans)
            while (chan->receiveAtClient())
                ;
    }

    ServerRun out;
    const std::uint64_t per_batch = frames / batch_ns.size();
    out.series = makeSeries(label, util::simdLevelName(
                                       util::simdLevel()),
                            per_batch, std::move(batch_ns));
    // ops == frames exactly (per_batch rounding would distort it).
    out.series.ops = frames;
    for (auto id : flood.ids)
        out.accepted += flood.srv.database().at(id).accepted();
    if (!dur_dir.empty())
        std::filesystem::remove_all(dur_dir);
    return out;
}

struct ServerResult
{
    std::vector<Series> series;
    std::vector<std::uint64_t> threadCounts;
    std::map<std::string, double> derived;
};

ServerResult
runServerSuite(bool quick)
{
    ServerResult out;
    const std::size_t devices = quick ? 32 : 192;
    const std::size_t rounds = quick ? 2 : 5;
    const unsigned hw = util::ThreadPool::defaultThreadCount();
    std::vector<unsigned> widths{1, 4};
    if (hw > 4)
        widths.push_back(hw);

    std::uint64_t accepted_ref = 0;
    double rate_1t = 0.0, rate_hw = 0.0, durable_hw = 0.0;
    for (unsigned w : widths) {
        out.threadCounts.push_back(w);
        auto plain =
            runServer(devices, rounds, w, false,
                      "server_batch_t" + std::to_string(w));
        auto durable =
            runServer(devices, rounds, w, true,
                      "server_batch_durable_t" + std::to_string(w));
        if (w == widths.front())
            accepted_ref = plain.accepted;
        if (plain.accepted != accepted_ref ||
            durable.accepted != accepted_ref) {
            std::cerr << "FAIL: accepted count diverged at " << w
                      << " threads\n";
            std::exit(1);
        }
        if (w == 1)
            rate_1t = plain.series.opsPerS;
        rate_hw = plain.series.opsPerS;
        durable_hw = durable.series.opsPerS;
        out.series.push_back(std::move(plain.series));
        out.series.push_back(std::move(durable.series));
    }
    out.derived["scaling_max_threads_vs_1"] =
        rate_1t > 0.0 ? rate_hw / rate_1t : 0.0;
    out.derived["durable_overhead_ratio"] =
        durable_hw > 0.0 ? rate_hw / durable_hw : 0.0;
    return out;
}

// ---------------------------------------------------------------
// Output.
// ---------------------------------------------------------------

void
writeCommonHeader(Json &j, const std::string &schema, bool quick)
{
    j.field("schema", schema);
    j.field("quick", quick);
    j.field("detected_simd",
            std::string(
                util::simdLevelName(util::detectedSimdLevel())));
    j.field("dispatch_simd",
            std::string(util::simdLevelName(util::simdLevel())));
    j.field("hardware_threads",
            std::uint64_t(util::ThreadPool::defaultThreadCount()));
}

void
writeHotpath(const std::string &path, const HotpathResult &r,
             bool quick)
{
    std::ofstream f(path);
    Json j(f);
    j.open();
    writeCommonHeader(j, "authenticache-bench-hotpath-v1", quick);
    j.openArray("benchmarks");
    for (const auto &s : r.series)
        writeSeries(j, s);
    j.closeArray();
    j.openObject("derived");
    for (const auto &[k, v] : r.derived)
        j.field(k, v);
    j.closeObject();
    j.openObject("floors");
    // The acceptance floor the compare script enforces on every run:
    // the widest nearest-error scan must hold >= 2x over scalar.
    j.field("nearest_scan_simd_speedup", 2.0);
    j.closeObject();
    j.close();
}

void
writeServer(const std::string &path, const ServerResult &r,
            bool quick)
{
    std::ofstream f(path);
    Json j(f);
    j.open();
    writeCommonHeader(j, "authenticache-bench-server-v1", quick);
    j.openArray("thread_counts");
    for (std::uint64_t t : r.threadCounts) {
        j.openObject();
        j.field("threads", t);
        j.closeObject();
    }
    j.closeArray();
    j.openArray("benchmarks");
    for (const auto &s : r.series)
        writeSeries(j, s);
    j.closeArray();
    j.openObject("derived");
    for (const auto &[k, v] : r.derived)
        j.field(k, v);
    j.closeObject();
    j.close();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_dir = ".";
    bool hotpath = true, server = true, smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--out-dir") && i + 1 < argc)
            out_dir = argv[++i];
        else if (!std::strcmp(argv[i], "--hotpath-only"))
            server = false;
        else if (!std::strcmp(argv[i], "--server-only"))
            hotpath = false;
        else if (!std::strcmp(argv[i], "--smoke"))
            smoke = true;
        else {
            std::cerr << "usage: bench_runner [--out-dir D] "
                         "[--hotpath-only|--server-only] [--smoke]\n";
            return 2;
        }
    }
    if (authbench::quickMode())
        smoke = true;

    authbench::banner("Perf-trajectory runner (BENCH_*.json)",
                      "regression gate inputs; see EXPERIMENTS.md "
                      "'Perf trajectory'");

    if (hotpath) {
        authbench::WallTimer t;
        auto r = runHotpath(smoke);
        const std::string path = out_dir + "/BENCH_hotpath.json";
        writeHotpath(path, r, smoke);
        std::cout << "wrote " << path << " ("
                  << r.series.size() << " series, "
                  << t.seconds() << " s)\n";
        for (const auto &[k, v] : r.derived)
            std::cout << "  " << k << ": " << v << "\n";
    }
    if (server) {
        authbench::WallTimer t;
        auto r = runServerSuite(smoke);
        const std::string path = out_dir + "/BENCH_server.json";
        writeServer(path, r, smoke);
        std::cout << "wrote " << path << " ("
                  << r.series.size() << " series, "
                  << t.seconds() << " s)\n";
        for (const auto &[k, v] : r.derived)
            std::cout << "  " << k << ": " << v << "\n";
    }
    return 0;
}
