/**
 * @file
 * Ablation: enrollment sweep passes.
 *
 * Enrollment quality is the flip side of Sec 6.3's persistence story:
 * a single-pass enrollment misses low-persistence lines (which later
 * *appear* during authentication as unexpected errors) while many
 * passes build a complete map whose weakest members then *mask*
 * during cheap authentications. This bench sweeps the enrollment
 * pass count and reports the enrolled-map size and the resulting
 * response distance statistics.
 */

#include <iostream>

#include "bench_common.hpp"
#include "firmware/client.hpp"
#include "metrics/identifiability.hpp"
#include "server/verifier.hpp"
#include "sim/chip.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace authenticache;
namespace srv = authenticache::server;

int
main()
{
    authbench::banner(
        "Ablation: enrollment sweep passes vs authentication quality",
        "Sec 6.2/6.3 -- enrollment measurement noise == removed/"
        "injected errors");

    sim::ChipConfig chip_cfg;
    chip_cfg.cacheBytes = 1024 * 1024;
    sim::SimulatedChip chip(chip_cfg, 0xE401);
    firmware::SimulatedMachine machine(2);
    firmware::ClientConfig ccfg;
    ccfg.selfTestAttempts = 4;
    firmware::AuthenticacheClient client(chip, machine, ccfg);
    double floor = client.boot();
    auto level = static_cast<core::VddMv>(floor + 10.0);

    const std::size_t bits = 128;
    const int rounds = authbench::quickMode() ? 4 : 12;
    srv::VerifierPolicy policy;
    policy.pIntra = 0.08;
    auto threshold =
        metrics::eerThreshold(bits, policy.pInter, policy.pIntra)
            .threshold;

    util::Table table({"enroll_passes", "enrolled_errors", "mean_HD",
                       "max_HD", "accepted_of_rounds"});

    util::Rng rng(5);
    for (std::uint32_t passes : {1u, 2u, 4u, 8u, 16u}) {
        auto map = client.captureErrorMap({level}, passes);

        util::RunningStats hd;
        int accepted = 0;
        for (int round = 0; round < rounds; ++round) {
            auto challenge = core::randomChallenge(chip.geometry(),
                                                   level, bits, rng);
            auto expected = core::evaluate(map, challenge);
            auto outcome = client.authenticate(challenge);
            if (!outcome.ok())
                continue;
            auto distance =
                expected.hammingDistance(outcome.response);
            hd.add(static_cast<double>(distance));
            accepted += distance <=
                        static_cast<std::size_t>(threshold);
        }

        table.row()
            .cell(std::uint64_t(passes))
            .cell(std::uint64_t(map.plane(level).errorCount()))
            .cell(hd.mean(), 1)
            .cell(hd.count() ? hd.max() : 0.0, 0)
            .cell(std::to_string(accepted) + "/" +
                  std::to_string(rounds));
    }
    table.print(std::cout);

    std::cout << "\nEER threshold at " << bits
              << " bits: " << threshold
              << "\nreading: the map converges within a few passes; "
                 "single-pass enrollment leaves the most response "
                 "noise (missed low-persistence lines behave as "
                 "injected errors at auth time).\n";
    return 0;
}
