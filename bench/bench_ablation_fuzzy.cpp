/**
 * @file
 * Ablation: repetition-code vs BCH fuzzy extractor for the remap /
 * key-generation helper data (Sec 4.5, 7.3).
 *
 * Sweeps the response-bit flip rate and reports key-reproduction
 * success for the 5x repetition code (the paper's simple construction)
 * and BCH(127, 64, t=10), normalized per 64 extracted secret bits.
 */

#include <iostream>

#include "bench_common.hpp"
#include "crypto/bch_fuzzy_extractor.hpp"
#include "crypto/fuzzy_extractor.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace authenticache;

int
main()
{
    authbench::banner(
        "Ablation: repetition vs BCH helper data",
        "Sec 4.5/7.3 -- error correction for key derivation");

    crypto::FuzzyExtractor rep(5);        // 64 secret bits from 320.
    crypto::BchFuzzyExtractor bch(7, 10); // 64 secret bits from 127.

    const std::size_t rep_bits = 64 * 5;
    const std::size_t bch_bits = bch.responseBits();
    const int trials = authbench::scaled(400, 80);

    std::cout << "repetition(5): " << rep_bits
              << " response bits -> 64 secret bits\n"
              << "BCH(127,64,10): " << bch_bits
              << " response bits -> 64 secret bits\n\n";

    util::Table table({"flip_rate_%", "repetition_success_%",
                       "bch_success_%"});

    util::Rng rng(0xF22);
    for (double flip_rate : {0.01, 0.03, 0.05, 0.08, 0.10, 0.15,
                             0.20}) {
        int rep_ok = 0;
        int bch_ok = 0;
        for (int trial = 0; trial < trials; ++trial) {
            // Repetition extractor.
            {
                util::BitVec w(rep_bits);
                for (std::size_t i = 0; i < rep_bits; ++i)
                    w.set(i, rng.nextBool());
                auto out = rep.generate(w, rng);
                util::BitVec noisy = w;
                for (std::size_t i = 0; i < rep_bits; ++i) {
                    if (rng.nextBool(flip_rate))
                        noisy.flip(i);
                }
                rep_ok += rep.reproduce(noisy, out.helper) == out.key;
            }
            // BCH extractor.
            {
                util::BitVec w(bch_bits);
                for (std::size_t i = 0; i < bch_bits; ++i)
                    w.set(i, rng.nextBool());
                auto out = bch.generate(w, rng);
                util::BitVec noisy = w;
                for (std::size_t i = 0; i < bch_bits; ++i) {
                    if (rng.nextBool(flip_rate))
                        noisy.flip(i);
                }
                auto key = bch.reproduce(noisy, out.helper);
                bch_ok += key.has_value() && *key == out.key;
            }
        }
        table.row()
            .cell(flip_rate * 100.0, 0)
            .cell(100.0 * rep_ok / trials, 1)
            .cell(100.0 * bch_ok / trials, 1);
    }
    table.print(std::cout);

    std::cout
        << "\nreading: BCH holds near-100% success to ~5-6% flips with "
           "2.5x fewer response bits; repetition degrades smoothly but "
           "needs 320 bits and still loses whole keys once any 5-bit "
           "group accumulates 3 flips. BCH additionally *flags* "
           "failures instead of silently deriving a wrong key.\n";
    return 0;
}
