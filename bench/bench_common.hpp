/**
 * @file
 * Shared helpers for the figure-reproduction bench binaries.
 */

#ifndef AUTH_BENCH_COMMON_HPP
#define AUTH_BENCH_COMMON_HPP

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>

#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace authbench {

/** Wall-clock stopwatch for before/after numbers in EXPERIMENTS.md. */
class WallTimer
{
  public:
    WallTimer() : start(std::chrono::steady_clock::now()) {}

    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start;
};

/** Print a labeled wall-clock measurement with the execution width. */
inline void
reportWallClock(const std::string &label, double seconds)
{
    std::cout << "[wall-clock] " << label << ": " << seconds
              << " s  (threads: "
              << authenticache::util::ThreadPool::defaultThreadCount()
              << ")\n";
}

/**
 * True when AUTHENTICACHE_QUICK requests a fast smoke run: any
 * non-empty value other than "0" enables quick mode ("1" is the
 * documented spelling). Values outside {"0", "1"} still count as
 * enabled but draw a one-time warning, so a typo like "yes " cannot
 * silently select the multi-minute full run in CI.
 */
inline bool
quickMode()
{
    static const bool enabled = [] {
        const char *env = std::getenv("AUTHENTICACHE_QUICK");
        if (env == nullptr || *env == '\0')
            return false;
        const std::string value(env);
        if (value == "0")
            return false;
        if (value != "1")
            std::cerr << "[bench] AUTHENTICACHE_QUICK=\"" << value
                      << "\" unrecognized; treating as enabled "
                         "(use 1 or 0)\n";
        return true;
    }();
    return enabled;
}

/** Scale a Monte Carlo count down in quick mode. */
inline std::size_t
scaled(std::size_t full, std::size_t quick)
{
    return quickMode() ? quick : full;
}

inline void
banner(const std::string &title, const std::string &paper_reference)
{
    authenticache::util::printBanner(std::cout, title);
    std::cout << "Reproduces: " << paper_reference << "\n";
    if (quickMode())
        std::cout << "(quick mode: reduced Monte Carlo sizes)\n";
    std::cout << "\n";
}

} // namespace authbench

#endif // AUTH_BENCH_COMMON_HPP
