/**
 * @file
 * Shared helpers for the figure-reproduction bench binaries.
 */

#ifndef AUTH_BENCH_COMMON_HPP
#define AUTH_BENCH_COMMON_HPP

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>

#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace authbench {

/** Wall-clock stopwatch for before/after numbers in EXPERIMENTS.md. */
class WallTimer
{
  public:
    WallTimer() : start(std::chrono::steady_clock::now()) {}

    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start;
};

/** Print a labeled wall-clock measurement with the execution width. */
inline void
reportWallClock(const std::string &label, double seconds)
{
    std::cout << "[wall-clock] " << label << ": " << seconds
              << " s  (threads: "
              << authenticache::util::ThreadPool::defaultThreadCount()
              << ")\n";
}

/** True when AUTHENTICACHE_QUICK=1 requests a fast smoke run. */
inline bool
quickMode()
{
    const char *env = std::getenv("AUTHENTICACHE_QUICK");
    return env != nullptr && std::string(env) == "1";
}

/** Scale a Monte Carlo count down in quick mode. */
inline std::size_t
scaled(std::size_t full, std::size_t quick)
{
    return quickMode() ? quick : full;
}

inline void
banner(const std::string &title, const std::string &paper_reference)
{
    authenticache::util::printBanner(std::cout, title);
    std::cout << "Reproduces: " << paper_reference << "\n";
    if (quickMode())
        std::cout << "(quick mode: reduced Monte Carlo sizes)\n";
    std::cout << "\n";
}

} // namespace authbench

#endif // AUTH_BENCH_COMMON_HPP
