/**
 * @file
 * Figure 2: spatial distribution of correctable error locations at the
 * minimum safe Vdd in a 4MB cache.
 *
 * Paper result: errors spread uniformly across all cache sets and
 * ways. We print the per-way counts, per-set-region counts, and a
 * chi-square uniformity statistic.
 */

#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "firmware/client.hpp"
#include "sim/chip.hpp"
#include "util/table.hpp"

using namespace authenticache;

int
main()
{
    authbench::banner(
        "Figure 2: error distribution over sets x ways at min safe Vdd",
        "Sec 3, Fig 2 -- uniform spread across sets and ways");

    sim::ChipConfig cfg; // 4MB.
    sim::SimulatedChip chip(cfg, 77);
    firmware::SimulatedMachine machine(4);
    firmware::AuthenticacheClient client(chip, machine);
    double floor = client.boot();
    std::cout << "calibrated floor: " << floor << " mV\n\n";

    auto level = static_cast<core::VddMv>(floor);
    auto map = client.captureErrorMap({level},
                                      authbench::quickMode() ? 2 : 8);
    const auto &errors = map.plane(level).errors();
    std::cout << "distinct correctable lines at floor: "
              << errors.size() << "\n\n";

    // Per-way counts.
    std::vector<std::size_t> per_way(chip.geometry().ways(), 0);
    for (const auto &e : errors)
        ++per_way[e.way];
    util::Table ways({"way", "errors", "expected"});
    double expected_way = static_cast<double>(errors.size()) /
                          chip.geometry().ways();
    for (std::size_t w = 0; w < per_way.size(); ++w) {
        ways.row()
            .cell(std::uint64_t(w))
            .cell(std::uint64_t(per_way[w]))
            .cell(expected_way, 1);
    }
    ways.print(std::cout);

    // Per set-region counts (8 equal regions of the set space).
    const std::size_t regions = 8;
    std::vector<std::size_t> per_region(regions, 0);
    for (const auto &e : errors)
        ++per_region[e.set * regions / chip.geometry().sets()];
    std::cout << "\n";
    util::Table reg({"set_region", "errors", "expected"});
    double expected_region =
        static_cast<double>(errors.size()) / regions;
    for (std::size_t r = 0; r < regions; ++r) {
        reg.row()
            .cell("[" + std::to_string(r * chip.geometry().sets() / 8) +
                  ".." +
                  std::to_string((r + 1) * chip.geometry().sets() / 8) +
                  ")")
            .cell(std::uint64_t(per_region[r]))
            .cell(expected_region, 1);
    }
    reg.print(std::cout);

    // Chi-square across the 8x8 region/way grid.
    double chi2 = 0.0;
    {
        std::vector<std::size_t> grid(regions *
                                          chip.geometry().ways(),
                                      0);
        for (const auto &e : errors) {
            std::size_t r = e.set * regions / chip.geometry().sets();
            ++grid[r * chip.geometry().ways() + e.way];
        }
        double expect = static_cast<double>(errors.size()) /
                        static_cast<double>(grid.size());
        for (auto count : grid) {
            double d = static_cast<double>(count) - expect;
            chi2 += d * d / expect;
        }
    }
    std::cout << "\nchi-square over 64 region-way cells: " << chi2
              << " (df=63; uniform if below ~82.5 at p=0.05)\n";
    return 0;
}
