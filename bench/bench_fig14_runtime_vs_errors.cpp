/**
 * @file
 * Figure 14: authentication runtime as a function of the number of
 * errors in the error map, relative to a baseline of 100 errors with
 * a 64-bit CRP, on a 4MB cache.
 *
 * Paper result: runtime rises as the map gets sparser (the spiral
 * search walks farther to find the nearest error) -- about 1.6%
 * improvement per additional error -- topping out around 40x the
 * baseline at 20 errors with 512-bit CRPs.
 *
 * Error counts are produced physically: higher challenge voltages
 * expose fewer weak lines, so each column tests at the Vdd whose
 * visible error population is closest to the target count.
 */

#include <cmath>
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "firmware/client.hpp"
#include "sim/chip.hpp"
#include "util/table.hpp"

using namespace authenticache;

int
main()
{
    authbench::banner(
        "Figure 14: runtime vs error-map density (relative)",
        "Sec 6.5, Fig 14 -- sparser maps cost more; ~1.6% per error");

    sim::ChipConfig chip_cfg; // 4MB.
    sim::SimulatedChip chip(chip_cfg, 1414);
    firmware::SimulatedMachine machine(4);
    firmware::AuthenticacheClient booter(chip, machine);
    double floor = booter.boot();

    // Map out the visible error count at each level above the floor.
    std::map<int, std::pair<core::VddMv, std::size_t>> targets;
    for (double v = floor; v < chip.vminField().vcorrMv();
         v += 2.0) {
        auto level = static_cast<core::VddMv>(std::lround(v));
        auto weak = chip.vminField().linesFailingAt(v);
        for (int target : {20, 40, 60, 80, 100}) {
            auto &slot = targets[target];
            std::size_t best_gap =
                slot.first == 0
                    ? SIZE_MAX
                    : (slot.second > static_cast<std::size_t>(target)
                           ? slot.second - target
                           : target - slot.second);
            std::size_t gap =
                weak.size() > static_cast<std::size_t>(target)
                    ? weak.size() - target
                    : target - weak.size();
            if (gap < best_gap)
                slot = {level, weak.size()};
        }
    }

    firmware::ClientConfig cfg;
    cfg.selfTestAttempts = 1; // Relative timing; 1 attempt suffices.
    firmware::AuthenticacheClient client(chip, machine, cfg);
    client.adoptFloor(floor);

    util::Rng rng(9);
    auto measure = [&](core::VddMv level, std::size_t bits) {
        auto challenge =
            core::randomChallenge(chip.geometry(), level, bits, rng);
        auto outcome = client.authenticate(challenge);
        return outcome.ok() ? outcome.elapsedMs : -1.0;
    };

    // Baseline: ~100 errors, 64-bit CRP.
    double baseline =
        measure(targets[100].first, 64);
    std::cout << "baseline (100 errors, 64-bit): " << baseline
              << " ms\n\n";

    util::Table table({"crp_size", "100_errors", "80_errors",
                       "60_errors", "40_errors", "20_errors"});
    for (std::size_t bits : {64, 128, 256, 512}) {
        table.row().cell(std::to_string(bits) + "-bit");
        for (int errors : {100, 80, 60, 40, 20}) {
            double ms = measure(targets[errors].first, bits);
            table.cell(ms / baseline, 1);
        }
    }
    table.print(std::cout);

    std::cout << "\nvisible error counts used: ";
    for (int errors : {100, 80, 60, 40, 20}) {
        std::cout << errors << "->" << targets[errors].second << "@"
                  << targets[errors].first << "mV ";
    }
    std::cout << "\nexpected shape: monotone growth toward sparse "
                 "maps; 512-bit/20-error cell ~40x baseline.\n";
    return 0;
}
