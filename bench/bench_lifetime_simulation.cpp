/**
 * @file
 * Capstone: a 10-year deployment simulated quarter by quarter.
 *
 * Ties every subsystem together over a device lifetime (the horizon
 * of the paper's Table 1): the chip ages (NBTI/HCI drift) and sees
 * seasonal temperature swings; the device authenticates daily
 * (accelerated to a sample per quarter); the firmware recalibrates
 * its voltage floor yearly (Sec 5.3); the server rotates the logical
 * map key every quarter (Sec 4.5 / 6.7) and re-enrolls the device
 * when acceptance degrades past its policy.
 *
 * Expected story: acceptance stays high for years on the original
 * enrollment, dips as drift accumulates, and recovers instantly on
 * re-enrollment -- the maintenance loop the paper sketches, end to
 * end.
 */

#include <iostream>

#include "bench_common.hpp"
#include "server/server.hpp"
#include "sim/chip.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace authenticache;
namespace srv = authenticache::server;

int
main()
{
    authbench::banner(
        "Lifetime simulation: 10 years of deployment, quarterly",
        "Table 1 horizon + Sec 5.3 recalibration + Sec 4.5 rotation");

    sim::ChipConfig chip_cfg;
    chip_cfg.cacheBytes = 1024 * 1024;
    // Milder (but nonzero) aging than the stress defaults: a device
    // that dies in 3 years makes a short story.
    chip_cfg.environment.agingMvPerYear = 0.6;
    chip_cfg.environment.agingSigma = 0.4;
    sim::SimulatedChip chip(chip_cfg, 0x11FE);
    firmware::SimulatedMachine machine(4);
    firmware::ClientConfig ccfg;
    ccfg.selfTestAttempts = 4;
    firmware::AuthenticacheClient client(chip, machine, ccfg);
    client.boot();

    srv::ServerConfig scfg;
    scfg.challengeBits = 128;
    scfg.verifier.pIntra = 0.10;
    srv::AuthenticationServer server(scfg, 0x10EA);

    auto enroll_now = [&](bool first) {
        auto levels = std::vector<core::VddMv>{
            static_cast<core::VddMv>(client.floorMv() + 10.0),
            static_cast<core::VddMv>(client.floorMv() + 20.0)};
        auto reserved =
            static_cast<core::VddMv>(client.floorMv() + 15.0);
        if (first)
            server.enroll(1, client, levels, {reserved});
        else
            server.reenroll(1, client, levels, {reserved});
    };
    enroll_now(true);

    protocol::InMemoryChannel channel;
    protocol::ServerEndpoint server_end(channel);
    srv::DeviceAgent agent(1, client,
                           protocol::ClientEndpoint(channel));

    const int auths_per_quarter = authbench::scaled(10, 3);
    util::Table table({"year", "quarter", "tempC", "floor_mV",
                       "accepted", "mean_HD", "events"});

    int reenrollments = 0;
    for (int year = 0; year < 10; ++year) {
        // Yearly maintenance: recalibrate the voltage floor against
        // the aged silicon.
        std::string year_events;
        if (year > 0) {
            double old_floor = client.floorMv();
            client.boot();
            if (client.floorMv() != old_floor)
                year_events = "recalibrated";
            enroll_now(false); // Refresh maps at the new floor.
            ++reenrollments;
            year_events += year_events.empty() ? "re-enrolled"
                                               : "+re-enrolled";
        }

        for (int quarter = 0; quarter < 4; ++quarter) {
            // Seasonal swing: winter cold to summer hot.
            double temp = (quarter == 1 || quarter == 2) ? 20.0 : 5.0;
            sim::Conditions conditions;
            conditions.temperatureDeltaC = temp;
            conditions.agingYears =
                year + 0.25 * quarter;
            conditions.measurementSigmaMv = 1.5;
            chip.setConditions(conditions);

            // Quarterly key rotation.
            std::string events =
                quarter == 0 ? year_events : std::string();
            server.startRemap(1, server_end);
            srv::runExchange(server, server_end, agent);

            int accepted = 0;
            util::RunningStats hd;
            for (int a = 0; a < auths_per_quarter; ++a) {
                agent.requestAuthentication();
                srv::runExchange(server, server_end, agent);
                if (!agent.lastDecision())
                    continue;
                accepted += agent.lastDecision()->accepted;
                hd.add(agent.lastDecision()->hammingDistance);
            }

            table.row()
                .cell(std::int64_t(year))
                .cell(std::int64_t(quarter + 1))
                .cell(temp, 0)
                .cell(client.floorMv(), 0)
                .cell(std::to_string(accepted) + "/" +
                      std::to_string(auths_per_quarter))
                .cell(hd.mean(), 1)
                .cell(events);
        }
    }
    table.print(std::cout);

    std::uint64_t total_accepted = 0;
    for (const auto &report : server.reports())
        total_accepted += report.accepted;
    std::cout << "\nlifetime: " << total_accepted << " accepted / "
              << server.reports().size() - total_accepted
              << " rejected; " << server.remapsCommitted()
              << " key rotations committed, "
              << server.remapsRejected()
              << " rejected at confirmation; " << reenrollments
              << " re-enrollments\n"
              << "reading: acceptance holds across seasons and years "
                 "because the maintenance loop (floor recalibration + "
                 "map refresh + key rotation) tracks the drift.\n";
    return 0;
}
