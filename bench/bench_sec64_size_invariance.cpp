/**
 * @file
 * Section 6.4's invariance claim: "we do not observe any notable
 * changes in aliasing or uniformity as we vary cache sizes from 4MB
 * to 64KB, provided we maintain the same error density."
 *
 * Sweeps cache size at constant error density (errors per line) and
 * prints the aliasing/uniformity cells; the rows should be flat.
 */

#include <iostream>

#include "bench_common.hpp"
#include "mc/experiments.hpp"
#include "util/table.hpp"

using namespace authenticache;

int
main()
{
    authbench::banner(
        "Sec 6.4: aliasing/uniformity invariance across cache sizes",
        "constant error density => flat rows from 64KB to 4MB");

    mc::ExperimentConfig cfg;
    cfg.maps = authbench::scaled(40, 8);
    cfg.samplesPerMap = authbench::scaled(4096, 512);

    // Density anchored at the paper's 4MB/100-error configuration.
    const double density = 100.0 / 65536.0;

    util::Table table({"cache", "errors", "rel_aliasing",
                       "rel_uniformity"});
    const std::uint64_t kb = 1024;
    for (std::uint64_t size :
         {64 * kb, 256 * kb, 1024 * kb, 4096 * kb}) {
        sim::CacheGeometry geom(size);
        auto errors = static_cast<std::size_t>(
            density * static_cast<double>(geom.lines()) + 0.5);
        auto cell_cfg = cfg;
        cell_cfg.seed = 0x64A ^ size;
        auto cell =
            mc::aliasingUniformity(geom, errors, 128, cell_cfg);
        table.row()
            .cell(geom.describe())
            .cell(std::uint64_t(errors))
            .cell(cell.bitAliasingPercent / 50.0, 4)
            .cell(cell.uniformityPercent / 50.0, 4);
    }
    table.print(std::cout);

    std::cout << "\nexpected: all four rows within a few percent of "
                 "1.0 with no size trend (the challenge function only "
                 "sees relative error density).\n";
    return 0;
}
