/**
 * @file
 * Figure 3: error-address overlap across eight different 768KB L2
 * caches at their minimum safe Vdd.
 *
 * Paper result: superimposing the error locations of 8 caches yields
 * only 6 repeated addresses, each shared by exactly two caches --
 * error maps are effectively independent across dies.
 */

#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "firmware/client.hpp"
#include "sim/chip.hpp"
#include "util/table.hpp"

using namespace authenticache;

int
main()
{
    authbench::banner(
        "Figure 3: correctable-error address overlap across 8 caches",
        "Sec 3, Fig 3 -- 6 repeated addresses, each in exactly 2 caches");

    const unsigned chips = 8;
    std::map<std::uint64_t, unsigned> address_counts;
    std::size_t total_errors = 0;

    for (unsigned c = 0; c < chips; ++c) {
        sim::ChipConfig cfg;
        cfg.cacheBytes = 768 * 1024; // Itanium per-core L2 slice.
        sim::SimulatedChip chip(cfg, 9000 + c);
        firmware::SimulatedMachine machine(2);
        firmware::AuthenticacheClient client(chip, machine);
        double floor = client.boot();
        auto level = static_cast<core::VddMv>(floor);
        auto map = client.captureErrorMap(
            {level}, authbench::quickMode() ? 2 : 8);
        const auto &errors = map.plane(level).errors();
        total_errors += errors.size();
        std::cout << "cache " << c << ": floor " << floor << " mV, "
                  << errors.size() << " error lines\n";
        for (const auto &e : errors)
            ++address_counts[chip.geometry().lineIndex(e)];
    }

    // Histogram: how many addresses appear in exactly k caches.
    std::map<unsigned, std::size_t> multiplicity;
    for (const auto &[addr, count] : address_counts)
        ++multiplicity[count];

    std::cout << "\n";
    util::Table table({"caches_sharing_address", "addresses"});
    for (const auto &[count, n] : multiplicity)
        table.row().cell(std::uint64_t(count)).cell(std::uint64_t(n));
    table.print(std::cout);

    std::size_t repeated = 0;
    unsigned max_share = 1;
    for (const auto &[count, n] : multiplicity) {
        if (count >= 2) {
            repeated += n;
            max_share = std::max(max_share, count);
        }
    }
    std::cout << "\ntotal error lines across caches: " << total_errors
              << "\nrepeated addresses: " << repeated
              << " (paper: 6), max caches sharing one address: "
              << max_share << " (paper: 2)\n";
    return 0;
}
