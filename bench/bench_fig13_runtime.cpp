/**
 * @file
 * Figure 13: client authentication runtime as a function of CRP size
 * for 1/2/4/8 self-test attempts per cache line, on a 4MB cache.
 *
 * Paper result: runtime grows ~linearly with both CRP size and the
 * attempt count; a robust 512-bit CRP with 4 attempts completes in
 * under 125 ms. Absolute numbers here come from the calibrated
 * timing model (DESIGN.md); the shape is the reproduction target.
 */

#include <iostream>

#include "bench_common.hpp"
#include "firmware/client.hpp"
#include "server/server.hpp"
#include "sim/chip.hpp"
#include "util/table.hpp"

using namespace authenticache;

int
main()
{
    authbench::banner(
        "Figure 13: authentication runtime vs CRP size and attempts",
        "Sec 6.5, Fig 13 -- linear in CRP size and attempts; 512-bit "
        "x4 < 125 ms");

    sim::ChipConfig chip_cfg; // 4MB.
    sim::SimulatedChip chip(chip_cfg, 1313);
    firmware::SimulatedMachine machine(4);
    firmware::AuthenticacheClient booter(chip, machine);
    double floor = booter.boot();

    // Challenge level ~10 mV above floor: ~100+ errors in the map.
    auto level = static_cast<core::VddMv>(floor + 10.0);
    auto map = booter.captureErrorMap({level}, 8);
    std::cout << "errors at challenge level: "
              << map.plane(level).errorCount() << "\n\n";

    util::Table table(
        {"crp_size", "1_attempt_ms", "2_attempts_ms", "4_attempts_ms",
         "8_attempts_ms", "line_tests@4"});

    util::Rng rng(7);
    for (std::size_t bits : {64, 128, 256, 512}) {
        table.row().cell(std::to_string(bits) + "-bit");
        std::uint64_t tests_at_4 = 0;
        for (std::uint32_t attempts : {1u, 2u, 4u, 8u}) {
            firmware::ClientConfig cfg;
            cfg.selfTestAttempts = attempts;
            firmware::AuthenticacheClient client(chip, machine, cfg);
            client.adoptFloor(floor); // Warm boot.

            auto challenge = core::randomChallenge(chip.geometry(),
                                                   level, bits, rng);
            auto outcome = client.authenticate(challenge);
            double ms = outcome.ok() ? outcome.elapsedMs : -1.0;
            table.cell(ms, 1);
            if (attempts == 4)
                tests_at_4 = outcome.lineTests;
        }
        table.cell(tests_at_4);
    }
    table.print(std::cout);

    std::cout << "\npaper reference points: 512-bit x4 attempts "
                 "< 125 ms; 512-bit x8 ~ 250 ms.\n";
    return 0;
}
