/**
 * @file
 * Google-benchmark microbenchmarks for the performance-critical
 * primitives: SECDED encode/decode, SipHash, SHA-256, the Feistel
 * coordinate permutation, nearest-error search (brute vs spiral),
 * challenge evaluation, cache line self-tests, and protocol
 * serialization.
 */

#include <benchmark/benchmark.h>

#include "core/challenge.hpp"
#include "core/error_index.hpp"
#include "core/nearest.hpp"
#include "core/remap.hpp"
#include "crypto/feistel.hpp"
#include "crypto/sha256.hpp"
#include "crypto/siphash.hpp"
#include "ecc/bch.hpp"
#include "ecc/secded.hpp"
#include "mc/mapgen.hpp"
#include "protocol/messages.hpp"
#include "sim/chip.hpp"
#include "util/rng.hpp"

using namespace authenticache;

namespace {

void
BM_SecdedEncode(benchmark::State &state)
{
    ecc::SecdedCodec codec(64);
    util::Rng rng(1);
    std::uint64_t data = rng.next();
    for (auto _ : state) {
        benchmark::DoNotOptimize(codec.encode(data));
        ++data;
    }
}
BENCHMARK(BM_SecdedEncode);

void
BM_SecdedDecodeClean(benchmark::State &state)
{
    ecc::SecdedCodec codec(64);
    std::uint64_t data = 0x0123456789ABCDEFull;
    std::uint32_t check = codec.encode(data);
    for (auto _ : state)
        benchmark::DoNotOptimize(codec.decode(data, check));
}
BENCHMARK(BM_SecdedDecodeClean);

void
BM_SecdedDecodeCorrect(benchmark::State &state)
{
    ecc::SecdedCodec codec(64);
    std::uint64_t data = 0x0123456789ABCDEFull;
    std::uint32_t check = codec.encode(data);
    for (auto _ : state)
        benchmark::DoNotOptimize(codec.decode(data ^ 0x10, check));
}
BENCHMARK(BM_SecdedDecodeCorrect);

void
BM_BchEncode(benchmark::State &state)
{
    ecc::BchCode code(7, 10);
    util::Rng rng(77);
    util::BitVec message(code.k());
    for (std::size_t i = 0; i < message.size(); ++i)
        message.set(i, rng.nextBool());
    for (auto _ : state)
        benchmark::DoNotOptimize(code.encode(message));
}
BENCHMARK(BM_BchEncode);

void
BM_BchDecode(benchmark::State &state)
{
    ecc::BchCode code(7, 10);
    util::Rng rng(78);
    util::BitVec message(code.k());
    for (std::size_t i = 0; i < message.size(); ++i)
        message.set(i, rng.nextBool());
    auto codeword = code.encode(message);
    auto corrupted = codeword;
    for (auto pos : rng.sampleDistinct(
             code.n(), static_cast<std::size_t>(state.range(0))))
        corrupted.flip(pos);
    for (auto _ : state)
        benchmark::DoNotOptimize(code.decode(corrupted));
}
BENCHMARK(BM_BchDecode)->Arg(0)->Arg(5)->Arg(10);

void
BM_SipHash64(benchmark::State &state)
{
    crypto::SipHashKey key{1, 2};
    std::uint64_t word = 42;
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::siphash24(key, word));
        ++word;
    }
}
BENCHMARK(BM_SipHash64);

void
BM_Sha256_1KiB(benchmark::State &state)
{
    std::vector<std::uint8_t> data(1024, 0xAB);
    for (auto _ : state)
        benchmark::DoNotOptimize(crypto::Sha256::hash(data));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KiB);

void
BM_FeistelMap(benchmark::State &state)
{
    crypto::FeistelPermutation perm(crypto::SipHashKey{3, 4},
                                    65536ull * 8);
    std::uint64_t x = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(perm.map(x));
        x = (x + 1) % perm.domain();
    }
}
BENCHMARK(BM_FeistelMap);

void
BM_NearestBrute(benchmark::State &state)
{
    const sim::CacheGeometry geom(4ull * 1024 * 1024);
    util::Rng rng(5);
    auto plane = mc::randomPlane(
        geom, static_cast<std::size_t>(state.range(0)), rng);
    sim::LinePoint p{1234, 3};
    for (auto _ : state)
        benchmark::DoNotOptimize(core::nearestErrorBrute(plane, p));
}
BENCHMARK(BM_NearestBrute)->Arg(20)->Arg(100)->Arg(500)->Arg(2000);

void
BM_NearestIndexed(benchmark::State &state)
{
    const sim::CacheGeometry geom(4ull * 1024 * 1024);
    util::Rng rng(5);
    core::ErrorIndex index(mc::randomPlane(
        geom, static_cast<std::size_t>(state.range(0)), rng));
    sim::LinePoint p{1234, 3};
    for (auto _ : state)
        benchmark::DoNotOptimize(index.nearest(p));
}
BENCHMARK(BM_NearestIndexed)->Arg(20)->Arg(100)->Arg(500)->Arg(2000);

void
BM_ErrorIndexBuild(benchmark::State &state)
{
    const sim::CacheGeometry geom(4ull * 1024 * 1024);
    util::Rng rng(5);
    auto plane = mc::randomPlane(
        geom, static_cast<std::size_t>(state.range(0)), rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(core::ErrorIndex(plane));
}
BENCHMARK(BM_ErrorIndexBuild)->Arg(100)->Arg(2000);

void
BM_SpiralSearchIdealProbe(benchmark::State &state)
{
    const sim::CacheGeometry geom(4ull * 1024 * 1024);
    util::Rng rng(6);
    auto plane = mc::randomPlane(
        geom, static_cast<std::size_t>(state.range(0)), rng);
    auto probe = [&](const sim::LinePoint &cell) {
        return plane.contains(cell);
    };
    sim::LinePoint p{1234, 3};
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::spiralSearch(
            geom, p, core::maxSearchRadius(geom), probe));
    }
}
BENCHMARK(BM_SpiralSearchIdealProbe)->Arg(20)->Arg(100);

void
BM_ChallengeEvaluate512(benchmark::State &state)
{
    const sim::CacheGeometry geom(4ull * 1024 * 1024);
    util::Rng rng(7);
    auto map = mc::randomErrorMap(geom, 700, 100, rng);
    auto challenge = core::randomChallenge(geom, 700, 512, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(core::evaluate(map, challenge));
}
BENCHMARK(BM_ChallengeEvaluate512);

void
BM_LogicalRemapMap(benchmark::State &state)
{
    const sim::CacheGeometry geom(4ull * 1024 * 1024);
    crypto::Key256 key = crypto::Key256::fromDigest(
        crypto::Sha256::hash(std::string("bench")));
    core::LogicalRemap remap(key, geom);
    sim::LinePoint p{100, 2};
    // Warm the per-level permutation cache.
    benchmark::DoNotOptimize(remap.map(p, 700));
    for (auto _ : state)
        benchmark::DoNotOptimize(remap.map(p, 700));
}
BENCHMARK(BM_LogicalRemapMap);

void
BM_CacheLineSelfTest(benchmark::State &state)
{
    sim::ChipConfig cfg;
    cfg.cacheBytes = 1024 * 1024;
    sim::SimulatedChip chip(cfg, 8);
    chip.setVddMv(chip.vminField().vcorrMv() - 30.0);
    sim::LinePoint p{100, 2};
    for (auto _ : state)
        benchmark::DoNotOptimize(chip.selfTest().testLine(p, 1));
}
BENCHMARK(BM_CacheLineSelfTest);

void
BM_MessageRoundTrip(benchmark::State &state)
{
    util::Rng rng(9);
    const sim::CacheGeometry geom(4ull * 1024 * 1024);
    protocol::ChallengeMsg msg;
    msg.nonce = 1;
    msg.challenge = core::randomChallenge(geom, 700, 128, rng);
    for (auto _ : state) {
        auto frame = protocol::encodeMessage(msg);
        benchmark::DoNotOptimize(protocol::decodeMessage(frame));
    }
}
BENCHMARK(BM_MessageRoundTrip);

void
BM_BitVecHamming512(benchmark::State &state)
{
    util::Rng rng(10);
    util::BitVec a(512);
    util::BitVec b(512);
    for (std::size_t i = 0; i < 512; ++i) {
        a.set(i, rng.nextBool());
        b.set(i, rng.nextBool());
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(a.hammingDistance(b));
}
BENCHMARK(BM_BitVecHamming512);

} // namespace

BENCHMARK_MAIN();
