/**
 * @file
 * Figure 10: maximum tolerable noise for maintaining a failure rate
 * below 1 ppm, across CRP sizes, for both noise polarities.
 *
 * Paper result (4MB cache, 100 errors):
 *   injected: 142% @512b, 79% @256b; removed: 62% @512b, 45% @256b;
 *   sensitivity rises as the CRP shrinks, and removal is tougher than
 *   injection.
 */

#include <iostream>

#include "bench_common.hpp"
#include "mc/experiments.hpp"
#include "util/table.hpp"

using namespace authenticache;

int
main()
{
    authbench::banner(
        "Figure 10: max tolerable noise for <1 ppm failure",
        "Sec 6.2, Fig 10 -- injected 142%@512b/79%@256b, removed "
        "62%@512b/45%@256b");

    const sim::CacheGeometry geom(4ull * 1024 * 1024);
    const std::size_t errors = 100;

    mc::ExperimentConfig cfg;
    cfg.maps = authbench::scaled(24, 6);
    cfg.samplesPerMap = authbench::scaled(2500, 400);
    cfg.seed = 0xF10;

    util::Table table({"crp_size", "injected_max_%", "paper_inj_%",
                       "removed_max_%", "paper_rem_%"});
    const char *paper_inj[] = {"~25", "~45", "79", "142"};
    const char *paper_rem[] = {"~20", "~33", "45", "62"};

    authbench::WallTimer timer;
    int idx = 0;
    for (std::size_t bits : {64, 128, 256, 512}) {
        auto inj =
            mc::maxTolerableNoise(geom, errors, bits, true, 1e-6, cfg);
        auto rem = mc::maxTolerableNoise(geom, errors, bits, false,
                                         1e-6, cfg);
        table.row()
            .cell(std::to_string(bits) + "-bit")
            .cell(inj.maxNoisePercent, 0)
            .cell(paper_inj[idx])
            .cell(rem.maxNoisePercent, 0)
            .cell(paper_rem[idx]);
        ++idx;
    }
    table.print(std::cout);
    authbench::reportWallClock("noise-tolerance sweep (4 CRP sizes)",
                               timer.seconds());

    std::cout << "\nexpected shape: tolerance grows with CRP size; "
                 "removal tolerance < injection tolerance.\n";
    return 0;
}
