/**
 * @file
 * Figure 9: Hamming distance distributions for PUF responses from a
 * 4MB cache with 512-bit challenges -- intra-chip at 10% and 150%
 * injected noise vs the inter-chip distribution.
 *
 * Paper result: the 10% curve shows virtually no overlap with the
 * inter-chip curve; even at 150% the overlap is ~2 ppm.
 */

#include <iostream>

#include "bench_common.hpp"
#include "mc/experiments.hpp"
#include "metrics/identifiability.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace authenticache;

namespace {

void
summarize(const char *name, const std::vector<std::uint32_t> &samples,
          util::Histogram &hist)
{
    util::RunningStats stats;
    for (auto s : samples) {
        stats.add(s);
        hist.add(s);
    }
    std::cout << name << ": mean " << stats.mean() << " bits, sd "
              << stats.stddev() << ", range [" << stats.min() << ", "
              << stats.max() << "]\n";
}

} // namespace

int
main()
{
    authbench::banner(
        "Figure 9: Hamming distance distributions (4MB, 512-bit CRPs)",
        "Sec 6.2, Fig 9 -- 10%/150% injected noise vs inter-chip");

    const sim::CacheGeometry geom(4ull * 1024 * 1024);
    const std::size_t bits = 512;
    const std::size_t errors = 100;

    mc::ExperimentConfig cfg;
    cfg.maps = authbench::scaled(40, 6);
    cfg.samplesPerMap = authbench::scaled(25, 5);
    cfg.seed = 0xF19;

    mc::NoiseProfile low;
    low.injectFraction = 0.10;
    mc::NoiseProfile high;
    high.injectFraction = 1.50;

    authbench::WallTimer timer;
    auto low_samples = mc::hammingDistributions(geom, errors, bits,
                                                low, cfg);
    auto high_samples = mc::hammingDistributions(geom, errors, bits,
                                                 high, cfg);
    authbench::reportWallClock("hamming distributions (2 noise levels)",
                               timer.seconds());

    util::Histogram h_low(0, 512, 64);
    util::Histogram h_high(0, 512, 64);
    util::Histogram h_inter(0, 512, 64);
    summarize("intra (10% noise) ", low_samples.intra, h_low);
    summarize("intra (150% noise)", high_samples.intra, h_high);
    summarize("inter-chip        ", low_samples.inter, h_inter);

    std::cout << "\n";
    util::Table table({"code_distance_bits", "intra_10pct",
                       "intra_150pct", "inter_chip"});
    for (std::size_t b = 0; b < h_low.bins(); ++b) {
        if (h_low.binCount(b) == 0 && h_high.binCount(b) == 0 &&
            h_inter.binCount(b) == 0)
            continue;
        table.row()
            .cell(h_low.binCenter(b), 0)
            .cell(h_low.binFraction(b), 4)
            .cell(h_high.binFraction(b), 4)
            .cell(h_inter.binFraction(b), 4);
    }
    table.print(std::cout);

    // Analytic overlap at the EER threshold, per the paper's 2 ppm
    // observation for 150% noise.
    authbench::WallTimer flip_timer;
    auto p10 =
        mc::estimateIntraFlipProbability(geom, errors, low, cfg);
    auto p150 =
        mc::estimateIntraFlipProbability(geom, errors, high, cfg);
    auto p_inter = mc::estimateInterFlipProbability(geom, errors, cfg);
    authbench::reportWallClock("flip-probability estimates",
                               flip_timer.seconds());
    double rate10 = metrics::misidentificationRate(bits, p_inter, p10);
    double rate150 =
        metrics::misidentificationRate(bits, p_inter, p150);
    std::cout << "\nmisidentification rate @10% noise:  " << rate10
              << "\nmisidentification rate @150% noise: " << rate150
              << "  (paper: ~2e-6)\n";
    return 0;
}
