/**
 * @file
 * Socket-transport load bench: drives a fleet of simulated devices
 * (100k in full mode) through complete authentication round trips
 * over real TCP sockets against a live EpollTransport, sweeping the
 * offered in-flight load from well under the admission budget to 4x
 * over it.
 *
 * Emits BENCH_transport.json -- the degradation curve the regression
 * gate enforces (tools/bench_compare.py, EXPERIMENTS.md "Transport
 * degradation curve"). The gated properties are booleans encoded as
 * 2.0 (pass) / 0.0 (fail) so the gate is hardware-independent:
 *
 *  - transport_lowload_accept   -- >= 95% of attempts accepted when
 *                                  offered load is B/4.
 *  - transport_shed_monotone    -- shed fraction never *decreases* as
 *                                  offered load grows (0.02 epsilon).
 *  - transport_goodput_retention-- goodput at 4x overload holds at
 *                                  least half of goodput at the
 *                                  budget point (shed, don't
 *                                  collapse).
 *  - transport_p99_bounded      -- accepted-auth p99 latency at 4x
 *                                  overload stays within 500x of the
 *                                  low-load p99 (bounded queues keep
 *                                  latency bounded).
 *
 * Topology: the main thread owns the transport pump (single-threaded
 * pump contract); T client threads each multiplex their share of the
 * device fleet as wire streams over C/T sockets, holding a fixed
 * per-thread in-flight window. Every attempt is a full round trip:
 * AuthRequest -> ChallengeMsg -> honest ResponseMsg (computed from
 * the enrolled map) -> AuthDecision, or an explicit Overloaded
 * reject when admission control sheds the frame.
 *
 * Flags: --out-dir <dir>, --smoke (or AUTHENTICACHE_QUICK=1).
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <variant>
#include <vector>

#include "bench_common.hpp"
#include "core/remap.hpp"
#include "mc/mapgen.hpp"
#include "net/epoll_transport.hpp"
#include "net/socket_client.hpp"
#include "server/server.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

using namespace authenticache;

namespace {

using Clock = std::chrono::steady_clock;

double
nsSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::nano>(Clock::now() - t0)
        .count();
}

double
percentile(std::vector<double> &samples, double p)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    std::size_t i = static_cast<std::size_t>(
        p * static_cast<double>(samples.size() - 1));
    return samples[i];
}

/** Minimal JSON writer (fixed field order, no external deps). */
class Json
{
  public:
    explicit Json(std::ostream &os_) : os(os_)
    {
        os.precision(12);
    }

    void
    open()
    {
        os << "{";
        firsts.push_back(true);
    }
    void
    close()
    {
        firsts.pop_back();
        os << "\n}\n";
    }

    void
    field(const std::string &key, const std::string &value)
    {
        pre();
        os << '"' << key << "\": \"" << value << '"';
    }
    void
    field(const std::string &key, double value)
    {
        pre();
        os << '"' << key << "\": " << value;
    }
    void
    field(const std::string &key, std::uint64_t value)
    {
        pre();
        os << '"' << key << "\": " << value;
    }
    void
    field(const std::string &key, bool value)
    {
        pre();
        os << '"' << key << "\": " << (value ? "true" : "false");
    }

    void
    openArray(const std::string &key)
    {
        pre();
        os << '"' << key << "\": [";
        firsts.push_back(true);
    }
    void
    closeArray()
    {
        firsts.pop_back();
        os << "\n" << indent() << "  ]";
    }
    void
    openObject(const std::string &key = "")
    {
        pre();
        if (!key.empty())
            os << '"' << key << "\": ";
        os << "{";
        firsts.push_back(true);
    }
    void
    closeObject()
    {
        firsts.pop_back();
        os << "\n" << indent() << "  }";
    }

  private:
    void
    pre()
    {
        if (!firsts.back())
            os << ",";
        firsts.back() = false;
        os << "\n" << indent() << "  ";
    }
    std::string
    indent() const
    {
        return std::string(2 * (firsts.size() - 1), ' ');
    }

    std::ostream &os;
    std::vector<bool> firsts; ///< "next element is first" per depth.
};

// ---------------------------------------------------------------
// Load generator.
// ---------------------------------------------------------------

constexpr std::uint64_t kServerSeed = 0x70AD;
constexpr std::uint64_t kFirstId = 1001;
constexpr core::VddMv kLevel = 700.0;

struct LoadParams
{
    std::size_t devices;
    std::size_t conns;
    std::size_t threads;
    std::size_t budget;       ///< TransportConfig::globalInFlight.
    std::size_t perConnQueue; ///< TransportConfig::perConnectionQueue.
};

LoadParams
loadParams(bool quick)
{
    if (quick)
        return {2000, 8, 2, 256, 64};
    return {100000, 16, 4, 2048, 256};
}

/** Per-worker tallies, merged after join. */
struct WorkerStats
{
    std::vector<double> latenciesNs; ///< Accepted auths only.
    std::uint64_t attempts = 0;
    std::uint64_t accepted = 0;
    std::uint64_t shed = 0;
    std::uint64_t failures = 0;
};

/**
 * Drive @p devices through full auth round trips over @p nConns
 * sockets, keeping up to @p window attempts in flight. Reads only
 * enrollment-time record state (mapKey, physicalMap) from the shared
 * database -- the bench never remaps, so those fields are immutable
 * while the server runs.
 */
void
runClients(std::uint16_t port,
           const server::AuthenticationServer &server,
           std::span<const std::uint64_t> devices, std::size_t nConns,
           std::size_t window, std::size_t passes, WorkerStats &out)
{
    const std::size_t total = devices.size() * passes;
    std::vector<net::SocketClient> conns(nConns);
    for (auto &c : conns)
        if (!c.connectTo(port)) {
            out.failures += total;
            return;
        }

    // device id (== stream id) -> round-trip start time.
    std::unordered_map<std::uint64_t, Clock::time_point> inflight;
    std::size_t next = 0;

    auto handle = [&](net::SocketClient &c, std::uint64_t stream,
                      const protocol::Message &m) {
        auto it = inflight.find(stream);
        if (it == inflight.end())
            return; // Stale duplicate from a previous sweep.
        if (const auto *ch =
                std::get_if<protocol::ChallengeMsg>(&m)) {
            const auto &rec = server.database().at(stream);
            core::LogicalRemap remap(rec.mapKey(),
                                     rec.physicalMap().geometry());
            auto resp = core::evaluate(
                remap.mapErrorMap(rec.physicalMap()), ch->challenge);
            if (!c.sendMessage(stream,
                               protocol::Message{protocol::ResponseMsg{
                                   ch->nonce, resp}})) {
                ++out.failures;
                inflight.erase(it);
            }
            return;
        }
        if (const auto *d =
                std::get_if<protocol::AuthDecision>(&m)) {
            if (d->accepted) {
                ++out.accepted;
                out.latenciesNs.push_back(nsSince(it->second));
            } else {
                ++out.failures;
            }
            inflight.erase(it);
            return;
        }
        // ErrorMsg: admission-control shed or a genuine failure
        // (e.g. a session evicted under the pending cap).
        if (net::isOverloadedReject(m))
            ++out.shed;
        else
            ++out.failures;
        inflight.erase(it);
    };

    while (next < total || !inflight.empty()) {
        // Top up the in-flight window. Passes > 1 cycle the device
        // fleet to sustain load; a device still in flight from the
        // previous pass blocks the top-up until it completes (one
        // attempt per device at a time).
        while (next < total && inflight.size() < window) {
            const std::uint64_t id = devices[next % devices.size()];
            if (inflight.count(id) != 0)
                break;
            net::SocketClient &c = conns[next % nConns];
            ++next;
            ++out.attempts;
            if (c.eof() || c.failed() ||
                !c.sendMessage(id, protocol::Message{
                                       protocol::AuthRequest{id}})) {
                ++out.failures;
                continue;
            }
            inflight.emplace(id, Clock::now());
        }

        // Drain every reply that is already decodable or readable.
        bool got = false;
        for (auto &c : conns)
            while (auto m = c.readMessage(0)) {
                got = true;
                handle(c, m->first, m->second);
            }
        if (got || inflight.empty())
            continue;

        // Nothing ready: block briefly on one live socket. The next
        // lap re-drains all of them at zero timeout.
        bool alive = false;
        for (auto &c : conns) {
            if (c.eof() || c.failed())
                continue;
            alive = true;
            if (auto m = c.readMessage(1))
                handle(c, m->first, m->second);
            break;
        }
        if (!alive) {
            // Every connection died; abandon what's left.
            out.failures += inflight.size();
            out.failures += total - next;
            inflight.clear();
            next = total;
        }
    }
}

// ---------------------------------------------------------------
// Sweeps.
// ---------------------------------------------------------------

struct SweepOutcome
{
    std::size_t window = 0;
    double wallS = 0.0;
    WorkerStats merged;
    net::TransportCounters counters;
    double p50Ns = 0.0;
    double p99Ns = 0.0;

    double
    goodputPerS() const
    {
        return wallS > 0.0
                   ? static_cast<double>(merged.accepted) / wallS
                   : 0.0;
    }
    double
    shedFrac() const
    {
        return merged.attempts > 0
                   ? static_cast<double>(merged.shed) /
                         static_cast<double>(merged.attempts)
                   : 0.0;
    }
    double
    acceptFrac() const
    {
        return merged.attempts > 0
                   ? static_cast<double>(merged.accepted) /
                         static_cast<double>(merged.attempts)
                   : 0.0;
    }
};

SweepOutcome
runSweep(server::AuthenticationServer &server,
         const std::vector<std::uint64_t> &devices,
         const LoadParams &p, std::size_t window, std::size_t passes)
{
    net::TransportConfig tcfg;
    tcfg.perConnectionQueue = p.perConnQueue;
    tcfg.globalInFlight = p.budget;
    // Continuation-aware shedding: under overload, shed new
    // AuthRequests first and keep admitting the responses to
    // challenges already issued -- without this, half the server's
    // overload capacity goes into challenges whose responses are then
    // shed, and goodput collapses instead of plateauing.
    tcfg.continuationReserve = p.budget / 4;
    tcfg.classifyContinuation = net::isContinuationPayload;
    net::EpollTransport transport(server.frontEnd(), tcfg);
    util::ThreadPool pool;

    std::vector<WorkerStats> stats(p.threads);
    std::atomic<std::size_t> running{p.threads};
    const std::size_t connsPer =
        std::max<std::size_t>(1, p.conns / p.threads);
    const std::size_t windowPer =
        std::max<std::size_t>(1, window / p.threads);
    const std::size_t perThread =
        (devices.size() + p.threads - 1) / p.threads;

    authbench::WallTimer timer;
    std::vector<std::thread> workers;
    workers.reserve(p.threads);
    for (std::size_t t = 0; t < p.threads; ++t) {
        const std::size_t lo = std::min(t * perThread,
                                        devices.size());
        const std::size_t hi = std::min(lo + perThread,
                                        devices.size());
        workers.emplace_back([&, t, lo, hi] {
            runClients(transport.port(), server,
                       std::span<const std::uint64_t>(
                           devices.data() + lo, hi - lo),
                       connsPer, windowPer, passes, stats[t]);
            running.fetch_sub(1, std::memory_order_release);
        });
    }
    while (running.load(std::memory_order_acquire) > 0)
        transport.pump(pool, 1);
    for (auto &w : workers)
        w.join();
    const double wall = timer.seconds();
    transport.drain(pool);

    SweepOutcome out;
    out.window = window;
    out.wallS = wall;
    for (auto &s : stats) {
        out.merged.attempts += s.attempts;
        out.merged.accepted += s.accepted;
        out.merged.shed += s.shed;
        out.merged.failures += s.failures;
        out.merged.latenciesNs.insert(out.merged.latenciesNs.end(),
                                      s.latenciesNs.begin(),
                                      s.latenciesNs.end());
    }
    out.counters = transport.counters();
    out.p50Ns = percentile(out.merged.latenciesNs, 0.50);
    out.p99Ns = percentile(out.merged.latenciesNs, 0.99);
    return out;
}

// ---------------------------------------------------------------
// Output.
// ---------------------------------------------------------------

/** Window labels, in sweep order: fractions of the budget B. */
const char *const kWindowLabels[4] = {"w0.25x", "w1x", "w2x", "w4x"};

void
writeTransport(const std::string &path, const LoadParams &p,
               const std::vector<SweepOutcome> &sweeps,
               const std::map<std::string, double> &derived,
               bool quick)
{
    std::ofstream f(path);
    Json j(f);
    j.open();
    j.field("schema", "authenticache-bench-transport-v1");
    j.field("quick", quick);
    j.field("detected_simd",
            std::string(
                util::simdLevelName(util::detectedSimdLevel())));
    j.field("dispatch_simd",
            std::string(util::simdLevelName(util::simdLevel())));
    j.field("hardware_threads",
            std::uint64_t(util::ThreadPool::defaultThreadCount()));
    j.openObject("load");
    j.field("devices", std::uint64_t(p.devices));
    j.field("connections", std::uint64_t(p.conns));
    j.field("client_threads", std::uint64_t(p.threads));
    j.field("global_in_flight", std::uint64_t(p.budget));
    j.field("per_connection_queue", std::uint64_t(p.perConnQueue));
    j.closeObject();
    j.openArray("benchmarks");
    for (std::size_t i = 0; i < sweeps.size(); ++i) {
        const SweepOutcome &s = sweeps[i];
        j.openObject();
        j.field("name", "transport_auth_e2e");
        j.field("simd", kWindowLabels[i]);
        j.field("ops", s.merged.accepted);
        j.field("ops_per_s", s.goodputPerS());
        j.field("p50_ns", s.p50Ns);
        j.field("p99_ns", s.p99Ns);
        j.closeObject();
    }
    j.closeArray();
    j.openArray("load_curve");
    for (std::size_t i = 0; i < sweeps.size(); ++i) {
        const SweepOutcome &s = sweeps[i];
        j.openObject();
        j.field("window_label", kWindowLabels[i]);
        j.field("window", std::uint64_t(s.window));
        j.field("attempts", s.merged.attempts);
        j.field("accepted", s.merged.accepted);
        j.field("shed", s.merged.shed);
        j.field("failures", s.merged.failures);
        j.field("accept_frac", s.acceptFrac());
        j.field("shed_frac", s.shedFrac());
        j.field("goodput_per_s", s.goodputPerS());
        j.field("p50_ns", s.p50Ns);
        j.field("p99_ns", s.p99Ns);
        j.field("wall_s", s.wallS);
        j.field("srv_accepted", s.counters.accepted);
        j.field("srv_shed", s.counters.shed);
        j.field("srv_backpressure_stalls",
                s.counters.backpressureStalls);
        j.field("srv_batches", s.counters.batches);
        j.field("srv_frames_in", s.counters.framesIn);
        j.field("srv_frames_out", s.counters.framesOut);
        j.closeObject();
    }
    j.closeArray();
    j.openObject("derived");
    for (const auto &[k, v] : derived)
        j.field(k, v);
    j.closeObject();
    j.openObject("floors");
    // Boolean gates (2.0 pass / 0.0 fail): enforced >= 1.9 on every
    // run, independent of hardware.
    j.field("transport_lowload_accept", 1.9);
    j.field("transport_shed_monotone", 1.9);
    j.field("transport_goodput_retention", 1.9);
    j.field("transport_p99_bounded", 1.9);
    j.closeObject();
    j.close();
}

std::map<std::string, double>
deriveGates(const std::vector<SweepOutcome> &sweeps)
{
    // Encode each gate as 2.0/0.0 so the floor (1.9) and the 10%
    // derived-ratio check in bench_compare both act as pass/fail.
    auto asGate = [](bool ok) { return ok ? 2.0 : 0.0; };

    const bool lowload = sweeps[0].acceptFrac() >= 0.95;
    bool monotone = true;
    for (std::size_t i = 1; i < sweeps.size(); ++i)
        if (sweeps[i].shedFrac() + 0.02 < sweeps[i - 1].shedFrac())
            monotone = false;
    const bool retention =
        sweeps[3].goodputPerS() >= 0.5 * sweeps[1].goodputPerS();
    const bool p99Bounded =
        sweeps[0].p99Ns <= 0.0 ||
        sweeps[3].p99Ns <= 500.0 * sweeps[0].p99Ns;

    return {
        {"transport_lowload_accept", asGate(lowload)},
        {"transport_shed_monotone", asGate(monotone)},
        {"transport_goodput_retention", asGate(retention)},
        {"transport_p99_bounded", asGate(p99Bounded)},
    };
}

server::ServerConfig
serverConfig(bool quick)
{
    server::ServerConfig cfg;
    cfg.challengeBits = 32;
    cfg.remapSecretBits = 8;
    cfg.fuzzyRepetition = 5;
    cfg.verifier.pIntra = 0.08;
    cfg.sessionShards = 4;
    // Pending sessions linger when a ResponseMsg is shed (the next
    // sweep's duplicate request resumes them); keep the cap far above
    // the largest window so cap eviction never distorts the curve.
    cfg.maxPendingSessions = quick ? 8192 : 65536;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_dir = ".";
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--out-dir") && i + 1 < argc)
            out_dir = argv[++i];
        else if (!std::strcmp(argv[i], "--smoke"))
            smoke = true;
        else {
            std::cerr << "usage: bench_transport_load "
                         "[--out-dir D] [--smoke]\n";
            return 2;
        }
    }
    if (authbench::quickMode())
        smoke = true;

    authbench::banner(
        "Socket-transport load sweep (BENCH_transport.json)",
        "degradation curve under overload; see EXPERIMENTS.md "
        "'Transport degradation curve'");

    const LoadParams p = loadParams(smoke);
    server::AuthenticationServer server(serverConfig(smoke),
                                        kServerSeed);
    const core::CacheGeometry geom(64 * 1024);
    std::vector<std::uint64_t> devices;
    devices.reserve(p.devices);
    {
        authbench::WallTimer t;
        for (std::size_t i = 0; i < p.devices; ++i) {
            const std::uint64_t id = kFirstId + i;
            util::Rng mr = util::Rng::forStream(0xD1CE, id);
            server.database().enroll(server::DeviceRecord(
                id, mc::randomErrorMap(geom, kLevel, 40, mr),
                {kLevel}, {}));
            devices.push_back(id);
        }
        std::cout << "enrolled " << p.devices << " devices ("
                  << t.seconds() << " s)\n";
    }

    // Offered in-flight load as a fraction of the admission budget
    // B: under (B/4), at (B), and over (2B, 4B). Ascending order, so
    // the low-load gate runs before overload leaves any residue.
    const std::size_t windows[4] = {p.budget / 4, p.budget,
                                    2 * p.budget, 4 * p.budget};
    // Sustain each sweep well past its transient: enough attempts
    // that the largest window turns over many times, cycling the
    // device fleet when it is smaller than that.
    const std::size_t passes = std::max<std::size_t>(
        1, (12 * windows[3] + p.devices - 1) / p.devices);
    std::vector<SweepOutcome> sweeps;
    sweeps.reserve(4);
    for (std::size_t i = 0; i < 4; ++i) {
        authbench::WallTimer t;
        sweeps.push_back(
            runSweep(server, devices, p, windows[i], passes));
        const SweepOutcome &s = sweeps.back();
        std::cout << kWindowLabels[i] << " (window "
                  << windows[i] << "): " << s.merged.accepted
                  << " accepted, " << s.merged.shed << " shed, "
                  << s.merged.failures << " failed in "
                  << t.seconds() << " s ("
                  << s.goodputPerS() << " auth/s, p99 "
                  << s.p99Ns / 1e6 << " ms)\n";
    }

    const auto derived = deriveGates(sweeps);
    const std::string path = out_dir + "/BENCH_transport.json";
    writeTransport(path, p, sweeps, derived, smoke);
    std::cout << "wrote " << path << "\n";
    bool ok = true;
    for (const auto &[k, v] : derived) {
        std::cout << "  " << k << ": " << v << "\n";
        if (v < 1.9)
            ok = false;
    }
    if (!ok) {
        std::cerr << "FAIL: degradation-curve gate violated\n";
        return 1;
    }
    return 0;
}
