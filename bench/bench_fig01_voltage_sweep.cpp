/**
 * @file
 * Figure 1: number of distinct cache lines that trigger correctable
 * errors as a function of supply voltage relative to the first
 * correctable error (Vcorr) in a 4MB cache.
 *
 * Paper result: the count rises steadily to 122 lines over a 65 mV
 * reduction, an average rate of ~2 lines/mV.
 */

#include <iostream>
#include <set>

#include "bench_common.hpp"
#include "sim/chip.hpp"
#include "util/table.hpp"

using namespace authenticache;

int
main()
{
    authbench::banner(
        "Figure 1: correctable cache lines vs. relative Vdd (4MB)",
        "Sec 3, Fig 1 -- ~122 distinct lines over 65 mV, ~2 lines/mV");

    sim::ChipConfig cfg; // 4MB default.
    sim::SimulatedChip chip(cfg, /*chip_seed=*/2015);

    const double vcorr = chip.vminField().vcorrMv();
    std::cout << "chip Vcorr (first correctable error): " << vcorr
              << " mV\n\n";

    util::Table table({"rel_vdd_mV", "distinct_error_lines",
                       "lines_per_mV(avg)"});

    std::set<std::uint64_t> seen;
    const int step = 5;
    for (int rel = 0; rel <= 65; rel += step) {
        double v = vcorr - rel;
        if (chip.setVddMv(v) != sim::VoltageStatus::Ok)
            break;
        auto sweep = chip.selfTest().sweepAll(
            authbench::quickMode() ? 2 : 8);
        for (const auto &p : sweep.correctableLines)
            seen.insert(chip.geometry().lineIndex(p));

        double rate = rel > 0 ? static_cast<double>(seen.size()) / rel
                              : 0.0;
        table.row()
            .cell(std::int64_t(-rel))
            .cell(std::uint64_t(seen.size()))
            .cell(rate, 2);
    }
    chip.emergencyRaise();

    table.print(std::cout);
    std::cout << "\npaper: 122 lines at -65 mV (2.0 lines/mV); "
                 "measured above should be within ~20%.\n";
    return 0;
}
