/**
 * @file
 * Ablation: the tie rule of Eq 8.
 *
 * Equal distances resolve to "0", which is the source of the small
 * bias away from 50% uniformity the paper measures (Sec 6.4). This
 * bench quantifies the tie frequency as error density grows and
 * compares the deployed rule against a random tie-break alternative,
 * showing why the paper's choice is acceptable (and what it costs).
 */

#include <iostream>

#include "bench_common.hpp"
#include "core/nearest.hpp"
#include "mc/mapgen.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace authenticache;

int
main()
{
    authbench::banner(
        "Ablation: Eq 8 tie rule (ties -> 0) vs random tie-break",
        "Sec 6.4 -- the tie rule explains the ~1% bias toward 0");

    const sim::CacheGeometry geom(4ull * 1024 * 1024);
    const std::size_t samples = authbench::scaled(200000, 20000);
    const std::size_t maps = authbench::scaled(20, 5);

    util::Table table({"errors", "tie_rate_%", "ones_tie0_%",
                       "ones_tierand_%", "bias_tie0", "bias_tierand"});

    util::Rng rng(0x71E);
    for (std::size_t errors : {20, 60, 100, 200, 400}) {
        std::uint64_t ties = 0;
        std::uint64_t ones_zero_rule = 0;
        std::uint64_t ones_random_rule = 0;
        std::uint64_t total = 0;

        for (std::size_t m = 0; m < maps; ++m) {
            auto plane = mc::randomPlane(geom, errors, rng);
            for (std::size_t s = 0; s < samples / maps; ++s) {
                auto a = geom.pointOf(rng.nextBelow(geom.lines()));
                auto b = geom.pointOf(rng.nextBelow(geom.lines()));
                auto ra = core::nearestErrorBrute(plane, a);
                auto rb = core::nearestErrorBrute(plane, b);
                std::uint64_t da =
                    ra.found ? ra.distance : ~0ull;
                std::uint64_t db =
                    rb.found ? rb.distance : ~0ull;
                ++total;
                if (da == db) {
                    ++ties;
                    // Deployed rule: 0. Random rule: coin flip.
                    ones_random_rule += rng.nextBool();
                } else {
                    bool bit = da > db;
                    ones_zero_rule += bit;
                    ones_random_rule += bit;
                }
            }
        }

        double tie_rate = 100.0 * static_cast<double>(ties) /
                          static_cast<double>(total);
        double ones0 = 100.0 *
                       static_cast<double>(ones_zero_rule) /
                       static_cast<double>(total);
        double ones_r = 100.0 *
                        static_cast<double>(ones_random_rule) /
                        static_cast<double>(total);
        table.row()
            .cell(std::uint64_t(errors))
            .cell(tie_rate, 2)
            .cell(ones0, 2)
            .cell(ones_r, 2)
            .cell(std::abs(ones0 - 50.0), 2)
            .cell(std::abs(ones_r - 50.0), 2);
    }
    table.print(std::cout);

    std::cout
        << "\nreading: the tie rate (and hence the 0 bias) grows with "
           "error density; a random tie-break removes the bias but "
           "makes tied bits irreproducible -- every tie would flip "
           "between enrollment and authentication with probability "
           "1/2, *adding* intra-chip noise. The paper's deterministic "
           "rule trades ~1% uniformity for exact reproducibility.\n";
    return 0;
}
