/**
 * @file
 * Server-side authentication throughput through the batch front end:
 * frames/sec for a many-device request/response flood at 1, 4, and
 * hardware-default thread counts.
 *
 * The workload is the server's hot path only -- challenge generation
 * (fresh-pair draws plus map evaluation) and response verification --
 * driven by synthetic enrolled devices, so no chip simulation sits in
 * the loop. Client-side work (response crafting) happens between
 * batches and is excluded from the timed region.
 *
 * Outcomes are bit-identical at every width (the batch pipeline's
 * determinism contract); the run cross-checks accepted counts across
 * widths. Speedup tracks available cores: on a single-core host all
 * widths collapse to ~1x.
 *
 * Each width is also re-run with the durability layer attached (WAL
 * appends + one fsync per batch into a fresh temp directory), both to
 * report the journaling overhead and to cross-check that outcomes
 * with journaling enabled stay identical to the plain run at every
 * width.
 *
 * Flags: --smoke (or AUTHENTICACHE_QUICK=1) shrinks the flood for CI.
 */

#include <cstring>
#include <filesystem>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/remap.hpp"
#include "mc/mapgen.hpp"
#include "server/durability.hpp"
#include "server/server.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace authenticache;

namespace {

constexpr core::VddMv kLevel = 700.0;
constexpr std::uint64_t kServerSeed = 0x7B40;
constexpr std::size_t kMapErrors = 60;

/**
 * A flood fixture: server, devices, one endpoint per device. When
 * @p durable_dir is non-empty the durability layer is attached after
 * enrollment (the opening rotation snapshots the enrolled database),
 * so the timed region pays WAL appends plus one sync per batch.
 */
struct Flood
{
    server::ServerConfig cfg;
    server::AuthenticationServer srv;
    std::vector<std::uint64_t> ids;
    std::vector<std::unique_ptr<protocol::InMemoryChannel>> chans;
    std::vector<std::unique_ptr<protocol::ServerEndpoint>> ends;
    std::optional<server::DurabilityManager> dur;

    explicit Flood(std::size_t n_devices,
                   const std::string &durable_dir = "")
        : cfg([] {
              server::ServerConfig c;
              c.challengeBits = 64;
              c.verifier.pIntra = 0.08;
              c.maxPendingSessions = 1 << 20;
              c.sessionShards = 16;
              return c;
          }()),
          srv(cfg, kServerSeed)
    {
        core::CacheGeometry geom(256 * 1024);
        for (std::size_t i = 0; i < n_devices; ++i) {
            std::uint64_t id = 1000 + i;
            util::Rng mr = util::Rng::forStream(0xBE9C, id);
            srv.database().enroll(server::DeviceRecord(
                id, mc::randomErrorMap(geom, kLevel, kMapErrors, mr),
                {kLevel}, {}));
            ids.push_back(id);
            chans.push_back(
                std::make_unique<protocol::InMemoryChannel>());
            ends.push_back(std::make_unique<protocol::ServerEndpoint>(
                *chans.back()));
        }
        if (!durable_dir.empty()) {
            dur.emplace(server::DurabilityConfig{durable_dir, 4096},
                        srv.database());
            srv.attachDurability(&*dur);
        }
    }
};

/** The response a noiseless honest device returns. */
util::BitVec
honest(const server::DeviceRecord &rec, const core::Challenge &ch)
{
    core::LogicalRemap remap(rec.mapKey(),
                             rec.physicalMap().geometry());
    return core::evaluate(remap.mapErrorMap(rec.physicalMap()), ch);
}

struct Measurement
{
    std::size_t frames = 0;
    double seconds = 0.0;
    std::uint64_t accepted = 0;
};

/**
 * Run @p rounds of full request+response waves through handleBatch
 * at the given pool width, timing only the server's batch calls.
 * A non-empty @p durable_dir attaches the durability layer (a fresh
 * directory per run keeps the journaled event streams comparable).
 */
Measurement
run(std::size_t n_devices, std::size_t rounds, unsigned threads,
    const std::string &durable_dir = "")
{
    if (!durable_dir.empty()) {
        std::filesystem::remove_all(durable_dir);
        std::filesystem::create_directories(durable_dir);
    }
    Flood flood(n_devices, durable_dir);
    util::ThreadPool pool(threads);
    Measurement m;

    for (std::size_t r = 0; r < rounds; ++r) {
        std::vector<server::Frame> batch;
        batch.reserve(n_devices);
        for (std::size_t i = 0; i < n_devices; ++i)
            batch.push_back(server::Frame{
                protocol::encodeMessage(
                    protocol::AuthRequest{flood.ids[i]}),
                flood.ends[i].get()});
        {
            authbench::WallTimer t;
            flood.srv.handleBatch(batch, pool);
            m.seconds += t.seconds();
        }
        m.frames += batch.size();

        batch.clear();
        for (std::size_t i = 0; i < n_devices; ++i) {
            auto frame = flood.chans[i]->receiveAtClient();
            if (!frame)
                continue;
            auto msg = protocol::decodeMessage(*frame);
            auto *ch = std::get_if<protocol::ChallengeMsg>(&msg);
            if (!ch)
                continue;
            const auto &rec = flood.srv.database().at(flood.ids[i]);
            batch.push_back(server::Frame{
                protocol::encodeMessage(protocol::ResponseMsg{
                    ch->nonce, honest(rec, ch->challenge)}),
                flood.ends[i].get()});
        }
        {
            authbench::WallTimer t;
            flood.srv.handleBatch(batch, pool);
            m.seconds += t.seconds();
        }
        m.frames += batch.size();
        // Drain decisions so queues stay flat across rounds.
        for (auto &chan : flood.chans)
            while (chan->receiveAtClient())
                ;
    }

    for (auto id : flood.ids)
        m.accepted += flood.srv.database().at(id).accepted();
    return m;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (!std::strcmp(argv[i], "--smoke"))
            smoke = true;
    if (authbench::quickMode())
        smoke = true;

    authbench::banner(
        "Server batch throughput (frames/sec vs pool width)",
        "batch front end: parallel shard dispatch, deterministic "
        "merge");

    const std::size_t devices = smoke ? 32 : 256;
    const std::size_t rounds = smoke ? 2 : 6;
    const unsigned hw = util::ThreadPool::defaultThreadCount();
    std::vector<unsigned> widths{1, 4};
    if (hw > 4)
        widths.push_back(hw);

    std::cout << devices << " devices, " << rounds
              << " request+response rounds per width (hardware "
              << "threads: " << hw << ")\n\n";

    const std::string dur_dir =
        (std::filesystem::temp_directory_path() / "authbench_dur")
            .string();

    util::Table table({"threads", "frames", "seconds", "frames_per_s",
                       "speedup_vs_1", "durable_fps",
                       "durable_overhead_pct"});
    double base_rate = 0.0;
    std::uint64_t base_accepted = 0;
    for (unsigned w : widths) {
        Measurement m = run(devices, rounds, w);
        Measurement md = run(devices, rounds, w, dur_dir);
        double rate = m.frames / (m.seconds > 0 ? m.seconds : 1e-9);
        double drate =
            md.frames / (md.seconds > 0 ? md.seconds : 1e-9);
        if (w == 1) {
            base_rate = rate;
            base_accepted = m.accepted;
        } else if (m.accepted != base_accepted) {
            // Determinism contract: outcomes never depend on width.
            std::cerr << "FAIL: accepted count diverged at width "
                      << w << " (" << m.accepted << " vs "
                      << base_accepted << ")\n";
            return 1;
        }
        if (md.accepted != base_accepted) {
            // ...and never on whether journaling is attached.
            std::cerr << "FAIL: durable accepted count diverged at "
                      << "width " << w << " (" << md.accepted
                      << " vs " << base_accepted << ")\n";
            return 1;
        }
        table.row()
            .cell(std::uint64_t(w))
            .cell(std::uint64_t(m.frames))
            .cell(m.seconds)
            .cell(rate)
            .cell(base_rate > 0 ? rate / base_rate : 1.0)
            .cell(drate)
            .cell(drate > 0 ? (rate / drate - 1.0) * 100.0 : 0.0);
    }
    table.print(std::cout);
    std::cout << "\ndurable runs journal every mutation and fsync "
                 "once per batch; accepted counts matched the plain "
                 "run at every width\n";
    std::filesystem::remove_all(dur_dir);
    return 0;
}
