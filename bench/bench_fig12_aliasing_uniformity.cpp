/**
 * @file
 * Figure 12: bit-aliasing (a) and uniformity (b) relative to their
 * ideal 50% values, for a 4MB cache, across CRP sizes 64-512 and
 * error counts 20-100.
 *
 * Paper result: both metrics sit within ~1% of ideal (49% average),
 * with a slight downward trend as error density rises because ties
 * resolve to "0" (Eq 8).
 */

#include <iostream>

#include "bench_common.hpp"
#include "mc/experiments.hpp"
#include "util/table.hpp"

using namespace authenticache;

int
main()
{
    authbench::banner(
        "Figure 12: bit-aliasing and uniformity vs CRP size and errors",
        "Sec 6.4, Fig 12 -- within ~1% of ideal (avg 49%), biased "
        "toward 0 at higher error density");

    const sim::CacheGeometry geom(4ull * 1024 * 1024);

    mc::ExperimentConfig cfg;
    cfg.maps = authbench::scaled(40, 8);
    cfg.samplesPerMap = authbench::scaled(4096, 512);
    cfg.seed = 0xF12;

    util::Table aliasing(
        {"crp_size", "20_errors", "40_errors", "60_errors",
         "80_errors", "100_errors"});
    util::Table uniformity(
        {"crp_size", "20_errors", "40_errors", "60_errors",
         "80_errors", "100_errors"});

    for (std::size_t bits : {64, 128, 256, 512}) {
        aliasing.row().cell(std::to_string(bits) + "-bit");
        uniformity.row().cell(std::to_string(bits) + "-bit");
        for (std::size_t errors : {20, 40, 60, 80, 100}) {
            auto cell_cfg = cfg;
            cell_cfg.seed = cfg.seed ^ (bits * 131) ^ (errors * 7919);
            auto cell =
                mc::aliasingUniformity(geom, errors, bits, cell_cfg);
            aliasing.cell(cell.bitAliasingPercent / 50.0, 4);
            uniformity.cell(cell.uniformityPercent / 50.0, 4);
        }
    }

    std::cout << "(a) relative bit-aliasing (1.0 = ideal 50%)\n";
    aliasing.print(std::cout);
    std::cout << "\n(b) relative uniformity (1.0 = ideal 50%)\n";
    uniformity.print(std::cout);

    std::cout << "\nexpected shape: all cells within a few percent of "
                 "1.0; higher error counts slightly lower.\n";
    return 0;
}
