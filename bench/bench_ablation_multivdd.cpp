/**
 * @file
 * Ablation: single-Vdd vs multi-Vdd challenges.
 *
 * The paper's prototype restricts each challenge to one supply
 * voltage because regulator transitions are slow, and leaves
 * multi-Vdd operation as future work (Sec 4.3/5.4). This repo
 * implements it (ChallengeGenerator::generateMultiLevel); the bench
 * quantifies the cost: regulator transitions and wall-clock per
 * authentication, against the CRP-space gain.
 */

#include <iostream>

#include "bench_common.hpp"
#include "firmware/client.hpp"
#include "core/crp.hpp"
#include "server/server.hpp"
#include "sim/chip.hpp"
#include "util/table.hpp"

using namespace authenticache;
namespace srv = authenticache::server;

int
main()
{
    authbench::banner(
        "Ablation: single-Vdd vs multi-Vdd challenges",
        "Sec 4.3/5.4 (future work in the paper; implemented here)");

    sim::ChipConfig chip_cfg; // 4MB.
    sim::SimulatedChip chip(chip_cfg, 99);
    firmware::SimulatedMachine machine(2);
    firmware::ClientConfig ccfg;
    ccfg.selfTestAttempts = 1;
    firmware::AuthenticacheClient client(chip, machine, ccfg);
    double floor = client.boot();

    const std::size_t num_levels = 4;
    std::vector<core::VddMv> levels;
    for (std::size_t i = 0; i < num_levels; ++i) {
        levels.push_back(
            static_cast<core::VddMv>(floor + 5.0 + 10.0 * i));
    }
    auto map = client.captureErrorMap(levels, 8);

    srv::DeviceRecord record(1, map, levels, {});
    srv::ChallengeGenerator gen(util::Rng(3));

    util::Table table({"mode", "bits", "vdd_transitions",
                       "runtime_ms", "hd_vs_expected"});

    auto run = [&](const char *mode, const srv::GeneratedChallenge &g,
                   std::size_t bits) {
        auto outcome = client.authenticate(g.challenge);
        table.row()
            .cell(mode)
            .cell(std::uint64_t(bits))
            .cell(outcome.vddTransitions)
            .cell(outcome.ok() ? outcome.elapsedMs : -1.0, 1)
            .cell(outcome.ok()
                      ? std::to_string(g.expected.hammingDistance(
                            outcome.response))
                      : "abort");
    };

    for (std::size_t bits : {128, 512}) {
        auto single = gen.generate(record, levels[0], bits);
        run("single-Vdd", single, bits);
        auto multi = gen.generateMultiLevel(record, bits);
        run("multi-Vdd(4)", multi, bits);
    }
    table.print(std::cout);

    // CRP-space accounting.
    std::uint64_t lines = chip.geometry().lines();
    std::uint64_t single_pairs = core::possibleCrps(lines);
    // Multi-level pairs: same-level pairs per level + cross-level
    // pairs between every level pair (lines^2 each).
    std::uint64_t cross = lines * lines;
    std::uint64_t multi_pairs =
        num_levels * single_pairs +
        (num_levels * (num_levels - 1) / 2) * cross;
    std::cout << "\nCRP space: single level " << single_pairs
              << " pairs; " << num_levels << " levels mixed "
              << multi_pairs << " pairs ("
              << static_cast<double>(multi_pairs) /
                     static_cast<double>(single_pairs)
              << "x)\n";
    std::cout << "reading: multi-Vdd multiplies the challenge space "
                 "~" << num_levels * num_levels
              << "x at the cost of extra regulator transitions; the "
                 "descending-Vdd sort keeps transitions at ~levels "
                 "per transaction, not per bit.\n";
    return 0;
}
