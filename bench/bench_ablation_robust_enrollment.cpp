/**
 * @file
 * Ablation: robust (multi-condition) enrollment.
 *
 * The paper enrolls under nominal factory conditions; its Sec 6.2
 * noise framework then treats environmental drift as injected/removed
 * errors at authentication time. An alternative the framework
 * suggests: characterize the die *cold and hot at the factory* and
 * combine the captures, so the enrolled map already spans the field
 * envelope. This bench compares single-capture enrollment against
 * union / intersection / majority combination, measuring response
 * distances under cold, nominal, and hot field conditions.
 */

#include <iostream>

#include "bench_common.hpp"
#include "firmware/client.hpp"
#include "sim/chip.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace authenticache;

int
main()
{
    authbench::banner(
        "Ablation: robust enrollment (multi-condition captures)",
        "Sec 6.2's noise framework, applied at enrollment time");

    sim::ChipConfig chip_cfg;
    chip_cfg.cacheBytes = 1024 * 1024;
    sim::SimulatedChip chip(chip_cfg, 0x20B5);
    firmware::SimulatedMachine machine(2);
    firmware::ClientConfig ccfg;
    ccfg.selfTestAttempts = 4;
    firmware::AuthenticacheClient client(chip, machine, ccfg);
    double floor = client.boot();
    auto level = static_cast<core::VddMv>(floor + 10.0);

    // Factory captures at three temperatures.
    auto capture_at = [&](double temp) {
        sim::Conditions c;
        c.temperatureDeltaC = temp;
        chip.setConditions(c);
        auto map = client.captureErrorMap(
            {level}, authbench::quickMode() ? 4 : 8);
        chip.setConditions(sim::Conditions::nominal());
        return map;
    };
    std::vector<core::ErrorMap> captures{
        capture_at(0.0), capture_at(12.0), capture_at(25.0)};

    struct Strategy
    {
        const char *name;
        core::ErrorMap map;
    };
    std::vector<Strategy> strategies;
    strategies.push_back({"single (nominal)", captures[0]});
    strategies.push_back(
        {"union(3)", core::combineErrorMaps(
                         captures, core::CombinePolicy::Union)});
    strategies.push_back(
        {"intersection(3)",
         core::combineErrorMaps(captures,
                                core::CombinePolicy::Intersection)});
    strategies.push_back(
        {"majority(3)", core::combineErrorMaps(
                            captures, core::CombinePolicy::Majority)});

    const int rounds = authbench::quickMode() ? 4 : 10;
    util::Table table({"enrollment", "map_errors", "HD_cold",
                       "HD_nominal", "HD_hot", "worst"});

    util::Rng rng(3);
    for (const auto &strategy : strategies) {
        table.row()
            .cell(strategy.name)
            .cell(std::uint64_t(
                strategy.map.plane(level).errorCount()));
        double worst = 0.0;
        for (double temp : {0.0, 12.0, 25.0}) {
            sim::Conditions c;
            c.temperatureDeltaC = temp;
            chip.setConditions(c);
            util::RunningStats hd;
            for (int round = 0; round < rounds; ++round) {
                auto challenge = core::randomChallenge(
                    chip.geometry(), level, 128, rng);
                auto expected =
                    core::evaluate(strategy.map, challenge);
                auto outcome = client.authenticate(challenge);
                if (outcome.ok())
                    hd.add(static_cast<double>(
                        expected.hammingDistance(
                            outcome.response)));
            }
            table.cell(hd.mean(), 1);
            worst = std::max(worst, hd.mean());
        }
        table.cell(worst, 1);
        chip.setConditions(sim::Conditions::nominal());
    }
    table.print(std::cout);

    std::cout
        << "\nreading: single-condition enrollment is tuned to its "
           "capture temperature and degrades toward the other end of "
           "the envelope. Union over-enrolls extreme-only flicker "
           "lines (good hot, worse cold); intersection keeps only "
           "the always-on core (good cold, worse hot); majority "
           "balances both tails and minimizes the worst case -- the "
           "measured rows above show exactly that ordering.\n";
    return 0;
}
