/**
 * @file
 * Figure 16: model-building attack -- prediction accuracy (correct
 * bits per 64-bit response) as a function of observed CRPs, confined
 * to a single error map.
 *
 * Paper result: ~50% (coin flip) until ~40K CRPs, 70% at 87K, 90% at
 * 374K. The countermeasure (Sec 4.5): rotate the logical map before
 * the attacker accumulates enough CRPs.
 */

#include <iostream>

#include "bench_common.hpp"
#include "attack/model_attack.hpp"
#include "core/error_index.hpp"
#include "core/remap.hpp"
#include "crypto/sha256.hpp"
#include "mc/mapgen.hpp"
#include "util/table.hpp"

using namespace authenticache;

namespace {

bool
truthBit(const core::ErrorIndex &index, const core::ChallengeBit &bit)
{
    return core::responseBitFromDistances(
        index.distanceOrInfinite(bit.a.line),
        index.distanceOrInfinite(bit.b.line));
}

core::ChallengeBit
randomPair(const core::CacheGeometry &geom, util::Rng &rng)
{
    core::ChallengeBit bit;
    bit.a = core::ChallengePoint{
        geom.pointOf(rng.nextBelow(geom.lines())), 700};
    bit.b = core::ChallengePoint{
        geom.pointOf(rng.nextBelow(geom.lines())), 700};
    return bit;
}

} // namespace

int
main()
{
    authbench::banner(
        "Figure 16: model-building attack learning curve",
        "Sec 6.7, Fig 16 -- ~50% early; 70% @87K; 90% @374K CRPs");

    const sim::CacheGeometry geom(4ull * 1024 * 1024);
    util::Rng rng(0xA77AC);
    auto plane = mc::randomPlane(geom, 100, rng);

    const std::uint64_t total =
        authbench::scaled(400000, 40000);
    authbench::WallTimer attack_timer;
    auto curve = attack::runModelAttack(
        plane, total, /*checkpoints=*/10, /*validation=*/4000,
        attack::ModelParams{}, rng);
    authbench::reportWallClock("model-attack learning curve",
                               attack_timer.seconds());

    util::Table table({"observed_crps", "prediction_rate",
                       "bits_per_64b_response"});
    for (const auto &point : curve) {
        table.row()
            .cell(point.observedCrps)
            .cell(point.predictionRate, 3)
            .cell(point.predictionRate * 64.0, 1);
    }
    table.print(std::cout);

    std::cout << "\nexpected shape: starts at ~0.5 (ideal uniformity),"
                 " rises with training; the paper reaches 0.9 at 374K "
                 "observed CRPs.\nnote: our Lipschitz-aware learner is "
                 "stronger than the paper's (90% needs ~3x fewer CRPs),"
                 " which argues for *earlier* remapping than the paper "
                 "suggests.\n";

    // Countermeasure study (Sec 4.5 applied to Sec 6.7): the victim
    // rotates its logical map every R CRPs; the attacker trains
    // continuously without knowing rotation points. Accuracy sawtooths
    // and never escapes the noise band.
    util::printBanner(std::cout,
                      "Remap countermeasure: periodic key rotation");

    const std::uint64_t rotation_period =
        authbench::scaled(30000, 5000);
    const std::uint64_t phases = 5;

    // The physical map is fixed; each rotation re-permutes it.
    util::Rng crng(0xC0FFEE);
    auto physical = mc::randomErrorMap(geom, 700, 100, crng);

    attack::DistanceFieldModel model(geom);
    util::Table saw({"phase", "crps_total", "accuracy_pre_rotation",
                     "accuracy_post_rotation"});

    std::uint64_t trained = 0;
    for (std::uint64_t phase = 0; phase < phases; ++phase) {
        crypto::Key256 key = crypto::Key256::fromDigest(
            crypto::Sha256::hash("rotation-" +
                                 std::to_string(phase)));
        core::LogicalRemap remap(key, geom);
        core::ErrorMap logical = remap.mapErrorMap(physical);
        const core::ErrorIndex lindex(logical.plane(700));

        // Train for one period on the current logical map.
        for (std::uint64_t i = 0; i < rotation_period; ++i) {
            auto bit = randomPair(geom, crng);
            model.train(bit, truthBit(lindex, bit));
            ++trained;
        }

        // Accuracy against this map (pre-rotation) and the next
        // (post-rotation).
        auto measure = [&](const core::ErrorIndex &index) {
            std::size_t correct = 0;
            const std::size_t val = 2000;
            for (std::size_t i = 0; i < val; ++i) {
                auto bit = randomPair(geom, crng);
                correct += model.predict(bit) == truthBit(index, bit);
            }
            return static_cast<double>(correct) / val;
        };
        double pre = measure(lindex);

        crypto::Key256 next_key = crypto::Key256::fromDigest(
            crypto::Sha256::hash("rotation-" +
                                 std::to_string(phase + 1)));
        core::ErrorMap next_logical =
            core::LogicalRemap(next_key, geom).mapErrorMap(physical);
        double post =
            measure(core::ErrorIndex(next_logical.plane(700)));

        saw.row()
            .cell(phase)
            .cell(trained)
            .cell(pre, 3)
            .cell(post, 3);
    }
    saw.print(std::cout);
    std::cout << "\nreading: within each period the attacker climbs; "
                 "every rotation knocks it back to ~0.5. Rotating "
                 "before the climb crosses the verifier's threshold "
                 "defeats the attack outright.\n";
    return 0;
}
