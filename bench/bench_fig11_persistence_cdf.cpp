/**
 * @file
 * Figure 11: cumulative distribution of the number of targeted
 * self-tests needed before an enrolled error line triggers, at the
 * minimum safe Vdd.
 *
 * Paper result: 74% of error-map lines trigger on the first attempt,
 * 94% by the fourth, all 50 sampled lines by the eighth. The paper
 * also concludes (Sec 6.3) that CRPs >= 128 bits tolerate the ~26%
 * single-attempt masking rate, so one self-test per line suffices.
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "firmware/client.hpp"
#include "sim/chip.hpp"
#include "util/table.hpp"

using namespace authenticache;

int
main()
{
    authbench::banner(
        "Figure 11: CDF of self-tests needed to trigger enrolled errors",
        "Sec 6.3, Fig 11 -- 74% @1, 94% @4, 100% @8 attempts");

    sim::ChipConfig cfg; // 4MB.
    sim::SimulatedChip chip(cfg, 1111);
    firmware::SimulatedMachine machine(2);
    firmware::AuthenticacheClient client(chip, machine);
    double floor = client.boot();
    auto level = static_cast<core::VddMv>(floor);

    auto map = client.captureErrorMap({level},
                                      authbench::quickMode() ? 4 : 12);
    auto errors = map.plane(level).errors();
    std::cout << "enrolled error lines at floor (" << floor
              << " mV): " << errors.size() << "\n";

    // The paper samples 50 lines once; we sample up to 100 enrolled
    // lines over several independent rounds so the CDF estimate is
    // stable (a 50-line single shot has ~±6% noise at the first
    // attempt).
    const std::size_t lines =
        std::min<std::size_t>(100, errors.size());
    const int rounds = authbench::quickMode() ? 3 : 10;
    const std::uint32_t max_attempts = 64;
    std::vector<std::uint32_t> attempts_needed;

    chip.setVddMv(static_cast<double>(level));
    for (int round = 0; round < rounds; ++round) {
        for (std::size_t i = 0; i < lines; ++i) {
            auto r =
                chip.selfTest().testLine(errors[i], max_attempts);
            attempts_needed.push_back(
                r.triggered ? r.attemptsUsed : max_attempts + 1);
        }
    }
    const std::size_t sample = attempts_needed.size();
    chip.emergencyRaise();

    util::Table table({"attempts", "cdf", "paper_cdf"});
    const double paper[] = {0.74, 0.86, 0.91, 0.94,
                            0.96, 0.98, 0.99, 1.00};
    for (std::uint32_t k = 1; k <= 8; ++k) {
        std::size_t triggered = 0;
        for (auto a : attempts_needed)
            triggered += a <= k;
        table.row()
            .cell(std::uint64_t(k))
            .cell(static_cast<double>(triggered) /
                      static_cast<double>(sample),
                  3)
            .cell(paper[k - 1], 2);
    }
    table.print(std::cout);

    // The single-attempt masking implication from Sec 6.3.
    std::size_t first = 0;
    for (auto a : attempts_needed)
        first += a <= 1;
    double masked =
        1.0 - static_cast<double>(first) / static_cast<double>(sample);
    std::cout << "\nsingle-attempt masked-error rate: " << masked * 100
              << "% (paper: ~26%)\n";
    return 0;
}
