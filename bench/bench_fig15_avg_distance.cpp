/**
 * @file
 * Figure 15: average Manhattan distance to the nearest error as a
 * function of the total number of errors, for cache sizes 256KB-4MB.
 *
 * Paper result: distance shrinks with more errors and grows with
 * cache size; ~0.5% decrease in average distance per added error,
 * driving the ~1.6%-per-error performance trend of Fig 14.
 */

#include <iostream>

#include "bench_common.hpp"
#include "mc/experiments.hpp"
#include "util/table.hpp"

using namespace authenticache;

int
main()
{
    authbench::banner(
        "Figure 15: average distance to nearest error",
        "Sec 6.5, Fig 15 -- decreasing in errors, increasing in cache "
        "size");

    mc::ExperimentConfig cfg;
    cfg.maps = authbench::scaled(60, 10);
    cfg.samplesPerMap = authbench::scaled(400, 100);
    cfg.seed = 0xF15;

    util::Table table({"errors", "256KB", "512KB", "1MB", "2MB",
                       "4MB"});
    const std::uint64_t kb = 1024;
    const std::vector<std::uint64_t> sizes{256 * kb, 512 * kb,
                                           1024 * kb, 2048 * kb,
                                           4096 * kb};

    for (std::size_t errors = 10; errors <= 100; errors += 10) {
        table.row().cell(std::uint64_t(errors));
        for (auto size : sizes) {
            sim::CacheGeometry geom(size);
            double d =
                mc::averageNearestErrorDistance(geom, errors, cfg);
            table.cell(d, 1);
        }
    }
    table.print(std::cout);

    std::cout << "\npaper reference: 4MB at 100 errors ~ 40 lines; "
                 "all curves decay roughly as 1/errors.\n";
    return 0;
}
