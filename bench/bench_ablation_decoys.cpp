/**
 * @file
 * Ablation: side-channel decoy interleaving (paper Sec 7.2).
 *
 * The paper proposes masking ECC-activity side channels (EM/power
 * correlation with error locations) by interleaving authentication
 * cache accesses with random transactions. This bench measures the
 * cost curve -- line tests and runtime vs decoy ratio -- and the
 * statistical cover: the fraction of tested lines that are genuine
 * challenge neighborhood vs noise.
 */

#include <iostream>

#include "bench_common.hpp"
#include "firmware/client.hpp"
#include "sim/chip.hpp"
#include "util/table.hpp"

using namespace authenticache;

int
main()
{
    authbench::banner(
        "Ablation: side-channel decoy interleaving cost",
        "Sec 7.2 -- random transactions mask ECC activity");

    sim::ChipConfig chip_cfg; // 4MB.
    sim::SimulatedChip chip(chip_cfg, 0xDEC0);
    firmware::SimulatedMachine machine(2);
    firmware::AuthenticacheClient booter(chip, machine);
    double floor = booter.boot();
    auto level = static_cast<core::VddMv>(floor + 10.0);

    util::Rng rng(1);
    auto challenge =
        core::randomChallenge(chip.geometry(), level, 256, rng);

    util::Table table({"decoy_ratio", "line_tests", "runtime_ms",
                       "genuine_fraction_%", "response_hd_vs_plain"});

    // Measurement-repeatability noise floor: two plain runs differ by
    // the persistence/jitter draw, independent of decoys.
    std::uint64_t repeat_noise = 0;
    {
        firmware::ClientConfig cfg;
        cfg.selfTestAttempts = 2;
        firmware::AuthenticacheClient a(chip, machine, cfg);
        a.adoptFloor(floor);
        auto r1 = a.authenticate(challenge);
        auto r2 = a.authenticate(challenge);
        if (r1.ok() && r2.ok())
            repeat_noise = r1.response.hammingDistance(r2.response);
    }

    core::Response plain_response;
    std::uint64_t plain_tests = 0;
    for (double ratio : {0.0, 0.25, 0.5, 1.0, 2.0}) {
        firmware::ClientConfig cfg;
        cfg.selfTestAttempts = 2;
        cfg.decoyRatio = ratio;
        firmware::AuthenticacheClient client(chip, machine, cfg);
        client.adoptFloor(floor);

        auto outcome = client.authenticate(challenge);
        if (!outcome.ok()) {
            std::cout << "aborted at ratio " << ratio << ": "
                      << outcome.abortReason << "\n";
            continue;
        }
        if (ratio == 0.0) {
            plain_response = outcome.response;
            plain_tests = outcome.lineTests;
        }
        double genuine =
            100.0 * static_cast<double>(plain_tests) /
            static_cast<double>(outcome.lineTests);
        table.row()
            .cell(ratio, 2)
            .cell(outcome.lineTests)
            .cell(outcome.elapsedMs, 1)
            .cell(genuine, 1)
            .cell(std::uint64_t(plain_response.hammingDistance(
                outcome.response)));
    }
    table.print(std::cout);

    std::cout
        << "\nrepeat-measurement noise floor (two plain runs): HD "
        << repeat_noise
        << " -- the decoy rows' response deltas are this measurement "
           "noise, not a decoy effect.\nreading: cost scales linearly "
           "with the ratio; a 1.0 ratio halves the attacker's signal-"
           "to-noise for 2x runtime.\n";
    return 0;
}
