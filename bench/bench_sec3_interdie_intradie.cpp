/**
 * @file
 * Section 3 hardware statistics: inter-die variation of 64-bit
 * responses across eight L2 caches (~44% on the paper's hardware) and
 * intra-die variation under a +25C temperature swing (<6%).
 */

#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "core/challenge.hpp"
#include "firmware/client.hpp"
#include "metrics/quality.hpp"
#include "sim/chip.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace authenticache;

int
main()
{
    authbench::banner(
        "Sec 3: inter-die / intra-die variation on 8 L2 caches",
        "Sec 3 -- inter-die ~44% (ideal 50), intra-die <6% at +25C");

    const unsigned chips = 8;
    const std::size_t bits = 64;
    const std::size_t rounds = authbench::scaled(20, 4);

    // Build eight devices and capture their floor-level error maps.
    struct Device
    {
        std::unique_ptr<sim::SimulatedChip> chip;
        std::unique_ptr<firmware::SimulatedMachine> machine;
        std::unique_ptr<firmware::AuthenticacheClient> client;
        core::VddMv level;
        core::ErrorMap map{sim::CacheGeometry(768 * 1024)};
    };
    std::vector<Device> devices(chips);
    for (unsigned c = 0; c < chips; ++c) {
        sim::ChipConfig cfg;
        cfg.cacheBytes = 768 * 1024;
        devices[c].chip =
            std::make_unique<sim::SimulatedChip>(cfg, 4000 + c);
        devices[c].machine =
            std::make_unique<firmware::SimulatedMachine>(2);
        devices[c].client =
            std::make_unique<firmware::AuthenticacheClient>(
                *devices[c].chip, *devices[c].machine);
        double floor = devices[c].client->boot();
        devices[c].level = static_cast<core::VddMv>(floor + 10.0);
        devices[c].map = devices[c].client->captureErrorMap(
            {devices[c].level}, 8);
    }

    // Inter-die: same challenge geometry evaluated on every die's map
    // (each die tests at its own voltage level, as on hardware).
    util::RunningStats inter;
    util::Rng rng(11);
    const auto &geom = devices[0].chip->geometry();
    for (std::size_t round = 0; round < rounds; ++round) {
        std::vector<util::BitVec> responses;
        auto challenge = core::randomChallenge(geom, 0, bits, rng);
        for (auto &dev : devices) {
            auto ch = challenge;
            for (auto &bit : ch.bits) {
                bit.a.vddMv = dev.level;
                bit.b.vddMv = dev.level;
            }
            responses.push_back(core::evaluate(dev.map, ch));
        }
        inter.add(metrics::uniqueness(responses));
    }

    // Intra-die: device 0 answers the same challenge via the real
    // firmware path at nominal and at +25C.
    util::RunningStats intra;
    auto &dev = devices[0];
    for (std::size_t round = 0; round < rounds / 2 + 1; ++round) {
        auto challenge =
            core::randomChallenge(geom, dev.level, bits, rng);

        sim::Conditions normal;
        dev.chip->setConditions(normal);
        auto cool = dev.client->authenticate(challenge);

        sim::Conditions hot;
        hot.temperatureDeltaC = 25.0;
        dev.chip->setConditions(hot);
        auto warm = dev.client->authenticate(challenge);
        dev.chip->setConditions(normal);

        if (cool.ok() && warm.ok()) {
            intra.add(100.0 *
                      static_cast<double>(cool.response.hammingDistance(
                          warm.response)) /
                      static_cast<double>(bits));
        }
    }

    util::Table table({"metric", "measured_%", "paper_%", "ideal_%"});
    table.row()
        .cell("inter-die variation")
        .cell(inter.mean(), 1)
        .cell("~44")
        .cell("50");
    table.row()
        .cell("intra-die variation (+25C)")
        .cell(intra.mean(), 1)
        .cell("<6")
        .cell("0");
    table.print(std::cout);

    std::cout << "\nno overlap between distributions => chips remain "
                 "distinguishable under temperature swings.\n";
    return 0;
}
