/**
 * @file
 * Continuous-authentication heartbeat drift sweep: a fleet of genuine
 * devices rides a transient environmental excursion (temperature +
 * aging + measurement noise ramped by sim::DriftSchedule) while the
 * server runs heartbeat sessions with the trust-decay ladder, and the
 * same fleet replays the excursion against a no-trust-ledger baseline
 * (fixed-width periodic authentication with a consecutive-failure
 * lockout) at an equal challenge-bit budget.
 *
 * Emits BENCH_heartbeat.json -- gated by tools/bench_compare.py (see
 * EXPERIMENTS.md "Heartbeat drift sweep"). Gates are booleans encoded
 * as 2.0 (pass) / 0.0 (fail) with floors at 1.9, so they are
 * hardware-independent:
 *
 *  - heartbeat_determinism -- the sweep's per-device wire transcripts
 *    and trust trajectories are byte-identical across a rerun, across
 *    device-level driver thread counts, and across server batch-pool
 *    widths.
 *  - heartbeat_policy_gate -- the trust-decay policy's service-denial
 *    rate AND lockout rate are strictly lower than the fixed-policy
 *    baseline's at equal challenge budget: step-up rounds, trust
 *    buffering, and proactive remaps ride out an excursion that
 *    permanently locks out the fixed policy. Denial is symmetric:
 *    failed rounds plus every scheduled round a locked-out (or
 *    ladder-expelled) device never got to run, over the same
 *    steps/period denominator in both arms -- so an arm cannot
 *    improve its rate by locking out early and not attempting.
 *
 * Substrate selection honors AUTHENTICACHE_PLATFORM (sram_vmin
 * default, dram_mra in the second CI leg), like the test suites.
 *
 * Flags: --out-dir <dir>, --smoke (or AUTHENTICACHE_QUICK=1).
 */

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "protocol/channel.hpp"
#include "server/server.hpp"
#include "sim/drift.hpp"
#include "substrate/config.hpp"
#include "substrate/drift_injector.hpp"
#include "substrate/registry.hpp"
#include "util/simd.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace fw = authenticache::firmware;
namespace sim = authenticache::sim;
namespace proto = authenticache::protocol;
namespace srv = authenticache::server;
namespace sub = authenticache::substrate;
namespace util = authenticache::util;

namespace {

constexpr std::uint64_t kFirstId = 501;
constexpr std::uint64_t kDieSeed = 0x9DE0;
constexpr std::uint64_t kServerSeed = 0x48EA;
constexpr std::uint64_t kDriftSeed = 0xD21F7;

struct SweepParams
{
    std::size_t devices;
    std::size_t steps;
    sim::DriftScheduleConfig drift;
};

SweepParams
sweepParams(bool quick)
{
    SweepParams p;
    p.devices = quick ? 3 : 6;
    p.steps = quick ? 120 : 200;
    // A transient excursion: ramp up, hold at peak, ramp back to
    // nominal, sized so the run observes the full shape. Severity is
    // tuned to the gap the policy gate demonstrates: strong enough
    // that fixed 64-bit rounds fail consecutively at peak, mild
    // enough that 128-bit step-up rounds still clear the threshold.
    p.drift.rampSteps = quick ? 24 : 40;
    p.drift.holdSteps = quick ? 16 : 24;
    p.drift.returnToNominal = true;
    p.drift.phaseJitterSteps = 8;
    p.drift.peakTemperatureDeltaC = 14.0;
    p.drift.peakAgingYears = 1.0;
    p.drift.peakSigmaMv = 1.8;
    return p;
}

std::string
platformName()
{
    const char *env = std::getenv("AUTHENTICACHE_PLATFORM");
    return (env != nullptr && *env != '\0') ? env : "sram_vmin";
}

std::unique_ptr<sub::FingerprintSubstrate>
makeChip(std::size_t idx)
{
    sub::PlatformConfig pc;
    pc.substrate = platformName();
    pc.cacheBytes = 256 * 1024;
    return sub::makeSubstrate(pc, kDieSeed + idx);
}

std::string
hex(const std::vector<std::uint8_t> &bytes)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(bytes.size() * 2);
    for (auto b : bytes) {
        out.push_back(digits[b >> 4]);
        out.push_back(digits[b & 0xF]);
    }
    return out;
}

/** Server->client challenge bits in a transcript (the CRP budget). */
std::uint64_t
issuedChallengeBits(const proto::Transcript &tap)
{
    std::uint64_t bits = 0;
    for (const auto &entry : tap.entries()) {
        if (entry.direction != proto::Direction::ServerToClient)
            continue;
        auto msg = proto::decodeMessage(entry.frame);
        if (const auto *hb = std::get_if<proto::Heartbeat>(&msg))
            bits += hb->challenge.size();
        else if (const auto *ch = std::get_if<proto::ChallengeMsg>(&msg))
            bits += ch->challenge.size();
        else if (const auto *rr = std::get_if<proto::RemapRequest>(&msg))
            bits += rr->challenge.size();
    }
    return bits;
}

/** One device's run under the heartbeat (trust-ledger) policy. */
struct HeartbeatOutcome
{
    std::string transcript; ///< Every frame, both directions, hex.
    std::vector<std::uint32_t> trust;
    std::uint64_t rounds = 0;
    std::uint64_t failed = 0;
    std::uint64_t marginal = 0;
    std::uint64_t remaps = 0;
    std::uint64_t challengeBits = 0;
    bool lockedOut = false; ///< Revoked, re-enroll, or locked.
};

HeartbeatOutcome
runHeartbeatDevice(std::size_t idx, unsigned pool_width,
                   const SweepParams &p)
{
    const std::uint64_t id = kFirstId + idx;
    auto chip = makeChip(idx);
    fw::SimulatedMachine machine{4};
    fw::ClientConfig ccfg;
    ccfg.selfTestAttempts = 8;
    fw::AuthenticacheClient client(*chip, machine, ccfg);
    client.boot();

    srv::ServerConfig cfg;
    cfg.challengeBits = 128;
    cfg.verifier.pIntra = 0.08;
    srv::AuthenticationServer server(cfg, kServerSeed);
    auto levels = srv::defaultChallengeLevels(client, 2);
    auto reserved = srv::defaultReservedLevel(client);
    server.enroll(id, client, levels, {reserved});

    util::SimClock clock;
    server.bindClock(&clock);
    proto::InMemoryChannel channel;
    proto::Transcript tap;
    channel.attachTranscript(&tap);
    proto::ServerEndpoint sep(channel);
    srv::DeviceAgent agent(id, client, proto::ClientEndpoint(channel));
    agent.bindClock(&clock);
    sim::DriftSchedule schedule(kDriftSeed, id, p.drift);
    sub::DriftInjector drift(*chip, schedule);
    util::ThreadPool pool(pool_width);

    // Server frames go through handleBatch so the batch pipeline (and
    // its any-pool-width determinism contract) is on the gated path.
    auto pumpBoth = [&] {
        bool progress = true;
        while (progress) {
            progress = false;
            std::vector<srv::Frame> frames;
            while (auto f = channel.receiveAtServer())
                frames.push_back(srv::Frame{std::move(*f), &sep});
            if (!frames.empty()) {
                server.handleBatch(frames, pool);
                progress = true;
            }
            while (agent.pumpOnce())
                progress = true;
        }
    };

    server.startHeartbeat(id, sep);
    HeartbeatOutcome out;
    for (std::size_t s = 0; s < p.steps; ++s) {
        pumpBoth();
        clock.advance(1);
        drift.apply(clock.now());
        server.tickHeartbeats(sep);
        server.tick();
        agent.tick();
        out.trust.push_back(server.database().at(id).trustScore());
    }
    pumpBoth();

    for (const auto &entry : tap.entries())
        out.transcript += hex(entry.frame) + "\n";
    const auto &sess = server.sessions();
    out.failed = sess.heartbeatsFailed();
    out.marginal = sess.heartbeatsMarginal();
    out.rounds = sess.heartbeatsClean() + out.marginal + out.failed;
    out.remaps = sess.proactiveRemaps();
    out.challengeBits = issuedChallengeBits(tap);
    const auto &record = server.database().at(id);
    out.lockedOut = record.revoked() || record.reenrollRequired() ||
                    record.locked();
    return out;
}

/**
 * Run the whole fleet, device-parallel on @p driver_threads, with
 * each device's server batches dispatched on a @p pool_width pool.
 * Devices are independent streams, so the result must not depend on
 * either knob -- that is exactly what the determinism gate checks.
 */
std::vector<HeartbeatOutcome>
runHeartbeatSweep(const SweepParams &p, unsigned driver_threads,
                  unsigned pool_width)
{
    std::vector<HeartbeatOutcome> out(p.devices);
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < driver_threads; ++t) {
        workers.emplace_back([&, t] {
            for (std::size_t i = t; i < p.devices; i += driver_threads)
                out[i] = runHeartbeatDevice(i, pool_width, p);
        });
    }
    for (auto &w : workers)
        w.join();
    return out;
}

bool
sweepsEqual(const std::vector<HeartbeatOutcome> &a,
            const std::vector<HeartbeatOutcome> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].transcript != b[i].transcript ||
            a[i].trust != b[i].trust)
            return false;
    }
    return true;
}

/** One device's run under the fixed-width lockout baseline. */
struct FixedOutcome
{
    std::uint64_t attempts = 0;
    std::uint64_t rejects = 0;
    std::uint64_t challengeBits = 0;
    bool locked = false;
};

/**
 * The no-trust-ledger control arm: the same die, the same drift
 * excursion, but plain periodic authentication at the heartbeat's
 * nominal width and no step-up or remap. The control policy locks a
 * device after three consecutive failed rounds, where "failed" is
 * either a rejected response or no response at all (a drift-stressed
 * client that cannot pass its self-test goes silent) -- the same
 * missed-round accounting the heartbeat ledger applies. Challenge
 * issue stops once the arm has spent the bit budget the heartbeat
 * arm used for this die, so both policies burn the same CRP budget.
 */
FixedOutcome
runFixedDevice(std::size_t idx, const SweepParams &p,
               std::uint64_t bit_budget)
{
    const std::uint64_t id = kFirstId + idx;
    auto chip = makeChip(idx);
    fw::SimulatedMachine machine{4};
    fw::ClientConfig ccfg;
    ccfg.selfTestAttempts = 8;
    fw::AuthenticacheClient client(*chip, machine, ccfg);
    client.boot();

    srv::ServerConfig cfg;
    cfg.challengeBits = 64; // The heartbeat arm's nominal width.
    cfg.verifier.pIntra = 0.08;
    cfg.lockoutThreshold = 3;
    srv::AuthenticationServer server(cfg, kServerSeed);
    auto levels = srv::defaultChallengeLevels(client, 2);
    auto reserved = srv::defaultReservedLevel(client);
    server.enroll(id, client, levels, {reserved});

    util::SimClock clock;
    server.bindClock(&clock);
    proto::InMemoryChannel channel;
    proto::Transcript tap;
    channel.attachTranscript(&tap);
    proto::ServerEndpoint sep(channel);
    srv::DeviceAgent agent(id, client, proto::ClientEndpoint(channel));
    agent.bindClock(&clock);
    sim::DriftSchedule schedule(kDriftSeed, id, p.drift);
    sub::DriftInjector drift(*chip, schedule);

    const std::uint64_t period = cfg.trust.periodSteps;
    FixedOutcome out;
    std::uint64_t consecutive = 0;
    for (std::size_t s = 0; s < p.steps; ++s) {
        if (s % period == 0 && !out.locked &&
            issuedChallengeBits(tap) < bit_budget) {
            agent.requestAuthentication();
            srv::runExchange(server, sep, agent);
            ++out.attempts;
            const auto &decision = agent.lastDecision();
            if (!decision || !decision->accepted) {
                ++out.rejects;
                ++consecutive;
            } else {
                consecutive = 0;
            }
            out.locked = server.database().at(id).locked() ||
                         consecutive >= cfg.lockoutThreshold;
        }
        clock.advance(1);
        drift.apply(clock.now());
        server.tick();
        agent.tick();
    }
    out.challengeBits = issuedChallengeBits(tap);
    return out;
}

/** Minimal JSON writer (fixed field order, no external deps). */
class Json
{
  public:
    explicit Json(std::ostream &os_) : os(os_) { os.precision(12); }

    void
    open()
    {
        os << "{";
        firsts.push_back(true);
    }
    void
    close()
    {
        firsts.pop_back();
        os << "\n}\n";
    }
    void
    field(const std::string &key, const std::string &value)
    {
        pre();
        os << '"' << key << "\": \"" << value << '"';
    }
    void
    field(const std::string &key, double value)
    {
        pre();
        os << '"' << key << "\": " << value;
    }
    void
    field(const std::string &key, std::uint64_t value)
    {
        pre();
        os << '"' << key << "\": " << value;
    }
    void
    field(const std::string &key, bool value)
    {
        pre();
        os << '"' << key << "\": " << (value ? "true" : "false");
    }
    void
    openArray(const std::string &key)
    {
        pre();
        os << '"' << key << "\": [";
        firsts.push_back(true);
    }
    void
    closeArray()
    {
        firsts.pop_back();
        os << "\n" << indent() << "  ]";
    }
    void
    openObject(const std::string &key = "")
    {
        pre();
        if (!key.empty())
            os << '"' << key << "\": ";
        os << "{";
        firsts.push_back(true);
    }
    void
    closeObject()
    {
        firsts.pop_back();
        os << "\n" << indent() << "  }";
    }

  private:
    void
    pre()
    {
        if (!firsts.back())
            os << ",";
        firsts.back() = false;
        os << "\n" << indent() << "  ";
    }
    std::string
    indent() const
    {
        return std::string(2 * (firsts.size() - 1), ' ');
    }

    std::ostream &os;
    std::vector<bool> firsts;
};

} // namespace

int
main(int argc, char **argv)
{
    std::string out_dir = ".";
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--out-dir") && i + 1 < argc)
            out_dir = argv[++i];
        else if (!std::strcmp(argv[i], "--smoke"))
            smoke = true;
        else {
            std::cerr << "usage: bench_heartbeat_drift "
                         "[--out-dir D] [--smoke]\n";
            return 2;
        }
    }
    if (authbench::quickMode())
        smoke = true;

    authbench::banner(
        "Heartbeat drift sweep (BENCH_heartbeat.json)",
        "continuous-authentication trust decay under environmental "
        "drift; see EXPERIMENTS.md 'Heartbeat drift sweep'");
    const SweepParams p = sweepParams(smoke);
    std::cout << "substrate: " << platformName() << ", " << p.devices
              << " devices, " << p.steps << " steps\n\n";

    // --- Determinism: rerun, driver threads, batch-pool width. ---
    authbench::WallTimer t_det;
    auto base = runHeartbeatSweep(p, 1, 1);
    const double base_s = t_det.seconds();
    auto rerun = runHeartbeatSweep(p, 1, 1);
    auto threaded = runHeartbeatSweep(p, smoke ? 2 : 4, 1);
    auto pooled = runHeartbeatSweep(p, 1, 4);
    const bool deterministic = sweepsEqual(base, rerun) &&
                               sweepsEqual(base, threaded) &&
                               sweepsEqual(base, pooled);
    std::cout << "determinism: rerun/threads/pool "
              << (deterministic ? "byte-identical" : "DIVERGED")
              << " (" << t_det.seconds() << " s for 4 sweeps)\n";

    // --- Policy comparison at equal challenge budget. ---
    authbench::WallTimer t_fixed;
    std::uint64_t hb_rounds = 0, hb_failed = 0, hb_marginal = 0;
    std::uint64_t hb_bits = 0, hb_remaps = 0, hb_locked = 0;
    for (const auto &o : base) {
        hb_rounds += o.rounds;
        hb_failed += o.failed;
        hb_marginal += o.marginal;
        hb_bits += o.challengeBits;
        hb_remaps += o.remaps;
        hb_locked += o.lockedOut ? 1 : 0;
    }
    std::vector<FixedOutcome> fixed;
    fixed.reserve(p.devices);
    std::uint64_t fx_attempts = 0, fx_rejects = 0, fx_bits = 0;
    std::uint64_t fx_locked = 0;
    for (std::size_t i = 0; i < p.devices; ++i) {
        fixed.push_back(runFixedDevice(i, p, base[i].challengeBits));
        fx_attempts += fixed.back().attempts;
        fx_rejects += fixed.back().rejects;
        fx_bits += fixed.back().challengeBits;
        fx_locked += fixed.back().locked ? 1 : 0;
    }
    const double fixed_s = t_fixed.seconds();

    // Service-denial rate over the scheduled-round grid: both arms
    // owe steps/period rounds per device; a failed round is denied,
    // and so is every scheduled round that never ran because the
    // device was locked out, expelled from the ladder, or out of
    // budget. Same denominator both sides -- no survivorship bias.
    const std::uint64_t period = srv::ServerConfig{}.trust.periodSteps;
    const std::uint64_t scheduled =
        p.devices * (p.steps / period);
    const std::uint64_t hb_denied =
        hb_failed + (scheduled > hb_rounds ? scheduled - hb_rounds
                                           : 0);
    const std::uint64_t fx_denied =
        fx_rejects + (scheduled > fx_attempts
                          ? scheduled - fx_attempts
                          : 0);
    const double frr_trust = double(hb_denied) / double(scheduled);
    const double frr_fixed = double(fx_denied) / double(scheduled);
    const double lock_trust = double(hb_locked) / double(p.devices);
    const double lock_fixed = double(fx_locked) / double(p.devices);
    const bool policy_wins =
        frr_trust < frr_fixed && lock_trust < lock_fixed;

    util::Table perdev({"device", "trust_failed/rounds",
                        "trust_out", "fixed_rejects/attempts",
                        "fixed_locked"});
    for (std::size_t i = 0; i < p.devices; ++i) {
        perdev.row()
            .cell(std::uint64_t(kFirstId + i))
            .cell(std::to_string(base[i].failed) + "/" +
                  std::to_string(base[i].rounds))
            .cell(base[i].lockedOut ? "yes" : "no")
            .cell(std::to_string(fixed[i].rejects) + "/" +
                  std::to_string(fixed[i].attempts))
            .cell(fixed[i].locked ? "yes" : "no");
    }
    perdev.print(std::cout);
    std::cout << "\n";

    util::Table table({"policy", "rounds", "denied", "denial_rate",
                       "lockouts", "challenge_bits"});
    table.row()
        .cell("trust-ledger")
        .cell(hb_rounds)
        .cell(hb_denied)
        .cell(frr_trust)
        .cell(hb_locked)
        .cell(hb_bits);
    table.row()
        .cell("fixed-lockout")
        .cell(fx_attempts)
        .cell(fx_denied)
        .cell(frr_fixed)
        .cell(fx_locked)
        .cell(fx_bits);
    table.print(std::cout);
    std::cout << "proactive remaps: " << hb_remaps
              << ", marginal rounds: " << hb_marginal << " ("
              << fixed_s << " s baseline arm)\n";

    auto asGate = [](bool ok) { return ok ? 2.0 : 0.0; };
    const std::string path = out_dir + "/BENCH_heartbeat.json";
    std::ofstream os(path);
    if (!os) {
        std::cerr << "FAIL: cannot write " << path << "\n";
        return 2;
    }
    Json j(os);
    j.open();
    j.field("schema", std::string("heartbeat-drift-v1"));
    j.field("quick", smoke);
    j.field("detected_simd",
            std::string(
                util::simdLevelName(util::detectedSimdLevel())));
    j.field("substrate", platformName());
    j.openObject("sweep");
    j.field("devices", std::uint64_t(p.devices));
    j.field("steps", std::uint64_t(p.steps));
    j.field("drift_ramp_steps", std::uint64_t(p.drift.rampSteps));
    j.field("drift_hold_steps", std::uint64_t(p.drift.holdSteps));
    j.field("drift_peak_temperature_c", p.drift.peakTemperatureDeltaC);
    j.field("drift_peak_aging_years", p.drift.peakAgingYears);
    j.field("drift_peak_sigma_mv", p.drift.peakSigmaMv);
    j.closeObject();
    j.openArray("benchmarks");
    j.openObject();
    j.field("name", std::string("heartbeat_drift_sweep"));
    j.field("simd", std::string("scalar"));
    j.field("ops", hb_rounds);
    j.field("ops_per_s",
            base_s > 0 ? double(hb_rounds) / base_s : 0.0);
    j.closeObject();
    j.openObject();
    j.field("name", std::string("fixed_lockout_baseline"));
    j.field("simd", std::string("scalar"));
    j.field("ops", fx_attempts);
    j.field("ops_per_s",
            fixed_s > 0 ? double(fx_attempts) / fixed_s : 0.0);
    j.closeObject();
    j.closeArray();
    j.openObject("policy");
    j.field("scheduled_rounds", scheduled);
    j.field("trust_rounds", hb_rounds);
    j.field("trust_failed_rounds", hb_failed);
    j.field("trust_marginal_rounds", hb_marginal);
    j.field("trust_denied_rounds", hb_denied);
    j.field("trust_denial_rate", frr_trust);
    j.field("trust_lockout_rate", lock_trust);
    j.field("trust_challenge_bits", hb_bits);
    j.field("trust_proactive_remaps", hb_remaps);
    j.field("fixed_attempts", fx_attempts);
    j.field("fixed_rejects", fx_rejects);
    j.field("fixed_denied_rounds", fx_denied);
    j.field("fixed_denial_rate", frr_fixed);
    j.field("fixed_lockout_rate", lock_fixed);
    j.field("fixed_challenge_bits", fx_bits);
    j.closeObject();
    j.openObject("derived");
    j.field("heartbeat_determinism", asGate(deterministic));
    j.field("heartbeat_policy_gate", asGate(policy_wins));
    j.closeObject();
    j.openObject("floors");
    j.field("heartbeat_determinism", 1.9);
    j.field("heartbeat_policy_gate", 1.9);
    j.closeObject();
    j.close();
    std::cout << "wrote " << path << "\n";
    std::cout << "  heartbeat_determinism: " << asGate(deterministic)
              << "\n"
              << "  heartbeat_policy_gate: " << asGate(policy_wins)
              << "\n";
    if (!deterministic || !policy_wins) {
        std::cerr << "FAIL: heartbeat drift gate violated\n";
        return 1;
    }
    return 0;
}
