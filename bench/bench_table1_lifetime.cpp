/**
 * @file
 * Table 1: daily authentications available for different cache sizes
 * and CRP lengths over a 10-year chip lifetime, at a single Vdd.
 *
 * Paper values: 4MB LLC: 9192/4596/2298/1149 per day for 64/128/256/
 * 512-bit CRPs; 32MB LLC: 588350/291175/147088/73544. (The paper's
 * 128-bit 32MB entry, 291175, appears to be a typo for 294175 --
 * exactly half the 64-bit figure; we print the exact accounting.)
 */

#include <iostream>

#include "bench_common.hpp"
#include "core/crp.hpp"
#include "util/table.hpp"

using namespace authenticache;

int
main()
{
    authbench::banner(
        "Table 1: daily authentications over a 10-year lifetime",
        "Sec 6.6, Table 1");

    sim::CacheGeometry small(4ull * 1024 * 1024);
    sim::CacheGeometry large(32ull * 1024 * 1024);

    std::cout << "4MB LLC:  " << small.describe() << ", "
              << core::possibleCrps(small.lines())
              << " possible CRPs\n";
    std::cout << "32MB LLC: " << large.describe() << ", "
              << core::possibleCrps(large.lines())
              << " possible CRPs\n\n";

    util::Table table({"challenge_length", "auth_per_day_4MB",
                       "paper_4MB", "auth_per_day_32MB",
                       "paper_32MB"});
    const char *paper4[] = {"9192", "4596", "2298", "1149"};
    const char *paper32[] = {"588350", "291175*", "147088", "73544"};

    int idx = 0;
    for (std::uint64_t bits : {64, 128, 256, 512}) {
        table.row()
            .cell(std::to_string(bits) + "-bit")
            .cell(core::authenticationsPerDay(small.lines(), bits))
            .cell(paper4[idx])
            .cell(core::authenticationsPerDay(large.lines(), bits))
            .cell(paper32[idx]);
        ++idx;
    }
    table.print(std::cout);

    std::cout << "\n* paper's 291175 is inconsistent with its own "
                 "64-bit row (588350/2 = 294175); exact accounting "
                 "gives the value in our column.\n"
                 "Additional CRPs are available at every extra Vdd "
                 "level (Sec 6.6).\n";
    return 0;
}
