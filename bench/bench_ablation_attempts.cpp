/**
 * @file
 * Ablation: self-test attempts per cache line (paper Sec 6.3).
 *
 * Fewer attempts are faster but mask low-persistence errors, which
 * acts as "removed" noise on the response. The paper argues a single
 * attempt suffices for CRPs of 128 bits and up because the ~26%
 * masking rate stays inside the noise tolerance; this bench
 * regenerates that trade-off end to end: masked fraction, per-bit
 * flip probability, misidentification rate per CRP size, and runtime.
 */

#include <iostream>

#include "bench_common.hpp"
#include "firmware/client.hpp"
#include "mc/experiments.hpp"
#include "metrics/identifiability.hpp"
#include "sim/chip.hpp"
#include "util/table.hpp"

using namespace authenticache;

int
main()
{
    authbench::banner(
        "Ablation: self-test attempts vs masking vs identifiability",
        "Sec 6.3 -- single-attempt masking ~26%; >=128-bit CRPs "
        "absorb it");

    // Device side: measure the actual masked-error fraction at each
    // attempt budget on a real simulated chip.
    sim::ChipConfig chip_cfg; // 4MB.
    sim::SimulatedChip chip(chip_cfg, 63);
    firmware::SimulatedMachine machine(2);
    firmware::AuthenticacheClient booter(chip, machine);
    double floor = booter.boot();
    auto level = static_cast<core::VddMv>(floor);
    auto map = booter.captureErrorMap({level},
                                      authbench::quickMode() ? 4 : 12);
    auto errors = map.plane(level).errors();

    chip.setVddMv(static_cast<double>(level));
    const int rounds = authbench::quickMode() ? 3 : 10;

    util::Table table({"attempts", "masked_%", "p_intra",
                       "rate_64b", "rate_128b", "rate_256b",
                       "rate_512b", "runtime_512b_ms"});

    const sim::CacheGeometry geom(4ull * 1024 * 1024);
    mc::ExperimentConfig cfg;
    cfg.maps = authbench::scaled(20, 5);
    cfg.samplesPerMap = authbench::scaled(2000, 400);

    util::Rng rng(64);
    for (std::uint32_t attempts : {1u, 2u, 4u, 8u}) {
        // Masked fraction: enrolled lines that fail to trigger within
        // the attempt budget.
        std::uint64_t masked = 0;
        std::uint64_t total = 0;
        for (int round = 0; round < rounds; ++round) {
            for (const auto &line : errors) {
                auto r = chip.selfTest().testLine(line, attempts);
                masked += !r.triggered;
                ++total;
            }
        }
        double masked_frac = static_cast<double>(masked) /
                             static_cast<double>(total);

        // That masking behaves as "removed errors" noise: estimate
        // the per-bit flip probability it induces, then the analytic
        // misidentification rate per CRP size.
        mc::NoiseProfile profile;
        profile.removeFraction = masked_frac;
        double p_intra = mc::estimateIntraFlipProbability(
            geom, 100, profile, cfg);
        double p_inter =
            mc::estimateInterFlipProbability(geom, 100, cfg);

        table.row()
            .cell(std::uint64_t(attempts))
            .cell(masked_frac * 100.0, 1)
            .cell(p_intra, 4);
        for (std::size_t bits : {64, 128, 256, 512}) {
            double rate = metrics::misidentificationRate(
                bits, p_inter, p_intra);
            table.cell(rate, 10);
        }

        // Runtime of a 512-bit CRP at this attempt budget.
        firmware::ClientConfig ccfg;
        ccfg.selfTestAttempts = attempts;
        firmware::AuthenticacheClient client(chip, machine, ccfg);
        client.adoptFloor(floor);
        auto challenge = core::randomChallenge(
            chip.geometry(), static_cast<core::VddMv>(floor + 10.0),
            512, rng);
        auto outcome = client.authenticate(challenge);
        table.cell(outcome.ok() ? outcome.elapsedMs : -1.0, 1);
        chip.setVddMv(static_cast<double>(level));
    }
    table.print(std::cout);

    std::cout << "\nreading: the 64-bit column should fail the 1e-6 "
                 "criterion at 1 attempt while 128+ bits pass -- the "
                 "paper's justification for single-attempt operation.\n";
    return 0;
}
