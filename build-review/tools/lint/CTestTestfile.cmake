# CMake generated Testfile for 
# Source directory: /root/repo/tools/lint
# Build directory: /root/repo/build-review/tools/lint
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[DeterminismLint.Tree]=] "/root/repo/build-review/tools/lint/determinism_lint" "/root/repo/src")
set_tests_properties([=[DeterminismLint.Tree]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/lint/CMakeLists.txt;29;add_test;/root/repo/tools/lint/CMakeLists.txt;0;")
add_test([=[InvariantLint.Tree]=] "/root/repo/build-review/tools/lint/invariant_lint" "--baseline" "/root/repo/tools/lint/invariant_baseline.txt" "--json" "/root/repo/build-review/invariant_findings.json" "/root/repo")
set_tests_properties([=[InvariantLint.Tree]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/lint/CMakeLists.txt;31;add_test;/root/repo/tools/lint/CMakeLists.txt;0;")
