file(REMOVE_RECURSE
  "CMakeFiles/invariant_lint_core.dir/invariant_lint.cpp.o"
  "CMakeFiles/invariant_lint_core.dir/invariant_lint.cpp.o.d"
  "CMakeFiles/invariant_lint_core.dir/source_model.cpp.o"
  "CMakeFiles/invariant_lint_core.dir/source_model.cpp.o.d"
  "libinvariant_lint_core.a"
  "libinvariant_lint_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/invariant_lint_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
