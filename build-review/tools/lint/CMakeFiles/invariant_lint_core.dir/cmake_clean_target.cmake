file(REMOVE_RECURSE
  "libinvariant_lint_core.a"
)
