# Empty dependencies file for invariant_lint_core.
# This may be replaced when dependencies are built.
