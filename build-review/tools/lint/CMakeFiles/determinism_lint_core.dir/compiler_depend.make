# Empty compiler generated dependencies file for determinism_lint_core.
# This may be replaced when dependencies are built.
