file(REMOVE_RECURSE
  "libdeterminism_lint_core.a"
)
