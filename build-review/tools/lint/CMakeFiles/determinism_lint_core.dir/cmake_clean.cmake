file(REMOVE_RECURSE
  "CMakeFiles/determinism_lint_core.dir/determinism_lint.cpp.o"
  "CMakeFiles/determinism_lint_core.dir/determinism_lint.cpp.o.d"
  "libdeterminism_lint_core.a"
  "libdeterminism_lint_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/determinism_lint_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
