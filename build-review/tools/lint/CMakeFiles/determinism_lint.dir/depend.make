# Empty dependencies file for determinism_lint.
# This may be replaced when dependencies are built.
