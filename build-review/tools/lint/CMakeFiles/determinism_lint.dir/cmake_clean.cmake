file(REMOVE_RECURSE
  "CMakeFiles/determinism_lint.dir/determinism_lint_main.cpp.o"
  "CMakeFiles/determinism_lint.dir/determinism_lint_main.cpp.o.d"
  "determinism_lint"
  "determinism_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/determinism_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
