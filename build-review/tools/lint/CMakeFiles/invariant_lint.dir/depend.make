# Empty dependencies file for invariant_lint.
# This may be replaced when dependencies are built.
