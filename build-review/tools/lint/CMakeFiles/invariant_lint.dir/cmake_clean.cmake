file(REMOVE_RECURSE
  "CMakeFiles/invariant_lint.dir/invariant_lint_main.cpp.o"
  "CMakeFiles/invariant_lint.dir/invariant_lint_main.cpp.o.d"
  "invariant_lint"
  "invariant_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/invariant_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
