file(REMOVE_RECURSE
  "CMakeFiles/authenticache_cli.dir/authenticache_cli.cpp.o"
  "CMakeFiles/authenticache_cli.dir/authenticache_cli.cpp.o.d"
  "authenticache_cli"
  "authenticache_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/authenticache_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
