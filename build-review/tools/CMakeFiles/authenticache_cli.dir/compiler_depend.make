# Empty compiler generated dependencies file for authenticache_cli.
# This may be replaced when dependencies are built.
