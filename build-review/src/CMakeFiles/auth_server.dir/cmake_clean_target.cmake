file(REMOVE_RECURSE
  "libauth_server.a"
)
