
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/server/auth_flow.cpp" "src/CMakeFiles/auth_server.dir/server/auth_flow.cpp.o" "gcc" "src/CMakeFiles/auth_server.dir/server/auth_flow.cpp.o.d"
  "/root/repo/src/server/challenge_gen.cpp" "src/CMakeFiles/auth_server.dir/server/challenge_gen.cpp.o" "gcc" "src/CMakeFiles/auth_server.dir/server/challenge_gen.cpp.o.d"
  "/root/repo/src/server/database.cpp" "src/CMakeFiles/auth_server.dir/server/database.cpp.o" "gcc" "src/CMakeFiles/auth_server.dir/server/database.cpp.o.d"
  "/root/repo/src/server/device_agent.cpp" "src/CMakeFiles/auth_server.dir/server/device_agent.cpp.o" "gcc" "src/CMakeFiles/auth_server.dir/server/device_agent.cpp.o.d"
  "/root/repo/src/server/durability.cpp" "src/CMakeFiles/auth_server.dir/server/durability.cpp.o" "gcc" "src/CMakeFiles/auth_server.dir/server/durability.cpp.o.d"
  "/root/repo/src/server/durable_io.cpp" "src/CMakeFiles/auth_server.dir/server/durable_io.cpp.o" "gcc" "src/CMakeFiles/auth_server.dir/server/durable_io.cpp.o.d"
  "/root/repo/src/server/front_end.cpp" "src/CMakeFiles/auth_server.dir/server/front_end.cpp.o" "gcc" "src/CMakeFiles/auth_server.dir/server/front_end.cpp.o.d"
  "/root/repo/src/server/heartbeat_flow.cpp" "src/CMakeFiles/auth_server.dir/server/heartbeat_flow.cpp.o" "gcc" "src/CMakeFiles/auth_server.dir/server/heartbeat_flow.cpp.o.d"
  "/root/repo/src/server/journal.cpp" "src/CMakeFiles/auth_server.dir/server/journal.cpp.o" "gcc" "src/CMakeFiles/auth_server.dir/server/journal.cpp.o.d"
  "/root/repo/src/server/remap_flow.cpp" "src/CMakeFiles/auth_server.dir/server/remap_flow.cpp.o" "gcc" "src/CMakeFiles/auth_server.dir/server/remap_flow.cpp.o.d"
  "/root/repo/src/server/server.cpp" "src/CMakeFiles/auth_server.dir/server/server.cpp.o" "gcc" "src/CMakeFiles/auth_server.dir/server/server.cpp.o.d"
  "/root/repo/src/server/session_manager.cpp" "src/CMakeFiles/auth_server.dir/server/session_manager.cpp.o" "gcc" "src/CMakeFiles/auth_server.dir/server/session_manager.cpp.o.d"
  "/root/repo/src/server/storage.cpp" "src/CMakeFiles/auth_server.dir/server/storage.cpp.o" "gcc" "src/CMakeFiles/auth_server.dir/server/storage.cpp.o.d"
  "/root/repo/src/server/verifier.cpp" "src/CMakeFiles/auth_server.dir/server/verifier.cpp.o" "gcc" "src/CMakeFiles/auth_server.dir/server/verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/auth_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/auth_protocol.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/auth_metrics.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/auth_firmware.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/auth_crypto.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/auth_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/auth_ecc.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/auth_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
