file(REMOVE_RECURSE
  "CMakeFiles/auth_server.dir/server/auth_flow.cpp.o"
  "CMakeFiles/auth_server.dir/server/auth_flow.cpp.o.d"
  "CMakeFiles/auth_server.dir/server/challenge_gen.cpp.o"
  "CMakeFiles/auth_server.dir/server/challenge_gen.cpp.o.d"
  "CMakeFiles/auth_server.dir/server/database.cpp.o"
  "CMakeFiles/auth_server.dir/server/database.cpp.o.d"
  "CMakeFiles/auth_server.dir/server/device_agent.cpp.o"
  "CMakeFiles/auth_server.dir/server/device_agent.cpp.o.d"
  "CMakeFiles/auth_server.dir/server/durability.cpp.o"
  "CMakeFiles/auth_server.dir/server/durability.cpp.o.d"
  "CMakeFiles/auth_server.dir/server/durable_io.cpp.o"
  "CMakeFiles/auth_server.dir/server/durable_io.cpp.o.d"
  "CMakeFiles/auth_server.dir/server/front_end.cpp.o"
  "CMakeFiles/auth_server.dir/server/front_end.cpp.o.d"
  "CMakeFiles/auth_server.dir/server/heartbeat_flow.cpp.o"
  "CMakeFiles/auth_server.dir/server/heartbeat_flow.cpp.o.d"
  "CMakeFiles/auth_server.dir/server/journal.cpp.o"
  "CMakeFiles/auth_server.dir/server/journal.cpp.o.d"
  "CMakeFiles/auth_server.dir/server/remap_flow.cpp.o"
  "CMakeFiles/auth_server.dir/server/remap_flow.cpp.o.d"
  "CMakeFiles/auth_server.dir/server/server.cpp.o"
  "CMakeFiles/auth_server.dir/server/server.cpp.o.d"
  "CMakeFiles/auth_server.dir/server/session_manager.cpp.o"
  "CMakeFiles/auth_server.dir/server/session_manager.cpp.o.d"
  "CMakeFiles/auth_server.dir/server/storage.cpp.o"
  "CMakeFiles/auth_server.dir/server/storage.cpp.o.d"
  "CMakeFiles/auth_server.dir/server/verifier.cpp.o"
  "CMakeFiles/auth_server.dir/server/verifier.cpp.o.d"
  "libauth_server.a"
  "libauth_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auth_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
