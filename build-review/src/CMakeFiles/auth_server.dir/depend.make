# Empty dependencies file for auth_server.
# This may be replaced when dependencies are built.
