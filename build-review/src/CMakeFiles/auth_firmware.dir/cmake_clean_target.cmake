file(REMOVE_RECURSE
  "libauth_firmware.a"
)
