# Empty compiler generated dependencies file for auth_firmware.
# This may be replaced when dependencies are built.
