file(REMOVE_RECURSE
  "CMakeFiles/auth_firmware.dir/firmware/client.cpp.o"
  "CMakeFiles/auth_firmware.dir/firmware/client.cpp.o.d"
  "CMakeFiles/auth_firmware.dir/firmware/error_handler.cpp.o"
  "CMakeFiles/auth_firmware.dir/firmware/error_handler.cpp.o.d"
  "CMakeFiles/auth_firmware.dir/firmware/keygen.cpp.o"
  "CMakeFiles/auth_firmware.dir/firmware/keygen.cpp.o.d"
  "CMakeFiles/auth_firmware.dir/firmware/machine.cpp.o"
  "CMakeFiles/auth_firmware.dir/firmware/machine.cpp.o.d"
  "CMakeFiles/auth_firmware.dir/firmware/timing.cpp.o"
  "CMakeFiles/auth_firmware.dir/firmware/timing.cpp.o.d"
  "CMakeFiles/auth_firmware.dir/firmware/voltage_control.cpp.o"
  "CMakeFiles/auth_firmware.dir/firmware/voltage_control.cpp.o.d"
  "libauth_firmware.a"
  "libauth_firmware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auth_firmware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
