
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/firmware/client.cpp" "src/CMakeFiles/auth_firmware.dir/firmware/client.cpp.o" "gcc" "src/CMakeFiles/auth_firmware.dir/firmware/client.cpp.o.d"
  "/root/repo/src/firmware/error_handler.cpp" "src/CMakeFiles/auth_firmware.dir/firmware/error_handler.cpp.o" "gcc" "src/CMakeFiles/auth_firmware.dir/firmware/error_handler.cpp.o.d"
  "/root/repo/src/firmware/keygen.cpp" "src/CMakeFiles/auth_firmware.dir/firmware/keygen.cpp.o" "gcc" "src/CMakeFiles/auth_firmware.dir/firmware/keygen.cpp.o.d"
  "/root/repo/src/firmware/machine.cpp" "src/CMakeFiles/auth_firmware.dir/firmware/machine.cpp.o" "gcc" "src/CMakeFiles/auth_firmware.dir/firmware/machine.cpp.o.d"
  "/root/repo/src/firmware/timing.cpp" "src/CMakeFiles/auth_firmware.dir/firmware/timing.cpp.o" "gcc" "src/CMakeFiles/auth_firmware.dir/firmware/timing.cpp.o.d"
  "/root/repo/src/firmware/voltage_control.cpp" "src/CMakeFiles/auth_firmware.dir/firmware/voltage_control.cpp.o" "gcc" "src/CMakeFiles/auth_firmware.dir/firmware/voltage_control.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/auth_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/auth_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/auth_crypto.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/auth_ecc.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/auth_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
