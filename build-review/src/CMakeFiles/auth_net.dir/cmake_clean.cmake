file(REMOVE_RECURSE
  "CMakeFiles/auth_net.dir/net/epoll_transport.cpp.o"
  "CMakeFiles/auth_net.dir/net/epoll_transport.cpp.o.d"
  "CMakeFiles/auth_net.dir/net/loopback.cpp.o"
  "CMakeFiles/auth_net.dir/net/loopback.cpp.o.d"
  "CMakeFiles/auth_net.dir/net/socket_client.cpp.o"
  "CMakeFiles/auth_net.dir/net/socket_client.cpp.o.d"
  "CMakeFiles/auth_net.dir/net/transport.cpp.o"
  "CMakeFiles/auth_net.dir/net/transport.cpp.o.d"
  "CMakeFiles/auth_net.dir/net/wire.cpp.o"
  "CMakeFiles/auth_net.dir/net/wire.cpp.o.d"
  "libauth_net.a"
  "libauth_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auth_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
