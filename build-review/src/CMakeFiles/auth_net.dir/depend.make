# Empty dependencies file for auth_net.
# This may be replaced when dependencies are built.
