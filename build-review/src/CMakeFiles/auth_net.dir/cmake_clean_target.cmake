file(REMOVE_RECURSE
  "libauth_net.a"
)
