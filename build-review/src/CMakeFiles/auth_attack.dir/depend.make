# Empty dependencies file for auth_attack.
# This may be replaced when dependencies are built.
