file(REMOVE_RECURSE
  "CMakeFiles/auth_attack.dir/attack/model_attack.cpp.o"
  "CMakeFiles/auth_attack.dir/attack/model_attack.cpp.o.d"
  "CMakeFiles/auth_attack.dir/attack/physical_access.cpp.o"
  "CMakeFiles/auth_attack.dir/attack/physical_access.cpp.o.d"
  "CMakeFiles/auth_attack.dir/attack/replay.cpp.o"
  "CMakeFiles/auth_attack.dir/attack/replay.cpp.o.d"
  "libauth_attack.a"
  "libauth_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auth_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
