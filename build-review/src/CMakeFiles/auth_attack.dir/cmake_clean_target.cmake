file(REMOVE_RECURSE
  "libauth_attack.a"
)
