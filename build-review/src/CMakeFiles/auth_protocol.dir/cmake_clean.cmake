file(REMOVE_RECURSE
  "CMakeFiles/auth_protocol.dir/protocol/channel.cpp.o"
  "CMakeFiles/auth_protocol.dir/protocol/channel.cpp.o.d"
  "CMakeFiles/auth_protocol.dir/protocol/messages.cpp.o"
  "CMakeFiles/auth_protocol.dir/protocol/messages.cpp.o.d"
  "CMakeFiles/auth_protocol.dir/protocol/serialize.cpp.o"
  "CMakeFiles/auth_protocol.dir/protocol/serialize.cpp.o.d"
  "libauth_protocol.a"
  "libauth_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auth_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
