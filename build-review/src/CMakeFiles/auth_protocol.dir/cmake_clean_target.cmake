file(REMOVE_RECURSE
  "libauth_protocol.a"
)
