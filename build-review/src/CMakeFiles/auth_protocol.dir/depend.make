# Empty dependencies file for auth_protocol.
# This may be replaced when dependencies are built.
