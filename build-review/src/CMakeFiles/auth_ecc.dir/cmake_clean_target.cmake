file(REMOVE_RECURSE
  "libauth_ecc.a"
)
