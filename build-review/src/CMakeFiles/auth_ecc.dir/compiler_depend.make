# Empty compiler generated dependencies file for auth_ecc.
# This may be replaced when dependencies are built.
