
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ecc/bch.cpp" "src/CMakeFiles/auth_ecc.dir/ecc/bch.cpp.o" "gcc" "src/CMakeFiles/auth_ecc.dir/ecc/bch.cpp.o.d"
  "/root/repo/src/ecc/gf2m.cpp" "src/CMakeFiles/auth_ecc.dir/ecc/gf2m.cpp.o" "gcc" "src/CMakeFiles/auth_ecc.dir/ecc/gf2m.cpp.o.d"
  "/root/repo/src/ecc/scheme.cpp" "src/CMakeFiles/auth_ecc.dir/ecc/scheme.cpp.o" "gcc" "src/CMakeFiles/auth_ecc.dir/ecc/scheme.cpp.o.d"
  "/root/repo/src/ecc/secded.cpp" "src/CMakeFiles/auth_ecc.dir/ecc/secded.cpp.o" "gcc" "src/CMakeFiles/auth_ecc.dir/ecc/secded.cpp.o.d"
  "/root/repo/src/ecc/secded_simd.cpp" "src/CMakeFiles/auth_ecc.dir/ecc/secded_simd.cpp.o" "gcc" "src/CMakeFiles/auth_ecc.dir/ecc/secded_simd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/auth_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
