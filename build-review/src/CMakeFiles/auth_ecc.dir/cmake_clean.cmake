file(REMOVE_RECURSE
  "CMakeFiles/auth_ecc.dir/ecc/bch.cpp.o"
  "CMakeFiles/auth_ecc.dir/ecc/bch.cpp.o.d"
  "CMakeFiles/auth_ecc.dir/ecc/gf2m.cpp.o"
  "CMakeFiles/auth_ecc.dir/ecc/gf2m.cpp.o.d"
  "CMakeFiles/auth_ecc.dir/ecc/scheme.cpp.o"
  "CMakeFiles/auth_ecc.dir/ecc/scheme.cpp.o.d"
  "CMakeFiles/auth_ecc.dir/ecc/secded.cpp.o"
  "CMakeFiles/auth_ecc.dir/ecc/secded.cpp.o.d"
  "CMakeFiles/auth_ecc.dir/ecc/secded_simd.cpp.o"
  "CMakeFiles/auth_ecc.dir/ecc/secded_simd.cpp.o.d"
  "libauth_ecc.a"
  "libauth_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auth_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
