file(REMOVE_RECURSE
  "libauth_crypto.a"
)
