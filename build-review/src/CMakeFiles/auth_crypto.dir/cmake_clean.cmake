file(REMOVE_RECURSE
  "CMakeFiles/auth_crypto.dir/crypto/bch_fuzzy_extractor.cpp.o"
  "CMakeFiles/auth_crypto.dir/crypto/bch_fuzzy_extractor.cpp.o.d"
  "CMakeFiles/auth_crypto.dir/crypto/feistel.cpp.o"
  "CMakeFiles/auth_crypto.dir/crypto/feistel.cpp.o.d"
  "CMakeFiles/auth_crypto.dir/crypto/fuzzy_extractor.cpp.o"
  "CMakeFiles/auth_crypto.dir/crypto/fuzzy_extractor.cpp.o.d"
  "CMakeFiles/auth_crypto.dir/crypto/key.cpp.o"
  "CMakeFiles/auth_crypto.dir/crypto/key.cpp.o.d"
  "CMakeFiles/auth_crypto.dir/crypto/sha256.cpp.o"
  "CMakeFiles/auth_crypto.dir/crypto/sha256.cpp.o.d"
  "CMakeFiles/auth_crypto.dir/crypto/siphash.cpp.o"
  "CMakeFiles/auth_crypto.dir/crypto/siphash.cpp.o.d"
  "libauth_crypto.a"
  "libauth_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auth_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
