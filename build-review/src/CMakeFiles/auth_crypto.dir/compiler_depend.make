# Empty compiler generated dependencies file for auth_crypto.
# This may be replaced when dependencies are built.
