
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/bch_fuzzy_extractor.cpp" "src/CMakeFiles/auth_crypto.dir/crypto/bch_fuzzy_extractor.cpp.o" "gcc" "src/CMakeFiles/auth_crypto.dir/crypto/bch_fuzzy_extractor.cpp.o.d"
  "/root/repo/src/crypto/feistel.cpp" "src/CMakeFiles/auth_crypto.dir/crypto/feistel.cpp.o" "gcc" "src/CMakeFiles/auth_crypto.dir/crypto/feistel.cpp.o.d"
  "/root/repo/src/crypto/fuzzy_extractor.cpp" "src/CMakeFiles/auth_crypto.dir/crypto/fuzzy_extractor.cpp.o" "gcc" "src/CMakeFiles/auth_crypto.dir/crypto/fuzzy_extractor.cpp.o.d"
  "/root/repo/src/crypto/key.cpp" "src/CMakeFiles/auth_crypto.dir/crypto/key.cpp.o" "gcc" "src/CMakeFiles/auth_crypto.dir/crypto/key.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/CMakeFiles/auth_crypto.dir/crypto/sha256.cpp.o" "gcc" "src/CMakeFiles/auth_crypto.dir/crypto/sha256.cpp.o.d"
  "/root/repo/src/crypto/siphash.cpp" "src/CMakeFiles/auth_crypto.dir/crypto/siphash.cpp.o" "gcc" "src/CMakeFiles/auth_crypto.dir/crypto/siphash.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/auth_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/auth_ecc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
