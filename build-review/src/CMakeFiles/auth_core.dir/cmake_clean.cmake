file(REMOVE_RECURSE
  "CMakeFiles/auth_core.dir/core/challenge.cpp.o"
  "CMakeFiles/auth_core.dir/core/challenge.cpp.o.d"
  "CMakeFiles/auth_core.dir/core/error_index.cpp.o"
  "CMakeFiles/auth_core.dir/core/error_index.cpp.o.d"
  "CMakeFiles/auth_core.dir/core/error_map.cpp.o"
  "CMakeFiles/auth_core.dir/core/error_map.cpp.o.d"
  "CMakeFiles/auth_core.dir/core/nearest.cpp.o"
  "CMakeFiles/auth_core.dir/core/nearest.cpp.o.d"
  "CMakeFiles/auth_core.dir/core/nearest_scan.cpp.o"
  "CMakeFiles/auth_core.dir/core/nearest_scan.cpp.o.d"
  "CMakeFiles/auth_core.dir/core/remap.cpp.o"
  "CMakeFiles/auth_core.dir/core/remap.cpp.o.d"
  "libauth_core.a"
  "libauth_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auth_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
