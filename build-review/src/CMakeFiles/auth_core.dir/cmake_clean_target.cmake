file(REMOVE_RECURSE
  "libauth_core.a"
)
