# Empty dependencies file for auth_core.
# This may be replaced when dependencies are built.
