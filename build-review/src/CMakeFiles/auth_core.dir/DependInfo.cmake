
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/challenge.cpp" "src/CMakeFiles/auth_core.dir/core/challenge.cpp.o" "gcc" "src/CMakeFiles/auth_core.dir/core/challenge.cpp.o.d"
  "/root/repo/src/core/error_index.cpp" "src/CMakeFiles/auth_core.dir/core/error_index.cpp.o" "gcc" "src/CMakeFiles/auth_core.dir/core/error_index.cpp.o.d"
  "/root/repo/src/core/error_map.cpp" "src/CMakeFiles/auth_core.dir/core/error_map.cpp.o" "gcc" "src/CMakeFiles/auth_core.dir/core/error_map.cpp.o.d"
  "/root/repo/src/core/nearest.cpp" "src/CMakeFiles/auth_core.dir/core/nearest.cpp.o" "gcc" "src/CMakeFiles/auth_core.dir/core/nearest.cpp.o.d"
  "/root/repo/src/core/nearest_scan.cpp" "src/CMakeFiles/auth_core.dir/core/nearest_scan.cpp.o" "gcc" "src/CMakeFiles/auth_core.dir/core/nearest_scan.cpp.o.d"
  "/root/repo/src/core/remap.cpp" "src/CMakeFiles/auth_core.dir/core/remap.cpp.o" "gcc" "src/CMakeFiles/auth_core.dir/core/remap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/auth_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/auth_crypto.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/auth_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/auth_ecc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
