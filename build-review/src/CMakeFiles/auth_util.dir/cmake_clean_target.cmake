file(REMOVE_RECURSE
  "libauth_util.a"
)
