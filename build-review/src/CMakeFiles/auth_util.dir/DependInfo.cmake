
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/arena.cpp" "src/CMakeFiles/auth_util.dir/util/arena.cpp.o" "gcc" "src/CMakeFiles/auth_util.dir/util/arena.cpp.o.d"
  "/root/repo/src/util/bitvec.cpp" "src/CMakeFiles/auth_util.dir/util/bitvec.cpp.o" "gcc" "src/CMakeFiles/auth_util.dir/util/bitvec.cpp.o.d"
  "/root/repo/src/util/crc32.cpp" "src/CMakeFiles/auth_util.dir/util/crc32.cpp.o" "gcc" "src/CMakeFiles/auth_util.dir/util/crc32.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/CMakeFiles/auth_util.dir/util/logging.cpp.o" "gcc" "src/CMakeFiles/auth_util.dir/util/logging.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/auth_util.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/auth_util.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/simd.cpp" "src/CMakeFiles/auth_util.dir/util/simd.cpp.o" "gcc" "src/CMakeFiles/auth_util.dir/util/simd.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/auth_util.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/auth_util.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/stats_registry.cpp" "src/CMakeFiles/auth_util.dir/util/stats_registry.cpp.o" "gcc" "src/CMakeFiles/auth_util.dir/util/stats_registry.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/auth_util.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/auth_util.dir/util/table.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/CMakeFiles/auth_util.dir/util/thread_pool.cpp.o" "gcc" "src/CMakeFiles/auth_util.dir/util/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
