# Empty compiler generated dependencies file for auth_util.
# This may be replaced when dependencies are built.
