file(REMOVE_RECURSE
  "CMakeFiles/auth_util.dir/util/arena.cpp.o"
  "CMakeFiles/auth_util.dir/util/arena.cpp.o.d"
  "CMakeFiles/auth_util.dir/util/bitvec.cpp.o"
  "CMakeFiles/auth_util.dir/util/bitvec.cpp.o.d"
  "CMakeFiles/auth_util.dir/util/crc32.cpp.o"
  "CMakeFiles/auth_util.dir/util/crc32.cpp.o.d"
  "CMakeFiles/auth_util.dir/util/logging.cpp.o"
  "CMakeFiles/auth_util.dir/util/logging.cpp.o.d"
  "CMakeFiles/auth_util.dir/util/rng.cpp.o"
  "CMakeFiles/auth_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/auth_util.dir/util/simd.cpp.o"
  "CMakeFiles/auth_util.dir/util/simd.cpp.o.d"
  "CMakeFiles/auth_util.dir/util/stats.cpp.o"
  "CMakeFiles/auth_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/auth_util.dir/util/stats_registry.cpp.o"
  "CMakeFiles/auth_util.dir/util/stats_registry.cpp.o.d"
  "CMakeFiles/auth_util.dir/util/table.cpp.o"
  "CMakeFiles/auth_util.dir/util/table.cpp.o.d"
  "CMakeFiles/auth_util.dir/util/thread_pool.cpp.o"
  "CMakeFiles/auth_util.dir/util/thread_pool.cpp.o.d"
  "libauth_util.a"
  "libauth_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auth_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
