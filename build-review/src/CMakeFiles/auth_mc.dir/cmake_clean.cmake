file(REMOVE_RECURSE
  "CMakeFiles/auth_mc.dir/mc/experiments.cpp.o"
  "CMakeFiles/auth_mc.dir/mc/experiments.cpp.o.d"
  "CMakeFiles/auth_mc.dir/mc/mapgen.cpp.o"
  "CMakeFiles/auth_mc.dir/mc/mapgen.cpp.o.d"
  "CMakeFiles/auth_mc.dir/mc/noise.cpp.o"
  "CMakeFiles/auth_mc.dir/mc/noise.cpp.o.d"
  "libauth_mc.a"
  "libauth_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auth_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
