file(REMOVE_RECURSE
  "libauth_mc.a"
)
