# Empty dependencies file for auth_mc.
# This may be replaced when dependencies are built.
