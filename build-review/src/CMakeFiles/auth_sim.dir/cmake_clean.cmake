file(REMOVE_RECURSE
  "CMakeFiles/auth_sim.dir/sim/cache_array.cpp.o"
  "CMakeFiles/auth_sim.dir/sim/cache_array.cpp.o.d"
  "CMakeFiles/auth_sim.dir/sim/chip.cpp.o"
  "CMakeFiles/auth_sim.dir/sim/chip.cpp.o.d"
  "CMakeFiles/auth_sim.dir/sim/drift.cpp.o"
  "CMakeFiles/auth_sim.dir/sim/drift.cpp.o.d"
  "CMakeFiles/auth_sim.dir/sim/environment.cpp.o"
  "CMakeFiles/auth_sim.dir/sim/environment.cpp.o.d"
  "CMakeFiles/auth_sim.dir/sim/error_log.cpp.o"
  "CMakeFiles/auth_sim.dir/sim/error_log.cpp.o.d"
  "CMakeFiles/auth_sim.dir/sim/geometry.cpp.o"
  "CMakeFiles/auth_sim.dir/sim/geometry.cpp.o.d"
  "CMakeFiles/auth_sim.dir/sim/self_test.cpp.o"
  "CMakeFiles/auth_sim.dir/sim/self_test.cpp.o.d"
  "CMakeFiles/auth_sim.dir/sim/variation.cpp.o"
  "CMakeFiles/auth_sim.dir/sim/variation.cpp.o.d"
  "CMakeFiles/auth_sim.dir/sim/voltage_regulator.cpp.o"
  "CMakeFiles/auth_sim.dir/sim/voltage_regulator.cpp.o.d"
  "libauth_sim.a"
  "libauth_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auth_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
