file(REMOVE_RECURSE
  "libauth_sim.a"
)
