
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache_array.cpp" "src/CMakeFiles/auth_sim.dir/sim/cache_array.cpp.o" "gcc" "src/CMakeFiles/auth_sim.dir/sim/cache_array.cpp.o.d"
  "/root/repo/src/sim/chip.cpp" "src/CMakeFiles/auth_sim.dir/sim/chip.cpp.o" "gcc" "src/CMakeFiles/auth_sim.dir/sim/chip.cpp.o.d"
  "/root/repo/src/sim/drift.cpp" "src/CMakeFiles/auth_sim.dir/sim/drift.cpp.o" "gcc" "src/CMakeFiles/auth_sim.dir/sim/drift.cpp.o.d"
  "/root/repo/src/sim/environment.cpp" "src/CMakeFiles/auth_sim.dir/sim/environment.cpp.o" "gcc" "src/CMakeFiles/auth_sim.dir/sim/environment.cpp.o.d"
  "/root/repo/src/sim/error_log.cpp" "src/CMakeFiles/auth_sim.dir/sim/error_log.cpp.o" "gcc" "src/CMakeFiles/auth_sim.dir/sim/error_log.cpp.o.d"
  "/root/repo/src/sim/geometry.cpp" "src/CMakeFiles/auth_sim.dir/sim/geometry.cpp.o" "gcc" "src/CMakeFiles/auth_sim.dir/sim/geometry.cpp.o.d"
  "/root/repo/src/sim/self_test.cpp" "src/CMakeFiles/auth_sim.dir/sim/self_test.cpp.o" "gcc" "src/CMakeFiles/auth_sim.dir/sim/self_test.cpp.o.d"
  "/root/repo/src/sim/variation.cpp" "src/CMakeFiles/auth_sim.dir/sim/variation.cpp.o" "gcc" "src/CMakeFiles/auth_sim.dir/sim/variation.cpp.o.d"
  "/root/repo/src/sim/voltage_regulator.cpp" "src/CMakeFiles/auth_sim.dir/sim/voltage_regulator.cpp.o" "gcc" "src/CMakeFiles/auth_sim.dir/sim/voltage_regulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/auth_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/auth_ecc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
