# Empty compiler generated dependencies file for auth_sim.
# This may be replaced when dependencies are built.
