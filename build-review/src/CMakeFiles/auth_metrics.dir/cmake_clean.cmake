file(REMOVE_RECURSE
  "CMakeFiles/auth_metrics.dir/metrics/identifiability.cpp.o"
  "CMakeFiles/auth_metrics.dir/metrics/identifiability.cpp.o.d"
  "CMakeFiles/auth_metrics.dir/metrics/quality.cpp.o"
  "CMakeFiles/auth_metrics.dir/metrics/quality.cpp.o.d"
  "libauth_metrics.a"
  "libauth_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auth_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
