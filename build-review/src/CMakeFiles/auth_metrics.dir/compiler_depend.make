# Empty compiler generated dependencies file for auth_metrics.
# This may be replaced when dependencies are built.
