file(REMOVE_RECURSE
  "libauth_metrics.a"
)
