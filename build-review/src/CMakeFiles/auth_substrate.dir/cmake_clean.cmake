file(REMOVE_RECURSE
  "CMakeFiles/auth_substrate.dir/substrate/config.cpp.o"
  "CMakeFiles/auth_substrate.dir/substrate/config.cpp.o.d"
  "CMakeFiles/auth_substrate.dir/substrate/dram_mra.cpp.o"
  "CMakeFiles/auth_substrate.dir/substrate/dram_mra.cpp.o.d"
  "CMakeFiles/auth_substrate.dir/substrate/registry.cpp.o"
  "CMakeFiles/auth_substrate.dir/substrate/registry.cpp.o.d"
  "libauth_substrate.a"
  "libauth_substrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auth_substrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
