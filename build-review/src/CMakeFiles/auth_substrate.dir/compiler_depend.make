# Empty compiler generated dependencies file for auth_substrate.
# This may be replaced when dependencies are built.
