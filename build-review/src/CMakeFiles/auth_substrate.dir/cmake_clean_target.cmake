file(REMOVE_RECURSE
  "libauth_substrate.a"
)
