file(REMOVE_RECURSE
  "CMakeFiles/example_key_generation.dir/key_generation.cpp.o"
  "CMakeFiles/example_key_generation.dir/key_generation.cpp.o.d"
  "example_key_generation"
  "example_key_generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_key_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
