# Empty dependencies file for example_key_generation.
# This may be replaced when dependencies are built.
