# Empty dependencies file for example_noisy_field_auth.
# This may be replaced when dependencies are built.
