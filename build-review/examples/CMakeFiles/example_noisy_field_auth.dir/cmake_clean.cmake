file(REMOVE_RECURSE
  "CMakeFiles/example_noisy_field_auth.dir/noisy_field_auth.cpp.o"
  "CMakeFiles/example_noisy_field_auth.dir/noisy_field_auth.cpp.o.d"
  "example_noisy_field_auth"
  "example_noisy_field_auth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_noisy_field_auth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
