# Empty dependencies file for example_model_attack_study.
# This may be replaced when dependencies are built.
