file(REMOVE_RECURSE
  "CMakeFiles/example_model_attack_study.dir/model_attack_study.cpp.o"
  "CMakeFiles/example_model_attack_study.dir/model_attack_study.cpp.o.d"
  "example_model_attack_study"
  "example_model_attack_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_model_attack_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
