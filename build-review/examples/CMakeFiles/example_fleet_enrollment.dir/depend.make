# Empty dependencies file for example_fleet_enrollment.
# This may be replaced when dependencies are built.
