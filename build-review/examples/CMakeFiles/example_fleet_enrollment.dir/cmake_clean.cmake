file(REMOVE_RECURSE
  "CMakeFiles/example_fleet_enrollment.dir/fleet_enrollment.cpp.o"
  "CMakeFiles/example_fleet_enrollment.dir/fleet_enrollment.cpp.o.d"
  "example_fleet_enrollment"
  "example_fleet_enrollment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fleet_enrollment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
