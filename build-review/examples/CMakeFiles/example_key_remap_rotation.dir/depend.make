# Empty dependencies file for example_key_remap_rotation.
# This may be replaced when dependencies are built.
