file(REMOVE_RECURSE
  "CMakeFiles/example_key_remap_rotation.dir/key_remap_rotation.cpp.o"
  "CMakeFiles/example_key_remap_rotation.dir/key_remap_rotation.cpp.o.d"
  "example_key_remap_rotation"
  "example_key_remap_rotation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_key_remap_rotation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
