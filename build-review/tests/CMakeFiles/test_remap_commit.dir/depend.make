# Empty dependencies file for test_remap_commit.
# This may be replaced when dependencies are built.
