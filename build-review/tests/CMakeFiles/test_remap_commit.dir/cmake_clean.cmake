file(REMOVE_RECURSE
  "CMakeFiles/test_remap_commit.dir/test_remap_commit.cpp.o"
  "CMakeFiles/test_remap_commit.dir/test_remap_commit.cpp.o.d"
  "test_remap_commit"
  "test_remap_commit.pdb"
  "test_remap_commit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_remap_commit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
