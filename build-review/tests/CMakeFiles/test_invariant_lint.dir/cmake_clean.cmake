file(REMOVE_RECURSE
  "CMakeFiles/test_invariant_lint.dir/test_invariant_lint.cpp.o"
  "CMakeFiles/test_invariant_lint.dir/test_invariant_lint.cpp.o.d"
  "test_invariant_lint"
  "test_invariant_lint.pdb"
  "test_invariant_lint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_invariant_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
