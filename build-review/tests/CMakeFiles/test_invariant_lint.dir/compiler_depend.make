# Empty compiler generated dependencies file for test_invariant_lint.
# This may be replaced when dependencies are built.
