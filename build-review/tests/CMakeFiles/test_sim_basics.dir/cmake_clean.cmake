file(REMOVE_RECURSE
  "CMakeFiles/test_sim_basics.dir/test_sim_basics.cpp.o"
  "CMakeFiles/test_sim_basics.dir/test_sim_basics.cpp.o.d"
  "test_sim_basics"
  "test_sim_basics.pdb"
  "test_sim_basics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_basics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
