# Empty dependencies file for test_sim_basics.
# This may be replaced when dependencies are built.
