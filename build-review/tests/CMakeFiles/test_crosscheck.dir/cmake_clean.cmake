file(REMOVE_RECURSE
  "CMakeFiles/test_crosscheck.dir/test_crosscheck.cpp.o"
  "CMakeFiles/test_crosscheck.dir/test_crosscheck.cpp.o.d"
  "test_crosscheck"
  "test_crosscheck.pdb"
  "test_crosscheck[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crosscheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
