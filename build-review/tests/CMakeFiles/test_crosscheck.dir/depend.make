# Empty dependencies file for test_crosscheck.
# This may be replaced when dependencies are built.
