# Empty dependencies file for test_secded.
# This may be replaced when dependencies are built.
