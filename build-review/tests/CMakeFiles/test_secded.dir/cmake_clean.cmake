file(REMOVE_RECURSE
  "CMakeFiles/test_secded.dir/test_secded.cpp.o"
  "CMakeFiles/test_secded.dir/test_secded.cpp.o.d"
  "test_secded"
  "test_secded.pdb"
  "test_secded[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_secded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
