# Empty dependencies file for test_golden_vectors.
# This may be replaced when dependencies are built.
