file(REMOVE_RECURSE
  "CMakeFiles/test_golden_vectors.dir/test_golden_vectors.cpp.o"
  "CMakeFiles/test_golden_vectors.dir/test_golden_vectors.cpp.o.d"
  "test_golden_vectors"
  "test_golden_vectors.pdb"
  "test_golden_vectors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_golden_vectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
