file(REMOVE_RECURSE
  "CMakeFiles/test_nearest_scan.dir/test_nearest_scan.cpp.o"
  "CMakeFiles/test_nearest_scan.dir/test_nearest_scan.cpp.o.d"
  "test_nearest_scan"
  "test_nearest_scan.pdb"
  "test_nearest_scan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nearest_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
