# Empty compiler generated dependencies file for test_nearest_scan.
# This may be replaced when dependencies are built.
