file(REMOVE_RECURSE
  "CMakeFiles/test_error_index.dir/test_error_index.cpp.o"
  "CMakeFiles/test_error_index.dir/test_error_index.cpp.o.d"
  "test_error_index"
  "test_error_index.pdb"
  "test_error_index[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_error_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
