# Empty dependencies file for test_error_index.
# This may be replaced when dependencies are built.
