file(REMOVE_RECURSE
  "CMakeFiles/test_transport_shed.dir/test_transport_shed.cpp.o"
  "CMakeFiles/test_transport_shed.dir/test_transport_shed.cpp.o.d"
  "test_transport_shed"
  "test_transport_shed.pdb"
  "test_transport_shed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transport_shed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
