# Empty dependencies file for test_transport_shed.
# This may be replaced when dependencies are built.
