# Empty dependencies file for test_concurrent_sessions.
# This may be replaced when dependencies are built.
