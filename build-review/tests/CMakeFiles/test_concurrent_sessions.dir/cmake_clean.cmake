file(REMOVE_RECURSE
  "CMakeFiles/test_concurrent_sessions.dir/test_concurrent_sessions.cpp.o"
  "CMakeFiles/test_concurrent_sessions.dir/test_concurrent_sessions.cpp.o.d"
  "test_concurrent_sessions"
  "test_concurrent_sessions.pdb"
  "test_concurrent_sessions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_concurrent_sessions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
