
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_determinism_lint.cpp" "tests/CMakeFiles/test_determinism_lint.dir/test_determinism_lint.cpp.o" "gcc" "tests/CMakeFiles/test_determinism_lint.dir/test_determinism_lint.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/tools/lint/CMakeFiles/determinism_lint_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/auth_substrate.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/auth_attack.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/auth_mc.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/auth_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/auth_server.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/auth_firmware.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/auth_metrics.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/auth_protocol.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/auth_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/auth_crypto.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/auth_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/auth_ecc.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/auth_util.dir/DependInfo.cmake"
  "/root/repo/build-review/tools/lint/CMakeFiles/lint_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
