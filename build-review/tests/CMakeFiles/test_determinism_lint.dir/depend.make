# Empty dependencies file for test_determinism_lint.
# This may be replaced when dependencies are built.
