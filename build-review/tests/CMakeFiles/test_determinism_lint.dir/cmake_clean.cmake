file(REMOVE_RECURSE
  "CMakeFiles/test_determinism_lint.dir/test_determinism_lint.cpp.o"
  "CMakeFiles/test_determinism_lint.dir/test_determinism_lint.cpp.o.d"
  "test_determinism_lint"
  "test_determinism_lint.pdb"
  "test_determinism_lint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_determinism_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
