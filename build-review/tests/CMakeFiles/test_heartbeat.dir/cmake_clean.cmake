file(REMOVE_RECURSE
  "CMakeFiles/test_heartbeat.dir/test_heartbeat.cpp.o"
  "CMakeFiles/test_heartbeat.dir/test_heartbeat.cpp.o.d"
  "test_heartbeat"
  "test_heartbeat.pdb"
  "test_heartbeat[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_heartbeat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
