# Empty dependencies file for test_heartbeat.
# This may be replaced when dependencies are built.
