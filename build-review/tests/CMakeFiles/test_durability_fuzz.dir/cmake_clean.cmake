file(REMOVE_RECURSE
  "CMakeFiles/test_durability_fuzz.dir/test_durability_fuzz.cpp.o"
  "CMakeFiles/test_durability_fuzz.dir/test_durability_fuzz.cpp.o.d"
  "test_durability_fuzz"
  "test_durability_fuzz.pdb"
  "test_durability_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_durability_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
