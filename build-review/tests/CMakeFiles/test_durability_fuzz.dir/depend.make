# Empty dependencies file for test_durability_fuzz.
# This may be replaced when dependencies are built.
