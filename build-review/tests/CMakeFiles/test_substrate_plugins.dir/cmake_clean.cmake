file(REMOVE_RECURSE
  "CMakeFiles/test_substrate_plugins.dir/test_substrate_plugins.cpp.o"
  "CMakeFiles/test_substrate_plugins.dir/test_substrate_plugins.cpp.o.d"
  "test_substrate_plugins"
  "test_substrate_plugins.pdb"
  "test_substrate_plugins[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_substrate_plugins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
