# Empty compiler generated dependencies file for test_substrate_plugins.
# This may be replaced when dependencies are built.
