# Empty compiler generated dependencies file for test_physical_access.
# This may be replaced when dependencies are built.
