file(REMOVE_RECURSE
  "CMakeFiles/test_physical_access.dir/test_physical_access.cpp.o"
  "CMakeFiles/test_physical_access.dir/test_physical_access.cpp.o.d"
  "test_physical_access"
  "test_physical_access.pdb"
  "test_physical_access[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_physical_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
