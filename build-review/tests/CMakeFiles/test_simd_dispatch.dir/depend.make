# Empty dependencies file for test_simd_dispatch.
# This may be replaced when dependencies are built.
