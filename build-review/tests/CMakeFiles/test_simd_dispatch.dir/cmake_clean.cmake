file(REMOVE_RECURSE
  "CMakeFiles/test_simd_dispatch.dir/test_simd_dispatch.cpp.o"
  "CMakeFiles/test_simd_dispatch.dir/test_simd_dispatch.cpp.o.d"
  "test_simd_dispatch"
  "test_simd_dispatch.pdb"
  "test_simd_dispatch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simd_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
