file(REMOVE_RECURSE
  "CMakeFiles/test_robust_enrollment.dir/test_robust_enrollment.cpp.o"
  "CMakeFiles/test_robust_enrollment.dir/test_robust_enrollment.cpp.o.d"
  "test_robust_enrollment"
  "test_robust_enrollment.pdb"
  "test_robust_enrollment[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_robust_enrollment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
