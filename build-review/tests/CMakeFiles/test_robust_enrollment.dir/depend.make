# Empty dependencies file for test_robust_enrollment.
# This may be replaced when dependencies are built.
