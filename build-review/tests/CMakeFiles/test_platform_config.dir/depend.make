# Empty dependencies file for test_platform_config.
# This may be replaced when dependencies are built.
