file(REMOVE_RECURSE
  "CMakeFiles/test_platform_config.dir/test_platform_config.cpp.o"
  "CMakeFiles/test_platform_config.dir/test_platform_config.cpp.o.d"
  "test_platform_config"
  "test_platform_config.pdb"
  "test_platform_config[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_platform_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
