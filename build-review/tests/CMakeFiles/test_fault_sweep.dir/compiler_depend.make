# Empty compiler generated dependencies file for test_fault_sweep.
# This may be replaced when dependencies are built.
