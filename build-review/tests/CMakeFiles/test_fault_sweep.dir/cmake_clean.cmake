file(REMOVE_RECURSE
  "CMakeFiles/test_fault_sweep.dir/test_fault_sweep.cpp.o"
  "CMakeFiles/test_fault_sweep.dir/test_fault_sweep.cpp.o.d"
  "test_fault_sweep"
  "test_fault_sweep.pdb"
  "test_fault_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fault_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
