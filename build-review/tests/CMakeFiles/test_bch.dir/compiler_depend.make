# Empty compiler generated dependencies file for test_bch.
# This may be replaced when dependencies are built.
