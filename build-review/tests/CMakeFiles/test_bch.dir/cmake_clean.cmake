file(REMOVE_RECURSE
  "CMakeFiles/test_bch.dir/test_bch.cpp.o"
  "CMakeFiles/test_bch.dir/test_bch.cpp.o.d"
  "test_bch"
  "test_bch.pdb"
  "test_bch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
