file(REMOVE_RECURSE
  "CMakeFiles/test_server_batch.dir/test_server_batch.cpp.o"
  "CMakeFiles/test_server_batch.dir/test_server_batch.cpp.o.d"
  "test_server_batch"
  "test_server_batch.pdb"
  "test_server_batch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_server_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
