# Empty compiler generated dependencies file for test_server_batch.
# This may be replaced when dependencies are built.
