# Empty compiler generated dependencies file for test_crash_recovery.
# This may be replaced when dependencies are built.
