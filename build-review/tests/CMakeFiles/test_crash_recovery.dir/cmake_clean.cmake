file(REMOVE_RECURSE
  "CMakeFiles/test_crash_recovery.dir/test_crash_recovery.cpp.o"
  "CMakeFiles/test_crash_recovery.dir/test_crash_recovery.cpp.o.d"
  "test_crash_recovery"
  "test_crash_recovery.pdb"
  "test_crash_recovery[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crash_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
