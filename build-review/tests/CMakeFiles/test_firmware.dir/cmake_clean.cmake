file(REMOVE_RECURSE
  "CMakeFiles/test_firmware.dir/test_firmware.cpp.o"
  "CMakeFiles/test_firmware.dir/test_firmware.cpp.o.d"
  "test_firmware"
  "test_firmware.pdb"
  "test_firmware[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_firmware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
