file(REMOVE_RECURSE
  "CMakeFiles/test_wire_codec.dir/test_wire_codec.cpp.o"
  "CMakeFiles/test_wire_codec.dir/test_wire_codec.cpp.o.d"
  "test_wire_codec"
  "test_wire_codec.pdb"
  "test_wire_codec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wire_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
