file(REMOVE_RECURSE
  "CMakeFiles/test_journal.dir/test_journal.cpp.o"
  "CMakeFiles/test_journal.dir/test_journal.cpp.o.d"
  "test_journal"
  "test_journal.pdb"
  "test_journal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_journal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
