# Empty compiler generated dependencies file for test_journal.
# This may be replaced when dependencies are built.
