# Empty compiler generated dependencies file for test_transport_chaos.
# This may be replaced when dependencies are built.
