file(REMOVE_RECURSE
  "CMakeFiles/test_transport_chaos.dir/test_transport_chaos.cpp.o"
  "CMakeFiles/test_transport_chaos.dir/test_transport_chaos.cpp.o.d"
  "test_transport_chaos"
  "test_transport_chaos.pdb"
  "test_transport_chaos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transport_chaos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
