file(REMOVE_RECURSE
  "CMakeFiles/test_session_cap.dir/test_session_cap.cpp.o"
  "CMakeFiles/test_session_cap.dir/test_session_cap.cpp.o.d"
  "test_session_cap"
  "test_session_cap.pdb"
  "test_session_cap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_session_cap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
