file(REMOVE_RECURSE
  "CMakeFiles/test_mutex.dir/test_mutex.cpp.o"
  "CMakeFiles/test_mutex.dir/test_mutex.cpp.o.d"
  "test_mutex"
  "test_mutex.pdb"
  "test_mutex[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mutex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
