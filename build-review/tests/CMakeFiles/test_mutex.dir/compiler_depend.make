# Empty compiler generated dependencies file for test_mutex.
# This may be replaced when dependencies are built.
