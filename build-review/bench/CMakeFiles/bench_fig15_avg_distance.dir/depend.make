# Empty dependencies file for bench_fig15_avg_distance.
# This may be replaced when dependencies are built.
