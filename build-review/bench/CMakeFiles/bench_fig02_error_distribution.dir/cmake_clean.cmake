file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_error_distribution.dir/bench_fig02_error_distribution.cpp.o"
  "CMakeFiles/bench_fig02_error_distribution.dir/bench_fig02_error_distribution.cpp.o.d"
  "bench_fig02_error_distribution"
  "bench_fig02_error_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_error_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
