# Empty dependencies file for bench_fig02_error_distribution.
# This may be replaced when dependencies are built.
