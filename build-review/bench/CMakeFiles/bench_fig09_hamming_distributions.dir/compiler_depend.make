# Empty compiler generated dependencies file for bench_fig09_hamming_distributions.
# This may be replaced when dependencies are built.
