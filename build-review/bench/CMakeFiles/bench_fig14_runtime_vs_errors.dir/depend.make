# Empty dependencies file for bench_fig14_runtime_vs_errors.
# This may be replaced when dependencies are built.
