file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_runtime_vs_errors.dir/bench_fig14_runtime_vs_errors.cpp.o"
  "CMakeFiles/bench_fig14_runtime_vs_errors.dir/bench_fig14_runtime_vs_errors.cpp.o.d"
  "bench_fig14_runtime_vs_errors"
  "bench_fig14_runtime_vs_errors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_runtime_vs_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
