file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multivdd.dir/bench_ablation_multivdd.cpp.o"
  "CMakeFiles/bench_ablation_multivdd.dir/bench_ablation_multivdd.cpp.o.d"
  "bench_ablation_multivdd"
  "bench_ablation_multivdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multivdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
