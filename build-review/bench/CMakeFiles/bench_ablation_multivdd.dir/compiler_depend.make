# Empty compiler generated dependencies file for bench_ablation_multivdd.
# This may be replaced when dependencies are built.
