file(REMOVE_RECURSE
  "CMakeFiles/bench_runner.dir/bench_runner.cpp.o"
  "CMakeFiles/bench_runner.dir/bench_runner.cpp.o.d"
  "bench_runner"
  "bench_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
