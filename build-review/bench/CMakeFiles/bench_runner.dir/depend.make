# Empty dependencies file for bench_runner.
# This may be replaced when dependencies are built.
