file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_aliasing_uniformity.dir/bench_fig12_aliasing_uniformity.cpp.o"
  "CMakeFiles/bench_fig12_aliasing_uniformity.dir/bench_fig12_aliasing_uniformity.cpp.o.d"
  "bench_fig12_aliasing_uniformity"
  "bench_fig12_aliasing_uniformity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_aliasing_uniformity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
