# Empty compiler generated dependencies file for bench_fig12_aliasing_uniformity.
# This may be replaced when dependencies are built.
