file(REMOVE_RECURSE
  "CMakeFiles/bench_transport_load.dir/bench_transport_load.cpp.o"
  "CMakeFiles/bench_transport_load.dir/bench_transport_load.cpp.o.d"
  "bench_transport_load"
  "bench_transport_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_transport_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
