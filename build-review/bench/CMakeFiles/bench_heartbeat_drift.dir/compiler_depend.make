# Empty compiler generated dependencies file for bench_heartbeat_drift.
# This may be replaced when dependencies are built.
