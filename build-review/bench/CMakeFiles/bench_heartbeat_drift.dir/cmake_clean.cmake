file(REMOVE_RECURSE
  "CMakeFiles/bench_heartbeat_drift.dir/bench_heartbeat_drift.cpp.o"
  "CMakeFiles/bench_heartbeat_drift.dir/bench_heartbeat_drift.cpp.o.d"
  "bench_heartbeat_drift"
  "bench_heartbeat_drift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_heartbeat_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
