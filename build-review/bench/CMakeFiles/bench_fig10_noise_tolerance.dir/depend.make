# Empty dependencies file for bench_fig10_noise_tolerance.
# This may be replaced when dependencies are built.
