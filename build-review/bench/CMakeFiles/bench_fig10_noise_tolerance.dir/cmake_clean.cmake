file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_noise_tolerance.dir/bench_fig10_noise_tolerance.cpp.o"
  "CMakeFiles/bench_fig10_noise_tolerance.dir/bench_fig10_noise_tolerance.cpp.o.d"
  "bench_fig10_noise_tolerance"
  "bench_fig10_noise_tolerance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_noise_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
