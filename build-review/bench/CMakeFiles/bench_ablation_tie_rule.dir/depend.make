# Empty dependencies file for bench_ablation_tie_rule.
# This may be replaced when dependencies are built.
