file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_tie_rule.dir/bench_ablation_tie_rule.cpp.o"
  "CMakeFiles/bench_ablation_tie_rule.dir/bench_ablation_tie_rule.cpp.o.d"
  "bench_ablation_tie_rule"
  "bench_ablation_tie_rule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tie_rule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
