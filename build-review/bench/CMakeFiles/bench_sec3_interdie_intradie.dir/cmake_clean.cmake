file(REMOVE_RECURSE
  "CMakeFiles/bench_sec3_interdie_intradie.dir/bench_sec3_interdie_intradie.cpp.o"
  "CMakeFiles/bench_sec3_interdie_intradie.dir/bench_sec3_interdie_intradie.cpp.o.d"
  "bench_sec3_interdie_intradie"
  "bench_sec3_interdie_intradie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec3_interdie_intradie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
