# Empty dependencies file for bench_sec3_interdie_intradie.
# This may be replaced when dependencies are built.
