# Empty dependencies file for bench_fig16_model_attack.
# This may be replaced when dependencies are built.
