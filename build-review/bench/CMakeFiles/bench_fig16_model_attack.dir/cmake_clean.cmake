file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_model_attack.dir/bench_fig16_model_attack.cpp.o"
  "CMakeFiles/bench_fig16_model_attack.dir/bench_fig16_model_attack.cpp.o.d"
  "bench_fig16_model_attack"
  "bench_fig16_model_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_model_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
