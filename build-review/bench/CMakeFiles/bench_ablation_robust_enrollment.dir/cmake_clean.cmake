file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_robust_enrollment.dir/bench_ablation_robust_enrollment.cpp.o"
  "CMakeFiles/bench_ablation_robust_enrollment.dir/bench_ablation_robust_enrollment.cpp.o.d"
  "bench_ablation_robust_enrollment"
  "bench_ablation_robust_enrollment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_robust_enrollment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
