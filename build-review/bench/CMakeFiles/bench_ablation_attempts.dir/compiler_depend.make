# Empty compiler generated dependencies file for bench_ablation_attempts.
# This may be replaced when dependencies are built.
