file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_attempts.dir/bench_ablation_attempts.cpp.o"
  "CMakeFiles/bench_ablation_attempts.dir/bench_ablation_attempts.cpp.o.d"
  "bench_ablation_attempts"
  "bench_ablation_attempts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_attempts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
