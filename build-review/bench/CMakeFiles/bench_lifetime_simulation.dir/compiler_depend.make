# Empty compiler generated dependencies file for bench_lifetime_simulation.
# This may be replaced when dependencies are built.
