file(REMOVE_RECURSE
  "CMakeFiles/bench_lifetime_simulation.dir/bench_lifetime_simulation.cpp.o"
  "CMakeFiles/bench_lifetime_simulation.dir/bench_lifetime_simulation.cpp.o.d"
  "bench_lifetime_simulation"
  "bench_lifetime_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lifetime_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
