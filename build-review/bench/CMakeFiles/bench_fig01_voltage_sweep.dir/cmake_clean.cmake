file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_voltage_sweep.dir/bench_fig01_voltage_sweep.cpp.o"
  "CMakeFiles/bench_fig01_voltage_sweep.dir/bench_fig01_voltage_sweep.cpp.o.d"
  "bench_fig01_voltage_sweep"
  "bench_fig01_voltage_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_voltage_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
