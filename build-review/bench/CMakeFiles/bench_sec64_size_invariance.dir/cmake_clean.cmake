file(REMOVE_RECURSE
  "CMakeFiles/bench_sec64_size_invariance.dir/bench_sec64_size_invariance.cpp.o"
  "CMakeFiles/bench_sec64_size_invariance.dir/bench_sec64_size_invariance.cpp.o.d"
  "bench_sec64_size_invariance"
  "bench_sec64_size_invariance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec64_size_invariance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
