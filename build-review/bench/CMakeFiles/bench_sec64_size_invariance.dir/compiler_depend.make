# Empty compiler generated dependencies file for bench_sec64_size_invariance.
# This may be replaced when dependencies are built.
