file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_decoys.dir/bench_ablation_decoys.cpp.o"
  "CMakeFiles/bench_ablation_decoys.dir/bench_ablation_decoys.cpp.o.d"
  "bench_ablation_decoys"
  "bench_ablation_decoys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_decoys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
