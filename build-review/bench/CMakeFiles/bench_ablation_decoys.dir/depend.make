# Empty dependencies file for bench_ablation_decoys.
# This may be replaced when dependencies are built.
