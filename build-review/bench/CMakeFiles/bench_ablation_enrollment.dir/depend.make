# Empty dependencies file for bench_ablation_enrollment.
# This may be replaced when dependencies are built.
