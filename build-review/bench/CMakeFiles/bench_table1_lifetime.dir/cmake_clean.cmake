file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_lifetime.dir/bench_table1_lifetime.cpp.o"
  "CMakeFiles/bench_table1_lifetime.dir/bench_table1_lifetime.cpp.o.d"
  "bench_table1_lifetime"
  "bench_table1_lifetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
