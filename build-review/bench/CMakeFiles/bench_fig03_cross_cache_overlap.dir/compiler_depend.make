# Empty compiler generated dependencies file for bench_fig03_cross_cache_overlap.
# This may be replaced when dependencies are built.
