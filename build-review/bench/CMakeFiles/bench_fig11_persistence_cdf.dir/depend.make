# Empty dependencies file for bench_fig11_persistence_cdf.
# This may be replaced when dependencies are built.
