# Empty dependencies file for bench_ablation_fuzzy.
# This may be replaced when dependencies are built.
