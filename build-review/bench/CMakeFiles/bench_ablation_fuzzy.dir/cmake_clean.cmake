file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fuzzy.dir/bench_ablation_fuzzy.cpp.o"
  "CMakeFiles/bench_ablation_fuzzy.dir/bench_ablation_fuzzy.cpp.o.d"
  "bench_ablation_fuzzy"
  "bench_ablation_fuzzy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fuzzy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
