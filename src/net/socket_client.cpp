#include "net/socket_client.hpp"

#include <cerrno>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace authenticache::net {

SocketClient::~SocketClient()
{
    close();
}

SocketClient::SocketClient(SocketClient &&other) noexcept
    : fd(std::exchange(other.fd, -1)),
      sawEof(std::exchange(other.sawEof, false)),
      decoder(std::move(other.decoder))
{
}

SocketClient &
SocketClient::operator=(SocketClient &&other) noexcept
{
    if (this != &other) {
        close();
        fd = std::exchange(other.fd, -1);
        sawEof = std::exchange(other.sawEof, false);
        decoder = std::move(other.decoder);
    }
    return *this;
}

bool
SocketClient::connectTo(std::uint16_t port)
{
    close();
    fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        close();
        return false;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sawEof = false;
    decoder = WireDecoder{};
    return true;
}

bool
SocketClient::writeRaw(std::span<const std::uint8_t> data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool
SocketClient::writeSlowly(std::span<const std::uint8_t> data)
{
    for (std::size_t i = 0; i < data.size(); ++i)
        if (!writeRaw(data.subspan(i, 1)))
            return false;
    return true;
}

bool
SocketClient::sendMessage(std::uint64_t stream,
                          const protocol::Message &m)
{
    return writeRaw(encodeWireMessage(stream, m));
}

std::optional<std::pair<std::uint64_t, protocol::Message>>
SocketClient::readMessage(int timeoutMs)
{
    for (;;) {
        if (auto frame = decoder.next()) {
            try {
                return std::make_pair(
                    frame->stream,
                    protocol::decodeMessage(frame->payload));
            } catch (const protocol::DecodeError &) {
                return std::nullopt;
            }
        }
        if (decoder.failed() || sawEof || fd < 0)
            return std::nullopt;

        pollfd pfd{fd, POLLIN, 0};
        int ready = ::poll(&pfd, 1, timeoutMs);
        if (ready <= 0)
            return std::nullopt; // Timeout or poll failure.

        std::uint8_t chunk[4096];
        ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n > 0) {
            decoder.feed(std::span<const std::uint8_t>(
                chunk, static_cast<std::size_t>(n)));
            continue;
        }
        if (n == 0) {
            sawEof = true;
            continue; // A buffered frame may still decode.
        }
        if (errno == EINTR)
            continue;
        sawEof = true;
    }
}

void
SocketClient::shutdownWrite()
{
    if (fd >= 0)
        ::shutdown(fd, SHUT_WR);
}

void
SocketClient::abort()
{
    if (fd >= 0) {
        // SO_LINGER with zero timeout turns close() into an RST --
        // the server sees an abortive disconnect, not a FIN.
        linger lg{1, 0};
        ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    }
    close();
}

void
SocketClient::close()
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

} // namespace authenticache::net
