#include "net/wire.hpp"

#include "protocol/serialize.hpp"
#include "util/crc32.hpp"

namespace authenticache::net {

const char *
wireErrorName(WireError e)
{
    switch (e) {
      case WireError::None: return "none";
      case WireError::BadMagic: return "bad-magic";
      case WireError::Oversized: return "oversized";
      case WireError::Undersized: return "undersized";
      case WireError::BadCrc: return "bad-crc";
    }
    return "?";
}

std::vector<std::uint8_t>
encodeWireFrame(std::uint64_t stream,
                std::span<const std::uint8_t> payload)
{
    protocol::ByteWriter w;
    w.putU32(kWireMagic);
    w.putU64(stream);
    w.putU32(static_cast<std::uint32_t>(payload.size()));
    w.putBytes(payload);
    // The CRC covers everything after the magic: streamId, length,
    // payload. Recompute over the written bytes so encoder and
    // decoder agree byte-for-byte on the covered range.
    std::span<const std::uint8_t> covered(w.bytes().data() + 4,
                                          w.bytes().size() - 4);
    w.putU32(util::crc32(covered));
    return w.take();
}

std::vector<std::uint8_t>
encodeWireMessage(std::uint64_t stream, const protocol::Message &m)
{
    return encodeWireFrame(stream, protocol::encodeMessage(m));
}

std::uint32_t
WireDecoder::peekU32(std::size_t off) const
{
    const std::uint8_t *p = buf.data() + head + off;
    return static_cast<std::uint32_t>(p[0]) |
           static_cast<std::uint32_t>(p[1]) << 8 |
           static_cast<std::uint32_t>(p[2]) << 16 |
           static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t
WireDecoder::peekU64(std::size_t off) const
{
    return static_cast<std::uint64_t>(peekU32(off)) |
           static_cast<std::uint64_t>(peekU32(off + 4)) << 32;
}

void
WireDecoder::feed(std::span<const std::uint8_t> data)
{
    if (failed())
        return;
    // Compact lazily: only when the dead prefix dominates, so feeding
    // one byte at a time (slow-loris) stays O(1) amortized.
    if (head > 4096 && head > buf.size() / 2) {
        buf.erase(buf.begin(),
                  buf.begin() + static_cast<std::ptrdiff_t>(head));
        head = 0;
    }
    buf.insert(buf.end(), data.begin(), data.end());
}

std::optional<WireFrame>
WireDecoder::next()
{
    if (failed())
        return std::nullopt;
    if (buffered() < kWireHeaderBytes)
        return std::nullopt; // Torn header: wait for more bytes.

    if (peekU32(0) != kWireMagic) {
        err = WireError::BadMagic;
        return std::nullopt;
    }
    const std::uint64_t stream = peekU64(4);
    const std::size_t len = peekU32(12);
    if (len > kMaxWirePayload) {
        err = WireError::Oversized;
        return std::nullopt;
    }
    if (len < kMinWirePayload) {
        err = WireError::Undersized;
        return std::nullopt;
    }
    const std::size_t total =
        kWireHeaderBytes + len + kWireTrailerBytes;
    if (buffered() < total)
        return std::nullopt; // Torn payload: wait for more bytes.

    // CRC over streamId + length + payload (everything but the magic
    // and the trailer itself).
    std::span<const std::uint8_t> covered(buf.data() + head + 4,
                                          8 + 4 + len);
    if (util::crc32(covered) != peekU32(kWireHeaderBytes + len)) {
        err = WireError::BadCrc;
        return std::nullopt;
    }

    WireFrame frame;
    frame.stream = stream;
    frame.payload.assign(buf.begin() + static_cast<std::ptrdiff_t>(
                                           head + kWireHeaderBytes),
                         buf.begin() + static_cast<std::ptrdiff_t>(
                                           head + kWireHeaderBytes +
                                           len));
    head += total;
    if (head == buf.size()) {
        buf.clear();
        head = 0;
    }
    return frame;
}

} // namespace authenticache::net
