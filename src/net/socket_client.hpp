/**
 * @file
 * Minimal blocking TCP client for tests and benches: connects to the
 * EpollTransport listener, frames messages onto streams, and decodes
 * replies with its own WireDecoder. Waiting uses poll() with caller
 * supplied millisecond budgets -- the client never reads a clock, so
 * it stays inside the repo's determinism lint for src/.
 *
 * It also exposes the raw-byte and partial-write surface the chaos
 * suite needs: writeRaw for garbage/torn frames, writeSlowly for a
 * slow-loris byte dribble, shutdownWrite for half-open connections,
 * and abort() for RST-style disconnects mid-frame.
 */

#ifndef AUTH_NET_SOCKET_CLIENT_HPP
#define AUTH_NET_SOCKET_CLIENT_HPP

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "net/wire.hpp"

namespace authenticache::net {

class SocketClient
{
  public:
    SocketClient() = default;
    ~SocketClient();

    SocketClient(SocketClient &&other) noexcept;
    SocketClient &operator=(SocketClient &&other) noexcept;
    SocketClient(const SocketClient &) = delete;
    SocketClient &operator=(const SocketClient &) = delete;

    /** Connect to 127.0.0.1:@p port. @return success. */
    bool connectTo(std::uint16_t port);

    bool connected() const { return fd >= 0; }

    /** Write all of @p data (blocking). @return success. */
    bool writeRaw(std::span<const std::uint8_t> data);

    /** Write @p data one byte at a time (slow-loris probe). */
    bool writeSlowly(std::span<const std::uint8_t> data);

    /** Frame and send @p m on @p stream. */
    bool sendMessage(std::uint64_t stream, const protocol::Message &m);

    /**
     * Next reply frame, waiting up to @p timeoutMs for bytes.
     * std::nullopt on timeout, EOF, or decode failure (failed()).
     */
    std::optional<std::pair<std::uint64_t, protocol::Message>>
    readMessage(int timeoutMs);

    /** Decoder hit a wire error on the reply stream. */
    bool failed() const { return decoder.failed(); }

    /** Server closed the connection (seen during a read). */
    bool eof() const { return sawEof; }

    /** Half-close: FIN our side, replies still readable. */
    void shutdownWrite();

    /** Hard close, pending bytes discarded (RST to the server). */
    void abort();

    void close();

  private:
    int fd = -1;
    bool sawEof = false;
    WireDecoder decoder;
};

} // namespace authenticache::net

#endif // AUTH_NET_SOCKET_CLIENT_HPP
