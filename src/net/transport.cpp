#include "net/transport.hpp"

#include <sstream>

namespace authenticache::net {

namespace {

/** Canonical shed-reject reason; clients match it via
 *  isOverloadedReject, tests via the exact bytes. */
constexpr const char *kOverloadedReason =
    "overloaded: shed by transport admission control";

} // namespace

std::string
TransportCounters::serialize() const
{
    std::ostringstream os;
    os << "opened=" << connectionsOpened
       << " closed=" << connectionsClosed << " bytesIn=" << bytesIn
       << " bytesOut=" << bytesOut << " framesIn=" << framesIn
       << " framesOut=" << framesOut << " accepted=" << accepted
       << " shed=" << shed << " stalls=" << backpressureStalls
       << " codecErrors=" << codecErrors
       << " droppedOnClose=" << droppedOnClose
       << " slowReaderDrops=" << slowReaderDrops
       << " batches=" << batches
       << " sinksRetired=" << sinksRetired;
    return os.str();
}

protocol::ErrorMsg
overloadedReject()
{
    return protocol::ErrorMsg{kOverloadedReason};
}

bool
isOverloadedReject(const protocol::Message &m)
{
    const auto *e = std::get_if<protocol::ErrorMsg>(&m);
    return e != nullptr && e->reason == kOverloadedReason;
}

bool
isContinuationPayload(std::span<const std::uint8_t> payload)
{
    const auto type = protocol::peekMessageType(payload);
    return type == protocol::MessageType::ResponseMsg ||
           type == protocol::MessageType::RemapAck ||
           type == protocol::MessageType::RemapCommit ||
           type == protocol::MessageType::HeartbeatProof;
}

void
TransportCore::StreamSink::send(const protocol::Message &m)
{
    // Terminal messages end the exchange; the sink becomes
    // garbage-collectable whether or not delivery succeeds.
    // Heartbeat and TrustUpdate are deliberately *not* terminal: a
    // heartbeat session streams rounds over one sink indefinitely.
    // Revoke ends the session, so it retires the sink like a decision.
    if (std::holds_alternative<protocol::AuthDecision>(m) ||
        std::holds_alternative<protocol::RemapCommit>(m) ||
        std::holds_alternative<protocol::Revoke>(m) ||
        std::holds_alternative<protocol::ErrorMsg>(m))
        isRetired = true;
    if (conn.closed)
        return; // The peer is gone; nowhere to deliver.
    std::vector<std::uint8_t> bytes = encodeWireMessage(stream, m);
    conn.out.insert(conn.out.end(), bytes.begin(), bytes.end());
    ++core.tally.framesOut;
    core.tally.bytesOut += bytes.size();
    if (core.cfg.maxWriteBuffered != 0 &&
        conn.pendingOut() > core.cfg.maxWriteBuffered) {
        ++core.tally.slowReaderDrops;
        core.close(conn);
    }
}

TransportCore::TransportCore(server::ServerFrontEnd &front_,
                             const TransportConfig &config)
    : front(front_), cfg(config)
{
}

TransportCore::Conn &
TransportCore::open(int fd)
{
    auto conn = std::make_unique<Conn>();
    conn->id = nextId++;
    conn->fd = fd;
    Conn &ref = *conn;
    conns.emplace(ref.id, std::move(conn));
    ++tally.connectionsOpened;
    return ref;
}

void
TransportCore::close(Conn &conn)
{
    if (conn.closed)
        return;
    conn.closed = true;
    ++tally.connectionsClosed;
    tally.droppedOnClose += conn.queue.size();
    queuedTotal -= conn.queue.size();
    conn.queue.clear();
    conn.out.clear();
    conn.outHead = 0;
}

void
TransportCore::reap()
{
    for (auto it = conns.begin(); it != conns.end();) {
        if (it->second->closed)
            it = conns.erase(it);
        else
            ++it;
    }
}

void
TransportCore::admit(Conn &conn, WireFrame frame)
{
    // New work competes for the budget minus the continuation
    // reserve; continuations may fill the budget completely.
    std::size_t cap = cfg.globalInFlight;
    if (cfg.continuationReserve > 0 &&
        cfg.classifyContinuation != nullptr &&
        !cfg.classifyContinuation(frame.payload))
        cap -= std::min(cfg.continuationReserve, cap);
    if (queuedTotal >= cap) {
        // Budget exhausted: shed with an explicit reject on the
        // frame's own stream so the device learns immediately instead
        // of timing out. The reject bypasses the request queue -- the
        // whole point is to spend no queue capacity on it.
        ++tally.shed;
        auto [it, inserted] = conn.streams.try_emplace(
            frame.stream, *this, conn, frame.stream);
        (void)inserted;
        it->second.send(protocol::Message{overloadedReject()});
        // admit() never runs inside handleBatch, so no batch frame
        // holds this sink's address: erase it right away.
        if (it->second.retired()) {
            conn.streams.erase(it);
            ++tally.sinksRetired;
        }
        return;
    }
    ++tally.accepted;
    ++queuedTotal;
    conn.queue.push_back(std::move(frame));
}

void
TransportCore::drainDecoder(Conn &conn)
{
    while (!conn.closed && conn.queue.size() < cfg.perConnectionQueue) {
        std::optional<WireFrame> frame = conn.decoder.next();
        if (!frame)
            break;
        ++tally.framesIn;
        admit(conn, std::move(*frame));
    }
    if (conn.decoder.failed() && !conn.closed) {
        ++tally.codecErrors;
        close(conn);
    }
}

void
TransportCore::ingest(Conn &conn, std::span<const std::uint8_t> data)
{
    if (conn.closed)
        return;
    tally.bytesIn += data.size();
    conn.decoder.feed(data);
    drainDecoder(conn);
    // The queue filled with input still buffered: the connection is
    // now stalled on backpressure until a batch drains it.
    if (!conn.closed && !wantsRead(conn) &&
        conn.decoder.buffered() > 0)
        ++tally.backpressureStalls;
}

bool
TransportCore::wantsRead(const Conn &conn) const
{
    return !conn.closed && !conn.decoder.failed() &&
           conn.queue.size() < cfg.perConnectionQueue;
}

std::size_t
TransportCore::runBatch(util::ThreadPool &pool)
{
    if (queuedTotal == 0)
        return 0;

    // Round-robin lift: one frame per connection per lap, ascending
    // id, until the batch budget or the queues run out. FIFO within a
    // connection, no connection starves another.
    std::vector<server::Frame> frames;
    frames.reserve(std::min(queuedTotal, cfg.maxBatchFrames));
    bool progress = true;
    while (progress && frames.size() < cfg.maxBatchFrames) {
        progress = false;
        for (auto &[id, conn] : conns) {
            if (conn->queue.empty())
                continue;
            if (frames.size() >= cfg.maxBatchFrames)
                break;
            WireFrame wf = std::move(conn->queue.front());
            conn->queue.pop_front();
            --queuedTotal;
            auto [it, inserted] = conn->streams.try_emplace(
                wf.stream, *this, *conn, wf.stream);
            if (!inserted)
                it->second.revive();
            frames.push_back(server::Frame{std::move(wf.payload),
                                           &it->second});
            progress = true;
        }
    }
    if (frames.empty())
        return 0;

    ++tally.batches;
    inBatch = true;
    front.handleBatch(frames, pool);
    inBatch = false;

    // Retire sinks whose exchange completed this batch. Safe only
    // here: the batch's Frame::sink pointers are dead now, and the
    // next lift re-creates any stream that speaks again.
    for (auto &[id, conn] : conns) {
        for (auto it = conn->streams.begin();
             it != conn->streams.end();) {
            if (it->second.retired()) {
                it = conn->streams.erase(it);
                ++tally.sinksRetired;
            } else {
                ++it;
            }
        }
    }

    // Queue space opened up: connections whose decoders were stalled
    // on a full queue can surface their buffered frames now.
    for (auto &[id, conn] : conns)
        if (!conn->closed && conn->decoder.buffered() > 0)
            drainDecoder(*conn);

    return frames.size();
}

void
TransportCore::collectStats(util::StatsRegistry &registry,
                            const std::string &component) const
{
    const std::string comp = component + ".transport";
    registry.set(comp, "connections_opened", tally.connectionsOpened);
    registry.set(comp, "connections_closed", tally.connectionsClosed);
    registry.set(comp, "bytes_in", tally.bytesIn);
    registry.set(comp, "bytes_out", tally.bytesOut);
    registry.set(comp, "frames_in", tally.framesIn);
    registry.set(comp, "frames_out", tally.framesOut);
    registry.set(comp, "accepted", tally.accepted);
    registry.set(comp, "shed", tally.shed);
    registry.set(comp, "backpressure_stalls",
                 tally.backpressureStalls);
    registry.set(comp, "codec_errors", tally.codecErrors);
    registry.set(comp, "dropped_on_close", tally.droppedOnClose);
    registry.set(comp, "slow_reader_drops", tally.slowReaderDrops);
    registry.set(comp, "batches", tally.batches);
    registry.set(comp, "sinks_retired", tally.sinksRetired);
    registry.set(comp, "queued", static_cast<std::uint64_t>(
                                     queuedTotal));
    registry.set(comp, "connections_live",
                 static_cast<std::uint64_t>(conns.size()));
}

} // namespace authenticache::net
