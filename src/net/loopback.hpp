/**
 * @file
 * Deterministic in-process transport: the exact TransportCore
 * admission/shed/batch machinery of the socket transport, but over
 * in-memory byte pipes instead of TCP.
 *
 * The determinism contract: given the same sequence of client writes
 * (bytes and order), the same pump() cadence, and the same
 * TransportConfig, every observable -- replies, reject bytes, counter
 * values, connection fates -- is bit-identical across runs and across
 * ServerFrontEnd pool widths. Everything the transport does is
 * single-threaded and iterates connections in ascending id order; the
 * only parallel stage is handleBatch, which is bit-identical at any
 * thread count by its own contract. This is what lets the fault-sweep
 * and replay suites drive the real wire stack without sockets, and
 * the shed-determinism test compare counter transcripts across
 * seeded runs.
 *
 * Backpressure is modeled faithfully: pump() moves bytes from a
 * client's outbox into the core only while the core wants to read
 * that connection (queue below bound); the rest stay in the outbox,
 * exactly like bytes stalled in a TCP send buffer.
 */

#ifndef AUTH_NET_LOOPBACK_HPP
#define AUTH_NET_LOOPBACK_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "net/transport.hpp"
#include "net/wire.hpp"

namespace authenticache::net {

class LoopbackTransport : public Transport
{
  public:
    /** Test-side handle to one loopback connection. */
    class Client
    {
      public:
        std::uint64_t id() const { return conn->id; }

        /** Queue raw bytes toward the server (a TCP send). */
        void write(std::span<const std::uint8_t> data);

        /** Frame and queue one message on @p stream. */
        void sendMessage(std::uint64_t stream,
                         const protocol::Message &m);

        /** Half-close: no more client bytes; server drains then
         *  closes (an orderly FIN). */
        void closeWrite() { writeClosed = true; }

        /** Abortive close: unsent bytes vanish, the server sees EOF
         *  immediately (a mid-stream RST). */
        void abort();

        /** Decoded server->client messages, in arrival order. */
        std::vector<std::pair<std::uint64_t, protocol::Message>>
        readMessages();

        /** Raw undecoded server bytes (wire-level assertions). */
        std::vector<std::uint8_t> takeRawBytes();

        /** Client bytes not yet accepted by the server
         *  (backpressure observability). */
        std::size_t unsentBytes() const
        {
            return outbox.size() - outHead;
        }

        /** Server closed its side of this connection. */
        bool serverClosed() const { return conn->closed; }

      private:
        friend class LoopbackTransport;

        TransportCore::Conn *conn = nullptr;
        std::vector<std::uint8_t> outbox; ///< client -> server bytes
        std::size_t outHead = 0;
        std::vector<std::uint8_t> inbox; ///< server -> client bytes
        WireDecoder down; ///< client-side decoder of @c inbox
        bool writeClosed = false;
        bool aborted = false;
    };

    LoopbackTransport(server::ServerFrontEnd &front,
                      const TransportConfig &config);
    ~LoopbackTransport() override;

    /** Open a connection. Refused (returns nullptr) after drain(). */
    Client *connect();

    /**
     * One deterministic service cycle, connections in ascending id
     * order: move client bytes into the core (respecting
     * backpressure), deliver EOFs, run one batch, copy reply bytes to
     * client inboxes. @return frames serviced.
     */
    std::size_t pump(util::ThreadPool &pool) override;

    /** Pump until no admitted or deliverable work remains. */
    void pumpUntilIdle(util::ThreadPool &pool);

    void drain(util::ThreadPool &pool) override;

    const TransportCounters &counters() const override
    {
        return core.counters();
    }

    bool idle() const override;

    TransportCore &transportCore() { return core; }

  private:
    /** Move outbox bytes into the core while it wants them. */
    void feed(Client &client);

    TransportCore core;
    std::map<std::uint64_t, std::unique_ptr<Client>> clients;
    bool accepting = true;
};

} // namespace authenticache::net

#endif // AUTH_NET_LOOPBACK_HPP
