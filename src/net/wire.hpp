/**
 * @file
 * Wire codec for the socket transport: length-prefixed, CRC-checked
 * frames that multiplex many logical device sessions ("streams") over
 * one byte-stream connection.
 *
 * Layout of one wire frame:
 *
 *     [u32 magic 'ACW1'][u64 streamId][u32 payloadLen]
 *     [payload bytes][u32 crc32]
 *
 * all little-endian. The payload is exactly one encoded
 * protocol::Message frame (protocol::encodeMessage output, which
 * carries its own inner length + CRC); the outer CRC covers
 * streamId + payloadLen + payload, so header corruption is caught
 * before a length field is trusted for anything beyond the bounded
 * sanity checks below.
 *
 * The decoder is a push-style stream parser built for hostile input:
 * it never throws, never reads past the bytes it was fed, tolerates
 * arbitrary read fragmentation (a frame split at every byte is the
 * conformance suite's bread and butter), and turns every malformed
 * input -- bad preamble, oversized or undersized length, CRC
 * mismatch -- into a sticky, named error state. A transport treats a
 * decoder error as connection-fatal: on TCP, garbage means a broken
 * or malicious peer, and resynchronizing inside a corrupt stream is
 * not worth the attack surface.
 */

#ifndef AUTH_NET_WIRE_HPP
#define AUTH_NET_WIRE_HPP

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "protocol/messages.hpp"

namespace authenticache::net {

/** Frame preamble ("ACW1" when read as little-endian bytes). */
constexpr std::uint32_t kWireMagic = 0x31574341u;

/** Bytes before the payload: magic + streamId + payloadLen. */
constexpr std::size_t kWireHeaderBytes = 4 + 8 + 4;

/** Bytes after the payload: the outer CRC. */
constexpr std::size_t kWireTrailerBytes = 4;

/**
 * Payload size bounds. The minimum is the smallest encoded
 * protocol::Message (inner length + type byte + inner CRC); anything
 * shorter cannot decode and is rejected at the wire layer. The
 * maximum bounds per-connection buffering against a peer advertising
 * absurd lengths (the largest honest frame -- a dense remap request
 * -- stays far below it).
 */
constexpr std::size_t kMinWirePayload = 9;
constexpr std::size_t kMaxWirePayload = 1u << 20;

/** One decoded wire frame: the stream tag plus the inner payload. */
struct WireFrame
{
    std::uint64_t stream = 0;
    std::vector<std::uint8_t> payload;
};

/** Why a decoder refused its input (sticky; connection-fatal). */
enum class WireError : std::uint8_t
{
    None,
    BadMagic,   ///< Preamble mismatch (garbage or desynced stream).
    Oversized,  ///< payloadLen > kMaxWirePayload.
    Undersized, ///< payloadLen < kMinWirePayload.
    BadCrc,     ///< Outer CRC mismatch.
};

const char *wireErrorName(WireError e);

/** Frame @p payload for @p stream (payload copied, CRC appended). */
std::vector<std::uint8_t>
encodeWireFrame(std::uint64_t stream,
                std::span<const std::uint8_t> payload);

/** Convenience: encode @p m with protocol::encodeMessage and frame it. */
std::vector<std::uint8_t> encodeWireMessage(std::uint64_t stream,
                                            const protocol::Message &m);

/**
 * Push-style streaming decoder. Feed bytes as they arrive (any
 * fragmentation); pull complete frames with next(). After the first
 * malformed frame the decoder latches error() and next() returns
 * nothing forever -- the owning connection must be torn down.
 */
class WireDecoder
{
  public:
    /** Append raw bytes from the connection. No-op once failed. */
    void feed(std::span<const std::uint8_t> data);

    /**
     * The next complete frame, if one is buffered. std::nullopt means
     * "need more bytes" -- or a latched error; check failed().
     */
    std::optional<WireFrame> next();

    bool failed() const { return err != WireError::None; }
    WireError error() const { return err; }

    /** Bytes buffered but not yet consumed (partial frame). */
    std::size_t buffered() const { return buf.size() - head; }

  private:
    std::uint32_t peekU32(std::size_t off) const;
    std::uint64_t peekU64(std::size_t off) const;

    std::vector<std::uint8_t> buf;
    std::size_t head = 0;
    WireError err = WireError::None;
};

} // namespace authenticache::net

#endif // AUTH_NET_WIRE_HPP
