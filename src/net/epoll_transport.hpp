/**
 * @file
 * Real-socket transport: a level-triggered epoll loop serving TCP
 * connections through the same TransportCore admission machinery as
 * the deterministic loopback.
 *
 * One thread owns the loop (single-threaded pump contract); request
 * parallelism comes from handleBatch's pool. Backpressure maps onto
 * epoll interest: when a connection's request queue fills, its
 * EPOLLIN interest is dropped -- the kernel receive buffer and then
 * the peer's send buffer fill, stalling the peer without a byte of
 * polling -- and restored once a batch drains the queue. EPOLLOUT is
 * subscribed only while reply bytes are actually pending, the
 * standard dance that avoids a busy wake-up per loop.
 *
 * The listener binds 127.0.0.1 on an ephemeral port by default
 * (port() reports it), so tests and benches never collide.
 */

#ifndef AUTH_NET_EPOLL_TRANSPORT_HPP
#define AUTH_NET_EPOLL_TRANSPORT_HPP

#include <cstdint>
#include <map>

#include "net/transport.hpp"

namespace authenticache::net {

class EpollTransport : public Transport
{
  public:
    /**
     * Bind + listen on 127.0.0.1:@p port (0 = ephemeral) and set up
     * the epoll instance. Throws std::system_error on any failure.
     */
    EpollTransport(server::ServerFrontEnd &front,
                   const TransportConfig &config,
                   std::uint16_t port = 0);
    ~EpollTransport() override;

    /** The bound TCP port. */
    std::uint16_t port() const { return boundPort; }

    /**
     * One service cycle: poll (non-blocking), accept, read, admit,
     * run one batch, flush replies, reap dead connections.
     * @return frames serviced.
     */
    std::size_t pump(util::ThreadPool &pool) override
    {
        return pump(pool, 0);
    }

    /** As above, blocking in epoll_wait up to @p timeoutMs. */
    std::size_t pump(util::ThreadPool &pool, int timeoutMs);

    void drain(util::ThreadPool &pool) override;

    const TransportCounters &counters() const override
    {
        return core.counters();
    }

    bool idle() const override;

    std::size_t connectionCount() const
    {
        return core.connectionCount();
    }

    TransportCore &transportCore() { return core; }

  private:
    void acceptPending();
    void readReady(TransportCore::Conn &conn);
    void flushWrites(TransportCore::Conn &conn);
    /** Sync a connection's EPOLLIN/EPOLLOUT interest with its state. */
    void updateInterest(TransportCore::Conn &conn);
    void teardown(TransportCore::Conn &conn);
    void reapClosed();

    TransportCore core;
    int epollFd = -1;
    int listenFd = -1;
    std::uint16_t boundPort = 0;
    bool accepting = true;
    /** Current epoll interest mask per connection fd. */
    std::map<int, std::uint32_t> interest;
};

} // namespace authenticache::net

#endif // AUTH_NET_EPOLL_TRANSPORT_HPP
