#include "net/epoll_transport.hpp"

#include <cerrno>
#include <cstring>
#include <system_error>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace authenticache::net {

namespace {

[[noreturn]] void
throwErrno(const char *what)
{
    throw std::system_error(errno, std::generic_category(), what);
}

/** fd -> Conn backlink stored in epoll_event.data.ptr. */
struct ConnTag
{
    TransportCore::Conn *conn;
};

} // namespace

EpollTransport::EpollTransport(server::ServerFrontEnd &front,
                               const TransportConfig &config,
                               std::uint16_t port)
    : core(front, config)
{
    listenFd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK |
                                     SOCK_CLOEXEC,
                        0);
    if (listenFd < 0)
        throwErrno("socket");
    int one = 1;
    ::setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0) {
        ::close(listenFd);
        throwErrno("bind");
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(listenFd, reinterpret_cast<sockaddr *>(&addr),
                      &len) < 0) {
        ::close(listenFd);
        throwErrno("getsockname");
    }
    boundPort = ntohs(addr.sin_port);
    if (::listen(listenFd, SOMAXCONN) < 0) {
        ::close(listenFd);
        throwErrno("listen");
    }

    epollFd = ::epoll_create1(EPOLL_CLOEXEC);
    if (epollFd < 0) {
        ::close(listenFd);
        throwErrno("epoll_create1");
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = nullptr; // nullptr tags the listener.
    if (::epoll_ctl(epollFd, EPOLL_CTL_ADD, listenFd, &ev) < 0) {
        ::close(epollFd);
        ::close(listenFd);
        throwErrno("epoll_ctl(listen)");
    }
}

EpollTransport::~EpollTransport()
{
    for (auto &[id, conn] : core.connections())
        if (conn->fd >= 0)
            ::close(conn->fd);
    if (listenFd >= 0)
        ::close(listenFd);
    if (epollFd >= 0)
        ::close(epollFd);
}

void
EpollTransport::acceptPending()
{
    for (;;) {
        int fd = ::accept4(listenFd, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK ||
                errno == ECONNABORTED)
                return;
            return; // EMFILE etc.: drop the wave, keep serving.
        }
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        TransportCore::Conn &conn = core.open(fd);
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.ptr = &conn;
        if (::epoll_ctl(epollFd, EPOLL_CTL_ADD, fd, &ev) < 0) {
            core.close(conn);
            ::close(fd);
            conn.fd = -1;
            continue;
        }
        interest[fd] = EPOLLIN;
    }
}

void
EpollTransport::readReady(TransportCore::Conn &conn)
{
    std::vector<std::uint8_t> chunk(core.config().readChunkBytes);
    while (core.wantsRead(conn)) {
        ssize_t n = ::read(conn.fd, chunk.data(), chunk.size());
        if (n > 0) {
            core.ingest(conn, std::span<const std::uint8_t>(
                                  chunk.data(),
                                  static_cast<std::size_t>(n)));
            continue;
        }
        if (n == 0) { // EOF
            teardown(conn);
            return;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return;
        if (errno == EINTR)
            continue;
        teardown(conn); // ECONNRESET and friends.
        return;
    }
    // Queue full with the socket still readable: pause EPOLLIN and
    // let TCP carry the backpressure to the peer. (The stall itself
    // was counted by ingest when the queue filled.)
    if (!conn.closed && !conn.readPaused) {
        conn.readPaused = true;
        updateInterest(conn);
    }
}

void
EpollTransport::flushWrites(TransportCore::Conn &conn)
{
    while (conn.pendingOut() > 0) {
        ssize_t n = ::send(conn.fd, conn.out.data() + conn.outHead,
                           conn.pendingOut(), MSG_NOSIGNAL);
        if (n > 0) {
            conn.outHead += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
        if (n < 0 && errno == EINTR)
            continue;
        teardown(conn); // EPIPE/ECONNRESET: peer is gone.
        return;
    }
    if (conn.pendingOut() == 0) {
        conn.out.clear();
        conn.outHead = 0;
    }
}

void
EpollTransport::updateInterest(TransportCore::Conn &conn)
{
    if (conn.fd < 0 || conn.closed)
        return;
    std::uint32_t want = 0;
    if (!conn.readPaused)
        want |= EPOLLIN;
    if (conn.pendingOut() > 0)
        want |= EPOLLOUT;
    auto it = interest.find(conn.fd);
    if (it == interest.end() || it->second == want)
        return;
    epoll_event ev{};
    ev.events = want;
    ev.data.ptr = &conn;
    if (::epoll_ctl(epollFd, EPOLL_CTL_MOD, conn.fd, &ev) == 0)
        it->second = want;
}

void
EpollTransport::teardown(TransportCore::Conn &conn)
{
    if (conn.fd >= 0) {
        ::epoll_ctl(epollFd, EPOLL_CTL_DEL, conn.fd, nullptr);
        interest.erase(conn.fd);
        ::close(conn.fd);
        conn.fd = -1;
    }
    core.close(conn);
}

void
EpollTransport::reapClosed()
{
    for (auto &[id, conn] : core.connections())
        if (conn->closed && conn->fd >= 0) {
            ::epoll_ctl(epollFd, EPOLL_CTL_DEL, conn->fd, nullptr);
            interest.erase(conn->fd);
            ::close(conn->fd);
            conn->fd = -1;
        }
    core.reap();
}

std::size_t
EpollTransport::pump(util::ThreadPool &pool, int timeoutMs)
{
    epoll_event events[64];
    int n = ::epoll_wait(epollFd, events, 64, timeoutMs);
    for (int i = 0; i < n; ++i) {
        if (events[i].data.ptr == nullptr) {
            if (accepting)
                acceptPending();
            continue;
        }
        auto &conn = *static_cast<TransportCore::Conn *>(
            events[i].data.ptr);
        if (conn.closed)
            continue;
        if (events[i].events & (EPOLLHUP | EPOLLERR)) {
            teardown(conn);
            continue;
        }
        if (events[i].events & EPOLLIN)
            readReady(conn);
        if (conn.closed)
            continue;
        if (events[i].events & EPOLLOUT)
            flushWrites(conn);
    }

    const std::size_t serviced = core.runBatch(pool);

    // Post-batch: flush fresh replies, resume paused readers whose
    // queues drained, and sync epoll interest with reality.
    for (auto &[id, conn] : core.connections()) {
        if (conn->closed)
            continue;
        if (conn->pendingOut() > 0)
            flushWrites(*conn);
        if (conn->closed)
            continue;
        if (conn->readPaused && core.wantsRead(*conn))
            conn->readPaused = false;
        updateInterest(*conn);
    }
    reapClosed();
    return serviced;
}

void
EpollTransport::drain(util::ThreadPool &pool)
{
    accepting = false;
    // Service admitted work and flush replies until quiescent. Each
    // cycle blocks briefly so peers get a chance to absorb replies;
    // a bounded cycle count keeps a wedged peer from hanging
    // shutdown (its connection is then torn down with the rest).
    std::size_t idleCycles = 0;
    std::size_t totalCycles = 0;
    while (idleCycles < 3 && totalCycles < 10000) {
        const std::size_t serviced = pump(pool, 1);
        ++totalCycles;
        if (serviced == 0 && idle())
            ++idleCycles;
        else
            idleCycles = 0;
    }
    for (auto &[id, conn] : core.connections())
        if (!conn->closed)
            teardown(*conn);
    reapClosed();
}

bool
EpollTransport::idle() const
{
    if (!core.idle())
        return false;
    for (const auto &[id, conn] : core.connections())
        if (!conn->closed && conn->pendingOut() > 0)
            return false;
    return true;
}

} // namespace authenticache::net
