/**
 * @file
 * Transport layer: admission control, load shedding, and batch
 * assembly between a byte-stream connection substrate and the
 * server's batch front end (ServerFrontEnd::handleBatch).
 *
 * The design follows Apache httpd's HTTP/2 engine-shed pattern
 * (h2_ngn_shed): work is assigned into capacity-bounded queues, the
 * assignment step -- not the worker -- refuses overload, and shutdown
 * drains what was admitted before closing anything. Concretely:
 *
 *  - Each connection owns a bounded request queue
 *    (TransportConfig::perConnectionQueue). When it fills, the
 *    transport stops *reading* that connection: on TCP the kernel
 *    buffer fills and the peer's sends stall -- backpressure travels
 *    the wire for free. Nothing already decoded is thrown away.
 *
 *  - A global in-flight budget (TransportConfig::globalInFlight)
 *    bounds the sum of all queues. A frame decoded while the budget
 *    is exhausted is *shed*: an Overloaded protocol reject goes back
 *    on the frame's own stream and the request is dropped. Shedding
 *    (not global backpressure) keeps one hot connection from stalling
 *    every other tenant of the server. Optionally, the top slice of
 *    the budget is reserved for continuation frames
 *    (TransportConfig::continuationReserve), so overload sheds new
 *    work first and already-started exchanges still complete.
 *
 *  - runBatch() lifts admitted requests round-robin across
 *    connections (ascending connection id, FIFO within each) into one
 *    ServerFrontEnd::handleBatch call, so no connection can starve
 *    another and loopback runs are deterministic.
 *
 * TransportCore is single-threaded by contract: exactly one thread
 * pumps a given transport (ingest -> runBatch -> flush). Parallelism
 * lives inside handleBatch, whose pool threads never touch the
 * connection state or reply sinks (replies are emitted by the
 * sequential merge stage). That keeps the whole layer free of locks
 * and makes loopback outcomes bit-identical at any pool width.
 *
 * Every decoded-but-shed, admitted, stalled, or failed frame is
 * tallied in TransportCounters and published to a StatsRegistry under
 * "server.transport.*" (collectStats).
 */

#ifndef AUTH_NET_TRANSPORT_HPP
#define AUTH_NET_TRANSPORT_HPP

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "net/wire.hpp"
#include "server/front_end.hpp"
#include "util/stats_registry.hpp"
#include "util/thread_pool.hpp"

namespace authenticache::net {

/** Admission-control and buffering knobs. */
struct TransportConfig
{
    /**
     * Bounded per-connection request queue: decoded frames admitted
     * but not yet batched. A full queue pauses reading (TCP
     * backpressure), it never drops.
     */
    std::size_t perConnectionQueue = 64;

    /**
     * Global in-flight budget: total admitted requests across all
     * connections. Frames decoded past it are shed with an
     * Overloaded reject.
     */
    std::size_t globalInFlight = 4096;

    /** Max frames lifted into one handleBatch call. */
    std::size_t maxBatchFrames = 1024;

    /** Socket/loopback read granularity in bytes. */
    std::size_t readChunkBytes = 16 * 1024;

    /**
     * Per-connection outbound buffer cap. A peer that stops reading
     * while replies accumulate past this is dropped (slow-reader
     * protection); 0 disables.
     */
    std::size_t maxWriteBuffered = 4u << 20;

    /**
     * Continuation-aware shedding (0 disables). When positive, the
     * top @c continuationReserve slots of the global budget are held
     * back for frames @c classifyContinuation marks as continuations
     * of in-progress exchanges; new-work frames are shed once the
     * unreserved slice fills. This protects half-done work from
     * congestion collapse: under sustained overload the server
     * finishes the challenges it already issued instead of minting
     * new ones whose responses would then be shed.
     */
    std::size_t continuationReserve = 0;

    /**
     * Classifier backing @c continuationReserve: true when the wire
     * payload continues an in-progress exchange. Unset means no frame
     * is a continuation (every frame competes for the full budget).
     */
    bool (*classifyContinuation)(std::span<const std::uint8_t>) =
        nullptr;
};

/** Monotonic tallies of everything the transport did. */
struct TransportCounters
{
    std::uint64_t connectionsOpened = 0;
    std::uint64_t connectionsClosed = 0;
    std::uint64_t bytesIn = 0;       ///< Raw bytes ingested.
    std::uint64_t bytesOut = 0;      ///< Reply bytes queued to the wire.
    std::uint64_t framesIn = 0;      ///< Complete wire frames decoded.
    std::uint64_t framesOut = 0;     ///< Wire frames written (replies + rejects).
    std::uint64_t accepted = 0;      ///< Frames admitted into a queue.
    std::uint64_t shed = 0;          ///< Frames refused with Overloaded.
    std::uint64_t backpressureStalls = 0; ///< Read pauses (queue full).
    std::uint64_t codecErrors = 0;   ///< Connections killed by wire errors.
    std::uint64_t droppedOnClose = 0; ///< Queued frames of dead connections.
    std::uint64_t slowReaderDrops = 0; ///< Connections over maxWriteBuffered.
    std::uint64_t batches = 0;       ///< handleBatch invocations.
    std::uint64_t sinksRetired = 0;  ///< Stream sinks GC'd after a terminal reply.

    /** Canonical one-line rendering (determinism tests compare it). */
    std::string serialize() const;
};

/** The reject sent for a shed request (still one of the 8 message
 *  types: an ErrorMsg with a recognizable reason). */
protocol::ErrorMsg overloadedReject();

/** True when @p m is the transport's Overloaded reject. */
bool isOverloadedReject(const protocol::Message &m);

/**
 * Classifier for TransportConfig::classifyContinuation: true for
 * protocol frames that continue an exchange the server already
 * invested work in (ResponseMsg, RemapAck, RemapCommit).
 */
bool isContinuationPayload(std::span<const std::uint8_t> payload);

/**
 * Shared connection/admission machinery. A transport implementation
 * (LoopbackTransport, EpollTransport) owns one core, feeds it raw
 * bytes per connection, and flushes each connection's outbound buffer
 * to its substrate.
 */
class TransportCore
{
  public:
    class StreamSink;

    /** One logical connection (loopback pipe or TCP socket). */
    struct Conn
    {
        std::uint64_t id = 0;
        int fd = -1; ///< Owning socket, -1 for loopback.
        WireDecoder decoder;
        /** Admitted requests awaiting batch assembly. */
        std::deque<WireFrame> queue;
        /** Outbound wire bytes awaiting the owner's flush. */
        std::vector<std::uint8_t> out;
        std::size_t outHead = 0; ///< Flushed prefix of @c out.
        /** Reply sinks by stream id (stable addresses; see below). */
        std::map<std::uint64_t, StreamSink> streams;
        bool closed = false;
        bool readPaused = false;

        std::size_t pendingOut() const { return out.size() - outHead; }
    };

    /**
     * ReplySink bound to one (connection, stream) pair. Sending a
     * terminal server->client message (AuthDecision, RemapCommit,
     * ErrorMsg) marks the sink retired: the exchange is over, so the
     * core erases the entry from the stream table -- immediately on
     * the shed path, or in the post-batch sweep (never mid-batch,
     * because handleBatch frames hold sink pointers). A later frame
     * on the same stream id simply re-creates the sink, so retirement
     * is invisible to peers; it only keeps long-lived connections
     * from accumulating one table entry per stream ever used.
     */
    class StreamSink : public protocol::ReplySink
    {
      public:
        StreamSink(TransportCore &core_, Conn &conn_,
                   std::uint64_t stream_)
            : core(core_), conn(conn_), stream(stream_)
        {
        }

        void send(const protocol::Message &m) override;

        /** Exchange finished; the core may erase this sink. */
        bool retired() const { return isRetired; }

        /** A new frame reuses this stream: the exchange restarts. */
        void revive() { isRetired = false; }

      private:
        TransportCore &core;
        Conn &conn;
        std::uint64_t stream;
        bool isRetired = false;
    };

    TransportCore(server::ServerFrontEnd &front_,
                  const TransportConfig &config);

    TransportCore(const TransportCore &) = delete;
    TransportCore &operator=(const TransportCore &) = delete;

    /** Open a connection (sequential ids; loopback determinism). */
    Conn &open(int fd = -1);

    /**
     * Close a connection: queued requests are discarded (their sender
     * is gone), buffered output is abandoned. The Conn object stays
     * alive until reap() so in-flight sinks stay valid.
     */
    void close(Conn &conn);

    /** Drop closed connections' state. Call outside runBatch only. */
    void reap();

    /**
     * Feed raw connection bytes: decode complete frames, admit up to
     * the connection/global bounds, shed the rest. Bytes that decode
     * into frames beyond the connection's queue bound stay buffered
     * in the decoder until a later drain. On a wire-codec error the
     * connection is closed (codecErrors).
     */
    void ingest(Conn &conn, std::span<const std::uint8_t> data);

    /**
     * True when the owner should keep reading this connection's
     * substrate: open, decoder healthy, queue below its bound.
     */
    bool wantsRead(const Conn &conn) const;

    /** Owner noticed it had bytes but wantsRead() said stop. */
    void noteBackpressureStall() { ++tally.backpressureStalls; }

    /**
     * Assemble one batch (round-robin across connections) and run it
     * through ServerFrontEnd::handleBatch on @p pool. Replies land in
     * each connection's outbound buffer via its stream sinks.
     * Afterwards, decoders stalled on a full queue are re-drained.
     * @return frames serviced.
     */
    std::size_t runBatch(util::ThreadPool &pool);

    /** No admitted requests waiting anywhere. */
    bool idle() const { return queuedTotal == 0; }

    std::size_t globalQueued() const { return queuedTotal; }
    std::size_t connectionCount() const { return conns.size(); }
    const TransportConfig &config() const { return cfg; }
    const TransportCounters &counters() const { return tally; }

    /** Connections by ascending id (open and closed-but-unreaped). */
    std::map<std::uint64_t, std::unique_ptr<Conn>> &connections()
    {
        return conns;
    }

    const std::map<std::uint64_t, std::unique_ptr<Conn>> &
    connections() const
    {
        return conns;
    }

    /**
     * Publish the counters under "<component>.transport.*"
     * (e.g. server.transport.shed).
     */
    void collectStats(util::StatsRegistry &registry,
                      const std::string &component = "server") const;

  private:
    friend class StreamSink;

    /** Pull decodable frames out of @p conn up to the queue bounds. */
    void drainDecoder(Conn &conn);

    /** Admit or shed one decoded frame. */
    void admit(Conn &conn, WireFrame frame);

    server::ServerFrontEnd &front;
    TransportConfig cfg;
    TransportCounters tally;
    std::map<std::uint64_t, std::unique_ptr<Conn>> conns;
    std::uint64_t nextId = 1;
    std::size_t queuedTotal = 0;
    bool inBatch = false;
};

/** Transport-agnostic pump surface shared by loopback and epoll. */
class Transport
{
  public:
    virtual ~Transport() = default;

    /**
     * One service cycle: move bytes, admit/shed, run one batch, flush
     * replies. @return frames serviced.
     */
    virtual std::size_t pump(util::ThreadPool &pool) = 0;

    /**
     * Graceful shutdown: stop accepting connections, service
     * everything already admitted or buffered, flush replies, then
     * close every connection (the shed pattern's clean drain).
     */
    virtual void drain(util::ThreadPool &pool) = 0;

    virtual const TransportCounters &counters() const = 0;

    /** No queued requests and no undelivered output. */
    virtual bool idle() const = 0;
};

} // namespace authenticache::net

#endif // AUTH_NET_TRANSPORT_HPP
