#include "net/loopback.hpp"

#include <algorithm>

namespace authenticache::net {

void
LoopbackTransport::Client::write(std::span<const std::uint8_t> data)
{
    if (writeClosed || aborted)
        return;
    outbox.insert(outbox.end(), data.begin(), data.end());
}

void
LoopbackTransport::Client::sendMessage(std::uint64_t stream,
                                       const protocol::Message &m)
{
    std::vector<std::uint8_t> bytes = encodeWireMessage(stream, m);
    write(bytes);
}

void
LoopbackTransport::Client::abort()
{
    aborted = true;
    writeClosed = true;
    outbox.clear();
    outHead = 0;
}

std::vector<std::pair<std::uint64_t, protocol::Message>>
LoopbackTransport::Client::readMessages()
{
    down.feed(inbox);
    inbox.clear();
    std::vector<std::pair<std::uint64_t, protocol::Message>> out;
    while (auto frame = down.next())
        out.emplace_back(frame->stream,
                         protocol::decodeMessage(frame->payload));
    return out;
}

std::vector<std::uint8_t>
LoopbackTransport::Client::takeRawBytes()
{
    return std::exchange(inbox, {});
}

LoopbackTransport::LoopbackTransport(server::ServerFrontEnd &front,
                                     const TransportConfig &config)
    : core(front, config)
{
}

LoopbackTransport::~LoopbackTransport() = default;

LoopbackTransport::Client *
LoopbackTransport::connect()
{
    if (!accepting)
        return nullptr;
    auto client = std::make_unique<Client>();
    client->conn = &core.open();
    Client &ref = *client;
    clients.emplace(ref.conn->id, std::move(client));
    return &ref;
}

void
LoopbackTransport::feed(Client &client)
{
    TransportCore::Conn &conn = *client.conn;
    const std::size_t chunk = core.config().readChunkBytes;
    while (client.outHead < client.outbox.size()) {
        if (!core.wantsRead(conn)) {
            // Bytes stall in the outbox -- the loopback analogue of a
            // full TCP receive window. (Stalls with bytes buffered in
            // the decoder were already counted by ingest.)
            if (!conn.closed && conn.decoder.buffered() == 0)
                core.noteBackpressureStall();
            return;
        }
        const std::size_t n = std::min(
            chunk, client.outbox.size() - client.outHead);
        core.ingest(conn, std::span<const std::uint8_t>(
                              client.outbox.data() + client.outHead,
                              n));
        client.outHead += n;
    }
    client.outbox.clear();
    client.outHead = 0;
    // Orderly shutdown: EOF is delivered only after every byte before
    // it has been consumed.
    if (client.writeClosed && !conn.closed && conn.queue.empty() &&
        conn.decoder.buffered() == 0 && conn.pendingOut() == 0)
        core.close(conn);
}

std::size_t
LoopbackTransport::pump(util::ThreadPool &pool)
{
    for (auto &[id, client] : clients) {
        if (client->aborted && !client->conn->closed)
            core.close(*client->conn); // RST: drop everything now.
        else
            feed(*client);
    }

    const std::size_t serviced = core.runBatch(pool);

    // Deliver reply bytes; then re-check half-closed connections,
    // whose EOF may have become deliverable once the batch drained
    // their queue and replies flushed.
    for (auto &[id, client] : clients) {
        TransportCore::Conn &conn = *client->conn;
        if (conn.pendingOut() > 0 && !client->aborted) {
            client->inbox.insert(client->inbox.end(),
                                 conn.out.begin() +
                                     static_cast<std::ptrdiff_t>(
                                         conn.outHead),
                                 conn.out.end());
            conn.out.clear();
            conn.outHead = 0;
        }
        if (!conn.closed)
            feed(*client);
    }
    return serviced;
}

void
LoopbackTransport::pumpUntilIdle(util::ThreadPool &pool)
{
    // Each idle pump still moves stalled bytes, so loop until nothing
    // is queued anywhere, then once more to flush EOFs.
    while (!idle())
        pump(pool);
    pump(pool);
}

void
LoopbackTransport::drain(util::ThreadPool &pool)
{
    accepting = false;
    pumpUntilIdle(pool);
    for (auto &[id, client] : clients)
        if (!client->conn->closed)
            core.close(*client->conn);
    core.reap();
}

bool
LoopbackTransport::idle() const
{
    if (!core.idle())
        return false;
    for (const auto &[id, client] : clients) {
        const TransportCore::Conn &conn = *client->conn;
        if (conn.closed)
            continue;
        if (client->unsentBytes() > 0 && core.wantsRead(conn))
            return false;
        if (conn.pendingOut() > 0)
            return false;
    }
    return true;
}

} // namespace authenticache::net
