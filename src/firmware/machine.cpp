#include "firmware/machine.hpp"

#include "util/logging.hpp"

namespace authenticache::firmware {

bool
FirmwareToken::live() const
{
    return machine != nullptr && machine->inSmm();
}

void
FirmwareToken::require(const char *operation) const
{
    if (!live()) {
        throw PrivilegeError(std::string(operation) +
                             ": requires an active SMM session");
    }
}

SimulatedMachine::SimulatedMachine(unsigned cores)
    : states(cores, CoreState::Running)
{
    if (cores == 0)
        throw std::invalid_argument("SimulatedMachine: zero cores");
}

CoreState
SimulatedMachine::coreState(unsigned core) const
{
    return states.at(core);
}

void
SimulatedMachine::smiEnter(unsigned master)
{
    if (master >= coreCount())
        throw std::out_of_range("smiEnter: bad core");
    if (smmActive)
        throw PrivilegeError("smiEnter: SMM session already active");
    ++smis;
    // The interrupted core becomes the master; it broadcasts
    // synchronization interrupts parking every other core.
    for (unsigned i = 0; i < coreCount(); ++i)
        states[i] = (i == master) ? CoreState::Smm : CoreState::Halted;
    smmActive = true;
    AUTH_LOG_DEBUG("firmware") << "SMM entered, master core " << master;
}

void
SimulatedMachine::smiExit()
{
    for (auto &s : states)
        s = CoreState::Running;
    smmActive = false;
    AUTH_LOG_DEBUG("firmware") << "SMM exited, cores resumed";
}

SmmSession::SmmSession(SimulatedMachine &machine_, unsigned master_core)
    : machine(machine_), masterCore(master_core), tok(&machine_)
{
    machine.smiEnter(master_core);
}

SmmSession::~SmmSession()
{
    machine.smiExit();
}

} // namespace authenticache::firmware
