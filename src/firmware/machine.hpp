/**
 * @file
 * Simulated machine and System Management Mode (paper Sec 5.1).
 *
 * Authentication runs inside firmware: a user-space request raises an
 * SMI, the interrupted core becomes the master, the remaining cores
 * are synchronized into SMM and halted, and only then may firmware
 * services (voltage control, self-test) run. The FirmwareToken is a
 * capability only an active SMM session can mint -- services that must
 * be firmware-only take it by reference, making the privilege check a
 * compile-time property plus a runtime liveness check.
 */

#ifndef AUTH_FIRMWARE_MACHINE_HPP
#define AUTH_FIRMWARE_MACHINE_HPP

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace authenticache::firmware {

/** Execution state of one core. */
enum class CoreState
{
    Running, ///< Executing OS/user code.
    Smm,     ///< In System Management Mode (the master).
    Halted,  ///< Parked by the master for the SMM session.
};

/** Thrown when a firmware-only service is invoked outside SMM. */
class PrivilegeError : public std::runtime_error
{
  public:
    explicit PrivilegeError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

class SimulatedMachine;

/**
 * Capability proving the holder runs inside a live SMM session.
 * Not copyable; obtainable only from SmmSession.
 */
class FirmwareToken
{
  public:
    FirmwareToken(const FirmwareToken &) = delete;
    FirmwareToken &operator=(const FirmwareToken &) = delete;

    /** True while the owning SMM session is still open. */
    bool live() const;

    /** Throw PrivilegeError unless live. */
    void require(const char *operation) const;

  private:
    friend class SmmSession;
    explicit FirmwareToken(const SimulatedMachine *owner)
        : machine(owner)
    {
    }

    const SimulatedMachine *machine;
};

/**
 * RAII SMM session: construction performs the SMI entry and core
 * synchronization; destruction resumes all cores to the OS.
 */
class SmmSession
{
  public:
    SmmSession(SimulatedMachine &machine, unsigned master_core);
    ~SmmSession();

    SmmSession(const SmmSession &) = delete;
    SmmSession &operator=(const SmmSession &) = delete;

    unsigned master() const { return masterCore; }
    const FirmwareToken &token() const { return tok; }

  private:
    SimulatedMachine &machine;
    unsigned masterCore;
    FirmwareToken tok;
};

class SimulatedMachine
{
  public:
    explicit SimulatedMachine(unsigned cores = 4);

    unsigned coreCount() const
    {
        return static_cast<unsigned>(states.size());
    }

    CoreState coreState(unsigned core) const;

    /** True while an SMM session is open. */
    bool inSmm() const { return smmActive; }

    /** Number of SMIs taken since power-on. */
    std::uint64_t smiCount() const { return smis; }

  private:
    friend class SmmSession;
    friend class FirmwareToken;

    void smiEnter(unsigned master);
    void smiExit();

    std::vector<CoreState> states;
    bool smmActive = false;
    std::uint64_t smis = 0;
};

} // namespace authenticache::firmware

#endif // AUTH_FIRMWARE_MACHINE_HPP
