#include "firmware/error_handler.hpp"

#include "util/logging.hpp"

namespace authenticache::firmware {

ErrorHandler::ErrorHandler(substrate::FingerprintSubstrate &device,
                           VoltageControl &vc,
                           const ErrorHandlerParams &params_)
    : chip(device), voltageControl(vc), params(params_)
{
}

void
ErrorHandler::declareEmergency(TimingLedger *ledger)
{
    ++nEmergencies;
    voltageControl.emergencyRaise(ledger);
}

TargetedTestOutcome
ErrorHandler::testLine(const FirmwareToken &token,
                       const sim::LinePoint &line,
                       std::uint32_t attempts, TimingLedger *ledger)
{
    token.require("ErrorHandler::testLine");

    TargetedTestOutcome out;
    auto &log = chip.errorLog();
    log.drain(); // Observe only this test's events.

    auto before_uncorr = log.totalUncorrectable();
    auto result = chip.testLine(line, attempts);
    out.triggered = result.triggered;
    out.attemptsUsed = result.attemptsUsed;
    if (ledger)
        ledger->addLineTests(result.attemptsUsed);

    auto events = log.drain();
    std::uint64_t uncorr = log.totalUncorrectable() - before_uncorr;
    if (uncorr >= params.emergencyUncorrectableThreshold ||
        events.size() >= params.burstThreshold) {
        AUTH_LOG_WARN("firmware")
            << "abrupt error rate at line (" << line.set << ","
            << line.way << "): " << events.size() << " events, "
            << uncorr << " uncorrectable";
        declareEmergency(ledger);
        out.emergency = true;
    }
    return out;
}

} // namespace authenticache::firmware
