/**
 * @file
 * The Authenticache client: the firmware authentication algorithm of
 * paper Sec 5.4, coordinating SMM entry, voltage control, the error
 * handler, and the PUF search.
 *
 * Challenge processing:
 *  1. A user-space authentication request raises an SMI; the master
 *     core parks the others (SimulatedMachine/SmmSession).
 *  2. Challenge endpoints are sorted in descending Vdd order to
 *     minimize regulator transitions, then segmented into bounded
 *     transactions.
 *  3. Each endpoint's nearest error is located by self-testing its
 *     Von Neumann neighborhood outward and clockwise (spiralSearch),
 *     in *logical* coordinates: each candidate cell is unmapped with
 *     the device key K_A to a physical line before testing.
 *  4. Response bit = 0 iff dist(A) <= dist(B) (Eq 8).
 *
 * Aborts: an invalid Vdd request or an emergency declared by the
 * error handler terminates the authentication with an error outcome,
 * per the paper's ABORT path.
 */

#ifndef AUTH_FIRMWARE_CLIENT_HPP
#define AUTH_FIRMWARE_CLIENT_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/challenge.hpp"
#include "core/error_map.hpp"
#include "core/remap.hpp"
#include "crypto/fuzzy_extractor.hpp"
#include "crypto/key.hpp"
#include "firmware/error_handler.hpp"
#include "firmware/machine.hpp"
#include "firmware/timing.hpp"
#include "firmware/voltage_control.hpp"
#include "substrate/substrate.hpp"
#include "util/stats_registry.hpp"

namespace authenticache::firmware {

/** Client tuning. */
struct ClientConfig
{
    /** Self-test attempts per cache line (paper Sec 6.3). */
    std::uint32_t selfTestAttempts = 4;

    /** Challenge bits per atomic firmware transaction. */
    std::size_t maxTransactionBits = 64;

    /**
     * Spiral give-up radius; 0 means cover the whole plane (a point
     * with no reachable error contributes an infinite distance).
     */
    std::uint64_t maxSearchRadius = 0;

    /**
     * Side-channel decoy ratio (paper Sec 7.2): interleave this many
     * self-tests of *random* cache lines per genuine challenge test,
     * masking the EM/power signature of the ECC activity an attacker
     * could correlate with error locations. 0 disables decoys; 1.0
     * doubles the line-test count (and roughly the runtime).
     */
    double decoyRatio = 0.0;

    TimingParams timing;
    VoltageControlParams voltageControl;
    ErrorHandlerParams errorHandler;
};

/** Result of one client authentication. */
struct AuthOutcome
{
    enum class Status
    {
        Ok,
        Aborted,
        /**
         * The session-reliability layer exhausted its retransmission
         * budget without hearing back (set by the protocol agent, not
         * by the firmware itself).
         */
        TimedOut,
    };

    Status status = Status::Ok;
    std::string abortReason;

    core::Response response;

    // Cost accounting (feeds Fig 13/14).
    double elapsedMs = 0.0;
    std::uint64_t lineTests = 0;
    std::uint64_t vddTransitions = 0;
    std::uint64_t transactions = 0;

    bool ok() const { return status == Status::Ok; }
};

class AuthenticacheClient
{
  public:
    AuthenticacheClient(substrate::FingerprintSubstrate &device,
                        SimulatedMachine &machine,
                        const ClientConfig &config = {});

    /**
     * Boot-time initialization: calibrate the voltage floor under an
     * SMM session. Must be called before authenticate().
     * @return The established floor in mV.
     */
    double boot();

    /** Established floor (0 before boot). */
    double floorMv() const { return voltageCtl.floorMv(); }

    /** Warm boot: adopt a floor calibrated by a previous session. */
    void adoptFloor(double floor_mv) { voltageCtl.adoptFloor(floor_mv); }

    /** Device logical-map key K_A (zero = identity/default map). */
    const crypto::Key256 &mapKey() const { return key; }
    void setMapKey(const crypto::Key256 &k) { key = k; }

    /**
     * Enrollment support: capture the physical error map at the given
     * voltage levels with multi-pass sweeps. Runs under SMM; intended
     * to be driven by the manufacturer/server in a trusted setting.
     */
    core::ErrorMap captureErrorMap(const std::vector<core::VddMv> &levels,
                                   std::uint32_t passes = 8);

    /** Answer a logical-coordinate challenge (the main entry point). */
    AuthOutcome authenticate(const core::Challenge &challenge);

    /**
     * Answer a challenge under the default (identity) mapping,
     * bypassing K_A. For on-device consumers only (key derivation,
     * Sec 4.5/7.3): the response must never leave the firmware, since
     * identity-mapped responses leak physical geometry.
     */
    AuthOutcome answerWithDefaultMap(const core::Challenge &challenge);

    /** Distance pair of one challenge bit (firmware-internal). */
    struct BitDistances
    {
        std::uint64_t a = 0;
        std::uint64_t b = 0;

        /** Margin |d(A)-d(B)|; large margins make robust bits. */
        std::uint64_t margin() const { return a > b ? a - b : b - a; }
    };

    /** Result of a raw distance measurement. */
    struct DistanceOutcome
    {
        bool ok = false;
        std::string abortReason;
        std::vector<BitDistances> distances;
    };

    /**
     * Measure the raw nearest-error distances of every challenge bit
     * under the default mapping. Firmware-internal: distances leak
     * strictly more than response bits. Used by the key generator to
     * select high-margin (drift-robust) bits at provisioning time.
     */
    DistanceOutcome measureDefaultMapDistances(
        const core::Challenge &challenge);

    /**
     * Adaptive remap (paper Sec 4.5): process a key-update request.
     * Evaluates the challenge under the *default* (identity) mapping
     * at the reserved voltage, combines the response with the helper
     * data to reconstruct the new key K_B, and installs it. The
     * response itself is never disclosed.
     *
     * @return true when a key was installed (the client cannot itself
     *         verify correctness; the server confirms via a
     *         subsequent authentication).
     */
    bool processRemapRequest(const core::Challenge &challenge,
                             const util::BitVec &helper,
                             const crypto::FuzzyExtractor &extractor);

    /**
     * Two-phase remap, phase 1: derive the candidate key without
     * installing it (the protocol layer installs on the server's
     * commit, after key confirmation). Returns std::nullopt when the
     * measurement aborts or lengths mismatch.
     */
    std::optional<crypto::Key256>
    deriveRemapKey(const core::Challenge &challenge,
                   const util::BitVec &helper,
                   const crypto::FuzzyExtractor &extractor);

    /** Emergencies observed since construction. */
    std::uint64_t emergencyCount() const
    {
        return errorHandler.emergencyCount();
    }

    // Lifetime counters (telemetry).
    std::uint64_t authenticationsCompleted() const { return nAuthsOk; }
    std::uint64_t authenticationsAborted() const
    {
        return nAuthsAborted;
    }
    std::uint64_t lifetimeLineTests() const { return nLineTests; }
    double lifetimeMs() const { return totalMs; }

    const substrate::FingerprintSubstrate &substrate() const
    {
        return device;
    }
    substrate::FingerprintSubstrate &substrate() { return device; }

    const ClientConfig &config() const { return cfg; }

  private:
    struct AbortException
    {
        std::string reason;
    };

    /**
     * Evaluate a challenge with a given remap, accumulating into the
     * outcome; throws AbortException on ABORT conditions. When
     * @p capture is non-null the raw per-bit distances are stored
     * there (firmware-internal consumers only).
     */
    void evaluateChallenge(const FirmwareToken &token,
                           const core::Challenge &challenge,
                           const core::LogicalRemap &remap,
                           TimingLedger &ledger, AuthOutcome &out,
                           std::vector<BitDistances> *capture = nullptr);

    /** Distance of one endpoint via spiral self-testing. */
    std::uint64_t endpointDistance(const FirmwareToken &token,
                                   const core::ChallengePoint &point,
                                   const core::LogicalRemap &remap,
                                   TimingLedger &ledger);

    AuthOutcome runChallenge(const core::Challenge &challenge,
                             const core::LogicalRemap &remap);

    /** Issue decoy self-tests per the configured ratio. */
    void issueDecoys(const FirmwareToken &token,
                     std::uint32_t genuine_tests, TimingLedger &ledger);

    substrate::FingerprintSubstrate &device;
    SimulatedMachine &machine;
    ClientConfig cfg;
    VoltageControl voltageCtl;
    ErrorHandler errorHandler;
    crypto::Key256 key;
    util::Rng decoyRng{0xDEC0};
    std::uint64_t nAuthsOk = 0;
    std::uint64_t nAuthsAborted = 0;
    std::uint64_t nLineTests = 0;
    double totalMs = 0.0;
};

/** Snapshot a client's lifetime counters into a stats registry. */
void collectClientStats(const AuthenticacheClient &client,
                        util::StatsRegistry &registry,
                        const std::string &component = "client");

} // namespace authenticache::firmware

#endif // AUTH_FIRMWARE_CLIENT_HPP
