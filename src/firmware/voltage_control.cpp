#include "firmware/voltage_control.hpp"

#include "util/logging.hpp"

namespace authenticache::firmware {

VoltageControl::VoltageControl(sim::SimulatedChip &chip_,
                               const VoltageControlParams &params_)
    : chip(chip_), params(params_)
{
}

double
VoltageControl::calibrateFloor(const FirmwareToken &token,
                               TimingLedger *ledger)
{
    token.require("calibrateFloor");
    ++nCalibrations;

    const double nominal = chip.regulator().nominalMv();
    // Calibration may probe below any previously set floor.
    chip.regulator().setFloorMv(0.0);

    double unsafe = params.searchFloorMv;
    bool found_unsafe = false;

    for (double v = nominal - params.stepMv; v >= params.searchFloorMv;
         v -= params.stepMv) {
        double latency = 0.0;
        if (chip.setVddMv(v, &latency) != sim::VoltageStatus::Ok)
            break;
        if (ledger)
            ledger->addVddTransition(latency);

        auto sweep = chip.selfTest().sweepAll(params.sweepPasses);
        if (ledger)
            ledger->addLineTests(sweep.linesTested);

        if (sweep.uncorrectableCount > 0) {
            unsafe = v;
            found_unsafe = true;
            break;
        }
    }

    floor = (found_unsafe ? unsafe : params.searchFloorMv) +
            params.guardbandMv;

    // Verification phase: the candidate floor must sustain repeated
    // full sweeps, run a stress margin *below* it, without a single
    // uncorrectable event.
    for (std::uint32_t retry = 0; retry < params.maxVerifyRetries;
         ++retry) {
        double latency = 0.0;
        if (chip.setVddMv(floor - params.verifyStressMv, &latency) !=
            sim::VoltageStatus::Ok)
            break;
        if (ledger)
            ledger->addVddTransition(latency);
        auto sweep = chip.selfTest().sweepAll(params.verifyPasses);
        if (ledger)
            ledger->addLineTests(sweep.linesTested);
        if (sweep.uncorrectableCount == 0)
            break;
        floor += params.guardbandMv;
    }

    chip.regulator().setFloorMv(floor);

    double latency = 0.0;
    chip.setVddMv(nominal, &latency);
    if (ledger)
        ledger->addVddTransition(latency);

    AUTH_LOG_INFO("firmware")
        << "voltage floor calibrated to " << floor << " mV";
    return floor;
}

void
VoltageControl::adoptFloor(double floor_mv)
{
    floor = floor_mv;
    chip.regulator().setFloorMv(floor);
}

VddRequestStatus
VoltageControl::requestVdd(const FirmwareToken &token, double vdd_mv,
                           TimingLedger *ledger)
{
    token.require("requestVdd");
    if (!calibrated())
        return VddRequestStatus::Abort;

    double latency = 0.0;
    sim::VoltageStatus status = chip.setVddMv(vdd_mv, &latency);
    if (status != sim::VoltageStatus::Ok) {
        AUTH_LOG_WARN("firmware")
            << "Vdd request " << vdd_mv << " mV aborted";
        return VddRequestStatus::Abort;
    }
    if (ledger && latency > 0.0)
        ledger->addVddTransition(latency);
    return VddRequestStatus::Ok;
}

void
VoltageControl::restoreNominal(const FirmwareToken &token,
                               TimingLedger *ledger)
{
    token.require("restoreNominal");
    double latency = 0.0;
    chip.setVddMv(chip.regulator().nominalMv(), &latency);
    if (ledger && latency > 0.0)
        ledger->addVddTransition(latency);
}

void
VoltageControl::emergencyRaise(TimingLedger *ledger)
{
    double latency = chip.emergencyRaise();
    if (ledger && latency > 0.0)
        ledger->addVddTransition(latency);
    AUTH_LOG_WARN("firmware") << "emergency Vdd raise";
}

} // namespace authenticache::firmware
