#include "firmware/voltage_control.hpp"

#include "util/logging.hpp"

namespace authenticache::firmware {

VoltageControl::VoltageControl(
    substrate::FingerprintSubstrate &device,
    const VoltageControlParams &params_)
    : chip(device), params(params_)
{
}

double
VoltageControl::calibrateFloor(const FirmwareToken &token,
                               TimingLedger *ledger)
{
    token.require("calibrateFloor");
    ++nCalibrations;

    const double nominal = chip.nominalLevel();
    // Calibration may probe below any previously set floor.
    chip.setLevelFloor(0.0);

    double unsafe = params.searchFloorMv;
    bool found_unsafe = false;

    for (double v = nominal - params.stepMv; v >= params.searchFloorMv;
         v -= params.stepMv) {
        double latency = 0.0;
        if (chip.setLevel(v, &latency) != substrate::LevelStatus::Ok)
            break;
        if (ledger)
            ledger->addVddTransition(latency);

        auto sweep = chip.sweepAll(params.sweepPasses);
        if (ledger)
            ledger->addLineTests(sweep.linesTested);

        if (sweep.uncorrectableCount > 0) {
            unsafe = v;
            found_unsafe = true;
            break;
        }
    }

    floor = (found_unsafe ? unsafe : params.searchFloorMv) +
            params.guardbandMv;

    // Verification phase: the candidate floor must sustain repeated
    // full sweeps, run a stress margin *below* it, without a single
    // uncorrectable event.
    for (std::uint32_t retry = 0; retry < params.maxVerifyRetries;
         ++retry) {
        double latency = 0.0;
        if (chip.setLevel(floor - params.verifyStressMv, &latency) !=
            substrate::LevelStatus::Ok)
            break;
        if (ledger)
            ledger->addVddTransition(latency);
        auto sweep = chip.sweepAll(params.verifyPasses);
        if (ledger)
            ledger->addLineTests(sweep.linesTested);
        if (sweep.uncorrectableCount == 0)
            break;
        floor += params.guardbandMv;
    }

    chip.setLevelFloor(floor);

    double latency = 0.0;
    chip.setLevel(nominal, &latency);
    if (ledger)
        ledger->addVddTransition(latency);

    AUTH_LOG_INFO("firmware")
        << "voltage floor calibrated to " << floor << " mV";
    return floor;
}

void
VoltageControl::adoptFloor(double floor_mv)
{
    floor = floor_mv;
    chip.setLevelFloor(floor);
}

VddRequestStatus
VoltageControl::requestVdd(const FirmwareToken &token, double vdd_mv,
                           TimingLedger *ledger)
{
    token.require("requestVdd");
    if (!calibrated())
        return VddRequestStatus::Abort;

    double latency = 0.0;
    substrate::LevelStatus status = chip.setLevel(vdd_mv, &latency);
    if (status != substrate::LevelStatus::Ok) {
        AUTH_LOG_WARN("firmware")
            << "Vdd request " << vdd_mv << " mV aborted";
        return VddRequestStatus::Abort;
    }
    if (ledger && latency > 0.0)
        ledger->addVddTransition(latency);
    return VddRequestStatus::Ok;
}

void
VoltageControl::restoreNominal(const FirmwareToken &token,
                               TimingLedger *ledger)
{
    token.require("restoreNominal");
    double latency = 0.0;
    chip.setLevel(chip.nominalLevel(), &latency);
    if (ledger && latency > 0.0)
        ledger->addVddTransition(latency);
}

void
VoltageControl::emergencyRaise(TimingLedger *ledger)
{
    double latency = chip.emergencyRestore();
    if (ledger && latency > 0.0)
        ledger->addVddTransition(latency);
    AUTH_LOG_WARN("firmware") << "emergency Vdd raise";
}

} // namespace authenticache::firmware
