/**
 * @file
 * PUF-backed cryptographic key generation (paper Sec 7.3).
 *
 * The other canonical PUF application: instead of authenticating to a
 * server, the device derives a secret key from its own silicon --
 * no key bytes in non-volatile storage, nothing to extract from a
 * powered-off device. A provisioned "key slot" holds only *public*
 * data (the challenge coordinates and the BCH helper data); the key
 * itself exists only transiently, reconstructed on demand from the
 * cache's error fingerprint through the fuzzy extractor.
 *
 * Noise handling is two-layered:
 *
 *  - Robust-bit selection at provisioning: candidate challenge pairs
 *    are oversampled and only the highest-margin bits (|d(A) - d(B)|
 *    large) are kept; flipping such a bit requires the error map to
 *    deform by the margin, so environmental drift barely touches
 *    them. This is the reliability-filtering idea of the paper's
 *    key-generation references (e.g. pattern-matching generators).
 *  - BCH(255, k>=64, t=23) absorbs the residual flips and *flags*
 *    (rather than miscorrects) excessive noise.
 */

#ifndef AUTH_FIRMWARE_KEYGEN_HPP
#define AUTH_FIRMWARE_KEYGEN_HPP

#include <optional>

#include "crypto/bch_fuzzy_extractor.hpp"
#include "firmware/client.hpp"

namespace authenticache::firmware {

/** Public (non-secret) material of one provisioned key. */
struct KeySlot
{
    core::Challenge challenge;  ///< 127 identity-mapped pairs.
    util::BitVec helper;        ///< BCH code-offset helper data.
};

/** Result of provisioning: the key plus its reconstruction slot. */
struct ProvisionedKey
{
    crypto::Key256 key;
    KeySlot slot;
};

class PufKeyGenerator
{
  public:
    /**
     * @param client The device firmware (must be booted).
     * @param m BCH field degree (response length 2^m - 1).
     * @param t Correctable response-bit flips per regeneration.
     */
    explicit PufKeyGenerator(AuthenticacheClient &client, unsigned m = 8,
                             unsigned t = 23);

    /**
     * Candidate-pair oversampling factor for robust-bit selection;
     * provisioning measures factor * n pairs and keeps the n with the
     * largest distance margins. 1 disables the filter.
     */
    void setOversampling(unsigned factor) { oversample = factor; }
    unsigned oversampling() const { return oversample; }

    /** Minimum margin a selected bit should have (best effort). */
    void setMarginTarget(std::uint64_t margin)
    {
        marginTarget = margin;
    }

    /** PUF response bits consumed per key. */
    std::size_t responseBits() const
    {
        return extractor.responseBits();
    }

    /** Secret bits the BCH code extracts per key. */
    std::size_t secretBits() const { return extractor.secretBits(); }

    /** Response-bit flips tolerated per regeneration. */
    unsigned tolerance() const { return extractor.tolerance(); }

    /**
     * Provision a new key at a voltage level: draws a random
     * challenge, measures the reference response (with generous
     * self-test attempts for a clean enrollment), and derives
     * (key, helper). Throws std::runtime_error when the measurement
     * aborts.
     */
    ProvisionedKey provision(core::VddMv level, util::Rng &rng);

    /**
     * Regenerate the key from a slot. Returns std::nullopt when the
     * measurement aborted or the accumulated noise exceeded the
     * extractor's correction capability.
     */
    std::optional<crypto::Key256> regenerate(const KeySlot &slot);

  private:
    AuthenticacheClient &client;
    crypto::BchFuzzyExtractor extractor;
    unsigned oversample = 4;
    std::uint64_t marginTarget = 6;
};

} // namespace authenticache::firmware

#endif // AUTH_FIRMWARE_KEYGEN_HPP
