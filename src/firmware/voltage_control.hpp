/**
 * @file
 * Firmware voltage-control service (paper Sec 5.3).
 *
 * Two phases of operation:
 *
 *  - Boot: establish the voltage floor -- the lowest Vdd at which all
 *    triggered cache errors remain correctable -- by progressively
 *    lowering Vdd with built-in self-tests until uncorrectable events
 *    appear, then backing off by a guardband. Challenges below the
 *    floor are refused, which defeats malicious challenges designed
 *    to crash the device.
 *
 *  - Runtime: service Vdd requests from the authentication algorithm.
 *    Requests are only honored from an active SMM session (firmware
 *    privilege); invalid settings return Abort rather than applying.
 *
 * The service also periodically recalibrates to track environmental
 * drift (aging / temperature), per the paper.
 */

#ifndef AUTH_FIRMWARE_VOLTAGE_CONTROL_HPP
#define AUTH_FIRMWARE_VOLTAGE_CONTROL_HPP

#include <cstdint>

#include "firmware/machine.hpp"
#include "firmware/timing.hpp"
#include "substrate/substrate.hpp"

namespace authenticache::firmware {

/** Outcome of a runtime voltage request. */
enum class VddRequestStatus
{
    Ok,     ///< Voltage applied.
    Abort,  ///< Refused (below floor / out of range / no privilege).
};

/** Calibration tuning. */
struct VoltageControlParams
{
    double stepMv = 5.0;       ///< Probe step during calibration.
    double guardbandMv = 5.0;  ///< Backoff above the unsafe voltage.
    double searchFloorMv = 550.0; ///< Give-up voltage for the probe.
    std::uint32_t sweepPasses = 1; ///< Self-test passes per probe step.

    /**
     * Verification sweeps run *below* the candidate floor by this
     * stress margin: a line whose uncorrectable threshold hides just
     * under the floor (within supply-jitter reach, so it would only
     * fire occasionally in the field) trips deterministically under
     * stress. Any uncorrectable event raises the floor by one
     * guardband and re-verifies.
     */
    double verifyStressMv = 4.0;
    std::uint32_t verifyPasses = 3;
    std::uint32_t maxVerifyRetries = 4;
};

class VoltageControl
{
  public:
    VoltageControl(substrate::FingerprintSubstrate &device,
                   const VoltageControlParams &params = {});

    /**
     * Boot-time floor calibration. Lowers Vdd step by step running
     * full-cache self-tests until an uncorrectable event is observed
     * (or the search floor is reached), then sets the floor one
     * guardband above the unsafe point and returns to nominal.
     *
     * @param token Live SMM capability.
     * @param ledger Optional timing ledger charged with the work.
     * @return The established floor in mV.
     */
    double calibrateFloor(const FirmwareToken &token,
                          TimingLedger *ledger = nullptr);

    /**
     * Runtime request from the authentication algorithm. Applies the
     * voltage through the regulator; refuses anything below the floor.
     */
    VddRequestStatus requestVdd(const FirmwareToken &token,
                                double vdd_mv,
                                TimingLedger *ledger = nullptr);

    /** Return to nominal (used at the end of an authentication). */
    void restoreNominal(const FirmwareToken &token,
                        TimingLedger *ledger = nullptr);

    /** Emergency: slam to nominal; callable from the error handler. */
    void emergencyRaise(TimingLedger *ledger = nullptr);

    /**
     * Adopt a previously calibrated floor without re-sweeping (warm
     * boot: real firmware persists the floor in NVRAM and only
     * recalibrates on a schedule).
     */
    void adoptFloor(double floor_mv);

    /** Established floor; 0 before calibration. */
    double floorMv() const { return floor; }

    bool calibrated() const { return floor > 0.0; }

    /** Number of calibrations performed (boot + recalibrations). */
    std::uint64_t calibrationCount() const { return nCalibrations; }

  private:
    substrate::FingerprintSubstrate &chip;
    VoltageControlParams params;
    double floor = 0.0;
    std::uint64_t nCalibrations = 0;
};

} // namespace authenticache::firmware

#endif // AUTH_FIRMWARE_VOLTAGE_CONTROL_HPP
