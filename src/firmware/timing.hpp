/**
 * @file
 * Authentication timing model.
 *
 * The paper reports wall-clock runtimes measured on the Itanium
 * prototype (Fig 13/14). The simulation reproduces the *structure* of
 * that cost -- SMI entry, voltage transitions (latency supplied by the
 * regulator model), and per-line self-tests -- with constants
 * calibrated so that a 512-bit CRP with 4 self-test attempts per line
 * on a 100-error 4MB map lands near the paper's ~125 ms.
 */

#ifndef AUTH_FIRMWARE_TIMING_HPP
#define AUTH_FIRMWARE_TIMING_HPP

#include <cstdint>

namespace authenticache::firmware {

/** Cost constants, microseconds. */
struct TimingParams
{
    double smiEntryUs = 50.0;       ///< SMI + core synchronization.
    double smiExitUs = 20.0;        ///< Resume to OS.
    double lineTestUs = 0.040;      ///< One write+readback line test.
    double perBitOverheadUs = 0.5;  ///< Challenge parsing/bookkeeping.
};

/** Accumulates the cost of one authentication. */
class TimingLedger
{
  public:
    explicit TimingLedger(const TimingParams &params = {});

    void addSmiEntry();
    void addSmiExit();
    void addLineTests(std::uint64_t count);
    void addVddTransition(double latency_us);
    void addChallengeBits(std::uint64_t bits);

    double totalUs() const { return us; }
    double totalMs() const { return us / 1000.0; }

    std::uint64_t lineTests() const { return nLineTests; }
    std::uint64_t vddTransitions() const { return nTransitions; }

    void reset();

  private:
    TimingParams params;
    double us = 0.0;
    std::uint64_t nLineTests = 0;
    std::uint64_t nTransitions = 0;
};

} // namespace authenticache::firmware

#endif // AUTH_FIRMWARE_TIMING_HPP
