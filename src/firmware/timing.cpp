#include "firmware/timing.hpp"

namespace authenticache::firmware {

TimingLedger::TimingLedger(const TimingParams &params_) : params(params_)
{
}

void
TimingLedger::addSmiEntry()
{
    us += params.smiEntryUs;
}

void
TimingLedger::addSmiExit()
{
    us += params.smiExitUs;
}

void
TimingLedger::addLineTests(std::uint64_t count)
{
    nLineTests += count;
    us += params.lineTestUs * static_cast<double>(count);
}

void
TimingLedger::addVddTransition(double latency_us)
{
    ++nTransitions;
    us += latency_us;
}

void
TimingLedger::addChallengeBits(std::uint64_t bits)
{
    us += params.perBitOverheadUs * static_cast<double>(bits);
}

void
TimingLedger::reset()
{
    us = 0.0;
    nLineTests = 0;
    nTransitions = 0;
}

} // namespace authenticache::firmware
