#include "firmware/client.hpp"

#include <algorithm>

#include "core/nearest.hpp"
#include "util/logging.hpp"

namespace authenticache::firmware {

AuthenticacheClient::AuthenticacheClient(
    substrate::FingerprintSubstrate &device_,
    SimulatedMachine &machine_, const ClientConfig &config)
    : device(device_),
      machine(machine_),
      cfg(config),
      voltageCtl(device_, config.voltageControl),
      errorHandler(device_, voltageCtl, config.errorHandler)
{
}

double
AuthenticacheClient::boot()
{
    SmmSession session(machine, 0);
    TimingLedger ledger(cfg.timing);
    ledger.addSmiEntry();
    double floor = voltageCtl.calibrateFloor(session.token(), &ledger);
    ledger.addSmiExit();
    return floor;
}

core::ErrorMap
AuthenticacheClient::captureErrorMap(
    const std::vector<core::VddMv> &levels, std::uint32_t passes)
{
    SmmSession session(machine, 0);

    core::ErrorMap map(device.geometry());

    // Process levels in descending Vdd order (fewer big transitions).
    std::vector<core::VddMv> sorted = levels;
    std::sort(sorted.rbegin(), sorted.rend());

    for (core::VddMv level : sorted) {
        if (voltageCtl.requestVdd(session.token(),
                                  static_cast<double>(level)) !=
            VddRequestStatus::Ok) {
            voltageCtl.restoreNominal(session.token());
            throw std::invalid_argument(
                "captureErrorMap: level below floor or out of range");
        }
        auto sweep = device.sweepAll(passes);
        map.addSweep(level, sweep.correctableLines);
    }
    voltageCtl.restoreNominal(session.token());
    return map;
}

void
AuthenticacheClient::issueDecoys(const FirmwareToken &token,
                                 std::uint32_t genuine_tests,
                                 TimingLedger &ledger)
{
    // One decoy per `1/ratio` genuine line tests in expectation:
    // whole decoys plus a Bernoulli fractional part.
    double target = cfg.decoyRatio * genuine_tests;
    auto count = static_cast<std::uint64_t>(target);
    if (decoyRng.nextBool(target - static_cast<double>(count)))
        ++count;

    const auto &geom = device.geometry();
    for (std::uint64_t i = 0; i < count; ++i) {
        sim::LinePoint decoy =
            geom.pointOf(decoyRng.nextBelow(geom.lines()));
        auto outcome = errorHandler.testLine(token, decoy, 1, &ledger);
        if (outcome.emergency)
            throw AbortException{"emergency voltage raise"};
    }
}

std::uint64_t
AuthenticacheClient::endpointDistance(const FirmwareToken &token,
                                      const core::ChallengePoint &point,
                                      const core::LogicalRemap &remap,
                                      TimingLedger &ledger)
{
    // Set the endpoint's voltage (no-op when already there).
    if (voltageCtl.requestVdd(token, static_cast<double>(point.vddMv),
                              &ledger) != VddRequestStatus::Ok) {
        throw AbortException{"invalid Vdd in challenge"};
    }

    const auto &geom = device.geometry();
    std::uint64_t radius = cfg.maxSearchRadius != 0
                               ? cfg.maxSearchRadius
                               : core::maxSearchRadius(geom);

    auto probe = [&](const sim::LinePoint &logical_cell) {
        sim::LinePoint physical =
            remap.unmap(logical_cell, point.vddMv);
        auto outcome = errorHandler.testLine(
            token, physical, cfg.selfTestAttempts, &ledger);
        if (outcome.emergency)
            throw AbortException{"emergency voltage raise"};
        if (cfg.decoyRatio > 0.0)
            issueDecoys(token, outcome.attemptsUsed, ledger);
        return outcome.triggered;
    };

    auto hit = core::spiralSearch(geom, point.line, radius, probe);
    return hit.found ? hit.distance : core::kInfiniteDistance;
}

void
AuthenticacheClient::evaluateChallenge(
    const FirmwareToken &token, const core::Challenge &challenge,
    const core::LogicalRemap &remap, TimingLedger &ledger,
    AuthOutcome &out, std::vector<BitDistances> *capture)
{
    // Flatten endpoints and sort by descending Vdd so the regulator
    // only ever steps downward within a transaction (Sec 5.4).
    struct Task
    {
        std::size_t bit;
        bool second; // false = endpoint A, true = endpoint B.
        core::ChallengePoint point;
    };
    std::vector<Task> tasks;
    tasks.reserve(challenge.size() * 2);
    for (std::size_t i = 0; i < challenge.size(); ++i) {
        tasks.push_back({i, false, challenge.bits[i].a});
        tasks.push_back({i, true, challenge.bits[i].b});
    }
    std::stable_sort(tasks.begin(), tasks.end(),
                     [](const Task &x, const Task &y) {
                         return x.point.vddMv > y.point.vddMv;
                     });

    ledger.addChallengeBits(challenge.size());

    std::vector<std::uint64_t> dist_a(challenge.size(),
                                      core::kInfiniteDistance);
    std::vector<std::uint64_t> dist_b(challenge.size(),
                                      core::kInfiniteDistance);

    // Segment into atomic transactions bounded by the max payload.
    const std::size_t per_txn = cfg.maxTransactionBits * 2;
    for (std::size_t start = 0; start < tasks.size();
         start += per_txn) {
        ++out.transactions;
        std::size_t end = std::min(tasks.size(), start + per_txn);
        for (std::size_t t = start; t < end; ++t) {
            std::uint64_t d = endpointDistance(token, tasks[t].point,
                                               remap, ledger);
            if (tasks[t].second)
                dist_b[tasks[t].bit] = d;
            else
                dist_a[tasks[t].bit] = d;
        }
    }

    out.response = core::Response(challenge.size());
    for (std::size_t i = 0; i < challenge.size(); ++i) {
        out.response.set(i, core::responseBitFromDistances(dist_a[i],
                                                           dist_b[i]));
    }
    if (capture) {
        capture->resize(challenge.size());
        for (std::size_t i = 0; i < challenge.size(); ++i)
            (*capture)[i] = BitDistances{dist_a[i], dist_b[i]};
    }
}

AuthOutcome
AuthenticacheClient::runChallenge(const core::Challenge &challenge,
                                  const core::LogicalRemap &remap)
{
    AuthOutcome out;
    TimingLedger ledger(cfg.timing);

    if (!voltageCtl.calibrated()) {
        out.status = AuthOutcome::Status::Aborted;
        out.abortReason = "client not booted (no voltage floor)";
        return out;
    }

    SmmSession session(machine, 0);
    ledger.addSmiEntry();

    try {
        evaluateChallenge(session.token(), challenge, remap, ledger,
                          out);
        voltageCtl.restoreNominal(session.token(), &ledger);
    } catch (const AbortException &abort) {
        voltageCtl.restoreNominal(session.token(), &ledger);
        out.status = AuthOutcome::Status::Aborted;
        out.abortReason = abort.reason;
        out.response = core::Response();
    }

    ledger.addSmiExit();
    out.elapsedMs = ledger.totalMs();
    out.lineTests = ledger.lineTests();
    out.vddTransitions = ledger.vddTransitions();

    if (out.ok())
        ++nAuthsOk;
    else
        ++nAuthsAborted;
    nLineTests += out.lineTests;
    totalMs += out.elapsedMs;
    return out;
}

void
collectClientStats(const AuthenticacheClient &client,
                   util::StatsRegistry &registry,
                   const std::string &component)
{
    registry.set(component, "authentications_completed",
                 client.authenticationsCompleted());
    registry.set(component, "authentications_aborted",
                 client.authenticationsAborted());
    registry.set(component, "line_tests",
                 client.lifetimeLineTests());
    registry.set(component, "busy_ms", client.lifetimeMs());
    registry.set(component, "emergencies", client.emergencyCount());
    registry.set(component, "voltage_floor_mv", client.floorMv());
}

AuthOutcome
AuthenticacheClient::authenticate(const core::Challenge &challenge)
{
    core::LogicalRemap remap(key, device.geometry());
    return runChallenge(challenge, remap);
}

AuthOutcome
AuthenticacheClient::answerWithDefaultMap(
    const core::Challenge &challenge)
{
    core::LogicalRemap identity(crypto::Key256::zero(),
                                device.geometry());
    return runChallenge(challenge, identity);
}

AuthenticacheClient::DistanceOutcome
AuthenticacheClient::measureDefaultMapDistances(
    const core::Challenge &challenge)
{
    DistanceOutcome out;
    if (!voltageCtl.calibrated()) {
        out.abortReason = "client not booted (no voltage floor)";
        return out;
    }

    core::LogicalRemap identity(crypto::Key256::zero(),
                                device.geometry());
    TimingLedger ledger(cfg.timing);
    SmmSession session(machine, 0);
    ledger.addSmiEntry();

    AuthOutcome scratch;
    try {
        evaluateChallenge(session.token(), challenge, identity,
                          ledger, scratch, &out.distances);
        voltageCtl.restoreNominal(session.token(), &ledger);
        out.ok = true;
    } catch (const AbortException &abort) {
        voltageCtl.restoreNominal(session.token(), &ledger);
        out.abortReason = abort.reason;
        out.distances.clear();
    }
    ledger.addSmiExit();
    return out;
}

std::optional<crypto::Key256>
AuthenticacheClient::deriveRemapKey(
    const core::Challenge &challenge, const util::BitVec &helper,
    const crypto::FuzzyExtractor &extractor)
{
    // Key-derivation challenges use the default (identity) mapping at
    // a reserved voltage (Figure 7).
    core::LogicalRemap default_map(crypto::Key256::zero(),
                                   device.geometry());
    AuthOutcome outcome = runChallenge(challenge, default_map);
    if (!outcome.ok())
        return std::nullopt;
    if (outcome.response.size() != helper.size())
        return std::nullopt;
    return extractor.reproduce(outcome.response, helper);
}

bool
AuthenticacheClient::processRemapRequest(
    const core::Challenge &challenge, const util::BitVec &helper,
    const crypto::FuzzyExtractor &extractor)
{
    auto new_key = deriveRemapKey(challenge, helper, extractor);
    if (!new_key)
        return false;
    setMapKey(*new_key);
    AUTH_LOG_INFO("firmware") << "logical map key rotated";
    return true;
}

} // namespace authenticache::firmware
