#include "firmware/keygen.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/logging.hpp"

namespace authenticache::firmware {

PufKeyGenerator::PufKeyGenerator(AuthenticacheClient &client_,
                                 unsigned m, unsigned t)
    : client(client_), extractor(m, t)
{
}

ProvisionedKey
PufKeyGenerator::provision(core::VddMv level, util::Rng &rng)
{
    const std::size_t n = extractor.responseBits();
    const std::size_t candidates =
        n * std::max(1u, oversample);

    // Oversample candidate pairs and measure their raw distances.
    core::Challenge pool = core::randomChallenge(
        client.substrate().geometry(), level, candidates, rng);
    auto measured = client.measureDefaultMapDistances(pool);
    if (!measured.ok)
        throw std::runtime_error(
            "PufKeyGenerator: measurement aborted: " +
            measured.abortReason);

    // Robustness score. A bit (say d(A) <= d(B)) flips when either
    // a new error lands within radius d(A) of B (injection risk,
    // proportional to that capture area, so small d(A) is good) or
    // the errors near A mask and d(A) climbs past d(B) (removal
    // risk, shrinking with the margin). Rank by margin relative to
    // the closer distance: ideal bits pair a point sitting on or
    // next to an error with a point comfortably farther away.
    auto score = [&](std::size_t idx) {
        const auto &d = measured.distances[idx];
        double closer = static_cast<double>(std::min(d.a, d.b));
        return static_cast<double>(d.margin()) / (1.0 + closer);
    };
    std::vector<std::size_t> order(candidates);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t x, std::size_t y) {
                         return score(x) > score(y);
                     });

    core::Challenge challenge;
    challenge.bits.reserve(n);
    util::BitVec reference(n);
    std::uint64_t weakest_margin = ~0ull;
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t idx = order[i];
        challenge.bits.push_back(pool.bits[idx]);
        reference.set(i, core::responseBitFromDistances(
                             measured.distances[idx].a,
                             measured.distances[idx].b));
        weakest_margin = std::min(weakest_margin,
                                  measured.distances[idx].margin());
    }
    if (weakest_margin < marginTarget) {
        AUTH_LOG_WARN("keygen")
            << "weakest selected margin " << weakest_margin
            << " below target " << marginTarget
            << "; consider a sparser error map or more oversampling";
    }

    auto extraction = extractor.generate(reference, rng);

    ProvisionedKey out;
    out.key = extraction.key;
    out.slot.challenge = std::move(challenge);
    out.slot.helper = std::move(extraction.helper);
    return out;
}

std::optional<crypto::Key256>
PufKeyGenerator::regenerate(const KeySlot &slot)
{
    AuthOutcome outcome = client.answerWithDefaultMap(slot.challenge);
    if (!outcome.ok())
        return std::nullopt;
    return extractor.reproduce(outcome.response, slot.helper);
}

} // namespace authenticache::firmware
