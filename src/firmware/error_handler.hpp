/**
 * @file
 * Firmware error handler (paper Sec 5.2).
 *
 * Owns the interaction with the self-test engine and the ECC error
 * log: calibration sweeps, targeted per-line tests for challenges, and
 * emergency detection -- an abrupt rise in the error rate (tracked per
 * window of line tests) triggers an immediate voltage raise through
 * the voltage-control service.
 */

#ifndef AUTH_FIRMWARE_ERROR_HANDLER_HPP
#define AUTH_FIRMWARE_ERROR_HANDLER_HPP

#include <cstdint>

#include "firmware/machine.hpp"
#include "firmware/timing.hpp"
#include "firmware/voltage_control.hpp"
#include "substrate/substrate.hpp"

namespace authenticache::firmware {

/** Emergency-detection tuning. */
struct ErrorHandlerParams
{
    /** Uncorrectable events before declaring an emergency. */
    std::uint64_t emergencyUncorrectableThreshold = 1;

    /**
     * Correctable events within one targeted test allowed before the
     * rate is deemed abrupt (a whole-line multi-word burst).
     */
    std::uint64_t burstThreshold = 16;
};

/** Outcome of a targeted challenge test. */
struct TargetedTestOutcome
{
    bool triggered = false;   ///< Correctable error observed.
    bool emergency = false;   ///< Emergency raised during the test.
    std::uint32_t attemptsUsed = 0;
};

class ErrorHandler
{
  public:
    ErrorHandler(substrate::FingerprintSubstrate &device,
                 VoltageControl &vc,
                 const ErrorHandlerParams &params = {});

    /**
     * Targeted test of one line with up to @p attempts self-tests,
     * monitoring for emergencies (firmware privilege required).
     */
    TargetedTestOutcome testLine(const FirmwareToken &token,
                                 const sim::LinePoint &line,
                                 std::uint32_t attempts,
                                 TimingLedger *ledger = nullptr);

    /** Emergencies declared since construction. */
    std::uint64_t emergencyCount() const { return nEmergencies; }

  private:
    void declareEmergency(TimingLedger *ledger);

    substrate::FingerprintSubstrate &chip;
    VoltageControl &voltageControl;
    ErrorHandlerParams params;
    std::uint64_t nEmergencies = 0;
};

} // namespace authenticache::firmware

#endif // AUTH_FIRMWARE_ERROR_HANDLER_HPP
