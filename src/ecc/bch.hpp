/**
 * @file
 * Binary BCH code over GF(2^m): systematic encoding, and decoding via
 * syndromes, Berlekamp-Massey, and Chien search.
 *
 * Used as the strong error-correcting layer of the BCH fuzzy extractor
 * (code-offset construction); e.g. BCH(127, 64, t=10) turns a 127-bit
 * noisy PUF response into an exactly reproducible 64-bit secret while
 * tolerating up to 10 bit flips -- far better rate than repetition.
 */

#ifndef AUTH_ECC_BCH_HPP
#define AUTH_ECC_BCH_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "ecc/gf2m.hpp"
#include "util/bitvec.hpp"

namespace authenticache::ecc {

class BchCode
{
  public:
    /**
     * Construct the narrow-sense binary BCH code of length 2^m - 1
     * correcting @p t errors. The dimension k = n - deg(g) falls out
     * of the generator-polynomial construction; query it with k().
     */
    BchCode(unsigned m, unsigned t);

    unsigned n() const { return length; }     ///< Codeword bits.
    unsigned k() const { return dimension; }  ///< Message bits.
    unsigned t() const { return tCorrect; }   ///< Correctable errors.

    /** Generator polynomial coefficients, g[0] = constant term. */
    const std::vector<std::uint8_t> &generator() const { return gen; }

    /**
     * Systematic encode: the message occupies the high-order bit
     * positions [n-k, n) of the codeword, parity the low ones.
     */
    util::BitVec encode(const util::BitVec &message) const;

    /** Message bits of a (corrected) codeword. */
    util::BitVec extractMessage(const util::BitVec &codeword) const;

    /**
     * Decode: correct up to t errors in place. Returns the corrected
     * codeword, or std::nullopt when the error pattern is beyond the
     * code's capability (decoder failure).
     */
    std::optional<util::BitVec> decode(const util::BitVec &received) const;

  private:
    std::vector<std::uint32_t> syndromes(const util::BitVec &r) const;

    GF2m field;
    unsigned length;
    unsigned dimension;
    unsigned tCorrect;
    std::vector<std::uint8_t> gen; // GF(2) coefficients of g(x).
};

} // namespace authenticache::ecc

#endif // AUTH_ECC_BCH_HPP
