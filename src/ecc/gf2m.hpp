/**
 * @file
 * Finite-field arithmetic over GF(2^m), 3 <= m <= 14, via log/antilog
 * tables built from a standard primitive polynomial. Substrate for
 * the BCH code used by the strong fuzzy extractor (the paper's
 * referenced key-generation error correction, Sec 7.3).
 */

#ifndef AUTH_ECC_GF2M_HPP
#define AUTH_ECC_GF2M_HPP

#include <cstdint>
#include <vector>

namespace authenticache::ecc {

/** GF(2^m) with generator alpha (a root of the primitive polynomial). */
class GF2m
{
  public:
    explicit GF2m(unsigned m);

    unsigned m() const { return mBits; }

    /** Field size 2^m. */
    std::uint32_t size() const { return 1u << mBits; }

    /** Multiplicative group order 2^m - 1. */
    std::uint32_t order() const { return size() - 1; }

    /** Addition (= subtraction) is XOR. */
    static std::uint32_t add(std::uint32_t a, std::uint32_t b)
    {
        return a ^ b;
    }

    std::uint32_t mul(std::uint32_t a, std::uint32_t b) const;
    std::uint32_t div(std::uint32_t a, std::uint32_t b) const;
    std::uint32_t inv(std::uint32_t a) const;

    /** alpha^e (exponent taken mod the group order, may be >= order). */
    std::uint32_t alphaPow(std::uint64_t e) const;

    /** Discrete log base alpha; a must be nonzero. */
    std::uint32_t logAlpha(std::uint32_t a) const;

  private:
    unsigned mBits;
    std::vector<std::uint32_t> expTable; // alpha^i, doubled length.
    std::vector<std::uint32_t> logTable;
};

} // namespace authenticache::ecc

#endif // AUTH_ECC_GF2M_HPP
