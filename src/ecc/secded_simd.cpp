/**
 * @file
 * Vectorized SECDED batch kernels (mask-parity formulation).
 *
 * The single-word encoder is byte-table-sliced, which is fast for one
 * word but does not vectorize: each byte indexes a 256-entry table.
 * The batch kernels instead use the transposed H matrix (one 64-bit
 * mask per check bit): check bit j of word w is popcount(w & mask_j)
 * mod 2, computed branchlessly with an AND followed by a logarithmic
 * XOR parity fold. That is nCheck * 8 vector ops per 2 (SSE2) or 4
 * (AVX2) words -- and, crucially, identical arithmetic at every
 * width, so results are bit-exact against the table encoder (the
 * golden-vector tests run all three paths).
 *
 * Decode is split: syndromes are computed vectorized for the whole
 * batch, then only words with a non-zero syndrome (rare -- most
 * stored words are clean) take the scalar correction path.
 */

#include "ecc/secded.hpp"

#if defined(__x86_64__) && defined(__GNUC__)
#define AUTH_SIMD_X86 1
#include <immintrin.h>
#else
#define AUTH_SIMD_X86 0
#endif

#include <algorithm>

namespace authenticache::ecc {

namespace {

/** Parity of each word's intersection with the check-bit masks. */
void
encodeScalar(const std::uint64_t *masks, unsigned n_check,
             const std::uint64_t *data, std::uint32_t *check,
             std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        std::uint32_t c = 0;
        for (unsigned j = 0; j < n_check; ++j) {
            std::uint64_t t = data[i] & masks[j];
            // Logarithmic XOR fold: bit 0 ends up holding the parity.
            t ^= t >> 32;
            t ^= t >> 16;
            t ^= t >> 8;
            t ^= t >> 4;
            t ^= t >> 2;
            t ^= t >> 1;
            c |= static_cast<std::uint32_t>(t & 1) << j;
        }
        check[i] = c;
    }
}

#if AUTH_SIMD_X86

/** SSE2: two 64-bit words per vector, same fold as the scalar path. */
void
encodeSse2(const std::uint64_t *masks, unsigned n_check,
           const std::uint64_t *data, std::uint32_t *check,
           std::size_t n)
{
    const __m128i one = _mm_set1_epi64x(1);
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const __m128i d = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(data + i));
        __m128i acc = _mm_setzero_si128();
        for (unsigned j = 0; j < n_check; ++j) {
            __m128i t = _mm_and_si128(
                d, _mm_set1_epi64x(
                       static_cast<long long>(masks[j])));
            t = _mm_xor_si128(t, _mm_srli_epi64(t, 32));
            t = _mm_xor_si128(t, _mm_srli_epi64(t, 16));
            t = _mm_xor_si128(t, _mm_srli_epi64(t, 8));
            t = _mm_xor_si128(t, _mm_srli_epi64(t, 4));
            t = _mm_xor_si128(t, _mm_srli_epi64(t, 2));
            t = _mm_xor_si128(t, _mm_srli_epi64(t, 1));
            t = _mm_and_si128(t, one);
            acc = _mm_or_si128(
                acc, _mm_slli_epi64(t, static_cast<int>(j)));
        }
        alignas(16) std::uint64_t lanes[2];
        _mm_store_si128(reinterpret_cast<__m128i *>(lanes), acc);
        check[i] = static_cast<std::uint32_t>(lanes[0]);
        check[i + 1] = static_cast<std::uint32_t>(lanes[1]);
    }
    if (i < n)
        encodeScalar(masks, n_check, data + i, check + i, n - i);
}

/** AVX2: four 64-bit words per vector. */
__attribute__((target("avx2"))) void
encodeAvx2(const std::uint64_t *masks, unsigned n_check,
           const std::uint64_t *data, std::uint32_t *check,
           std::size_t n)
{
    const __m256i one = _mm256_set1_epi64x(1);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i d = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(data + i));
        __m256i acc = _mm256_setzero_si256();
        for (unsigned j = 0; j < n_check; ++j) {
            __m256i t = _mm256_and_si256(
                d, _mm256_set1_epi64x(
                       static_cast<long long>(masks[j])));
            t = _mm256_xor_si256(t, _mm256_srli_epi64(t, 32));
            t = _mm256_xor_si256(t, _mm256_srli_epi64(t, 16));
            t = _mm256_xor_si256(t, _mm256_srli_epi64(t, 8));
            t = _mm256_xor_si256(t, _mm256_srli_epi64(t, 4));
            t = _mm256_xor_si256(t, _mm256_srli_epi64(t, 2));
            t = _mm256_xor_si256(t, _mm256_srli_epi64(t, 1));
            t = _mm256_and_si256(t, one);
            acc = _mm256_or_si256(
                acc, _mm256_slli_epi64(t, static_cast<int>(j)));
        }
        alignas(32) std::uint64_t lanes[4];
        _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), acc);
        for (int k = 0; k < 4; ++k)
            check[i + k] = static_cast<std::uint32_t>(lanes[k]);
    }
    if (i < n)
        encodeSse2(masks, n_check, data + i, check + i, n - i);
}

#endif // AUTH_SIMD_X86

/** Widest level the host can actually execute. */
util::SimdLevel
clampLevel(util::SimdLevel level)
{
#if AUTH_SIMD_X86
    util::SimdLevel cap = util::detectedSimdLevel();
    return level <= cap ? level : cap;
#else
    (void)level;
    return util::SimdLevel::Scalar;
#endif
}

} // namespace

void
SecdedCodec::encodeBatch(const std::uint64_t *data,
                         std::uint32_t *check, std::size_t n,
                         util::SimdLevel level) const
{
    switch (clampLevel(level)) {
#if AUTH_SIMD_X86
      case util::SimdLevel::Avx2:
        encodeAvx2(masks.data(), nCheck, data, check, n);
        return;
      case util::SimdLevel::Sse2:
        encodeSse2(masks.data(), nCheck, data, check, n);
        return;
#endif
      default:
        encodeScalar(masks.data(), nCheck, data, check, n);
        return;
    }
}

void
SecdedCodec::encodeBatch(const std::uint64_t *data,
                         std::uint32_t *check, std::size_t n) const
{
    encodeBatch(data, check, n, util::simdLevel());
}

void
SecdedCodec::syndromeBatch(const std::uint64_t *data,
                           const std::uint32_t *check,
                           std::uint32_t *syndrome, std::size_t n,
                           util::SimdLevel level) const
{
    encodeBatch(data, syndrome, n, level);
    for (std::size_t i = 0; i < n; ++i)
        syndrome[i] ^= check[i];
}

void
SecdedCodec::decodeBatch(const std::uint64_t *data,
                         const std::uint32_t *check,
                         DecodeResult *out, std::size_t n,
                         util::SimdLevel level) const
{
    // Chunk the syndrome pass through a stack buffer so the batch
    // decode allocates nothing regardless of n.
    constexpr std::size_t kChunk = 256;
    std::uint32_t syndrome[kChunk];
    for (std::size_t base = 0; base < n; base += kChunk) {
        const std::size_t m = std::min(kChunk, n - base);
        syndromeBatch(data + base, check + base, syndrome, m, level);
        for (std::size_t i = 0; i < m; ++i) {
            if (syndrome[i] == 0) {
                out[base + i] = DecodeResult{DecodeStatus::Ok,
                                             data[base + i], -1};
            } else {
                // Dirty word: take the full scalar path rather than
                // duplicating the correction logic here, so batch
                // and single-word decode cannot diverge.
                out[base + i] =
                    decode(data[base + i], check[base + i]);
            }
        }
    }
}

void
SecdedCodec::decodeBatch(const std::uint64_t *data,
                         const std::uint32_t *check,
                         DecodeResult *out, std::size_t n) const
{
    decodeBatch(data, check, out, n, util::simdLevel());
}

} // namespace authenticache::ecc
