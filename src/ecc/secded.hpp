/**
 * @file
 * Hsiao single-error-correct, double-error-detect (SECDED) codec.
 *
 * The simulated caches store every 64-bit word with 8 check bits --
 * SECDED(72,64), the organization used by the Itanium 9560 L2 arrays
 * the paper prototypes on -- and report corrected errors to the error
 * log exactly the way the hardware's machine-check banks do. A
 * SECDED(39,32) instance is provided for narrower arrays.
 *
 * Hsiao codes assign every data bit a distinct odd-weight parity-check
 * column, which makes single and double errors distinguishable by
 * syndrome weight parity: odd-weight syndrome => single (correctable),
 * non-zero even-weight syndrome => double (detectable, uncorrectable).
 */

#ifndef AUTH_ECC_SECDED_HPP
#define AUTH_ECC_SECDED_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/simd.hpp"

namespace authenticache::ecc {

/** Outcome of decoding one protected word. */
enum class DecodeStatus
{
    Ok,              ///< Syndrome zero, word clean.
    CorrectedData,   ///< Single data-bit error corrected.
    CorrectedCheck,  ///< Single check-bit error corrected (data intact).
    DoubleError,     ///< Two-bit error detected, not correctable.
    Uncorrectable,   ///< Syndrome inconsistent (3+ bit corruption).
    Detected,        ///< Corruption detected by a detect-only scheme.
};

/** Full decode result: status, repaired data, error position. */
struct DecodeResult
{
    DecodeStatus status = DecodeStatus::Ok;
    std::uint64_t data = 0;   ///< Corrected data word.
    int bitPosition = -1;     ///< Corrected bit index, -1 if none.
};

/**
 * Hsiao SECDED codec for a configurable data width (<= 64 bits).
 * The parity-check matrix is constructed at run time by assigning the
 * lowest-weight odd columns first (weight 3, then 5, ...), the standard
 * minimal-logic Hsiao construction.
 */
class SecdedCodec
{
  public:
    /** @param data_bits Protected word width; 64 and 32 are typical. */
    explicit SecdedCodec(unsigned data_bits = 64);

    unsigned dataBits() const { return nData; }
    unsigned checkBits() const { return nCheck; }

    /** Compute the check bits for a data word. */
    std::uint32_t encode(std::uint64_t data) const;

    /**
     * Decode a stored (data, check) pair, correcting a single-bit
     * error anywhere in the 72- (or 39-) bit codeword.
     */
    DecodeResult decode(std::uint64_t data, std::uint32_t check) const;

    /**
     * Check bits for each of @p n data words. Bit-identical to
     * calling encode() per word at every @p level; the SSE2/AVX2
     * paths fold the transposed parity masks over 2/4 words per
     * vector instead of walking the byte table.
     */
    void encodeBatch(const std::uint64_t *data, std::uint32_t *check,
                     std::size_t n, util::SimdLevel level) const;

    /** Same, dispatched at the process-wide util::simdLevel(). */
    void encodeBatch(const std::uint64_t *data, std::uint32_t *check,
                     std::size_t n) const;

    /**
     * syndrome[i] = encode(data[i]) ^ check[i] for each of @p n
     * stored words; the vectorized front half of decodeBatch,
     * exposed for scrub-style passes that only need to know *which*
     * words are dirty.
     */
    void syndromeBatch(const std::uint64_t *data,
                       const std::uint32_t *check,
                       std::uint32_t *syndrome, std::size_t n,
                       util::SimdLevel level) const;

    /**
     * Decode @p n stored words. Syndrome computation is vectorized;
     * only words with a non-zero syndrome (rare in practice) take
     * the scalar correction path. Results are bit-identical to
     * calling decode() per word at every @p level.
     */
    void decodeBatch(const std::uint64_t *data,
                     const std::uint32_t *check, DecodeResult *out,
                     std::size_t n, util::SimdLevel level) const;

    /** Same, dispatched at the process-wide util::simdLevel(). */
    void decodeBatch(const std::uint64_t *data,
                     const std::uint32_t *check, DecodeResult *out,
                     std::size_t n) const;

    /** The parity-check column for data bit i (for tests). */
    std::uint32_t dataColumn(unsigned i) const { return columns.at(i); }

    /**
     * Transposed parity mask of check bit @p j: data bit i feeds
     * check bit j iff bit i is set (for tests; the SIMD kernels'
     * working representation of the H matrix).
     */
    std::uint64_t checkMask(unsigned j) const { return masks.at(j); }

  private:
    unsigned nData;
    unsigned nCheck;
    std::vector<std::uint32_t> columns;     // Per data bit.
    std::vector<std::uint64_t> masks;       // Per check bit (H transposed).
    std::vector<int> syndromeToDataBit;     // 2^nCheck entries, -1 = none.

    // Byte-sliced encoder: parity contribution of each possible byte
    // value at each byte position; one XOR per byte instead of one
    // per bit.
    std::vector<std::uint32_t> byteParity;  // [byte_pos * 256 + value].
    unsigned nBytes = 0;
};

/** Number of check bits a Hsiao SECDED code needs for data_bits. */
unsigned secdedCheckBits(unsigned data_bits);

} // namespace authenticache::ecc

#endif // AUTH_ECC_SECDED_HPP
