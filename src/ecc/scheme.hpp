/**
 * @file
 * Pluggable ECC-scheme interface for the fingerprint substrates.
 *
 * The cache arrays store every 64-bit data word with a check word
 * computed by an EccScheme and route all readbacks through its
 * decoder. Schemes are selected by name through the registry
 * (makeEccScheme), so a platform config can pair any substrate with
 * any code:
 *
 *  - "secded_72_64": the Hsiao SECDED(72,64) codec the paper's
 *    hardware uses (corrects one bit, detects two; SIMD batch path).
 *  - "bch_127_64":   BCH(127,64,t=10); the 63 parity bits of the
 *    systematic codeword are the stored check word. Strong
 *    correction, scalar decode.
 *  - "crc_edc":      detect-only CRC-32 of the data word. Any
 *    corruption reports DecodeStatus::Detected with the raw data
 *    left untouched; there is no correction, so substrates using it
 *    see every fault as a detected (never "corrected") event.
 *
 * Every scheme self-reports lifetime counters into a StatsRegistry
 * under a caller-chosen component ("ecc.*" from the CLI).
 */

#ifndef AUTH_ECC_SCHEME_HPP
#define AUTH_ECC_SCHEME_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ecc/secded.hpp"
#include "util/stats_registry.hpp"

namespace authenticache::ecc {

/**
 * One error-protection scheme instance. Instances carry per-device
 * telemetry counters, so each array owns its own (shared_ptr lets a
 * chip hand the same instance to its array and its stats reporter).
 * Encode/decode are non-const because they tally; arrays are
 * single-threaded by contract, so the counters need no locks.
 */
class EccScheme
{
  public:
    virtual ~EccScheme() = default;

    /** Registry name ("secded_72_64", "bch_127_64", "crc_edc"). */
    virtual std::string name() const = 0;

    /** Protected data width in bits (64 for every built-in). */
    virtual unsigned dataBits() const = 0;

    /** Stored check-word width in bits (must be <= 64). */
    virtual unsigned checkBits() const = 0;

    /** False for detect-only schemes (no repair, no remap support). */
    virtual bool corrects() const = 0;

    /** Compute the check word for a data word. */
    virtual std::uint64_t encode(std::uint64_t data) = 0;

    /** Decode a stored (data, check) pair. */
    virtual DecodeResult decode(std::uint64_t data,
                                std::uint64_t check) = 0;

    /**
     * Batch encode/decode; bit-identical to the word-at-a-time calls.
     * The default implementations loop; SECDED forwards to its SIMD
     * kernels.
     */
    virtual void encodeBatch(const std::uint64_t *data,
                             std::uint64_t *check, std::size_t n);
    virtual void decodeBatch(const std::uint64_t *data,
                             const std::uint64_t *check,
                             DecodeResult *out, std::size_t n);

    /** Publish lifetime counters under "<component>.*". */
    void reportStats(util::StatsRegistry &registry,
                     const std::string &component = "ecc") const;

  protected:
    /** Tally one decode outcome (implementations must call this). */
    void noteDecode(const DecodeResult &r);
    void noteEncodes(std::uint64_t n) { nEncodes += n; }

  private:
    std::uint64_t nEncodes = 0;
    std::uint64_t nDecodes = 0;
    std::uint64_t nCorrected = 0;
    std::uint64_t nDetected = 0;
    std::uint64_t nUncorrectable = 0;
};

/**
 * Instantiate a scheme by registry name. Each call returns a fresh
 * instance (schemes carry per-device counters).
 * @throws std::invalid_argument for an unknown name.
 */
std::shared_ptr<EccScheme> makeEccScheme(const std::string &name);

/** Registered scheme names, sorted. */
std::vector<std::string> eccSchemeNames();

/** True when @p name is a registered scheme. */
bool eccSchemeExists(const std::string &name);

} // namespace authenticache::ecc

#endif // AUTH_ECC_SCHEME_HPP
