#include "ecc/secded.hpp"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace authenticache::ecc {

unsigned
secdedCheckBits(unsigned data_bits)
{
    // Need: (number of odd-weight c-bit values of weight >= 3) >= data
    // bits, i.e. 2^(c-1) - c >= data_bits. 32 -> 7, 64 -> 8.
    for (unsigned c = 4; c <= 16; ++c) {
        if ((1u << (c - 1)) - c >= data_bits)
            return c;
    }
    throw std::invalid_argument("secdedCheckBits: width too large");
}

SecdedCodec::SecdedCodec(unsigned data_bits) : nData(data_bits)
{
    if (data_bits == 0 || data_bits > 64)
        throw std::invalid_argument("SecdedCodec: 1..64 data bits");
    nCheck = secdedCheckBits(nData);

    // Assign odd-weight columns, lowest weight first (Hsiao).
    columns.reserve(nData);
    for (unsigned weight = 3; columns.size() < nData; weight += 2) {
        for (std::uint32_t v = 0; v < (1u << nCheck); ++v) {
            if (std::popcount(v) == static_cast<int>(weight)) {
                columns.push_back(v);
                if (columns.size() == nData)
                    break;
            }
        }
        if (weight > nCheck)
            throw std::logic_error("SecdedCodec: column space exhausted");
    }

    // Transpose the columns into one 64-bit parity mask per check
    // bit; the SIMD batch kernels AND-and-fold these over whole
    // data words.
    masks.assign(nCheck, 0);
    for (unsigned i = 0; i < nData; ++i)
        for (unsigned j = 0; j < nCheck; ++j)
            if ((columns[i] >> j) & 1)
                masks[j] |= 1ull << i;

    syndromeToDataBit.assign(1u << nCheck, -1);
    for (unsigned i = 0; i < nData; ++i)
        syndromeToDataBit[columns[i]] = static_cast<int>(i);

    // Build the byte-sliced encoder table.
    nBytes = (nData + 7) / 8;
    byteParity.assign(nBytes * 256, 0);
    for (unsigned byte_pos = 0; byte_pos < nBytes; ++byte_pos) {
        for (unsigned value = 0; value < 256; ++value) {
            std::uint32_t parity = 0;
            for (unsigned bit = 0; bit < 8; ++bit) {
                unsigned data_bit = byte_pos * 8 + bit;
                if (data_bit < nData && ((value >> bit) & 1))
                    parity ^= columns[data_bit];
            }
            byteParity[byte_pos * 256 + value] = parity;
        }
    }
}

std::uint32_t
SecdedCodec::encode(std::uint64_t data) const
{
    std::uint32_t check = 0;
    for (unsigned byte_pos = 0; byte_pos < nBytes; ++byte_pos) {
        check ^= byteParity[byte_pos * 256 +
                            ((data >> (8 * byte_pos)) & 0xFF)];
    }
    return check;
}

DecodeResult
SecdedCodec::decode(std::uint64_t data, std::uint32_t check) const
{
    DecodeResult result;
    result.data = data;

    std::uint32_t syndrome = encode(data) ^ check;
    if (syndrome == 0) {
        result.status = DecodeStatus::Ok;
        return result;
    }

    const int weight = std::popcount(syndrome);
    if (weight % 2 == 0) {
        // Even non-zero syndrome: double error by Hsiao construction.
        result.status = DecodeStatus::DoubleError;
        return result;
    }

    if (weight == 1) {
        // Unit syndrome: the flipped bit is a check bit; data is fine.
        result.status = DecodeStatus::CorrectedCheck;
        result.bitPosition =
            static_cast<int>(nData) + std::countr_zero(syndrome);
        return result;
    }

    int bit = syndromeToDataBit[syndrome];
    if (bit < 0) {
        // Odd-weight syndrome matching no column: 3+ bit corruption.
        result.status = DecodeStatus::Uncorrectable;
        return result;
    }

    result.status = DecodeStatus::CorrectedData;
    result.bitPosition = bit;
    result.data = data ^ (1ull << bit);
    return result;
}

} // namespace authenticache::ecc
