#include "ecc/bch.hpp"

#include <algorithm>
#include <cassert>
#include <set>
#include <stdexcept>

namespace authenticache::ecc {

namespace {

/** Multiply two GF(2) polynomials (bit vectors of coefficients). */
std::vector<std::uint8_t>
polyMulGf2(const std::vector<std::uint8_t> &a,
           const std::vector<std::uint8_t> &b)
{
    std::vector<std::uint8_t> out(a.size() + b.size() - 1, 0);
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (!a[i])
            continue;
        for (std::size_t j = 0; j < b.size(); ++j)
            out[i + j] ^= b[j];
    }
    return out;
}

} // namespace

BchCode::BchCode(unsigned m, unsigned t)
    : field(m), length((1u << m) - 1), tCorrect(t)
{
    if (t == 0 || 2 * t >= length)
        throw std::invalid_argument("BchCode: bad correction power");

    // Collect the cyclotomic cosets covering exponents 1..2t.
    std::set<std::uint32_t> covered;
    gen = {1};
    for (std::uint32_t e = 1; e <= 2 * t; ++e) {
        if (covered.count(e))
            continue;
        // The coset of e: {e, 2e, 4e, ...} mod n.
        std::vector<std::uint32_t> coset;
        std::uint32_t cur = e;
        do {
            coset.push_back(cur);
            covered.insert(cur);
            cur = static_cast<std::uint32_t>(
                (2ull * cur) % length);
        } while (cur != e);

        // Minimal polynomial of alpha^e: prod (x + alpha^j), computed
        // over GF(2^m); the result has 0/1 coefficients.
        std::vector<std::uint32_t> min_poly{1};
        for (auto j : coset) {
            std::vector<std::uint32_t> next(min_poly.size() + 1, 0);
            std::uint32_t root = field.alphaPow(j);
            for (std::size_t d = 0; d < min_poly.size(); ++d) {
                next[d + 1] ^= min_poly[d];              // x * c_d.
                next[d] ^= field.mul(min_poly[d], root); // root * c_d.
            }
            min_poly = std::move(next);
        }
        std::vector<std::uint8_t> min_gf2(min_poly.size());
        for (std::size_t d = 0; d < min_poly.size(); ++d) {
            if (min_poly[d] > 1)
                throw std::logic_error(
                    "BchCode: minimal polynomial not binary");
            min_gf2[d] = static_cast<std::uint8_t>(min_poly[d]);
        }
        gen = polyMulGf2(gen, min_gf2);
    }

    dimension = length - static_cast<unsigned>(gen.size() - 1);
    if (dimension == 0)
        throw std::invalid_argument("BchCode: dimension zero");
}

util::BitVec
BchCode::encode(const util::BitVec &message) const
{
    if (message.size() != dimension)
        throw std::invalid_argument("BchCode::encode: wrong length");

    const unsigned parity = length - dimension;

    // Compute m(x) * x^(n-k) mod g(x) with long division.
    std::vector<std::uint8_t> rem(parity, 0);
    for (unsigned i = dimension; i-- > 0;) {
        // Bring down the next message bit (highest degree first).
        std::uint8_t feedback =
            static_cast<std::uint8_t>(message.get(i)) ^
            (parity ? rem[parity - 1] : 0);
        for (unsigned j = parity; j-- > 1;) {
            rem[j] = static_cast<std::uint8_t>(
                rem[j - 1] ^ (feedback ? gen[j] : 0));
        }
        rem[0] = static_cast<std::uint8_t>(feedback ? gen[0] : 0);
    }

    util::BitVec codeword(length);
    for (unsigned i = 0; i < parity; ++i)
        codeword.set(i, rem[i]);
    for (unsigned i = 0; i < dimension; ++i)
        codeword.set(parity + i, message.get(i));
    return codeword;
}

util::BitVec
BchCode::extractMessage(const util::BitVec &codeword) const
{
    if (codeword.size() != length)
        throw std::invalid_argument("BchCode: wrong codeword length");
    util::BitVec message(dimension);
    const unsigned parity = length - dimension;
    for (unsigned i = 0; i < dimension; ++i)
        message.set(i, codeword.get(parity + i));
    return message;
}

std::vector<std::uint32_t>
BchCode::syndromes(const util::BitVec &r) const
{
    std::vector<std::uint32_t> s(2 * tCorrect, 0);
    for (unsigned i = 0; i < 2 * tCorrect; ++i) {
        std::uint32_t acc = 0;
        for (unsigned p = 0; p < length; ++p) {
            if (r.get(p))
                acc ^= field.alphaPow(
                    static_cast<std::uint64_t>(i + 1) * p);
        }
        s[i] = acc;
    }
    return s;
}

std::optional<util::BitVec>
BchCode::decode(const util::BitVec &received) const
{
    if (received.size() != length)
        throw std::invalid_argument("BchCode: wrong codeword length");

    auto s = syndromes(received);
    if (std::all_of(s.begin(), s.end(),
                    [](std::uint32_t v) { return v == 0; }))
        return received;

    // Berlekamp-Massey: find the error locator sigma(x).
    std::vector<std::uint32_t> sigma{1};
    std::vector<std::uint32_t> prev{1};
    unsigned L = 0;
    unsigned shift = 1;
    std::uint32_t prev_disc = 1;

    for (unsigned step = 0; step < 2 * tCorrect; ++step) {
        std::uint32_t disc = s[step];
        for (unsigned i = 1; i <= L && i < sigma.size(); ++i)
            disc ^= field.mul(sigma[i], s[step - i]);

        if (disc == 0) {
            ++shift;
            continue;
        }
        if (2 * L <= step) {
            auto saved = sigma;
            std::uint32_t scale = field.div(disc, prev_disc);
            if (sigma.size() < prev.size() + shift)
                sigma.resize(prev.size() + shift, 0);
            for (std::size_t i = 0; i < prev.size(); ++i)
                sigma[i + shift] ^= field.mul(scale, prev[i]);
            L = step + 1 - L;
            prev = std::move(saved);
            prev_disc = disc;
            shift = 1;
        } else {
            std::uint32_t scale = field.div(disc, prev_disc);
            if (sigma.size() < prev.size() + shift)
                sigma.resize(prev.size() + shift, 0);
            for (std::size_t i = 0; i < prev.size(); ++i)
                sigma[i + shift] ^= field.mul(scale, prev[i]);
            ++shift;
        }
    }

    while (!sigma.empty() && sigma.back() == 0)
        sigma.pop_back();
    unsigned degree = static_cast<unsigned>(sigma.size()) - 1;
    if (degree > tCorrect || L > tCorrect)
        return std::nullopt; // More errors than the code corrects.

    // Chien search: roots alpha^i of sigma mark errors at n - i.
    util::BitVec corrected = received;
    unsigned roots = 0;
    for (unsigned i = 0; i < length; ++i) {
        std::uint32_t acc = 0;
        for (std::size_t d = 0; d < sigma.size(); ++d) {
            acc ^= field.mul(
                sigma[d],
                field.alphaPow(static_cast<std::uint64_t>(d) * i));
        }
        if (acc == 0) {
            unsigned pos = (length - i) % length;
            corrected.flip(pos);
            ++roots;
        }
    }
    if (roots != degree)
        return std::nullopt; // sigma does not split: decoder failure.

    // Verify: the corrected word must be a codeword.
    auto check = syndromes(corrected);
    if (!std::all_of(check.begin(), check.end(),
                     [](std::uint32_t v) { return v == 0; }))
        return std::nullopt;
    return corrected;
}

} // namespace authenticache::ecc
