#include "ecc/gf2m.hpp"

#include <cassert>
#include <stdexcept>

namespace authenticache::ecc {

namespace {

/** Primitive polynomials over GF(2), index = m (x^m + ... + 1). */
constexpr std::uint32_t kPrimitivePoly[] = {
    0,      0,      0,
    0b1011,             // m=3:  x^3 + x + 1
    0b10011,            // m=4:  x^4 + x + 1
    0b100101,           // m=5:  x^5 + x^2 + 1
    0b1000011,          // m=6:  x^6 + x + 1
    0b10001001,         // m=7:  x^7 + x^3 + 1
    0b100011101,        // m=8:  x^8 + x^4 + x^3 + x^2 + 1
    0b1000010001,       // m=9:  x^9 + x^4 + 1
    0b10000001001,      // m=10: x^10 + x^3 + 1
    0b100000000101,     // m=11: x^11 + x^2 + 1
    0b1000001010011,    // m=12: x^12 + x^6 + x^4 + x + 1
    0b10000000011011,   // m=13: x^13 + x^4 + x^3 + x + 1
    0b100010001000011,  // m=14: x^14 + x^10 + x^6 + x + 1
};

} // namespace

GF2m::GF2m(unsigned m) : mBits(m)
{
    if (m < 3 || m > 14)
        throw std::invalid_argument("GF2m: m must be in [3, 14]");

    const std::uint32_t poly = kPrimitivePoly[m];
    const std::uint32_t n = order();

    expTable.resize(2 * n);
    logTable.assign(size(), 0);

    std::uint32_t x = 1;
    for (std::uint32_t i = 0; i < n; ++i) {
        expTable[i] = x;
        logTable[x] = i;
        x <<= 1;
        if (x & size())
            x ^= poly;
    }
    if (x != 1)
        throw std::logic_error("GF2m: polynomial not primitive");
    // Doubled table avoids a modulo in mul().
    for (std::uint32_t i = 0; i < n; ++i)
        expTable[n + i] = expTable[i];
}

std::uint32_t
GF2m::mul(std::uint32_t a, std::uint32_t b) const
{
    if (a == 0 || b == 0)
        return 0;
    return expTable[logTable[a] + logTable[b]];
}

std::uint32_t
GF2m::inv(std::uint32_t a) const
{
    if (a == 0)
        throw std::domain_error("GF2m: inverse of zero");
    return expTable[order() - logTable[a]];
}

std::uint32_t
GF2m::div(std::uint32_t a, std::uint32_t b) const
{
    if (b == 0)
        throw std::domain_error("GF2m: division by zero");
    if (a == 0)
        return 0;
    return expTable[logTable[a] + order() - logTable[b]];
}

std::uint32_t
GF2m::alphaPow(std::uint64_t e) const
{
    return expTable[e % order()];
}

std::uint32_t
GF2m::logAlpha(std::uint32_t a) const
{
    if (a == 0)
        throw std::domain_error("GF2m: log of zero");
    return logTable[a];
}

} // namespace authenticache::ecc
