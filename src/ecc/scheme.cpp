#include "ecc/scheme.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <stdexcept>

#include "ecc/bch.hpp"
#include "util/crc32.hpp"

namespace authenticache::ecc {

void
EccScheme::noteDecode(const DecodeResult &r)
{
    ++nDecodes;
    switch (r.status) {
      case DecodeStatus::Ok:
        break;
      case DecodeStatus::CorrectedData:
      case DecodeStatus::CorrectedCheck:
        ++nCorrected;
        break;
      case DecodeStatus::Detected:
        ++nDetected;
        break;
      case DecodeStatus::DoubleError:
      case DecodeStatus::Uncorrectable:
        ++nUncorrectable;
        break;
    }
}

void
EccScheme::encodeBatch(const std::uint64_t *data, std::uint64_t *check,
                       std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        check[i] = encode(data[i]);
}

void
EccScheme::decodeBatch(const std::uint64_t *data,
                       const std::uint64_t *check, DecodeResult *out,
                       std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = decode(data[i], check[i]);
}

void
EccScheme::reportStats(util::StatsRegistry &registry,
                       const std::string &component) const
{
    registry.set(component, "data_bits",
                 static_cast<std::uint64_t>(dataBits()));
    registry.set(component, "check_bits",
                 static_cast<std::uint64_t>(checkBits()));
    registry.set(component, "corrects",
                 static_cast<std::uint64_t>(corrects() ? 1 : 0));
    registry.set(component, "encodes", nEncodes);
    registry.set(component, "decodes", nDecodes);
    registry.set(component, "corrected", nCorrected);
    registry.set(component, "detected", nDetected);
    registry.set(component, "uncorrectable", nUncorrectable);
}

namespace {

/** Hsiao SECDED(72,64): forwards to the SIMD batch kernels. */
class SecdedScheme final : public EccScheme
{
  public:
    SecdedScheme() : codec(64) {}

    std::string name() const override { return "secded_72_64"; }
    unsigned dataBits() const override { return codec.dataBits(); }
    unsigned checkBits() const override { return codec.checkBits(); }
    bool corrects() const override { return true; }

    std::uint64_t
    encode(std::uint64_t data) override
    {
        noteEncodes(1);
        return codec.encode(data);
    }

    DecodeResult
    decode(std::uint64_t data, std::uint64_t check) override
    {
        DecodeResult r =
            codec.decode(data, static_cast<std::uint32_t>(check));
        noteDecode(r);
        return r;
    }

    void
    encodeBatch(const std::uint64_t *data, std::uint64_t *check,
                std::size_t n) override
    {
        constexpr std::size_t kChunk = 64;
        std::uint32_t buf[kChunk];
        for (std::size_t off = 0; off < n; off += kChunk) {
            const std::size_t m = std::min(kChunk, n - off);
            codec.encodeBatch(data + off, buf, m);
            for (std::size_t i = 0; i < m; ++i)
                check[off + i] = buf[i];
        }
        noteEncodes(n);
    }

    void
    decodeBatch(const std::uint64_t *data, const std::uint64_t *check,
                DecodeResult *out, std::size_t n) override
    {
        constexpr std::size_t kChunk = 64;
        std::uint32_t buf[kChunk];
        for (std::size_t off = 0; off < n; off += kChunk) {
            const std::size_t m = std::min(kChunk, n - off);
            for (std::size_t i = 0; i < m; ++i)
                buf[i] = static_cast<std::uint32_t>(check[off + i]);
            codec.decodeBatch(data + off, buf, out + off, m);
        }
        for (std::size_t i = 0; i < n; ++i)
            noteDecode(out[i]);
    }

  private:
    SecdedCodec codec;
};

/**
 * BCH(127,64,t=10): the 63 parity bits of the systematic codeword are
 * the stored check word. Corrects up to 10 flipped bits per word;
 * error patterns past the decoder's capability report Uncorrectable.
 */
class BchScheme final : public EccScheme
{
  public:
    BchScheme() : code(7, 10) {}

    std::string name() const override { return "bch_127_64"; }
    unsigned dataBits() const override { return code.k(); }
    unsigned checkBits() const override { return code.n() - code.k(); }
    bool corrects() const override { return true; }

    std::uint64_t
    encode(std::uint64_t data) override
    {
        noteEncodes(1);
        return parityOf(data);
    }

    DecodeResult
    decode(std::uint64_t data, std::uint64_t check) override
    {
        DecodeResult r;
        r.data = data;
        const std::uint64_t parity = check & parityMask();
        if (parityOf(data) == parity) {
            noteDecode(r);
            return r;
        }

        const unsigned p = checkBits();
        util::BitVec received(code.n());
        for (unsigned i = 0; i < p; ++i)
            received.set(i, ((parity >> i) & 1) != 0);
        for (unsigned i = 0; i < dataBits(); ++i)
            received.set(p + i, ((data >> i) & 1) != 0);

        auto corrected = code.decode(received);
        if (!corrected) {
            r.status = DecodeStatus::Uncorrectable;
            noteDecode(r);
            return r;
        }

        std::uint64_t fixed = 0;
        for (unsigned i = 0; i < dataBits(); ++i)
            if (corrected->get(p + i))
                fixed |= 1ull << i;
        std::uint64_t fixed_parity = 0;
        for (unsigned i = 0; i < p; ++i)
            if (corrected->get(i))
                fixed_parity |= 1ull << i;

        r.data = fixed;
        if (fixed != data) {
            r.status = DecodeStatus::CorrectedData;
            r.bitPosition = std::countr_zero(fixed ^ data);
        } else {
            r.status = DecodeStatus::CorrectedCheck;
            r.bitPosition =
                64 + std::countr_zero(fixed_parity ^ parity);
        }
        noteDecode(r);
        return r;
    }

  private:
    std::uint64_t
    parityMask() const
    {
        return (1ull << checkBits()) - 1;
    }

    /** Parity word of @p data (no telemetry; shared by both paths). */
    std::uint64_t
    parityOf(std::uint64_t data) const
    {
        util::BitVec message(code.k());
        for (unsigned i = 0; i < code.k(); ++i)
            message.set(i, ((data >> i) & 1) != 0);
        util::BitVec codeword = code.encode(message);
        std::uint64_t parity = 0;
        const unsigned p = code.n() - code.k();
        for (unsigned i = 0; i < p; ++i)
            if (codeword.get(i))
                parity |= 1ull << i;
        return parity;
    }

    BchCode code;
};

/**
 * Detect-only CRC-32 of the data word. Any mismatch is reported as
 * Detected; the data is returned as stored (no repair is possible).
 */
class CrcEdcScheme final : public EccScheme
{
  public:
    std::string name() const override { return "crc_edc"; }
    unsigned dataBits() const override { return 64; }
    unsigned checkBits() const override { return 32; }
    bool corrects() const override { return false; }

    std::uint64_t
    encode(std::uint64_t data) override
    {
        noteEncodes(1);
        return crcOf(data);
    }

    DecodeResult
    decode(std::uint64_t data, std::uint64_t check) override
    {
        DecodeResult r;
        r.data = data;
        if (crcOf(data) != (check & 0xffffffffull))
            r.status = DecodeStatus::Detected;
        noteDecode(r);
        return r;
    }

  private:
    static std::uint64_t
    crcOf(std::uint64_t data)
    {
        std::uint8_t bytes[8];
        for (int i = 0; i < 8; ++i)
            bytes[i] = static_cast<std::uint8_t>(data >> (8 * i));
        return util::crc32(bytes);
    }
};

using SchemeFactory = std::shared_ptr<EccScheme> (*)();

std::map<std::string, SchemeFactory> &
schemeTable()
{
    static std::map<std::string, SchemeFactory> table;
    return table;
}

/**
 * Builtins are registered lazily on first lookup rather than from
 * static initializers: static-library dead-stripping would silently
 * drop an initializer-only translation unit.
 */
void
ensureBuiltins()
{
    auto &table = schemeTable();
    if (!table.empty())
        return;
    table.emplace("secded_72_64", []() -> std::shared_ptr<EccScheme> {
        return std::make_shared<SecdedScheme>();
    });
    table.emplace("bch_127_64", []() -> std::shared_ptr<EccScheme> {
        return std::make_shared<BchScheme>();
    });
    table.emplace("crc_edc", []() -> std::shared_ptr<EccScheme> {
        return std::make_shared<CrcEdcScheme>();
    });
}

} // namespace

std::shared_ptr<EccScheme>
makeEccScheme(const std::string &name)
{
    ensureBuiltins();
    auto it = schemeTable().find(name);
    if (it == schemeTable().end())
        throw std::invalid_argument("unknown ECC scheme '" + name +
                                    "'");
    return it->second();
}

std::vector<std::string>
eccSchemeNames()
{
    ensureBuiltins();
    std::vector<std::string> names;
    names.reserve(schemeTable().size());
    for (const auto &[name, factory] : schemeTable())
        names.push_back(name);
    return names;
}

bool
eccSchemeExists(const std::string &name)
{
    ensureBuiltins();
    return schemeTable().count(name) > 0;
}

} // namespace authenticache::ecc
