/**
 * @file
 * Typed platform configuration: which substrate, which ECC scheme,
 * and the device-model knobs, loaded from a small `key: value` file.
 *
 * File format -- one directive per line:
 *
 *     # comments and blank lines are ignored
 *     substrate: dram_mra
 *     ecc: secded_72_64
 *     remap.enabled: true
 *     cache.kb: 4096
 *
 * Every parse or validation failure raises ConfigError whose what()
 * is a single actionable line of the form "<origin>:<line>: <what
 * went wrong and what to do about it>", so callers can print it
 * verbatim and exit.
 */

#ifndef AUTH_SUBSTRATE_CONFIG_HPP
#define AUTH_SUBSTRATE_CONFIG_HPP

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "sim/chip.hpp"
#include "substrate/dram_mra.hpp"

namespace authenticache::substrate {

/** Single-line, actionable configuration failure. */
class ConfigError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** The validated platform selection. */
struct PlatformConfig
{
    std::string substrate = "sram_vmin";
    std::string ecc = "secded_72_64";

    /** Logical remapping (K_A) on the challenge plane. */
    bool remapEnabled = true;

    // Shared geometry.
    std::uint64_t cacheBytes = 4ull * 1024 * 1024;
    std::uint32_t lineBytes = 64;
    std::uint32_t ways = 8;
    std::size_t errorLogCapacity = 4096;

    // Substrate-specific model knobs (only the selected one is used).
    sim::VariationParams sram;
    MraParams dram;
    sim::RegulatorParams regulator;

    /** Assemble the SRAM device config (substrate == "sram_vmin"). */
    sim::ChipConfig chipConfig() const;

    /** Assemble the DRAM device config (substrate == "dram_mra"). */
    DramMraConfig dramConfig() const;
};

/**
 * Parse and validate a configuration text. @p origin is used in error
 * messages (a file path, or e.g. "<inline>").
 */
PlatformConfig parsePlatformConfig(std::string_view text,
                                   const std::string &origin);

/** Load, parse, and validate a configuration file. */
PlatformConfig loadPlatformConfigFile(const std::string &path);

} // namespace authenticache::substrate

#endif // AUTH_SUBSTRATE_CONFIG_HPP
