/**
 * @file
 * Substrate plugin registry: name -> factory, mirroring the ECC scheme
 * registry. makeSubstrate() is how the CLI, tests, and benchmarks turn
 * a validated PlatformConfig plus a die seed into a live device; the
 * layers above only ever hold the FingerprintSubstrate interface.
 */

#ifndef AUTH_SUBSTRATE_REGISTRY_HPP
#define AUTH_SUBSTRATE_REGISTRY_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "substrate/substrate.hpp"

namespace authenticache::substrate {

struct PlatformConfig;

/**
 * Build the substrate selected by @p config with the given die seed
 * and the config's ECC scheme. Throws std::invalid_argument for an
 * unregistered name (a validated PlatformConfig can't trigger this).
 */
std::unique_ptr<FingerprintSubstrate>
makeSubstrate(const PlatformConfig &config, std::uint64_t seed);

/** Registered substrate names, sorted. */
std::vector<std::string> substrateNames();

/** True when @p name is a registered substrate. */
bool substrateExists(const std::string &name);

} // namespace authenticache::substrate

#endif // AUTH_SUBSTRATE_REGISTRY_HPP
