/**
 * @file
 * Binds a sim::DriftSchedule to a live FingerprintSubstrate: each
 * clock step the injector evaluates the schedule and pushes the
 * conditions through setConditions -- but only when they actually
 * changed, so an idle plateau costs nothing and substrates that
 * invalidate caches on condition changes are not thrashed.
 */

#ifndef AUTH_SUBSTRATE_DRIFT_INJECTOR_HPP
#define AUTH_SUBSTRATE_DRIFT_INJECTOR_HPP

#include <cstdint>
#include <utility>

#include "sim/drift.hpp"
#include "substrate/substrate.hpp"

namespace authenticache::substrate {

class DriftInjector
{
  public:
    DriftInjector(FingerprintSubstrate &substrate_,
                  sim::DriftSchedule schedule_)
        : target(substrate_), schedule(std::move(schedule_)),
          last(target.conditions())
    {
    }

    /**
     * Apply the scheduled conditions for @p step.
     * @return true when the substrate's conditions changed.
     */
    bool apply(std::uint64_t step)
    {
        const sim::Conditions next = schedule.at(step);
        if (next.temperatureDeltaC == last.temperatureDeltaC &&
            next.agingYears == last.agingYears &&
            next.measurementSigmaMv == last.measurementSigmaMv)
            return false;
        target.setConditions(next);
        last = next;
        return true;
    }

    const sim::DriftSchedule &driftSchedule() const
    {
        return schedule;
    }

  private:
    FingerprintSubstrate &target;
    sim::DriftSchedule schedule;
    sim::Conditions last;
};

} // namespace authenticache::substrate

#endif // AUTH_SUBSTRATE_DRIFT_INJECTOR_HPP
