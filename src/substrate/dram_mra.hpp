/**
 * @file
 * DRAM multi-row-activation (MRA) fingerprint substrate.
 *
 * Models the disturbance-error fingerprint of Başer et al.: rapidly
 * re-activating aggressor rows drains charge from neighboring victim
 * cells, and which cells flip first is a manufacturing-variation
 * fingerprint, just like SRAM Vmin weak cells. The stress axis here is
 * the aggressor activation interval in tenth-nanosecond units: the
 * shorter the interval, the harder the hammering, the more victim
 * cells flip. We use the same numeric band as the SRAM substrate
 * (nominal 800 = a relaxed 80 ns interval, hardware floor 500), so
 * the firmware's floor-calibration, challenge scheduling, and timing
 * logic run unchanged.
 *
 * Per-row profile (manufactured from the chip seed):
 *  - tCorrectable: interval below which the row's weakest victim cell
 *    flips (one bit -- ECC-correctable).
 *  - tUncorrectable: a second, shorter interval below which a second
 *    victim in the same codeword flips (uncorrectable). The gap is the
 *    usable operating window, exactly as in the SRAM model.
 *  - persistence: probability a sub-threshold activation burst
 *    actually flips the victim on a given test (cell charge state and
 *    data-pattern dependence make disturbance errors flaky too).
 *
 * Temperature raises retention leakage, so hotter parts fail at longer
 * (less aggressive) intervals -- the same sign convention as the SRAM
 * environment model, which we reuse with DRAM-tuned coefficients.
 */

#ifndef AUTH_SUBSTRATE_DRAM_MRA_HPP
#define AUTH_SUBSTRATE_DRAM_MRA_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "ecc/scheme.hpp"
#include "sim/cache_array.hpp"
#include "sim/environment.hpp"
#include "sim/error_log.hpp"
#include "sim/fault_model.hpp"
#include "sim/geometry.hpp"
#include "sim/self_test.hpp"
#include "sim/voltage_regulator.hpp"
#include "substrate/substrate.hpp"
#include "util/rng.hpp"

namespace authenticache::substrate {

/** Tunables of the MRA disturbance model (activation-interval units). */
struct MraParams
{
    /** Mean first-disturbance interval across chips. */
    double tcorrMean = 712.0;

    /** Chip-to-chip sigma of the first-disturbance interval. */
    double tcorrSigma = 9.0;

    /** Width of the weak-tail window below the chip threshold. */
    double window = 70.0;

    /**
     * Expected weak rows per interval unit per 64K rows. Disturbance
     * weak rows are denser than SRAM Vmin weak lines: every row has
     * victims, only the threshold varies, so the measurable tail is
     * thicker. Density also keeps the nearest-error response function
     * stable -- a sparse plane makes single marginal rows flip large
     * regions of the challenge space.
     */
    double tailDensity = 3.0;

    /** Reference row count the density is quoted at. */
    double densityReferenceLines = 65536.0;

    /**
     * Gap between correctable and uncorrectable intervals: bounds.
     * The gap is what the floor calibration converts into a usable
     * challenge window, so it sits in the same band as the SRAM
     * model's Vmin gap.
     */
    double uncorrGapMin = 68.0;
    double uncorrGapMax = 92.0;

    /** Bulk (non-tail) rows disturb only far below the window. */
    double bulkLow = 300.0;
    double bulkHigh = 120.0;

    /** Beta parameters of the per-row flip persistence. */
    double persistenceAlpha = 1.45;
    double persistenceBeta = 0.48;
};

/** Immutable per-row disturbance profile generated from a chip seed. */
class MraField
{
  public:
    MraField(const sim::CacheGeometry &geometry, const MraParams &params,
             std::uint64_t chip_seed);

    const sim::CacheGeometry &geometry() const { return geom; }

    /** Chip's first-disturbance interval (highest tCorrectable). */
    double tcorr() const { return chipTcorr; }

    /** Single-flip interval threshold of a row. */
    double tCorrectable(std::uint64_t line) const { return tCorr[line]; }

    /** Double-flip interval threshold of a row. */
    double tUncorrectable(std::uint64_t line) const
    {
        return tCorr[line] - uncorrGap[line];
    }

    /** Flip persistence of a row's weakest victim. */
    double persistence(std::uint64_t line) const { return persist[line]; }

    std::uint32_t weakWord(std::uint64_t line) const
    {
        return weakWordIdx[line];
    }
    std::uint32_t weakBit(std::uint64_t line) const
    {
        return weakBitIdx[line];
    }
    std::uint32_t weakBit2(std::uint64_t line) const
    {
        return weakBit2Idx[line];
    }

    /** Highest tUncorrectable across the chip (the raw floor). */
    double maxUncorrectable() const;

  private:
    sim::CacheGeometry geom;
    double chipTcorr = 0.0;
    std::vector<float> tCorr;
    std::vector<float> uncorrGap;
    std::vector<float> persist;
    std::vector<std::uint8_t> weakWordIdx;
    std::vector<std::uint8_t> weakBitIdx;
    std::vector<std::uint8_t> weakBit2Idx;
};

/**
 * MRA disturbance physics behind the generic DeviceFaultModel
 * interface. Same replay contract as the SRAM model: exactly one
 * jitter draw per call, plus one Bernoulli only inside the
 * correctable window.
 */
class MraFaultModel final : public sim::DeviceFaultModel
{
  public:
    /** Both references must outlive the model. */
    MraFaultModel(const MraField &field_,
                  const sim::EnvironmentModel &env_)
        : field(field_), env(env_)
    {
    }

    const sim::CacheGeometry &geometry() const override
    {
        return field.geometry();
    }

    sim::FaultKind faultOn(std::uint64_t line, double level,
                           const sim::Conditions &conditions,
                           util::Rng &rng) const override;

    std::uint32_t weakWord(std::uint64_t line) const override
    {
        return field.weakWord(line);
    }
    std::uint32_t weakBit(std::uint64_t line) const override
    {
        return field.weakBit(line);
    }
    std::uint32_t weakBit2(std::uint64_t line) const override
    {
        return field.weakBit2(line);
    }

  private:
    const MraField &field;
    const sim::EnvironmentModel &env;
};

/** Everything needed to manufacture a DRAM MRA device. */
struct DramMraConfig
{
    std::uint64_t arrayBytes = 4ull * 1024 * 1024;
    std::uint32_t lineBytes = 64;
    std::uint32_t ways = 8;
    MraParams disturbance;
    sim::EnvironmentParams environment = dramEnvironmentDefaults();
    sim::RegulatorParams timing; // Interval controller, nominal 800.
    std::size_t errorLogCapacity = 4096;

    /**
     * DRAM-tuned environmental response: retention leakage roughly
     * doubles every ~10C, which dominates the SRAM-style threshold
     * drift -- so the per-degree coefficient is much larger.
     */
    static sim::EnvironmentParams dramEnvironmentDefaults()
    {
        sim::EnvironmentParams p;
        p.tempCoeffMvPerC = 0.6;
        p.tempCoeffSigma = 0.2;
        p.agingMvPerYear = 0.5;
        p.agingSigma = 0.4;
        return p;
    }
};

/** The assembled DRAM MRA device: second FingerprintSubstrate plugin. */
class DramMraChip final : public FingerprintSubstrate
{
  public:
    /** @param scheme Protection code; null selects SECDED(72,64). */
    DramMraChip(const DramMraConfig &config, std::uint64_t chip_seed,
                std::shared_ptr<ecc::EccScheme> scheme = nullptr);

    std::string kind() const override { return "dram_mra"; }
    const sim::CacheGeometry &geometry() const override { return geom; }
    std::uint64_t seed() const override { return chipSeed; }

    const MraField &mraField() const { return field; }

    double level() const override { return vr.vddMv(); }
    double nominalLevel() const override { return vr.nominalMv(); }
    LevelStatus setLevel(double level,
                         double *latency_us = nullptr) override;
    void setLevelFloor(double floor) override { vr.setFloorMv(floor); }
    double emergencyRestore() override;
    std::uint64_t levelTransitions() const override
    {
        return vr.transitions();
    }

    void setConditions(const sim::Conditions &c) override
    {
        array.setConditions(c);
    }
    const sim::Conditions &conditions() const override
    {
        return array.currentConditions();
    }

    sim::SweepResult sweepAll(std::uint32_t passes = 1) override
    {
        return tester.sweepAll(passes);
    }
    sim::LineTestResult testLine(const sim::LinePoint &p,
                                 std::uint32_t max_attempts = 1) override
    {
        return tester.testLine(p, max_attempts);
    }
    sim::EccErrorLog &errorLog() override { return log; }
    const sim::EccErrorLog &errorLog() const override { return log; }
    std::uint64_t lineTestsPerformed() const override
    {
        return tester.lineTestsPerformed();
    }

    void reportStats(util::StatsRegistry &registry,
                     const std::string &component =
                         "substrate") const override;

  private:
    DramMraConfig cfg;
    std::uint64_t chipSeed;
    sim::CacheGeometry geom;
    MraField field;
    sim::EnvironmentModel env;
    sim::EccErrorLog log;
    MraFaultModel model;
    sim::EccCacheArray array;
    sim::VoltageRegulator vr;
    sim::SelfTestEngine tester;
};

} // namespace authenticache::substrate

#endif // AUTH_SUBSTRATE_DRAM_MRA_HPP
