#include "substrate/dram_mra.hpp"

#include <algorithm>

namespace authenticache::substrate {

MraField::MraField(const sim::CacheGeometry &geometry,
                   const MraParams &params, std::uint64_t chip_seed)
    : geom(geometry)
{
    // A distinct stream from the SRAM field so the same die seed
    // yields independent fingerprints on the two substrates.
    util::Rng rng(chip_seed ^ 0xD7A111ull);
    const std::uint64_t n = geom.lines();

    tCorr.resize(n);
    uncorrGap.resize(n);
    persist.resize(n);
    weakWordIdx.resize(n);
    weakBitIdx.resize(n);
    weakBit2Idx.resize(n);

    const double chip_tcorr =
        rng.nextGaussian(params.tcorrMean, params.tcorrSigma);

    const double expected_tail = params.tailDensity * params.window *
                                 (static_cast<double>(n) /
                                  params.densityReferenceLines);
    const double p_tail =
        std::min(1.0, expected_tail / static_cast<double>(n));

    double max_tcorr = 0.0;
    for (std::uint64_t i = 0; i < n; ++i) {
        double t;
        if (rng.nextBool(p_tail)) {
            // Weak-tail row: disturbs within the measurable window.
            t = chip_tcorr - rng.nextDouble() * params.window;
        } else {
            // Bulk row: disturbs only under far harder hammering.
            t = chip_tcorr - params.bulkHigh -
                rng.nextDouble() * (params.bulkLow - params.bulkHigh);
        }
        tCorr[i] = static_cast<float>(t);
        max_tcorr = std::max(max_tcorr, t);

        uncorrGap[i] = static_cast<float>(
            params.uncorrGapMin +
            rng.nextDouble() *
                (params.uncorrGapMax - params.uncorrGapMin));

        double q = rng.nextBeta(params.persistenceAlpha,
                                params.persistenceBeta);
        persist[i] = static_cast<float>(std::clamp(q, 0.05, 1.0));

        weakWordIdx[i] = static_cast<std::uint8_t>(
            rng.nextBelow(geom.wordsPerLine()));
        // 72-bit codeword positions; >= 64 denotes a check bit.
        weakBitIdx[i] = static_cast<std::uint8_t>(rng.nextBelow(72));
        std::uint32_t second = weakBitIdx[i];
        while (second == weakBitIdx[i])
            second = static_cast<std::uint32_t>(rng.nextBelow(72));
        weakBit2Idx[i] = static_cast<std::uint8_t>(second);
    }
    chipTcorr = max_tcorr;
}

double
MraField::maxUncorrectable() const
{
    double best = -1e9;
    for (std::size_t i = 0; i < tCorr.size(); ++i)
        best = std::max(best,
                        static_cast<double>(tCorr[i]) - uncorrGap[i]);
    return best;
}

sim::FaultKind
MraFaultModel::faultOn(std::uint64_t line, double level,
                       const sim::Conditions &conditions,
                       util::Rng &rng) const
{
    const double shift = env.thresholdShiftMv(line, conditions);
    const double jitter = env.measurementJitterMv(conditions, rng);
    const double t_eff = level + jitter;

    if (t_eff < field.tUncorrectable(line) + shift)
        return sim::FaultKind::Double;
    if (t_eff < field.tCorrectable(line) + shift) {
        if (rng.nextBool(field.persistence(line)))
            return sim::FaultKind::Single;
    }
    return sim::FaultKind::None;
}

DramMraChip::DramMraChip(const DramMraConfig &config,
                         std::uint64_t chip_seed,
                         std::shared_ptr<ecc::EccScheme> scheme)
    : cfg(config),
      chipSeed(chip_seed),
      geom(config.arrayBytes, config.lineBytes, config.ways),
      field(geom, config.disturbance, chip_seed),
      env(geom.lines(), config.environment, chip_seed),
      log(config.errorLogCapacity),
      model(field, env),
      array(model, log,
            scheme ? std::move(scheme)
                   : ecc::makeEccScheme("secded_72_64"),
            chip_seed ^ 0xD7A3A11ull),
      vr(config.timing),
      tester(array, log)
{
    array.setLevel(vr.vddMv());
}

LevelStatus
DramMraChip::setLevel(double level, double *latency_us)
{
    switch (vr.request(level, latency_us)) {
      case sim::VoltageStatus::Ok:
        array.setLevel(vr.vddMv());
        return LevelStatus::Ok;
      case sim::VoltageStatus::BelowFloor:
        return LevelStatus::BelowFloor;
      case sim::VoltageStatus::OutOfRange:
        break;
    }
    return LevelStatus::OutOfRange;
}

double
DramMraChip::emergencyRestore()
{
    double latency = vr.emergencyRaise();
    array.setLevel(vr.vddMv());
    return latency;
}

void
DramMraChip::reportStats(util::StatsRegistry &registry,
                         const std::string &component) const
{
    registry.set(component, "word_reads", array.wordReads());
    registry.set(component, "word_writes", array.wordWrites());
    registry.set(component, "ecc_corrected", log.totalCorrected());
    registry.set(component, "ecc_uncorrectable",
                 log.totalUncorrectable());
    registry.set(component, "ecc_log_overflows", log.overflowCount());
    registry.set(component, "level_transitions", vr.transitions());
    registry.set(component, "line_self_tests",
                 tester.lineTestsPerformed());
    registry.set(component, "level", vr.vddMv());
    array.scheme().reportStats(registry, "ecc");
}

} // namespace authenticache::substrate
