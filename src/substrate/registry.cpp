#include "substrate/registry.hpp"

#include <map>
#include <stdexcept>

#include "ecc/scheme.hpp"
#include "sim/chip.hpp"
#include "substrate/config.hpp"
#include "substrate/dram_mra.hpp"

namespace authenticache::substrate {

namespace {

using SubstrateFactory = std::unique_ptr<FingerprintSubstrate> (*)(
    const PlatformConfig &, std::uint64_t);

// Plain function-pointer registry; lazily populated so static-library
// dead-stripping can't lose the builtins.
std::map<std::string, SubstrateFactory> &
factories()
{
    static std::map<std::string, SubstrateFactory> map;
    return map;
}

void
ensureBuiltins()
{
    auto &map = factories();
    if (!map.empty())
        return;
    map["sram_vmin"] = [](const PlatformConfig &config,
                          std::uint64_t seed)
        -> std::unique_ptr<FingerprintSubstrate> {
        return std::make_unique<sim::SimulatedChip>(
            config.chipConfig(), seed, ecc::makeEccScheme(config.ecc));
    };
    map["dram_mra"] = [](const PlatformConfig &config,
                         std::uint64_t seed)
        -> std::unique_ptr<FingerprintSubstrate> {
        return std::make_unique<DramMraChip>(
            config.dramConfig(), seed, ecc::makeEccScheme(config.ecc));
    };
}

} // namespace

std::unique_ptr<FingerprintSubstrate>
makeSubstrate(const PlatformConfig &config, std::uint64_t seed)
{
    ensureBuiltins();
    auto it = factories().find(config.substrate);
    if (it == factories().end())
        throw std::invalid_argument("unknown substrate: " +
                                    config.substrate);
    return it->second(config, seed);
}

std::vector<std::string>
substrateNames()
{
    ensureBuiltins();
    std::vector<std::string> names;
    for (const auto &[name, factory] : factories())
        names.push_back(name);
    return names;
}

bool
substrateExists(const std::string &name)
{
    ensureBuiltins();
    return factories().count(name) != 0;
}

} // namespace authenticache::substrate
