#include "substrate/config.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "ecc/scheme.hpp"
#include "substrate/registry.hpp"

namespace authenticache::substrate {

namespace {

[[noreturn]] void
fail(const std::string &origin, int line, const std::string &msg)
{
    throw ConfigError(origin + ":" + std::to_string(line) + ": " + msg);
}

std::string
trim(std::string_view s)
{
    std::size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string_view::npos)
        return {};
    std::size_t e = s.find_last_not_of(" \t\r");
    return std::string(s.substr(b, e - b + 1));
}

std::size_t
editDistance(std::string_view a, std::string_view b)
{
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t diag = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            std::size_t up = row[j];
            row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                               diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
            diag = up;
        }
    }
    return row[b.size()];
}

std::string
suggestion(const std::string &key,
           const std::vector<std::string> &known)
{
    std::string best;
    std::size_t best_d = 4; // Suggest only within distance 3.
    for (const auto &k : known) {
        std::size_t d = editDistance(key, k);
        if (d < best_d) {
            best_d = d;
            best = k;
        }
    }
    return best;
}

std::string
joinNames(const std::vector<std::string> &names)
{
    std::string out;
    for (const auto &n : names) {
        if (!out.empty())
            out += ", ";
        out += n;
    }
    return out;
}

bool
parseBool(const std::string &origin, int line, const std::string &key,
          const std::string &value)
{
    if (value == "true")
        return true;
    if (value == "false")
        return false;
    fail(origin, line,
         key + " must be 'true' or 'false' (got '" + value + "')");
}

double
parseDouble(const std::string &origin, int line, const std::string &key,
            const std::string &value)
{
    std::size_t used = 0;
    double v = 0.0;
    try {
        v = std::stod(value, &used);
    } catch (const std::exception &) {
        used = 0;
    }
    if (used != value.size())
        fail(origin, line,
             key + " must be a number (got '" + value + "')");
    return v;
}

std::uint64_t
parseU64(const std::string &origin, int line, const std::string &key,
         const std::string &value)
{
    std::size_t used = 0;
    unsigned long long v = 0;
    try {
        v = std::stoull(value, &used);
    } catch (const std::exception &) {
        used = 0;
    }
    if (used != value.size() || value[0] == '-')
        fail(origin, line,
             key + " must be a non-negative integer (got '" + value +
                 "')");
    return v;
}

bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

std::uint64_t
parseRangedPow2(const std::string &origin, int line,
                const std::string &key, const std::string &value,
                std::uint64_t lo, std::uint64_t hi)
{
    std::uint64_t v = parseU64(origin, line, key, value);
    if (!isPow2(v) || v < lo || v > hi)
        fail(origin, line,
             key + " must be a power of two between " +
                 std::to_string(lo) + " and " + std::to_string(hi) +
                 " (got " + value + ")");
    return v;
}

double
parseRanged(const std::string &origin, int line, const std::string &key,
            const std::string &value, double lo, double hi)
{
    double v = parseDouble(origin, line, key, value);
    if (v < lo || v > hi) {
        std::ostringstream msg;
        msg << key << " must be between " << lo << " and " << hi
            << " (got " << value << ")";
        fail(origin, line, msg.str());
    }
    return v;
}

const std::vector<std::string> &
knownKeys()
{
    static const std::vector<std::string> keys = {
        "substrate",
        "ecc",
        "remap.enabled",
        "cache.kb",
        "cache.line_bytes",
        "cache.ways",
        "error_log.capacity",
        "sram.vcorr_mean_mv",
        "sram.vcorr_sigma_mv",
        "sram.window_mv",
        "sram.tail_density_per_mv",
        "dram.tcorr_mean",
        "dram.tcorr_sigma",
        "dram.window",
        "dram.tail_density",
        "regulator.nominal",
        "regulator.min",
    };
    return keys;
}

} // namespace

sim::ChipConfig
PlatformConfig::chipConfig() const
{
    sim::ChipConfig cfg;
    cfg.cacheBytes = cacheBytes;
    cfg.lineBytes = lineBytes;
    cfg.ways = ways;
    cfg.variation = sram;
    cfg.regulator = regulator;
    cfg.errorLogCapacity = errorLogCapacity;
    return cfg;
}

DramMraConfig
PlatformConfig::dramConfig() const
{
    DramMraConfig cfg;
    cfg.arrayBytes = cacheBytes;
    cfg.lineBytes = lineBytes;
    cfg.ways = ways;
    cfg.disturbance = dram;
    cfg.timing = regulator;
    cfg.errorLogCapacity = errorLogCapacity;
    return cfg;
}

PlatformConfig
parsePlatformConfig(std::string_view text, const std::string &origin)
{
    PlatformConfig cfg;
    // Line each key was set on, for cross-field error anchoring.
    std::map<std::string, int> keyLine;

    std::istringstream stream{std::string(text)};
    std::string raw;
    int lineno = 0;
    while (std::getline(stream, raw)) {
        ++lineno;
        std::string line = raw;
        if (std::size_t hash = line.find('#');
            hash != std::string::npos)
            line.erase(hash);
        line = trim(line);
        if (line.empty())
            continue;

        std::size_t colon = line.find(':');
        if (colon == std::string::npos)
            fail(origin, lineno,
                 "expected 'key: value' (got '" + line + "')");
        std::string key = trim(line.substr(0, colon));
        std::string value = trim(line.substr(colon + 1));
        if (key.empty())
            fail(origin, lineno, "empty key before ':'");
        if (value.empty())
            fail(origin, lineno, "missing value for '" + key + "'");
        if (keyLine.count(key))
            fail(origin, lineno,
                 "duplicate key '" + key + "' (first set on line " +
                     std::to_string(keyLine[key]) + ")");
        keyLine[key] = lineno;

        if (key == "substrate") {
            if (!substrateExists(value))
                fail(origin, lineno,
                     "unknown substrate '" + value +
                         "' (available: " + joinNames(substrateNames()) +
                         ")");
            cfg.substrate = value;
        } else if (key == "ecc") {
            if (!ecc::eccSchemeExists(value))
                fail(origin, lineno,
                     "unknown ecc scheme '" + value + "' (available: " +
                         joinNames(ecc::eccSchemeNames()) + ")");
            cfg.ecc = value;
        } else if (key == "remap.enabled") {
            cfg.remapEnabled = parseBool(origin, lineno, key, value);
        } else if (key == "cache.kb") {
            cfg.cacheBytes = 1024 * parseRangedPow2(origin, lineno, key,
                                                    value, 16, 65536);
        } else if (key == "cache.line_bytes") {
            cfg.lineBytes = static_cast<std::uint32_t>(parseRangedPow2(
                origin, lineno, key, value, 32, 256));
        } else if (key == "cache.ways") {
            cfg.ways = static_cast<std::uint32_t>(
                parseRangedPow2(origin, lineno, key, value, 1, 64));
        } else if (key == "error_log.capacity") {
            std::uint64_t v = parseU64(origin, lineno, key, value);
            if (v < 16 || v > 1'000'000)
                fail(origin, lineno,
                     "error_log.capacity must be between 16 and "
                     "1000000 (got " +
                         value + ")");
            cfg.errorLogCapacity = static_cast<std::size_t>(v);
        } else if (key == "sram.vcorr_mean_mv") {
            cfg.sram.vcorrMeanMv =
                parseRanged(origin, lineno, key, value, 550.0, 790.0);
        } else if (key == "sram.vcorr_sigma_mv") {
            cfg.sram.vcorrSigmaMv =
                parseRanged(origin, lineno, key, value, 0.0, 50.0);
        } else if (key == "sram.window_mv") {
            cfg.sram.windowMv =
                parseRanged(origin, lineno, key, value, 10.0, 150.0);
        } else if (key == "sram.tail_density_per_mv") {
            cfg.sram.tailDensityPerMv =
                parseRanged(origin, lineno, key, value, 0.1, 64.0);
        } else if (key == "dram.tcorr_mean") {
            cfg.dram.tcorrMean =
                parseRanged(origin, lineno, key, value, 550.0, 790.0);
        } else if (key == "dram.tcorr_sigma") {
            cfg.dram.tcorrSigma =
                parseRanged(origin, lineno, key, value, 0.0, 50.0);
        } else if (key == "dram.window") {
            cfg.dram.window =
                parseRanged(origin, lineno, key, value, 10.0, 150.0);
        } else if (key == "dram.tail_density") {
            cfg.dram.tailDensity =
                parseRanged(origin, lineno, key, value, 0.1, 64.0);
        } else if (key == "regulator.nominal") {
            cfg.regulator.nominalMv =
                parseRanged(origin, lineno, key, value, 600.0, 1200.0);
        } else if (key == "regulator.min") {
            cfg.regulator.absoluteMinMv =
                parseRanged(origin, lineno, key, value, 300.0, 700.0);
        } else {
            std::string near = suggestion(key, knownKeys());
            std::string msg = "unknown key '" + key + "'";
            if (!near.empty())
                msg += " (did you mean '" + near + "'?)";
            fail(origin, lineno, msg);
        }
    }

    // Cross-field validation, anchored to the line that caused it.
    auto lineOf = [&](const std::string &key) {
        auto it = keyLine.find(key);
        return it == keyLine.end() ? 1 : it->second;
    };

    if (cfg.ecc == "crc_edc" && cfg.remapEnabled)
        fail(origin, lineOf("ecc"),
             "ecc 'crc_edc' is detect-only and cannot drive remap key "
             "derivation; set 'remap.enabled: false' or pick a "
             "correcting scheme (secded_72_64, bch_127_64)");

    if (cfg.regulator.absoluteMinMv >= cfg.regulator.nominalMv)
        fail(origin, lineOf("regulator.min"),
             "regulator.min must be below regulator.nominal");

    return cfg;
}

PlatformConfig
loadPlatformConfigFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw ConfigError(path + ":1: cannot open platform config file");
    std::ostringstream text;
    text << in.rdbuf();
    return parsePlatformConfig(text.str(), path);
}

} // namespace authenticache::substrate
