/**
 * @file
 * The fingerprint-substrate plugin interface.
 *
 * Authenticache's firmware, protocol, server, and verifier only ever
 * need four things from a device: its geometry, a seeded manufacture
 * identity, a controllable stress axis, and condition-dependent fault
 * observations through an ECC channel. FingerprintSubstrate is that
 * contract; everything above the device layer is written against it
 * and runs unmodified on any substrate the registry can build.
 *
 * The stress axis is deliberately opaque: for the SRAM Vmin substrate
 * it is the supply voltage in mV, for the DRAM multi-row-activation
 * substrate it is the aggressor activation interval in tenth-ns
 * units. Both use the same numeric band (nominal ~800, hardware floor
 * ~500, lower = more stress), so the firmware's floor-calibration and
 * challenge-voltage logic works unchanged -- "Vdd" in a challenge is
 * just a stress level the substrate interprets.
 *
 * Substrates self-report their counters into a StatsRegistry
 * (reportStats), including their ECC scheme's "ecc.*" namespace.
 */

#ifndef AUTH_SUBSTRATE_SUBSTRATE_HPP
#define AUTH_SUBSTRATE_SUBSTRATE_HPP

#include <cstdint>
#include <string>

#include "sim/environment.hpp"
#include "sim/error_log.hpp"
#include "sim/geometry.hpp"
#include "sim/observation.hpp"
#include "util/stats_registry.hpp"

namespace authenticache::substrate {

/** Outcome of a stress-level request. */
enum class LevelStatus
{
    Ok,           ///< Level set.
    BelowFloor,   ///< Rejected: below the configured safety floor.
    OutOfRange,   ///< Rejected: outside the hardware range.
};

class FingerprintSubstrate
{
  public:
    virtual ~FingerprintSubstrate() = default;

    /** Registry name of the substrate ("sram_vmin", "dram_mra"). */
    virtual std::string kind() const = 0;

    /** Challenge plane shape (sets x ways). */
    virtual const sim::CacheGeometry &geometry() const = 0;

    /** Die identity: two substrates with different seeds have
     *  independent fingerprints. */
    virtual std::uint64_t seed() const = 0;

    // --- Stress axis -------------------------------------------------

    /** Current stress level. */
    virtual double level() const = 0;

    /** Power-on (least stressed) operating level. */
    virtual double nominalLevel() const = 0;

    /**
     * Request a stress-level change. On success @p latency_us (if
     * non-null) receives the transition time charged by the timing
     * model.
     */
    virtual LevelStatus setLevel(double level,
                                 double *latency_us = nullptr) = 0;

    /**
     * Safety floor; requests below it fail with BelowFloor. Zero
     * (the power-on state) disables the check so boot calibration
     * can probe downward.
     */
    virtual void setLevelFloor(double floor) = 0;

    /** Emergency ramp to nominal; returns latency in microseconds. */
    virtual double emergencyRestore() = 0;

    /** Cumulative level transitions (timing/telemetry input). */
    virtual std::uint64_t levelTransitions() const = 0;

    // --- Environment -------------------------------------------------

    /** Operating conditions (temperature, aging, supply noise). */
    virtual void setConditions(const sim::Conditions &c) = 0;
    virtual const sim::Conditions &conditions() const = 0;

    // --- Fault observation -------------------------------------------

    /**
     * Sweep every line at the current stress level with the given
     * number of passes (alternating test patterns).
     */
    virtual sim::SweepResult sweepAll(std::uint32_t passes = 1) = 0;

    /**
     * Test a single line up to @p max_attempts times, stopping at
     * the first correctable event.
     */
    virtual sim::LineTestResult
    testLine(const sim::LinePoint &p,
             std::uint32_t max_attempts = 1) = 0;

    /** The substrate's ECC event channel. */
    virtual sim::EccErrorLog &errorLog() = 0;
    virtual const sim::EccErrorLog &errorLog() const = 0;

    /** Total individual line tests performed. */
    virtual std::uint64_t lineTestsPerformed() const = 0;

    // --- Telemetry ---------------------------------------------------

    /**
     * Publish the substrate's counters under "<component>.*" and its
     * ECC scheme's under "ecc.*".
     */
    virtual void
    reportStats(util::StatsRegistry &registry,
                const std::string &component = "substrate") const = 0;
};

} // namespace authenticache::substrate

#endif // AUTH_SUBSTRATE_SUBSTRATE_HPP
