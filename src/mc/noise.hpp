/**
 * @file
 * Noise profiles for Monte Carlo robustness studies (paper Sec 6.2).
 *
 * All environmental and measurement noise reduces to two effects on
 * an error map:
 *
 *  - *Injection*: unexpected new errors appear (voltage fluctuation,
 *    aging). "150% injected noise" on a 100-error map adds 150 new
 *    error lines.
 *  - *Removal (masking)*: enrolled errors fail to manifest during a
 *    challenge (measurement inaccuracy at enrollment, single-attempt
 *    self-tests missing low-persistence lines).
 */

#ifndef AUTH_MC_NOISE_HPP
#define AUTH_MC_NOISE_HPP

#include "core/error_map.hpp"
#include "util/rng.hpp"

namespace authenticache::mc {

/** Noise intensity relative to the map's error count. */
struct NoiseProfile
{
    /** New errors added, as a fraction of existing errors (1.5=150%). */
    double injectFraction = 0.0;

    /** Enrolled errors removed, as a fraction of existing errors. */
    double removeFraction = 0.0;
};

/**
 * Apply a noise profile to an error plane: returns the perturbed
 * plane the *device* would exhibit, given the enrolled plane.
 */
core::ErrorPlane applyNoise(const core::ErrorPlane &enrolled,
                            const NoiseProfile &profile, util::Rng &rng);

/** Convenience for single-level maps. */
core::ErrorMap applyNoise(const core::ErrorMap &enrolled,
                          const NoiseProfile &profile, util::Rng &rng);

} // namespace authenticache::mc

#endif // AUTH_MC_NOISE_HPP
