#include "mc/experiments.hpp"

#include <algorithm>
#include <map>

#include "core/nearest.hpp"
#include "mc/mapgen.hpp"
#include "metrics/identifiability.hpp"

namespace authenticache::mc {

namespace {

constexpr core::VddMv kLevel = 700; // Arbitrary; single-level maps.

/** Distance of one point on a plane (infinite when error-free). */
std::uint64_t
planeDistance(const core::ErrorPlane &plane, const sim::LinePoint &p)
{
    auto r = core::nearestErrorBrute(plane, p);
    return r.found ? r.distance : core::kInfiniteDistance;
}

/** One response bit of the pair (a, b) on a plane. */
bool
bitOn(const core::ErrorPlane &plane, const sim::LinePoint &a,
      const sim::LinePoint &b)
{
    return core::responseBitFromDistances(planeDistance(plane, a),
                                          planeDistance(plane, b));
}

sim::LinePoint
randomPoint(const core::CacheGeometry &geom, util::Rng &rng)
{
    return geom.pointOf(rng.nextBelow(geom.lines()));
}

} // namespace

HammingSamples
hammingDistributions(const core::CacheGeometry &geom, std::size_t errors,
                     std::size_t bits, const NoiseProfile &noise,
                     const ExperimentConfig &cfg)
{
    util::Rng rng(cfg.seed);
    HammingSamples out;
    out.bits = bits;
    out.intra.reserve(cfg.maps * cfg.samplesPerMap);
    out.inter.reserve(cfg.maps * cfg.samplesPerMap);

    for (std::size_t m = 0; m < cfg.maps; ++m) {
        core::ErrorPlane enrolled = randomPlane(geom, errors, rng);
        core::ErrorPlane other = randomPlane(geom, errors, rng);

        for (std::size_t s = 0; s < cfg.samplesPerMap; ++s) {
            core::ErrorPlane noisy = applyNoise(enrolled, noise, rng);

            std::uint32_t hd_intra = 0;
            std::uint32_t hd_inter = 0;
            for (std::size_t bit = 0; bit < bits; ++bit) {
                sim::LinePoint a = randomPoint(geom, rng);
                sim::LinePoint b = randomPoint(geom, rng);
                bool expected = bitOn(enrolled, a, b);
                hd_intra += expected != bitOn(noisy, a, b);
                hd_inter += expected != bitOn(other, a, b);
            }
            out.intra.push_back(hd_intra);
            out.inter.push_back(hd_inter);
        }
    }
    return out;
}

double
estimateIntraFlipProbability(const core::CacheGeometry &geom,
                             std::size_t errors,
                             const NoiseProfile &noise,
                             const ExperimentConfig &cfg)
{
    util::Rng rng(cfg.seed ^ 0x1D7A);
    std::uint64_t flips = 0;
    std::uint64_t total = 0;

    for (std::size_t m = 0; m < cfg.maps; ++m) {
        core::ErrorPlane enrolled = randomPlane(geom, errors, rng);
        core::ErrorPlane noisy = applyNoise(enrolled, noise, rng);
        for (std::size_t s = 0; s < cfg.samplesPerMap; ++s) {
            sim::LinePoint a = randomPoint(geom, rng);
            sim::LinePoint b = randomPoint(geom, rng);
            flips += bitOn(enrolled, a, b) != bitOn(noisy, a, b);
            ++total;
        }
    }
    return static_cast<double>(flips) / static_cast<double>(total);
}

double
estimateInterFlipProbability(const core::CacheGeometry &geom,
                             std::size_t errors,
                             const ExperimentConfig &cfg)
{
    util::Rng rng(cfg.seed ^ 0x147E6);
    std::uint64_t flips = 0;
    std::uint64_t total = 0;

    for (std::size_t m = 0; m < cfg.maps; ++m) {
        core::ErrorPlane chip_a = randomPlane(geom, errors, rng);
        core::ErrorPlane chip_b = randomPlane(geom, errors, rng);
        for (std::size_t s = 0; s < cfg.samplesPerMap; ++s) {
            sim::LinePoint a = randomPoint(geom, rng);
            sim::LinePoint b = randomPoint(geom, rng);
            flips += bitOn(chip_a, a, b) != bitOn(chip_b, a, b);
            ++total;
        }
    }
    return static_cast<double>(flips) / static_cast<double>(total);
}

NoiseTolerance
maxTolerableNoise(const core::CacheGeometry &geom, std::size_t errors,
                  std::size_t bits, bool injected, double target_rate,
                  const ExperimentConfig &cfg)
{
    // p_intra depends on the noise fraction but not the CRP size;
    // memoize evaluations so the bisection stays cheap.
    std::map<double, double> memo;
    auto p_intra_at = [&](double fraction) {
        auto it = memo.find(fraction);
        if (it != memo.end())
            return it->second;
        NoiseProfile profile;
        if (injected)
            profile.injectFraction = fraction;
        else
            profile.removeFraction = fraction;
        double p = estimateIntraFlipProbability(geom, errors, profile,
                                                cfg);
        memo[fraction] = p;
        return p;
    };

    const double p_inter =
        estimateInterFlipProbability(geom, errors, cfg);

    auto rate_at = [&](double fraction) {
        return metrics::misidentificationRate(bits, p_inter,
                                              p_intra_at(fraction));
    };

    // Removal is capped at 100% (cannot remove more errors than
    // enrolled); injection explored up to 400%.
    double lo = 0.0;
    double hi = injected ? 4.0 : 1.0;
    if (rate_at(hi) <= target_rate) {
        NoiseTolerance out;
        out.maxNoisePercent = hi * 100.0;
        out.pIntraAtMax = p_intra_at(hi);
        out.pInter = p_inter;
        out.rateAtMax = rate_at(hi);
        return out;
    }
    if (rate_at(lo) > target_rate) {
        NoiseTolerance out; // Even zero noise fails the target.
        out.pIntraAtMax = p_intra_at(lo);
        out.pInter = p_inter;
        out.rateAtMax = rate_at(lo);
        return out;
    }

    for (int iter = 0; iter < 24; ++iter) {
        double mid = (lo + hi) / 2.0;
        if (rate_at(mid) <= target_rate)
            lo = mid;
        else
            hi = mid;
    }

    NoiseTolerance out;
    out.maxNoisePercent = lo * 100.0;
    out.pIntraAtMax = p_intra_at(lo);
    out.pInter = p_inter;
    out.rateAtMax = rate_at(lo);
    return out;
}

double
averageNearestErrorDistance(const core::CacheGeometry &geom,
                            std::size_t errors,
                            const ExperimentConfig &cfg)
{
    util::Rng rng(cfg.seed ^ 0xD157);
    double acc = 0.0;
    std::uint64_t count = 0;
    for (std::size_t m = 0; m < cfg.maps; ++m) {
        core::ErrorPlane plane = randomPlane(geom, errors, rng);
        for (std::size_t s = 0; s < cfg.samplesPerMap; ++s) {
            auto d = planeDistance(plane, randomPoint(geom, rng));
            acc += static_cast<double>(d);
            ++count;
        }
    }
    return acc / static_cast<double>(count);
}

QualityCell
aliasingUniformity(const core::CacheGeometry &geom, std::size_t errors,
                   std::size_t bits, const ExperimentConfig &cfg)
{
    util::Rng rng(cfg.seed ^ 0xA11A5);

    // A population of chips answers shared challenges; aliasing is
    // the per-position ones-rate across chips, uniformity the
    // per-chip ones-rate across a response.
    const std::size_t chips = std::max<std::size_t>(2, cfg.maps);
    std::vector<core::ErrorPlane> planes;
    planes.reserve(chips);
    for (std::size_t c = 0; c < chips; ++c)
        planes.push_back(randomPlane(geom, errors, rng));

    const std::size_t challenges =
        std::max<std::size_t>(1, cfg.samplesPerMap / bits);

    // Bit-aliasing: shared challenge bits evaluated across the whole
    // chip population (Eq 6).
    std::uint64_t aliasing_ones = 0;
    std::uint64_t aliasing_total = 0;
    for (std::size_t ch = 0; ch < challenges; ++ch) {
        for (std::size_t bit = 0; bit < bits; ++bit) {
            sim::LinePoint a = randomPoint(geom, rng);
            sim::LinePoint b = randomPoint(geom, rng);
            for (const auto &plane : planes) {
                aliasing_ones += bitOn(plane, a, b);
                ++aliasing_total;
            }
        }
    }

    // Uniformity: each chip answers its own random challenges (Eq 5).
    std::uint64_t uniform_ones = 0;
    std::uint64_t uniform_total = 0;
    for (const auto &plane : planes) {
        for (std::size_t bit = 0; bit < bits; ++bit) {
            sim::LinePoint a = randomPoint(geom, rng);
            sim::LinePoint b = randomPoint(geom, rng);
            uniform_ones += bitOn(plane, a, b);
            ++uniform_total;
        }
    }

    QualityCell out;
    out.bitAliasingPercent = static_cast<double>(aliasing_ones) /
                             static_cast<double>(aliasing_total) *
                             100.0;
    out.uniformityPercent = static_cast<double>(uniform_ones) /
                            static_cast<double>(uniform_total) * 100.0;
    return out;
}

} // namespace authenticache::mc
