#include "mc/experiments.hpp"

#include <algorithm>
#include <map>

#include "core/error_index.hpp"
#include "mc/mapgen.hpp"
#include "metrics/identifiability.hpp"
#include "util/thread_pool.hpp"

namespace authenticache::mc {

namespace {

// Stream-domain tags: each experiment derives its per-shard Rng
// streams from a distinct seed domain so experiments never share
// random sequences even under the same cfg.seed.
constexpr std::uint64_t kIntraTag = 0x1D7A;
constexpr std::uint64_t kInterTag = 0x147E6;
constexpr std::uint64_t kDistTag = 0xD157;
constexpr std::uint64_t kQualityTag = 0xA11A5;

/** One response bit of the pair (a, b) through the index. */
bool
bitOn(const core::ErrorIndex &index, const sim::LinePoint &a,
      const sim::LinePoint &b)
{
    return core::responseBitFromDistances(index.distanceOrInfinite(a),
                                          index.distanceOrInfinite(b));
}

sim::LinePoint
randomPoint(const core::CacheGeometry &geom, util::Rng &rng)
{
    return geom.pointOf(rng.nextBelow(geom.lines()));
}

/**
 * Shard [0, count) across the configured execution width. Bodies
 * must derive all randomness from the shard index and write to
 * index-addressed slots; the pool guarantees nothing about order.
 */
void
shard(const ExperimentConfig &cfg, std::size_t count,
      const std::function<void(std::size_t)> &body)
{
    if (cfg.threads == 1) {
        for (std::size_t i = 0; i < count; ++i)
            body(i);
    } else if (cfg.threads == 0) {
        util::ThreadPool::global().parallelFor(count, body);
    } else {
        util::ThreadPool local(cfg.threads);
        local.parallelFor(count, body);
    }
}

} // namespace

HammingSamples
hammingDistributions(const core::CacheGeometry &geom, std::size_t errors,
                     std::size_t bits, const NoiseProfile &noise,
                     const ExperimentConfig &cfg)
{
    HammingSamples out;
    out.bits = bits;
    out.intra.assign(cfg.maps * cfg.samplesPerMap, 0);
    out.inter.assign(cfg.maps * cfg.samplesPerMap, 0);

    shard(cfg, cfg.maps, [&](std::size_t m) {
        util::Rng rng = util::Rng::forStream(cfg.seed, m);
        core::ErrorPlane enrolled = randomPlane(geom, errors, rng);
        core::ErrorPlane other = randomPlane(geom, errors, rng);
        core::ErrorIndex enrolled_idx(enrolled);
        core::ErrorIndex other_idx(other);

        for (std::size_t s = 0; s < cfg.samplesPerMap; ++s) {
            core::ErrorIndex noisy_idx(
                applyNoise(enrolled, noise, rng));

            std::uint32_t hd_intra = 0;
            std::uint32_t hd_inter = 0;
            for (std::size_t bit = 0; bit < bits; ++bit) {
                sim::LinePoint a = randomPoint(geom, rng);
                sim::LinePoint b = randomPoint(geom, rng);
                bool expected = bitOn(enrolled_idx, a, b);
                hd_intra += expected != bitOn(noisy_idx, a, b);
                hd_inter += expected != bitOn(other_idx, a, b);
            }
            out.intra[m * cfg.samplesPerMap + s] = hd_intra;
            out.inter[m * cfg.samplesPerMap + s] = hd_inter;
        }
    });
    return out;
}

double
estimateIntraFlipProbability(const core::CacheGeometry &geom,
                             std::size_t errors,
                             const NoiseProfile &noise,
                             const ExperimentConfig &cfg)
{
    std::vector<std::uint64_t> flips(cfg.maps, 0);
    shard(cfg, cfg.maps, [&](std::size_t m) {
        util::Rng rng =
            util::Rng::forStream(cfg.seed ^ kIntraTag, m);
        core::ErrorPlane enrolled = randomPlane(geom, errors, rng);
        core::ErrorIndex enrolled_idx(enrolled);
        core::ErrorIndex noisy_idx(applyNoise(enrolled, noise, rng));
        std::uint64_t local = 0;
        for (std::size_t s = 0; s < cfg.samplesPerMap; ++s) {
            sim::LinePoint a = randomPoint(geom, rng);
            sim::LinePoint b = randomPoint(geom, rng);
            local += bitOn(enrolled_idx, a, b) !=
                     bitOn(noisy_idx, a, b);
        }
        flips[m] = local;
    });

    std::uint64_t total_flips = 0;
    for (auto f : flips)
        total_flips += f;
    return static_cast<double>(total_flips) /
           static_cast<double>(cfg.maps * cfg.samplesPerMap);
}

double
estimateInterFlipProbability(const core::CacheGeometry &geom,
                             std::size_t errors,
                             const ExperimentConfig &cfg)
{
    std::vector<std::uint64_t> flips(cfg.maps, 0);
    shard(cfg, cfg.maps, [&](std::size_t m) {
        util::Rng rng =
            util::Rng::forStream(cfg.seed ^ kInterTag, m);
        core::ErrorIndex chip_a(randomPlane(geom, errors, rng));
        core::ErrorIndex chip_b(randomPlane(geom, errors, rng));
        std::uint64_t local = 0;
        for (std::size_t s = 0; s < cfg.samplesPerMap; ++s) {
            sim::LinePoint a = randomPoint(geom, rng);
            sim::LinePoint b = randomPoint(geom, rng);
            local += bitOn(chip_a, a, b) != bitOn(chip_b, a, b);
        }
        flips[m] = local;
    });

    std::uint64_t total_flips = 0;
    for (auto f : flips)
        total_flips += f;
    return static_cast<double>(total_flips) /
           static_cast<double>(cfg.maps * cfg.samplesPerMap);
}

NoiseTolerance
maxTolerableNoise(const core::CacheGeometry &geom, std::size_t errors,
                  std::size_t bits, bool injected, double target_rate,
                  const ExperimentConfig &cfg)
{
    // p_intra depends on the noise fraction but not the CRP size;
    // memoize evaluations so the bisection stays cheap.
    std::map<double, double> memo;
    auto p_intra_at = [&](double fraction) {
        auto it = memo.find(fraction);
        if (it != memo.end())
            return it->second;
        NoiseProfile profile;
        if (injected)
            profile.injectFraction = fraction;
        else
            profile.removeFraction = fraction;
        double p = estimateIntraFlipProbability(geom, errors, profile,
                                                cfg);
        memo[fraction] = p;
        return p;
    };

    const double p_inter =
        estimateInterFlipProbability(geom, errors, cfg);

    auto rate_at = [&](double fraction) {
        return metrics::misidentificationRate(bits, p_inter,
                                              p_intra_at(fraction));
    };

    // Removal is capped at 100% (cannot remove more errors than
    // enrolled); injection explored up to 400%.
    double lo = 0.0;
    double hi = injected ? 4.0 : 1.0;
    if (rate_at(hi) <= target_rate) {
        NoiseTolerance out;
        out.maxNoisePercent = hi * 100.0;
        out.pIntraAtMax = p_intra_at(hi);
        out.pInter = p_inter;
        out.rateAtMax = rate_at(hi);
        return out;
    }
    if (rate_at(lo) > target_rate) {
        NoiseTolerance out; // Even zero noise fails the target.
        out.pIntraAtMax = p_intra_at(lo);
        out.pInter = p_inter;
        out.rateAtMax = rate_at(lo);
        return out;
    }

    for (int iter = 0; iter < 24; ++iter) {
        double mid = (lo + hi) / 2.0;
        if (rate_at(mid) <= target_rate)
            lo = mid;
        else
            hi = mid;
    }

    NoiseTolerance out;
    out.maxNoisePercent = lo * 100.0;
    out.pIntraAtMax = p_intra_at(lo);
    out.pInter = p_inter;
    out.rateAtMax = rate_at(lo);
    return out;
}

double
averageNearestErrorDistance(const core::CacheGeometry &geom,
                            std::size_t errors,
                            const ExperimentConfig &cfg)
{
    std::vector<double> acc(cfg.maps, 0.0);
    shard(cfg, cfg.maps, [&](std::size_t m) {
        util::Rng rng = util::Rng::forStream(cfg.seed ^ kDistTag, m);
        core::ErrorIndex index(randomPlane(geom, errors, rng));
        double local = 0.0;
        for (std::size_t s = 0; s < cfg.samplesPerMap; ++s) {
            local += static_cast<double>(
                index.distanceOrInfinite(randomPoint(geom, rng)));
        }
        acc[m] = local;
    });

    // Fold in map order so the floating-point sum is deterministic.
    double total = 0.0;
    for (auto a : acc)
        total += a;
    return total / static_cast<double>(cfg.maps * cfg.samplesPerMap);
}

QualityCell
aliasingUniformity(const core::CacheGeometry &geom, std::size_t errors,
                   std::size_t bits, const ExperimentConfig &cfg)
{
    // A population of chips answers shared challenges; aliasing is
    // the per-position ones-rate across chips, uniformity the
    // per-chip ones-rate across a response.
    const std::size_t chips = std::max<std::size_t>(2, cfg.maps);
    std::vector<core::ErrorIndex> indexes(chips,
                                          core::ErrorIndex(geom));
    shard(cfg, chips, [&](std::size_t c) {
        util::Rng rng =
            util::Rng::forStream(cfg.seed ^ kQualityTag, c);
        indexes[c] = core::ErrorIndex(randomPlane(geom, errors, rng));
    });

    const std::size_t challenges =
        std::max<std::size_t>(1, cfg.samplesPerMap / bits);

    // Bit-aliasing: shared challenge bits evaluated across the whole
    // chip population (Eq 6). One Rng stream per challenge so the
    // challenge set is independent of the chip population above.
    std::vector<std::uint64_t> aliasing(challenges, 0);
    shard(cfg, challenges, [&](std::size_t ch) {
        util::Rng rng = util::Rng::forStream(
            cfg.seed ^ kQualityTag, chips + ch);
        std::uint64_t ones = 0;
        for (std::size_t bit = 0; bit < bits; ++bit) {
            sim::LinePoint a = randomPoint(geom, rng);
            sim::LinePoint b = randomPoint(geom, rng);
            for (const auto &index : indexes)
                ones += bitOn(index, a, b);
        }
        aliasing[ch] = ones;
    });

    // Uniformity: each chip answers its own random challenges (Eq 5),
    // spending the same per-chip sample budget as the aliasing sweep
    // (the sequential seed code drew a single challenge per chip and
    // was needlessly noisy).
    std::vector<std::uint64_t> uniform(chips, 0);
    shard(cfg, chips, [&](std::size_t c) {
        util::Rng rng = util::Rng::forStream(
            cfg.seed ^ kQualityTag, chips + challenges + c);
        std::uint64_t ones = 0;
        for (std::size_t ch = 0; ch < challenges; ++ch) {
            for (std::size_t bit = 0; bit < bits; ++bit) {
                sim::LinePoint a = randomPoint(geom, rng);
                sim::LinePoint b = randomPoint(geom, rng);
                ones += bitOn(indexes[c], a, b);
            }
        }
        uniform[c] = ones;
    });

    std::uint64_t aliasing_ones = 0;
    for (auto a : aliasing)
        aliasing_ones += a;
    std::uint64_t uniform_ones = 0;
    for (auto u : uniform)
        uniform_ones += u;

    QualityCell out;
    out.bitAliasingPercent =
        static_cast<double>(aliasing_ones) /
        static_cast<double>(challenges * bits * chips) * 100.0;
    out.uniformityPercent =
        static_cast<double>(uniform_ones) /
        static_cast<double>(chips * challenges * bits) * 100.0;
    return out;
}

} // namespace authenticache::mc
