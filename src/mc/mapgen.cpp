#include "mc/mapgen.hpp"

namespace authenticache::mc {

core::ErrorPlane
randomPlane(const core::CacheGeometry &geom, std::size_t errors,
            util::Rng &rng)
{
    core::ErrorPlane plane(geom);
    for (auto idx : rng.sampleDistinct(geom.lines(), errors))
        plane.add(geom.pointOf(idx));
    return plane;
}

core::ErrorMap
randomErrorMap(const core::CacheGeometry &geom, core::VddMv level,
               std::size_t errors, util::Rng &rng)
{
    core::ErrorMap map(geom);
    for (auto idx : rng.sampleDistinct(geom.lines(), errors))
        map.plane(level).add(geom.pointOf(idx));
    return map;
}

} // namespace authenticache::mc
