/**
 * @file
 * Random error-map generation for Monte Carlo experiments.
 *
 * The paper's simulations (Sec 6.1: "each cache configuration was
 * simulated with 100 distinct error maps where every map was evaluated
 * against 50K noise profiles") draw error locations uniformly over the
 * cache plane, which matches the hardware characterization (Figure 2).
 */

#ifndef AUTH_MC_MAPGEN_HPP
#define AUTH_MC_MAPGEN_HPP

#include <cstdint>

#include "core/error_map.hpp"
#include "util/rng.hpp"

namespace authenticache::mc {

/** Uniform random error plane with exactly @p errors errors. */
core::ErrorPlane randomPlane(const core::CacheGeometry &geom,
                             std::size_t errors, util::Rng &rng);

/** Single-level error map wrapping randomPlane. */
core::ErrorMap randomErrorMap(const core::CacheGeometry &geom,
                              core::VddMv level, std::size_t errors,
                              util::Rng &rng);

} // namespace authenticache::mc

#endif // AUTH_MC_MAPGEN_HPP
