#include "mc/noise.hpp"

#include <cmath>

namespace authenticache::mc {

core::ErrorPlane
applyNoise(const core::ErrorPlane &enrolled, const NoiseProfile &profile,
           util::Rng &rng)
{
    const auto &geom = enrolled.geometry();
    core::ErrorPlane noisy = enrolled;

    const double base = static_cast<double>(enrolled.errorCount());

    // Removal: mask a random subset of enrolled errors.
    auto n_remove = static_cast<std::size_t>(
        std::llround(base * profile.removeFraction));
    n_remove = std::min(n_remove, enrolled.errorCount());
    if (n_remove > 0) {
        auto victims =
            rng.sampleDistinct(enrolled.errorCount(), n_remove);
        for (auto v : victims)
            noisy.remove(enrolled.errors()[v]);
    }

    // Injection: add new errors at random error-free lines.
    auto n_inject = static_cast<std::size_t>(
        std::llround(base * profile.injectFraction));
    std::size_t added = 0;
    while (added < n_inject) {
        auto idx = rng.nextBelow(geom.lines());
        auto p = geom.pointOf(idx);
        if (!noisy.contains(p)) {
            noisy.add(p);
            ++added;
        }
    }
    return noisy;
}

core::ErrorMap
applyNoise(const core::ErrorMap &enrolled, const NoiseProfile &profile,
           util::Rng &rng)
{
    core::ErrorMap out(enrolled.geometry());
    for (auto level : enrolled.levels()) {
        core::ErrorPlane noisy =
            applyNoise(enrolled.plane(level), profile, rng);
        for (const auto &e : noisy.errors())
            out.plane(level).add(e);
        out.plane(level); // Ensure the plane exists even if empty.
    }
    return out;
}

} // namespace authenticache::mc
