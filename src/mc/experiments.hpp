/**
 * @file
 * Monte Carlo experiment kernels backing the paper's evaluation
 * figures: Hamming-distance distributions (Fig 9), maximum tolerable
 * noise at the 1 ppm criterion (Fig 10), bit-aliasing / uniformity
 * sweeps (Fig 12), and average nearest-error distance (Fig 15).
 */

#ifndef AUTH_MC_EXPERIMENTS_HPP
#define AUTH_MC_EXPERIMENTS_HPP

#include <cstdint>
#include <vector>

#include "core/challenge.hpp"
#include "mc/noise.hpp"
#include "util/rng.hpp"

namespace authenticache::mc {

/** Shared experiment sizing. */
struct ExperimentConfig
{
    std::size_t maps = 100;          ///< Distinct error maps (chips).
    std::size_t samplesPerMap = 500; ///< Challenges / noise profiles.
    std::uint64_t seed = 0xA07EC;

    /**
     * Execution width for the parallel engine: 0 uses the shared
     * global pool at its default width. Every experiment shards over
     * maps with one independent Rng stream per shard
     * (util::Rng::forStream), so results are bit-identical for every
     * thread count -- this knob only trades wall-clock time.
     */
    unsigned threads = 0;
};

/** Raw Hamming-distance samples for Fig 9. */
struct HammingSamples
{
    std::vector<std::uint32_t> intra; ///< Enrolled vs noisy, same chip.
    std::vector<std::uint32_t> inter; ///< Same challenge, other chip.
    std::size_t bits = 0;
};

/**
 * Sample intra-chip (under the given noise) and inter-chip Hamming
 * distances for @p bits -bit challenges on maps with @p errors errors.
 */
HammingSamples hammingDistributions(const core::CacheGeometry &geom,
                                    std::size_t errors, std::size_t bits,
                                    const NoiseProfile &noise,
                                    const ExperimentConfig &cfg);

/**
 * Estimate the per-bit response flip probability under a noise
 * profile (the p_intra of Eq 4), by sampling random challenge bits on
 * random maps.
 */
double estimateIntraFlipProbability(const core::CacheGeometry &geom,
                                    std::size_t errors,
                                    const NoiseProfile &noise,
                                    const ExperimentConfig &cfg);

/**
 * Estimate the per-bit disagreement probability between two
 * independent chips answering the same challenge (the p_inter of
 * Eq 3; ideally 0.5).
 */
double estimateInterFlipProbability(const core::CacheGeometry &geom,
                                    std::size_t errors,
                                    const ExperimentConfig &cfg);

/** Result of the maximum-tolerable-noise search (Fig 10). */
struct NoiseTolerance
{
    double maxNoisePercent = 0.0; ///< e.g. 142 means 142%.
    double pIntraAtMax = 0.0;
    double pInter = 0.5;
    double rateAtMax = 0.0;       ///< Misidentification rate there.
};

/**
 * Largest noise fraction (injected when @p injected, removed
 * otherwise) keeping the misidentification rate at the EER threshold
 * below @p target_rate for @p bits -bit responses. Binary search over
 * the noise fraction; p_intra(f) estimated by Monte Carlo, the rate
 * evaluated analytically with the binomial model of Eq 3-4 (the
 * paper's own machinery -- ppm-scale rates are not reachable by
 * direct simulation).
 */
NoiseTolerance maxTolerableNoise(const core::CacheGeometry &geom,
                                 std::size_t errors, std::size_t bits,
                                 bool injected,
                                 double target_rate = 1e-6,
                                 const ExperimentConfig &cfg = {});

/** Mean Manhattan distance from a random line to the nearest error. */
double averageNearestErrorDistance(const core::CacheGeometry &geom,
                                   std::size_t errors,
                                   const ExperimentConfig &cfg);

/** Aliasing/uniformity summary for one (errors, bits) cell (Fig 12). */
struct QualityCell
{
    double bitAliasingPercent = 0.0; ///< Ideal 50.
    double uniformityPercent = 0.0;  ///< Ideal 50.
};

/**
 * Bit-aliasing and uniformity across a population of chips answering
 * shared challenges.
 */
QualityCell aliasingUniformity(const core::CacheGeometry &geom,
                               std::size_t errors, std::size_t bits,
                               const ExperimentConfig &cfg);

} // namespace authenticache::mc

#endif // AUTH_MC_EXPERIMENTS_HPP
