#include "protocol/messages.hpp"

#include <algorithm>

#include "util/crc32.hpp"

namespace authenticache::protocol {

void
encodeChallenge(ByteWriter &w, const core::Challenge &c)
{
    w.putU32(static_cast<std::uint32_t>(c.size()));
    for (const auto &bit : c.bits) {
        w.putU32(bit.a.line.set);
        w.putU32(bit.a.line.way);
        w.putU32(bit.a.vddMv);
        w.putU32(bit.b.line.set);
        w.putU32(bit.b.line.way);
        w.putU32(bit.b.vddMv);
    }
}

core::Challenge
decodeChallenge(ByteReader &r)
{
    core::Challenge c;
    std::uint32_t n = r.getU32();
    if (n > 1u << 20)
        throw DecodeError("challenge unreasonably large");
    c.bits.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        core::ChallengeBit bit;
        bit.a.line.set = r.getU32();
        bit.a.line.way = r.getU32();
        bit.a.vddMv = r.getU32();
        bit.b.line.set = r.getU32();
        bit.b.line.way = r.getU32();
        bit.b.vddMv = r.getU32();
        c.bits.push_back(bit);
    }
    return c;
}

void
encodeBitVec(ByteWriter &w, const util::BitVec &v)
{
    w.putU64(v.size());
    for (auto word : v.words())
        w.putU64(word);
}

util::BitVec
decodeBitVec(ByteReader &r)
{
    std::uint64_t nbits = r.getU64();
    if (nbits > 1u << 24)
        throw DecodeError("bit vector unreasonably large");
    std::size_t nwords = (nbits + 63) / 64;
    std::vector<std::uint64_t> words;
    words.reserve(nwords);
    for (std::size_t i = 0; i < nwords; ++i)
        words.push_back(r.getU64());
    return util::BitVec::fromWords(std::move(words), nbits);
}

MessageType
messageType(const Message &m)
{
    return std::visit(
        [](const auto &v) -> MessageType {
            using T = std::decay_t<decltype(v)>;
            if constexpr (std::is_same_v<T, AuthRequest>)
                return MessageType::AuthRequest;
            else if constexpr (std::is_same_v<T, ChallengeMsg>)
                return MessageType::ChallengeMsg;
            else if constexpr (std::is_same_v<T, ResponseMsg>)
                return MessageType::ResponseMsg;
            else if constexpr (std::is_same_v<T, AuthDecision>)
                return MessageType::AuthDecision;
            else if constexpr (std::is_same_v<T, RemapRequest>)
                return MessageType::RemapRequest;
            else if constexpr (std::is_same_v<T, RemapAck>)
                return MessageType::RemapAck;
            else if constexpr (std::is_same_v<T, RemapCommit>)
                return MessageType::RemapCommit;
            else if constexpr (std::is_same_v<T, Heartbeat>)
                return MessageType::Heartbeat;
            else if constexpr (std::is_same_v<T, HeartbeatProof>)
                return MessageType::HeartbeatProof;
            else if constexpr (std::is_same_v<T, TrustUpdate>)
                return MessageType::TrustUpdate;
            else if constexpr (std::is_same_v<T, Revoke>)
                return MessageType::Revoke;
            else
                return MessageType::ErrorMsg;
        },
        m);
}

std::optional<MessageType>
peekMessageType(std::span<const std::uint8_t> frame)
{
    if (frame.size() < 5)
        return std::nullopt;
    const std::uint8_t tag = frame[4]; // After the u32 payload length.
    if (tag < static_cast<std::uint8_t>(MessageType::AuthRequest) ||
        tag > static_cast<std::uint8_t>(MessageType::Revoke))
        return std::nullopt;
    return static_cast<MessageType>(tag);
}

namespace {

void
encodePayload(ByteWriter &w, const Message &m)
{
    std::visit(
        [&](const auto &v) {
            using T = std::decay_t<decltype(v)>;
            if constexpr (std::is_same_v<T, AuthRequest>) {
                w.putU64(v.deviceId);
            } else if constexpr (std::is_same_v<T, ChallengeMsg>) {
                w.putU64(v.nonce);
                encodeChallenge(w, v.challenge);
            } else if constexpr (std::is_same_v<T, ResponseMsg>) {
                w.putU64(v.nonce);
                encodeBitVec(w, v.response);
            } else if constexpr (std::is_same_v<T, AuthDecision>) {
                w.putU64(v.nonce);
                w.putU8(v.accepted ? 1 : 0);
                w.putU32(v.hammingDistance);
            } else if constexpr (std::is_same_v<T, RemapRequest>) {
                w.putU64(v.nonce);
                encodeChallenge(w, v.challenge);
                encodeBitVec(w, v.helper);
                w.putU32(v.repetition);
            } else if constexpr (std::is_same_v<T, RemapAck>) {
                w.putU64(v.nonce);
                w.putU8(v.success ? 1 : 0);
                w.putBytes(v.confirmation);
            } else if constexpr (std::is_same_v<T, RemapCommit>) {
                w.putU64(v.nonce);
                w.putU8(v.committed ? 1 : 0);
            } else if constexpr (std::is_same_v<T, Heartbeat>) {
                w.putU64(v.nonce);
                w.putU64(v.seq);
                encodeChallenge(w, v.challenge);
            } else if constexpr (std::is_same_v<T, HeartbeatProof>) {
                w.putU64(v.nonce);
                encodeBitVec(w, v.response);
            } else if constexpr (std::is_same_v<T, TrustUpdate>) {
                w.putU64(v.nonce);
                w.putU32(v.trust);
                w.putU8(v.tier);
                w.putU8(v.accepted ? 1 : 0);
                w.putU32(v.hammingDistance);
            } else if constexpr (std::is_same_v<T, Revoke>) {
                w.putU64(v.deviceId);
                w.putString(v.reason);
            } else {
                w.putString(v.reason);
            }
        },
        m);
}

Message
decodePayload(MessageType type, ByteReader &r)
{
    switch (type) {
      case MessageType::AuthRequest: {
        AuthRequest m;
        m.deviceId = r.getU64();
        return m;
      }
      case MessageType::ChallengeMsg: {
        ChallengeMsg m;
        m.nonce = r.getU64();
        m.challenge = decodeChallenge(r);
        return m;
      }
      case MessageType::ResponseMsg: {
        ResponseMsg m;
        m.nonce = r.getU64();
        m.response = decodeBitVec(r);
        return m;
      }
      case MessageType::AuthDecision: {
        AuthDecision m;
        m.nonce = r.getU64();
        m.accepted = r.getU8() != 0;
        m.hammingDistance = r.getU32();
        return m;
      }
      case MessageType::RemapRequest: {
        RemapRequest m;
        m.nonce = r.getU64();
        m.challenge = decodeChallenge(r);
        m.helper = decodeBitVec(r);
        m.repetition = r.getU32();
        return m;
      }
      case MessageType::RemapAck: {
        RemapAck m;
        m.nonce = r.getU64();
        m.success = r.getU8() != 0;
        auto bytes = r.getBytes(m.confirmation.size());
        std::copy(bytes.begin(), bytes.end(),
                  m.confirmation.begin());
        return m;
      }
      case MessageType::ErrorMsg: {
        ErrorMsg m;
        m.reason = r.getString();
        return m;
      }
      case MessageType::RemapCommit: {
        RemapCommit m;
        m.nonce = r.getU64();
        m.committed = r.getU8() != 0;
        return m;
      }
      case MessageType::Heartbeat: {
        Heartbeat m;
        m.nonce = r.getU64();
        m.seq = r.getU64();
        m.challenge = decodeChallenge(r);
        return m;
      }
      case MessageType::HeartbeatProof: {
        HeartbeatProof m;
        m.nonce = r.getU64();
        m.response = decodeBitVec(r);
        return m;
      }
      case MessageType::TrustUpdate: {
        TrustUpdate m;
        m.nonce = r.getU64();
        m.trust = r.getU32();
        m.tier = r.getU8();
        m.accepted = r.getU8() != 0;
        m.hammingDistance = r.getU32();
        return m;
      }
      case MessageType::Revoke: {
        Revoke m;
        m.deviceId = r.getU64();
        m.reason = r.getString();
        return m;
      }
    }
    throw DecodeError("unknown message type");
}

} // namespace

std::vector<std::uint8_t>
encodeMessage(const Message &m)
{
    ByteWriter payload;
    payload.putU8(static_cast<std::uint8_t>(messageType(m)));
    encodePayload(payload, m);

    ByteWriter frame;
    frame.putU32(static_cast<std::uint32_t>(payload.size()));
    frame.putBytes(payload.bytes());
    frame.putU32(util::crc32(payload.bytes()));
    return frame.take();
}

Message
decodeMessage(std::span<const std::uint8_t> frame)
{
    ByteReader r(frame);
    std::uint32_t len = r.getU32();
    auto payload = r.getBytes(len);
    std::uint32_t crc = r.getU32();
    r.expectEnd();
    if (util::crc32(payload) != crc)
        throw DecodeError("CRC mismatch");

    ByteReader pr(payload);
    auto raw_type = pr.getU8();
    if (raw_type < 1 ||
        raw_type > static_cast<std::uint8_t>(MessageType::Revoke))
        throw DecodeError("unknown message type");
    Message m = decodePayload(static_cast<MessageType>(raw_type), pr);
    pr.expectEnd();
    return m;
}

} // namespace authenticache::protocol
