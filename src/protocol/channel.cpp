#include "protocol/channel.hpp"

namespace authenticache::protocol {

void
Transcript::record(Direction d, const std::vector<std::uint8_t> &frame)
{
    log.push_back({d, frame});
}

std::vector<std::pair<core::Challenge, util::BitVec>>
Transcript::observedCrps() const
{
    // Index challenges by nonce, then match responses.
    std::vector<std::pair<std::uint64_t, core::Challenge>> challenges;
    std::vector<std::pair<std::uint64_t, util::BitVec>> responses;

    for (const auto &entry : log) {
        Message m;
        try {
            m = decodeMessage(entry.frame);
        } catch (const DecodeError &) {
            continue; // Corrupted frames are invisible to the attacker.
        }
        if (auto *ch = std::get_if<ChallengeMsg>(&m))
            challenges.emplace_back(ch->nonce, ch->challenge);
        else if (auto *resp = std::get_if<ResponseMsg>(&m))
            responses.emplace_back(resp->nonce, resp->response);
    }

    std::vector<std::pair<core::Challenge, util::BitVec>> out;
    for (const auto &[nonce, challenge] : challenges) {
        for (const auto &[rnonce, response] : responses) {
            if (rnonce == nonce &&
                response.size() == challenge.size()) {
                out.emplace_back(challenge, response);
                break;
            }
        }
    }
    return out;
}

bool
InMemoryChannel::maybeDrop()
{
    if (dropBudget > 0) {
        --dropBudget;
        return true;
    }
    return false;
}

void
InMemoryChannel::maybeCorrupt(std::vector<std::uint8_t> &frame)
{
    if (corruptBudget > 0 && !frame.empty()) {
        --corruptBudget;
        frame[frame.size() / 2] ^= 0xFF;
    }
}

void
InMemoryChannel::sendToServer(std::vector<std::uint8_t> frame)
{
    ++nFrames;
    if (transcript)
        transcript->record(Direction::ClientToServer, frame);
    if (maybeDrop())
        return;
    maybeCorrupt(frame);
    toServer.push_back(std::move(frame));
}

void
InMemoryChannel::sendToClient(std::vector<std::uint8_t> frame)
{
    ++nFrames;
    if (transcript)
        transcript->record(Direction::ServerToClient, frame);
    if (maybeDrop())
        return;
    maybeCorrupt(frame);
    toClient.push_back(std::move(frame));
}

std::optional<std::vector<std::uint8_t>>
InMemoryChannel::receiveAtServer()
{
    if (toServer.empty())
        return std::nullopt;
    auto frame = std::move(toServer.front());
    toServer.pop_front();
    return frame;
}

std::optional<std::vector<std::uint8_t>>
InMemoryChannel::receiveAtClient()
{
    if (toClient.empty())
        return std::nullopt;
    auto frame = std::move(toClient.front());
    toClient.pop_front();
    return frame;
}

} // namespace authenticache::protocol
