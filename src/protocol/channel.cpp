#include "protocol/channel.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace authenticache::protocol {

void
Transcript::record(Direction d, const std::vector<std::uint8_t> &frame)
{
    log.push_back({d, frame});
}

std::vector<std::pair<core::Challenge, util::BitVec>>
Transcript::observedCrps() const
{
    // Index challenges by nonce, then match responses.
    std::vector<std::pair<std::uint64_t, core::Challenge>> challenges;
    std::vector<std::pair<std::uint64_t, util::BitVec>> responses;

    for (const auto &entry : log) {
        Message m;
        try {
            m = decodeMessage(entry.frame);
        } catch (const DecodeError &) {
            continue; // Corrupted frames are invisible to the attacker.
        }
        if (auto *ch = std::get_if<ChallengeMsg>(&m))
            challenges.emplace_back(ch->nonce, ch->challenge);
        else if (auto *resp = std::get_if<ResponseMsg>(&m))
            responses.emplace_back(resp->nonce, resp->response);
    }

    std::vector<std::pair<core::Challenge, util::BitVec>> out;
    for (const auto &[nonce, challenge] : challenges) {
        for (const auto &[rnonce, response] : responses) {
            if (rnonce == nonce &&
                response.size() == challenge.size()) {
                out.emplace_back(challenge, response);
                break;
            }
        }
    }
    return out;
}

const FaultSpec *
FaultPlan::at(std::uint64_t frame_index) const
{
    for (const auto &spec : specs) {
        if (spec.frameIndex == frame_index &&
            spec.type != FaultType::None)
            return &spec;
    }
    return nullptr;
}

bool
InMemoryChannel::maybeDrop()
{
    if (dropBudget > 0) {
        --dropBudget;
        return true;
    }
    return false;
}

void
InMemoryChannel::maybeCorrupt(std::vector<std::uint8_t> &frame)
{
    if (corruptBudget > 0 && !frame.empty()) {
        --corruptBudget;
        frame[frame.size() / 2] ^= 0xFF;
    }
}

void
InMemoryChannel::corruptSeeded(std::vector<std::uint8_t> &frame,
                               std::uint64_t ordinal)
{
    if (frame.empty())
        return;
    // Seed by (plan seed, ordinal): the damaged byte and mask depend
    // only on the schedule, never on call order elsewhere.
    util::Rng rng = util::Rng::forStream(plan.seed(), ordinal);
    std::size_t pos = rng.nextBelow(frame.size());
    auto mask = static_cast<std::uint8_t>(1 + rng.nextBelow(255));
    frame[pos] ^= mask;
}

std::size_t
InMemoryChannel::occupancy(Direction d) const
{
    std::size_t n = d == Direction::ClientToServer ? toServer.size()
                                                   : toClient.size();
    for (const auto &held : delayed)
        if (held.direction == d)
            ++n;
    return n;
}

bool
InMemoryChannel::enqueue(Direction d, std::vector<std::uint8_t> frame,
                         bool front)
{
    // A delay-held frame already owns its queue slot, so the cap
    // covers queued + held: releasing a delayed frame never drops it.
    if (queueCap != 0 && occupancy(d) >= queueCap) {
        ++counters.overflows;
        return false;
    }
    auto &queue =
        d == Direction::ClientToServer ? toServer : toClient;
    if (front)
        queue.push_front(std::move(frame));
    else
        queue.push_back(std::move(frame));
    return true;
}

void
InMemoryChannel::flushDelayed()
{
    if (delayed.empty())
        return;
    const std::uint64_t step = now();
    // Release in (releaseStep, sequence) order so delivery is
    // deterministic regardless of how far the clock jumped.
    std::stable_sort(delayed.begin(), delayed.end(),
                     [](const DelayedFrame &x, const DelayedFrame &y) {
                         if (x.releaseStep != y.releaseStep)
                             return x.releaseStep < y.releaseStep;
                         return x.sequence < y.sequence;
                     });
    std::size_t released = 0;
    for (auto &held : delayed) {
        if (held.releaseStep > step)
            break;
        auto &queue = held.direction == Direction::ClientToServer
                          ? toServer
                          : toClient;
        queue.push_back(std::move(held.frame));
        ++released;
    }
    delayed.erase(delayed.begin(),
                  delayed.begin() +
                      static_cast<std::ptrdiff_t>(released));
}

void
InMemoryChannel::dispatch(Direction d, std::vector<std::uint8_t> frame)
{
    const std::uint64_t ordinal = nFrames++;
    if (transcript)
        transcript->record(d, frame);

    // Legacy one-shot budgets keep their original semantics.
    if (maybeDrop())
        return;
    maybeCorrupt(frame);

    const FaultSpec *spec = plan.at(ordinal);
    if (!spec) {
        enqueue(d, std::move(frame));
        return;
    }

    switch (spec->type) {
      case FaultType::Drop:
        ++counters.drops;
        return;
      case FaultType::Duplicate:
        ++counters.duplicates;
        // Both copies cross the wire; the eavesdropper sees both.
        if (transcript)
            transcript->record(d, frame);
        enqueue(d, frame);
        enqueue(d, std::move(frame));
        return;
      case FaultType::Reorder:
        ++counters.reorders;
        enqueue(d, std::move(frame), /*front=*/true);
        return;
      case FaultType::Delay:
        if (!simClock || spec->delaySteps == 0) {
            enqueue(d, std::move(frame));
            return;
        }
        // The held frame owns a queue slot (see enqueue); a full
        // queue sheds the frame here, not at release time.
        if (queueCap != 0 && occupancy(d) >= queueCap) {
            ++counters.overflows;
            return;
        }
        ++counters.delays;
        delayed.push_back({now() + spec->delaySteps, nDelaySeq++, d,
                           std::move(frame)});
        return;
      case FaultType::Corrupt:
        ++counters.corruptions;
        corruptSeeded(frame, ordinal);
        enqueue(d, std::move(frame));
        return;
      case FaultType::None:
        enqueue(d, std::move(frame));
        return;
    }
}

void
InMemoryChannel::sendToServer(std::vector<std::uint8_t> frame)
{
    dispatch(Direction::ClientToServer, std::move(frame));
}

void
InMemoryChannel::sendToClient(std::vector<std::uint8_t> frame)
{
    dispatch(Direction::ServerToClient, std::move(frame));
}

std::optional<std::vector<std::uint8_t>>
InMemoryChannel::receiveAtServer()
{
    flushDelayed();
    if (toServer.empty())
        return std::nullopt;
    auto frame = std::move(toServer.front());
    toServer.pop_front();
    return frame;
}

std::optional<std::vector<std::uint8_t>>
InMemoryChannel::receiveAtClient()
{
    flushDelayed();
    if (toClient.empty())
        return std::nullopt;
    auto frame = std::move(toClient.front());
    toClient.pop_front();
    return frame;
}

} // namespace authenticache::protocol
