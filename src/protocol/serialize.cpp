#include "protocol/serialize.hpp"

namespace authenticache::protocol {

void
ByteWriter::putU8(std::uint8_t v)
{
    buffer.push_back(v);
}

void
ByteWriter::putU16(std::uint16_t v)
{
    for (int i = 0; i < 2; ++i)
        buffer.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
ByteWriter::putU32(std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buffer.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
ByteWriter::putU64(std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buffer.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
ByteWriter::putBytes(std::span<const std::uint8_t> bytes)
{
    buffer.insert(buffer.end(), bytes.begin(), bytes.end());
}

void
ByteWriter::putString(const std::string &s)
{
    putU32(static_cast<std::uint32_t>(s.size()));
    putBytes(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t *>(s.data()), s.size()));
}

ByteReader::ByteReader(std::span<const std::uint8_t> data_) : data(data_)
{
}

void
ByteReader::need(std::size_t count) const
{
    if (remaining() < count)
        throw DecodeError("truncated message");
}

std::uint8_t
ByteReader::getU8()
{
    need(1);
    return data[offset++];
}

std::uint16_t
ByteReader::getU16()
{
    need(2);
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i)
        v |= static_cast<std::uint16_t>(data[offset++]) << (8 * i);
    return v;
}

std::uint32_t
ByteReader::getU32()
{
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(data[offset++]) << (8 * i);
    return v;
}

std::uint64_t
ByteReader::getU64()
{
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(data[offset++]) << (8 * i);
    return v;
}

std::vector<std::uint8_t>
ByteReader::getBytes(std::size_t count)
{
    need(count);
    std::vector<std::uint8_t> out(data.begin() + offset,
                                  data.begin() + offset + count);
    offset += count;
    return out;
}

std::string
ByteReader::getString()
{
    std::uint32_t len = getU32();
    auto bytes = getBytes(len);
    return std::string(bytes.begin(), bytes.end());
}

void
ByteReader::expectEnd() const
{
    if (!exhausted())
        throw DecodeError("trailing bytes after message");
}

} // namespace authenticache::protocol
