/**
 * @file
 * In-memory duplex channel between a client and a server, with
 * deterministic fault injection (drop, duplicate, reorder, delay,
 * corrupt) for failure testing and a transcript tap modeling a passive
 * eavesdropper -- the observation surface of the paper's threat model
 * (Sec 4.4) and of the model-building attack study (Sec 6.7).
 *
 * Faults are scheduled by a seeded FaultPlan keyed on the global send
 * ordinal, and delays run on a shared util::SimClock, so any fault
 * schedule is replayable bit-for-bit (no wall-clock anywhere).
 */

#ifndef AUTH_PROTOCOL_CHANNEL_HPP
#define AUTH_PROTOCOL_CHANNEL_HPP

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "protocol/messages.hpp"
#include "util/sim_clock.hpp"

namespace authenticache::protocol {

/** Which way a frame travelled. */
enum class Direction
{
    ClientToServer,
    ServerToClient,
};

/** One captured frame, as an eavesdropper would see it. */
struct TranscriptEntry
{
    Direction direction;
    std::vector<std::uint8_t> frame;
};

/** Passive wiretap recording every frame crossing the channel. */
class Transcript
{
  public:
    void record(Direction d, const std::vector<std::uint8_t> &frame);

    const std::vector<TranscriptEntry> &entries() const
    {
        return log;
    }

    std::size_t size() const { return log.size(); }
    void clear() { log.clear(); }

    /**
     * Decode all observed (challenge, response) pairs by matching
     * nonces -- exactly what a model-building attacker extracts.
     */
    std::vector<std::pair<core::Challenge, util::BitVec>>
    observedCrps() const;

  private:
    std::vector<TranscriptEntry> log;
};

/** Fault applied to one scheduled frame. */
enum class FaultType : std::uint8_t
{
    None,
    Drop,      ///< Frame silently discarded.
    Duplicate, ///< Frame enqueued twice back-to-back.
    Reorder,   ///< Frame jumps ahead of anything already queued.
    Delay,     ///< Frame held for delaySteps clock steps.
    Corrupt,   ///< One seeded-random byte XORed with a nonzero mask.
};

/** One scheduled fault, addressed by global send ordinal. */
struct FaultSpec
{
    FaultType type = FaultType::None;
    std::uint64_t frameIndex = 0; ///< 0-based send ordinal (either way).
    std::uint64_t delaySteps = 0; ///< Delay only.
};

/**
 * A replayable fault schedule: a set of FaultSpecs plus the seed that
 * drives corruption byte/mask choices. The same plan against the same
 * exchange produces bit-identical channel behavior.
 */
class FaultPlan
{
  public:
    FaultPlan() = default;
    explicit FaultPlan(std::uint64_t corruption_seed)
        : rngSeed(corruption_seed)
    {
    }

    FaultPlan &
    add(const FaultSpec &spec)
    {
        specs.push_back(spec);
        return *this;
    }

    /** The fault scheduled for a send ordinal, if any. */
    const FaultSpec *at(std::uint64_t frame_index) const;

    std::uint64_t seed() const { return rngSeed; }
    bool empty() const { return specs.empty(); }

  private:
    std::uint64_t rngSeed = 0xFA017;
    std::vector<FaultSpec> specs;
};

/** Tally of faults the channel actually applied. */
struct FaultCounters
{
    std::uint64_t drops = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t reorders = 0;
    std::uint64_t delays = 0;
    std::uint64_t corruptions = 0;
    /** Frames discarded because a direction's queue was at its cap. */
    std::uint64_t overflows = 0;
};

/**
 * Where replies go. The batch front end addresses each frame's
 * replies through this interface, so the same pipeline serves an
 * in-memory channel endpoint (ServerEndpoint) and a wire-transport
 * stream (net::TransportCore's per-stream sinks) without knowing
 * which is behind it.
 */
class ReplySink
{
  public:
    virtual ~ReplySink() = default;

    /** Deliver one protocol message to the peer. */
    virtual void send(const Message &m) = 0;
};

/**
 * The channel itself: two frame queues plus optional fault injection.
 * Endpoint objects (ClientEndpoint / ServerEndpoint) expose the
 * directional send/receive pairs.
 *
 * Both queues are bounded (setQueueCap), mirroring the bounded
 * per-connection request queues of the real socket transport: a frame
 * sent at a full queue is discarded and counted in
 * faultCounters().overflows, exactly as a saturated connection would
 * lose it, so loopback tests cannot mask unbounded-memory behavior.
 */
class InMemoryChannel
{
  public:
    /** Default per-direction queue cap (frames). */
    static constexpr std::size_t kDefaultQueueCap = 4096;
    /** Queue a frame toward the server. */
    void sendToServer(std::vector<std::uint8_t> frame);

    /** Queue a frame toward the client. */
    void sendToClient(std::vector<std::uint8_t> frame);

    /** Pop the next frame addressed to the server, if any. */
    std::optional<std::vector<std::uint8_t>> receiveAtServer();

    /** Pop the next frame addressed to the client, if any. */
    std::optional<std::vector<std::uint8_t>> receiveAtClient();

    /** Attach a wiretap (not owned). */
    void attachTranscript(Transcript *tap) { transcript = tap; }

    /**
     * Bind the simulated clock driving Delay faults (not owned).
     * Without a clock, delayed frames are delivered immediately.
     */
    void bindClock(const util::SimClock *clk) { simClock = clk; }

    /** Install a deterministic fault schedule. */
    void setFaultPlan(FaultPlan schedule) { plan = std::move(schedule); }

    /**
     * Cap each direction's queue at @p frames (0 = unbounded, for
     * tests that deliberately model an infinite pipe). The cap counts
     * queued plus delay-held frames per direction.
     */
    void setQueueCap(std::size_t frames) { queueCap = frames; }

    std::size_t queueCapacity() const { return queueCap; }

    /** Corrupt one byte of the next @p n frames sent (either way). */
    void corruptNextFrames(std::size_t n) { corruptBudget = n; }

    /** Silently drop the next @p n frames sent (either way). */
    void dropNextFrames(std::size_t n) { dropBudget = n; }

    std::uint64_t framesSent() const { return nFrames; }

    /** Faults applied so far from the plan. */
    const FaultCounters &faultCounters() const { return counters; }

    /** True when no frame is queued or held in the delay buffer. */
    bool idle() const
    {
        return toServer.empty() && toClient.empty() &&
               delayed.empty();
    }

  private:
    struct DelayedFrame
    {
        std::uint64_t releaseStep;
        std::uint64_t sequence; // Tiebreak: preserve send order.
        Direction direction;
        std::vector<std::uint8_t> frame;
    };

    void dispatch(Direction d, std::vector<std::uint8_t> frame);

    /** Enqueue respecting the per-direction cap; false on overflow. */
    bool enqueue(Direction d, std::vector<std::uint8_t> frame,
                 bool front = false);

    /** Queued plus delay-held frames heading in direction @p d. */
    std::size_t occupancy(Direction d) const;

    bool maybeDrop();
    void maybeCorrupt(std::vector<std::uint8_t> &frame);
    void corruptSeeded(std::vector<std::uint8_t> &frame,
                       std::uint64_t ordinal);

    /** Move delay-buffer frames whose release step has passed. */
    void flushDelayed();

    std::uint64_t now() const { return simClock ? simClock->now() : 0; }

    std::deque<std::vector<std::uint8_t>> toServer;
    std::deque<std::vector<std::uint8_t>> toClient;
    std::vector<DelayedFrame> delayed;
    Transcript *transcript = nullptr;
    const util::SimClock *simClock = nullptr;
    FaultPlan plan;
    FaultCounters counters;
    std::size_t corruptBudget = 0;
    std::size_t dropBudget = 0;
    std::size_t queueCap = kDefaultQueueCap;
    std::uint64_t nFrames = 0;
    std::uint64_t nDelaySeq = 0;
};

/** Convenience wrappers giving each side a natural API. */
class ClientEndpoint
{
  public:
    explicit ClientEndpoint(InMemoryChannel &link) : channel(link) {}

    void send(const Message &m)
    {
        channel.sendToServer(encodeMessage(m));
    }

    std::optional<Message>
    receive()
    {
        auto frame = channel.receiveAtClient();
        if (!frame)
            return std::nullopt;
        return decodeMessage(*frame);
    }

  private:
    InMemoryChannel &channel;
};

class ServerEndpoint : public ReplySink
{
  public:
    explicit ServerEndpoint(InMemoryChannel &link) : channel(link) {}

    void send(const Message &m) override
    {
        channel.sendToClient(encodeMessage(m));
    }

    std::optional<Message>
    receive()
    {
        auto frame = channel.receiveAtServer();
        if (!frame)
            return std::nullopt;
        return decodeMessage(*frame);
    }

  private:
    InMemoryChannel &channel;
};

} // namespace authenticache::protocol

#endif // AUTH_PROTOCOL_CHANNEL_HPP
