/**
 * @file
 * In-memory duplex channel between a client and a server, with fault
 * injection (frame corruption, drops) for failure testing and a
 * transcript tap modeling a passive eavesdropper -- the observation
 * surface of the paper's threat model (Sec 4.4) and of the model-
 * building attack study (Sec 6.7).
 */

#ifndef AUTH_PROTOCOL_CHANNEL_HPP
#define AUTH_PROTOCOL_CHANNEL_HPP

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "protocol/messages.hpp"

namespace authenticache::protocol {

/** Which way a frame travelled. */
enum class Direction
{
    ClientToServer,
    ServerToClient,
};

/** One captured frame, as an eavesdropper would see it. */
struct TranscriptEntry
{
    Direction direction;
    std::vector<std::uint8_t> frame;
};

/** Passive wiretap recording every frame crossing the channel. */
class Transcript
{
  public:
    void record(Direction d, const std::vector<std::uint8_t> &frame);

    const std::vector<TranscriptEntry> &entries() const
    {
        return log;
    }

    std::size_t size() const { return log.size(); }
    void clear() { log.clear(); }

    /**
     * Decode all observed (challenge, response) pairs by matching
     * nonces -- exactly what a model-building attacker extracts.
     */
    std::vector<std::pair<core::Challenge, util::BitVec>>
    observedCrps() const;

  private:
    std::vector<TranscriptEntry> log;
};

/**
 * The channel itself: two frame queues plus optional fault injection.
 * Endpoint objects (ClientEndpoint / ServerEndpoint) expose the
 * directional send/receive pairs.
 */
class InMemoryChannel
{
  public:
    /** Queue a frame toward the server. */
    void sendToServer(std::vector<std::uint8_t> frame);

    /** Queue a frame toward the client. */
    void sendToClient(std::vector<std::uint8_t> frame);

    /** Pop the next frame addressed to the server, if any. */
    std::optional<std::vector<std::uint8_t>> receiveAtServer();

    /** Pop the next frame addressed to the client, if any. */
    std::optional<std::vector<std::uint8_t>> receiveAtClient();

    /** Attach a wiretap (not owned). */
    void attachTranscript(Transcript *tap) { transcript = tap; }

    /** Corrupt one byte of the next @p n frames sent (either way). */
    void corruptNextFrames(std::size_t n) { corruptBudget = n; }

    /** Silently drop the next @p n frames sent (either way). */
    void dropNextFrames(std::size_t n) { dropBudget = n; }

    std::uint64_t framesSent() const { return nFrames; }

  private:
    bool maybeDrop();
    void maybeCorrupt(std::vector<std::uint8_t> &frame);

    std::deque<std::vector<std::uint8_t>> toServer;
    std::deque<std::vector<std::uint8_t>> toClient;
    Transcript *transcript = nullptr;
    std::size_t corruptBudget = 0;
    std::size_t dropBudget = 0;
    std::uint64_t nFrames = 0;
};

/** Convenience wrappers giving each side a natural API. */
class ClientEndpoint
{
  public:
    explicit ClientEndpoint(InMemoryChannel &link) : channel(link) {}

    void send(const Message &m)
    {
        channel.sendToServer(encodeMessage(m));
    }

    std::optional<Message>
    receive()
    {
        auto frame = channel.receiveAtClient();
        if (!frame)
            return std::nullopt;
        return decodeMessage(*frame);
    }

  private:
    InMemoryChannel &channel;
};

class ServerEndpoint
{
  public:
    explicit ServerEndpoint(InMemoryChannel &link) : channel(link) {}

    void send(const Message &m)
    {
        channel.sendToClient(encodeMessage(m));
    }

    std::optional<Message>
    receive()
    {
        auto frame = channel.receiveAtServer();
        if (!frame)
            return std::nullopt;
        return decodeMessage(*frame);
    }

  private:
    InMemoryChannel &channel;
};

} // namespace authenticache::protocol

#endif // AUTH_PROTOCOL_CHANNEL_HPP
