/**
 * @file
 * Authentication protocol messages (paper Figures 6 and 7).
 *
 * Frame format on the wire:
 *
 *     [u32 payload_len][u8 type][payload bytes][u32 crc32]
 *
 * where the CRC covers type + payload. Challenges carry *logical*
 * coordinates; responses carry raw bits. The remap request carries the
 * reserved-voltage challenge plus the key-derivation helper data.
 */

#ifndef AUTH_PROTOCOL_MESSAGES_HPP
#define AUTH_PROTOCOL_MESSAGES_HPP

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "core/challenge.hpp"
#include "protocol/serialize.hpp"
#include "util/bitvec.hpp"

namespace authenticache::protocol {

/** Wire identifier of each message type. */
enum class MessageType : std::uint8_t
{
    AuthRequest = 1,
    ChallengeMsg = 2,
    ResponseMsg = 3,
    AuthDecision = 4,
    RemapRequest = 5,
    RemapAck = 6,
    ErrorMsg = 7,
    RemapCommit = 8,
};

/** Client -> server: start an authentication. */
struct AuthRequest
{
    std::uint64_t deviceId = 0;
};

/** Server -> client: the challenge to evaluate. */
struct ChallengeMsg
{
    std::uint64_t nonce = 0;
    core::Challenge challenge;
};

/** Client -> server: the PUF response. */
struct ResponseMsg
{
    std::uint64_t nonce = 0;
    util::BitVec response;
};

/** Server -> client: accept/reject. */
struct AuthDecision
{
    std::uint64_t nonce = 0;
    bool accepted = false;
    std::uint32_t hammingDistance = 0;
};

/** Server -> client: adaptive remap request (Sec 4.5). */
struct RemapRequest
{
    std::uint64_t nonce = 0;
    core::Challenge challenge;   ///< At a reserved voltage.
    util::BitVec helper;         ///< Key-derivation helper data.
    std::uint32_t repetition = 5;///< Fuzzy-extractor repetition factor.
};

/**
 * Client -> server: remap phase 1 done. Carries a key-confirmation
 * MAC (HMAC of a fixed label and the nonce under the derived key) so
 * the server can detect a mis-derived key *before* either side
 * commits; the MAC reveals nothing about the key itself. The response
 * to the reserved challenge stays secret throughout.
 */
struct RemapAck
{
    std::uint64_t nonce = 0;
    bool success = false;
    std::array<std::uint8_t, 32> confirmation{};
};

/**
 * Server -> client: remap phase 2. committed=true means the server
 * verified the confirmation and switched to the new key; the client
 * installs it on receipt. committed=false aborts the exchange on
 * both sides (keys unchanged).
 */
struct RemapCommit
{
    std::uint64_t nonce = 0;
    bool committed = false;
};

/** Either direction: protocol-level failure. */
struct ErrorMsg
{
    std::string reason;
};

using Message =
    std::variant<AuthRequest, ChallengeMsg, ResponseMsg, AuthDecision,
                 RemapRequest, RemapAck, ErrorMsg, RemapCommit>;

/** Type tag of a decoded message. */
MessageType messageType(const Message &m);

/**
 * Peek a framed message's type tag without decoding (the tag sits
 * right after the u32 payload length). std::nullopt on frames too
 * short to carry a tag or with an unknown tag; full validation stays
 * with decodeMessage.
 */
std::optional<MessageType>
peekMessageType(std::span<const std::uint8_t> frame);

/** Encode a message into a framed byte vector (with CRC). */
std::vector<std::uint8_t> encodeMessage(const Message &m);

/**
 * Decode a framed byte vector; throws DecodeError on truncation, bad
 * type tags, CRC mismatch, or trailing bytes.
 *
 * Challenge geometry is validated against @p geom when provided.
 */
Message decodeMessage(std::span<const std::uint8_t> frame);

/** Serialization helpers shared with storage code. */
void encodeChallenge(ByteWriter &w, const core::Challenge &c);
core::Challenge decodeChallenge(ByteReader &r);
void encodeBitVec(ByteWriter &w, const util::BitVec &v);
util::BitVec decodeBitVec(ByteReader &r);

} // namespace authenticache::protocol

#endif // AUTH_PROTOCOL_MESSAGES_HPP
