/**
 * @file
 * Authentication protocol messages (paper Figures 6 and 7).
 *
 * Frame format on the wire:
 *
 *     [u32 payload_len][u8 type][payload bytes][u32 crc32]
 *
 * where the CRC covers type + payload. Challenges carry *logical*
 * coordinates; responses carry raw bits. The remap request carries the
 * reserved-voltage challenge plus the key-derivation helper data.
 */

#ifndef AUTH_PROTOCOL_MESSAGES_HPP
#define AUTH_PROTOCOL_MESSAGES_HPP

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "core/challenge.hpp"
#include "protocol/serialize.hpp"
#include "util/bitvec.hpp"

namespace authenticache::protocol {

/** Wire identifier of each message type. */
enum class MessageType : std::uint8_t
{
    AuthRequest = 1,
    ChallengeMsg = 2,
    ResponseMsg = 3,
    AuthDecision = 4,
    RemapRequest = 5,
    RemapAck = 6,
    ErrorMsg = 7,
    RemapCommit = 8,
    Heartbeat = 9,
    HeartbeatProof = 10,
    TrustUpdate = 11,
    Revoke = 12,
};

/**
 * Graceful-degradation tier reported with each heartbeat verdict.
 * Ordered by severity; the server moves a device down the ladder as
 * its trust score decays and back up as clean heartbeats accumulate.
 */
enum class TrustTier : std::uint8_t
{
    Nominal = 0,         ///< Low-cost heartbeats only.
    StepUp = 1,          ///< Next heartbeat uses a full-width challenge.
    RemapScheduled = 2,  ///< Proactive remap issued alongside verdict.
    ReenrollRequired = 3,///< Remap budget exhausted; auth refused.
    Revoked = 4,         ///< Device revoked pending admin unlock.
};

/** Client -> server: start an authentication. */
struct AuthRequest
{
    std::uint64_t deviceId = 0;
};

/** Server -> client: the challenge to evaluate. */
struct ChallengeMsg
{
    std::uint64_t nonce = 0;
    core::Challenge challenge;
};

/** Client -> server: the PUF response. */
struct ResponseMsg
{
    std::uint64_t nonce = 0;
    util::BitVec response;
};

/** Server -> client: accept/reject. */
struct AuthDecision
{
    std::uint64_t nonce = 0;
    bool accepted = false;
    std::uint32_t hammingDistance = 0;
};

/** Server -> client: adaptive remap request (Sec 4.5). */
struct RemapRequest
{
    std::uint64_t nonce = 0;
    core::Challenge challenge;   ///< At a reserved voltage.
    util::BitVec helper;         ///< Key-derivation helper data.
    std::uint32_t repetition = 5;///< Fuzzy-extractor repetition factor.
};

/**
 * Client -> server: remap phase 1 done. Carries a key-confirmation
 * MAC (HMAC of a fixed label and the nonce under the derived key) so
 * the server can detect a mis-derived key *before* either side
 * commits; the MAC reveals nothing about the key itself. The response
 * to the reserved challenge stays secret throughout.
 */
struct RemapAck
{
    std::uint64_t nonce = 0;
    bool success = false;
    std::array<std::uint8_t, 32> confirmation{};
};

/**
 * Server -> client: remap phase 2. committed=true means the server
 * verified the confirmation and switched to the new key; the client
 * installs it on receipt. committed=false aborts the exchange on
 * both sides (keys unchanged).
 */
struct RemapCommit
{
    std::uint64_t nonce = 0;
    bool committed = false;
};

/** Either direction: protocol-level failure. */
struct ErrorMsg
{
    std::string reason;
};

/**
 * Server -> client: one round of a long-lived heartbeat session.
 * `seq` numbers the rounds within the session so transcripts order
 * totally even when the cadence interleaves with other traffic.
 */
struct Heartbeat
{
    std::uint64_t nonce = 0;
    std::uint64_t seq = 0;
    core::Challenge challenge;
};

/** Client -> server: response to a heartbeat challenge. */
struct HeartbeatProof
{
    std::uint64_t nonce = 0;
    util::BitVec response;
};

/**
 * Server -> client: heartbeat verdict plus the device's updated trust
 * score and degradation tier, so the client can observe its own decay
 * trajectory (and anticipate a step-up or remap).
 */
struct TrustUpdate
{
    std::uint64_t nonce = 0;
    std::uint32_t trust = 0;
    std::uint8_t tier = 0; ///< A TrustTier value.
    bool accepted = false;
    std::uint32_t hammingDistance = 0;
};

/**
 * Server -> client: the device has been revoked (trust exhausted).
 * Also used by the CLI as an admin command record. Authentication is
 * refused until an admin unlock clears the flag.
 */
struct Revoke
{
    std::uint64_t deviceId = 0;
    std::string reason;
};

using Message =
    std::variant<AuthRequest, ChallengeMsg, ResponseMsg, AuthDecision,
                 RemapRequest, RemapAck, ErrorMsg, RemapCommit,
                 Heartbeat, HeartbeatProof, TrustUpdate, Revoke>;

/** Type tag of a decoded message. */
MessageType messageType(const Message &m);

/**
 * Peek a framed message's type tag without decoding (the tag sits
 * right after the u32 payload length). std::nullopt on frames too
 * short to carry a tag or with an unknown tag; full validation stays
 * with decodeMessage.
 */
std::optional<MessageType>
peekMessageType(std::span<const std::uint8_t> frame);

/** Encode a message into a framed byte vector (with CRC). */
std::vector<std::uint8_t> encodeMessage(const Message &m);

/**
 * Decode a framed byte vector; throws DecodeError on truncation, bad
 * type tags, CRC mismatch, or trailing bytes.
 *
 * Challenge geometry is validated against @p geom when provided.
 */
Message decodeMessage(std::span<const std::uint8_t> frame);

/** Serialization helpers shared with storage code. */
void encodeChallenge(ByteWriter &w, const core::Challenge &c);
core::Challenge decodeChallenge(ByteReader &r);
void encodeBitVec(ByteWriter &w, const util::BitVec &v);
util::BitVec decodeBitVec(ByteReader &r);

} // namespace authenticache::protocol

#endif // AUTH_PROTOCOL_MESSAGES_HPP
