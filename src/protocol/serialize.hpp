/**
 * @file
 * Bounds-checked little-endian binary serialization for protocol
 * frames.
 */

#ifndef AUTH_PROTOCOL_SERIALIZE_HPP
#define AUTH_PROTOCOL_SERIALIZE_HPP

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace authenticache::protocol {

/** Thrown on malformed input (truncation, bad tags, CRC mismatch). */
class DecodeError : public std::runtime_error
{
  public:
    explicit DecodeError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** Append-only byte buffer with little-endian encoders. */
class ByteWriter
{
  public:
    void putU8(std::uint8_t v);
    void putU16(std::uint16_t v);
    void putU32(std::uint32_t v);
    void putU64(std::uint64_t v);
    void putBytes(std::span<const std::uint8_t> bytes);
    void putString(const std::string &s); // u32 length prefix.

    const std::vector<std::uint8_t> &bytes() const { return buffer; }
    std::vector<std::uint8_t> take() { return std::move(buffer); }
    std::size_t size() const { return buffer.size(); }

  private:
    std::vector<std::uint8_t> buffer;
};

/** Cursor over a byte span; every read is bounds checked. */
class ByteReader
{
  public:
    explicit ByteReader(std::span<const std::uint8_t> data);

    std::uint8_t getU8();
    std::uint16_t getU16();
    std::uint32_t getU32();
    std::uint64_t getU64();
    std::vector<std::uint8_t> getBytes(std::size_t count);
    std::string getString();

    std::size_t remaining() const { return data.size() - offset; }
    bool exhausted() const { return remaining() == 0; }

    /** Throw unless every byte has been consumed. */
    void expectEnd() const;

  private:
    void need(std::size_t count) const;

    std::span<const std::uint8_t> data;
    std::size_t offset = 0;
};

} // namespace authenticache::protocol

#endif // AUTH_PROTOCOL_SERIALIZE_HPP
