#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace authenticache::util {

Table::Table(std::vector<std::string> headers_) : headers(std::move(headers_))
{
}

Table &
Table::row()
{
    rows.emplace_back();
    return *this;
}

Table &
Table::cell(const std::string &value)
{
    rows.back().push_back(value);
    return *this;
}

Table &
Table::cell(const char *value)
{
    return cell(std::string(value));
}

Table &
Table::cell(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return cell(os.str());
}

Table &
Table::cell(std::uint64_t value)
{
    return cell(std::to_string(value));
}

Table &
Table::cell(std::int64_t value)
{
    return cell(std::to_string(value));
}

Table &
Table::cell(int value)
{
    return cell(std::to_string(value));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers.size(), 0);
    for (std::size_t c = 0; c < headers.size(); ++c)
        widths[c] = headers[c].size();
    for (const auto &r : rows) {
        for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], r[c].size());
    }

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            std::string v = c < cells.size() ? cells[c] : "";
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << v;
        }
        os << '\n';
    };

    emit(headers);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto &r : rows)
        emit(r);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << ',';
            os << cells[c];
        }
        os << '\n';
    };
    emit(headers);
    for (const auto &r : rows)
        emit(r);
}

void
printBanner(std::ostream &os, const std::string &title)
{
    os << '\n' << std::string(72, '=') << '\n'
       << title << '\n'
       << std::string(72, '=') << '\n';
}

} // namespace authenticache::util
