#include "util/logging.hpp"

#include <iostream>
#include <mutex>

namespace authenticache::util {

namespace {

LogLevel globalLevel = LogLevel::Warn;
std::mutex logMutex;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info: return "INFO";
      case LogLevel::Warn: return "WARN";
      case LogLevel::Error: return "ERROR";
      case LogLevel::Off: return "OFF";
    }
    return "?";
}

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

void
logMessage(LogLevel level, const std::string &component,
           const std::string &message)
{
    if (level < globalLevel || globalLevel == LogLevel::Off)
        return;
    std::lock_guard<std::mutex> lock(logMutex);
    std::cerr << '[' << levelName(level) << "] " << component << ": "
              << message << '\n';
}

} // namespace authenticache::util
