#include "util/logging.hpp"

#include <atomic>
#include <iostream>
#include <map>

#include "util/mutex.hpp"

namespace authenticache::util {

namespace {

std::atomic<LogLevel> globalLevel{LogLevel::Warn};
Mutex logMutex;

// Per-component overrides. The atomic count lets the common case (no
// overrides anywhere) skip the map lookup and its lock entirely --
// shard workers call logEnabled on every frame. Sanctioned order:
// overrideMutex (level lookup) strictly before logMutex (emission);
// today the two are never nested, and the ACQUIRED_BEFORE keeps any
// future nesting one-directional.
Mutex overrideMutex AUTH_ACQUIRED_BEFORE(logMutex);
std::map<std::string, LogLevel> overrides AUTH_GUARDED_BY(overrideMutex);
std::atomic<std::size_t> overrideCount{0};

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info: return "INFO";
      case LogLevel::Warn: return "WARN";
      case LogLevel::Error: return "ERROR";
      case LogLevel::Off: return "OFF";
    }
    return "?";
}

/**
 * Most specific override for a component: exact name, then each
 * dotted prefix ("a.b.c" -> "a.b" -> "a"). Caller holds overrideMutex.
 */
const LogLevel *
findOverride(const std::string &component) AUTH_REQUIRES(overrideMutex)
{
    std::string name = component;
    while (true) {
        auto it = overrides.find(name);
        if (it != overrides.end())
            return &it->second;
        auto dot = name.rfind('.');
        if (dot == std::string::npos)
            return nullptr;
        name.resize(dot);
    }
}

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return globalLevel.load(std::memory_order_relaxed);
}

void
setLogLevel(const std::string &component, LogLevel level)
{
    MutexLock lock(overrideMutex);
    overrides[component] = level;
    overrideCount.store(overrides.size(), std::memory_order_release);
}

void
clearComponentLogLevels()
{
    MutexLock lock(overrideMutex);
    overrides.clear();
    overrideCount.store(0, std::memory_order_release);
}

LogLevel
logLevel(const std::string &component)
{
    if (overrideCount.load(std::memory_order_acquire) != 0) {
        MutexLock lock(overrideMutex);
        if (const LogLevel *lvl = findOverride(component))
            return *lvl;
    }
    return globalLevel.load(std::memory_order_relaxed);
}

bool
logEnabled(LogLevel level, const std::string &component)
{
    LogLevel threshold = logLevel(component);
    return threshold != LogLevel::Off && level >= threshold;
}

void
logMessage(LogLevel level, const std::string &component,
           const std::string &message)
{
    if (!logEnabled(level, component))
        return;
    MutexLock lock(logMutex);
    std::cerr << '[' << levelName(level) << "] " << component << ": "
              << message << '\n';
}

} // namespace authenticache::util
