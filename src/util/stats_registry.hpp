/**
 * @file
 * Lightweight named-statistics registry, in the spirit of a
 * simulator's stats package: components publish counters/gauges under
 * "component.name" keys, and tools dump them as one table. Collection
 * is pull-based (collectors snapshot live objects into a registry),
 * so the hot paths carry no registry dependency.
 *
 * All operations are thread-safe: the parallel Monte Carlo engine and
 * server sessions publish metrics from pool threads, so the maps are
 * guarded by an internal mutex. Registries are intentionally
 * non-copyable; they are shared sinks, passed by reference.
 */

#ifndef AUTH_UTIL_STATS_REGISTRY_HPP
#define AUTH_UTIL_STATS_REGISTRY_HPP

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>

#include "util/mutex.hpp"

namespace authenticache::util {

class StatsRegistry
{
  public:
    StatsRegistry() = default;
    StatsRegistry(const StatsRegistry &) = delete;
    StatsRegistry &operator=(const StatsRegistry &) = delete;

    /** Set (or overwrite) an integer statistic. */
    void set(const std::string &component, const std::string &name,
             std::uint64_t value) AUTH_EXCLUDES(mutex);

    /** Set (or overwrite) a floating-point statistic. */
    void set(const std::string &component, const std::string &name,
             double value) AUTH_EXCLUDES(mutex);

    /** Add to an integer statistic (creating it at zero). */
    void add(const std::string &component, const std::string &name,
             std::uint64_t delta) AUTH_EXCLUDES(mutex);

    /** Look up an integer statistic. */
    std::optional<std::uint64_t>
    getInt(const std::string &component,
           const std::string &name) const AUTH_EXCLUDES(mutex);

    /** Look up a floating-point statistic. */
    std::optional<double>
    getFloat(const std::string &component,
             const std::string &name) const AUTH_EXCLUDES(mutex);

    std::size_t size() const AUTH_EXCLUDES(mutex);

    void clear() AUTH_EXCLUDES(mutex);

    /** Aligned "component  statistic  value" table, sorted by key. */
    void dump(std::ostream &os) const AUTH_EXCLUDES(mutex);

  private:
    static std::string key(const std::string &component,
                           const std::string &name);

    mutable Mutex mutex;
    std::map<std::string, std::uint64_t> ints AUTH_GUARDED_BY(mutex);
    std::map<std::string, double> floats AUTH_GUARDED_BY(mutex);
};

} // namespace authenticache::util

#endif // AUTH_UTIL_STATS_REGISTRY_HPP
