/**
 * @file
 * Statistics helpers: running moments, histograms, and the binomial
 * machinery used by the PUF identifiability analysis (Eq 3-4 of the
 * paper).
 */

#ifndef AUTH_UTIL_STATS_HPP
#define AUTH_UTIL_STATS_HPP

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace authenticache::util {

/** Streaming mean/variance accumulator (Welford's algorithm). */
class RunningStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Number of observations so far. */
    std::size_t count() const { return n; }

    /** Sample mean; 0 when empty. */
    double mean() const { return n ? m : 0.0; }

    /** Unbiased sample variance; 0 with fewer than two samples. */
    double variance() const;

    /** Unbiased sample standard deviation. */
    double stddev() const;

    /** Smallest observation seen. */
    double min() const { return lo; }

    /** Largest observation seen. */
    double max() const { return hi; }

  private:
    std::size_t n = 0;
    double m = 0.0;
    double s = 0.0;
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-bin histogram over [lo, hi). Values outside the range are
 * clamped into the first/last bin so that tail mass is never lost.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x);

    std::size_t bins() const { return counts.size(); }
    std::uint64_t total() const { return n; }
    std::uint64_t binCount(std::size_t i) const { return counts.at(i); }

    /** Center of bin i. */
    double binCenter(std::size_t i) const;

    /** Fraction of all samples falling in bin i. */
    double binFraction(std::size_t i) const;

    /** Empirical CDF evaluated at x. */
    double cdf(double x) const;

  private:
    double lo;
    double hi;
    std::vector<std::uint64_t> counts;
    std::uint64_t n = 0;
};

/** Natural log of n choose k; exact gamma-based evaluation. */
double logBinomialCoefficient(std::uint64_t n, std::uint64_t k);

/** Binomial PMF P[X = k] for X ~ Bino(n, p). */
double binomialPmf(std::uint64_t n, std::uint64_t k, double p);

/**
 * Cumulative binomial distribution F_bino(k; n, p) = P[X <= k].
 * This is the F_bino of the paper's Eq 3-4. Computed with log-space
 * accumulation so that ppm-scale tails are representable.
 */
double binomialCdf(std::uint64_t n, std::int64_t k, double p);

/** Upper tail P[X > k] computed directly (not as 1 - CDF). */
double binomialSf(std::uint64_t n, std::int64_t k, double p);

/** Standard normal CDF. */
double normalCdf(double x);

/**
 * Exact two-sided binomial-proportion confidence half-width using the
 * normal approximation; convenience for reporting Monte Carlo error.
 */
double proportionConfidence95(double p, std::size_t n);

} // namespace authenticache::util

#endif // AUTH_UTIL_STATS_HPP
