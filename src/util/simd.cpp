#include "util/simd.hpp"

#include <cstdlib>
#include <iostream>

namespace authenticache::util {

const char *
simdLevelName(SimdLevel level)
{
    switch (level) {
    case SimdLevel::Scalar:
        return "scalar";
    case SimdLevel::Sse2:
        return "sse2";
    case SimdLevel::Avx2:
        return "avx2";
    }
    return "scalar";
}

SimdLevel
detectedSimdLevel()
{
#if defined(__x86_64__) && defined(__GNUC__)
    if (__builtin_cpu_supports("avx2"))
        return SimdLevel::Avx2;
    // SSE2 is architecturally guaranteed on x86-64.
    return SimdLevel::Sse2;
#else
    return SimdLevel::Scalar;
#endif
}

namespace detail {

SimdLevel
resolveSimdLevel(const char *override_name, SimdLevel detected,
                 bool *clamped, bool *unrecognized)
{
    if (clamped)
        *clamped = false;
    if (unrecognized)
        *unrecognized = false;
    if (override_name == nullptr || override_name[0] == '\0')
        return detected;

    const std::string name(override_name);
    SimdLevel requested;
    if (name == "scalar")
        requested = SimdLevel::Scalar;
    else if (name == "sse2")
        requested = SimdLevel::Sse2;
    else if (name == "avx2")
        requested = SimdLevel::Avx2;
    else {
        if (unrecognized)
            *unrecognized = true;
        return detected;
    }

    if (requested > detected) {
        if (clamped)
            *clamped = true;
        return detected;
    }
    return requested;
}

} // namespace detail

SimdLevel
simdLevel()
{
    static const SimdLevel chosen = [] {
        const char *env = std::getenv("AUTHENTICACHE_SIMD");
        bool clamped = false;
        bool unrecognized = false;
        SimdLevel level = detail::resolveSimdLevel(
            env, detectedSimdLevel(), &clamped, &unrecognized);
        if (unrecognized) {
            std::cerr << "[authenticache] AUTHENTICACHE_SIMD=\"" << env
                      << "\" is not one of scalar/sse2/avx2; using "
                      << simdLevelName(level) << "\n";
        } else if (clamped) {
            std::cerr << "[authenticache] AUTHENTICACHE_SIMD=\"" << env
                      << "\" is not supported by this CPU; clamped to "
                      << simdLevelName(level) << "\n";
        }
        return level;
    }();
    return chosen;
}

std::vector<SimdLevel>
supportedSimdLevels()
{
    std::vector<SimdLevel> levels{SimdLevel::Scalar};
    SimdLevel widest = detectedSimdLevel();
    if (widest >= SimdLevel::Sse2)
        levels.push_back(SimdLevel::Sse2);
    if (widest >= SimdLevel::Avx2)
        levels.push_back(SimdLevel::Avx2);
    return levels;
}

} // namespace authenticache::util
