#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace authenticache::util {

void
RunningStats::add(double x)
{
    ++n;
    double delta = x - m;
    m += delta / static_cast<double>(n);
    s += delta * (x - m);
    lo = std::min(lo, x);
    hi = std::max(hi, x);
}

double
RunningStats::variance() const
{
    if (n < 2)
        return 0.0;
    return s / static_cast<double>(n - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo_, double hi_, std::size_t bins)
    : lo(lo_), hi(hi_), counts(bins, 0)
{
    assert(bins > 0 && hi > lo);
}

void
Histogram::add(double x)
{
    double t = (x - lo) / (hi - lo);
    auto i = static_cast<std::int64_t>(t * static_cast<double>(bins()));
    i = std::clamp<std::int64_t>(i, 0,
                                 static_cast<std::int64_t>(bins()) - 1);
    ++counts[static_cast<std::size_t>(i)];
    ++n;
}

double
Histogram::binCenter(std::size_t i) const
{
    double w = (hi - lo) / static_cast<double>(bins());
    return lo + (static_cast<double>(i) + 0.5) * w;
}

double
Histogram::binFraction(std::size_t i) const
{
    if (n == 0)
        return 0.0;
    return static_cast<double>(counts.at(i)) / static_cast<double>(n);
}

double
Histogram::cdf(double x) const
{
    if (n == 0)
        return 0.0;
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < bins(); ++i) {
        if (binCenter(i) <= x)
            acc += counts[i];
    }
    return static_cast<double>(acc) / static_cast<double>(n);
}

double
logBinomialCoefficient(std::uint64_t n, std::uint64_t k)
{
    if (k > n)
        return -std::numeric_limits<double>::infinity();
    return std::lgamma(static_cast<double>(n) + 1.0) -
           std::lgamma(static_cast<double>(k) + 1.0) -
           std::lgamma(static_cast<double>(n - k) + 1.0);
}

double
binomialPmf(std::uint64_t n, std::uint64_t k, double p)
{
    if (k > n)
        return 0.0;
    if (p <= 0.0)
        return k == 0 ? 1.0 : 0.0;
    if (p >= 1.0)
        return k == n ? 1.0 : 0.0;
    double lp = logBinomialCoefficient(n, k) +
                static_cast<double>(k) * std::log(p) +
                static_cast<double>(n - k) * std::log1p(-p);
    return std::exp(lp);
}

double
binomialCdf(std::uint64_t n, std::int64_t k, double p)
{
    if (k < 0)
        return 0.0;
    auto ku = static_cast<std::uint64_t>(k);
    if (ku >= n)
        return 1.0;
    // Sum the smaller tail for accuracy.
    double mean = static_cast<double>(n) * p;
    if (static_cast<double>(ku) < mean) {
        double acc = 0.0;
        for (std::uint64_t i = 0; i <= ku; ++i)
            acc += binomialPmf(n, i, p);
        return std::min(acc, 1.0);
    }
    double acc = 0.0;
    for (std::uint64_t i = ku + 1; i <= n; ++i)
        acc += binomialPmf(n, i, p);
    return std::max(0.0, 1.0 - acc);
}

double
binomialSf(std::uint64_t n, std::int64_t k, double p)
{
    if (k < 0)
        return 1.0;
    auto ku = static_cast<std::uint64_t>(k);
    if (ku >= n)
        return 0.0;
    double mean = static_cast<double>(n) * p;
    if (static_cast<double>(ku) >= mean) {
        double acc = 0.0;
        for (std::uint64_t i = ku + 1; i <= n; ++i)
            acc += binomialPmf(n, i, p);
        return std::min(acc, 1.0);
    }
    double acc = 0.0;
    for (std::uint64_t i = 0; i <= ku; ++i)
        acc += binomialPmf(n, i, p);
    return std::max(0.0, 1.0 - acc);
}

double
normalCdf(double x)
{
    return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double
proportionConfidence95(double p, std::size_t n)
{
    if (n == 0)
        return 1.0;
    return 1.96 * std::sqrt(p * (1.0 - p) / static_cast<double>(n));
}

} // namespace authenticache::util
