#include "util/crc32.hpp"

#include <array>

namespace authenticache::util {

namespace {

std::array<std::uint32_t, 256>
makeTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

const std::array<std::uint32_t, 256> kTable = makeTable();

} // namespace

std::uint32_t
crc32Update(std::uint32_t crc, std::span<const std::uint8_t> data)
{
    std::uint32_t c = crc ^ 0xFFFFFFFFu;
    for (auto b : data)
        c = kTable[(c ^ b) & 0xFF] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

std::uint32_t
crc32(std::span<const std::uint8_t> data)
{
    return crc32Update(0, data);
}

} // namespace authenticache::util
