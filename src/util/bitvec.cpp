#include "util/bitvec.hpp"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace authenticache::util {

namespace {

constexpr std::size_t kWordBits = 64;

inline std::size_t
wordsFor(std::size_t nbits)
{
    return (nbits + kWordBits - 1) / kWordBits;
}

} // namespace

BitVec::BitVec(std::size_t nbits_) : data(wordsFor(nbits_), 0), nbits(nbits_)
{
}

bool
BitVec::get(std::size_t i) const
{
    assert(i < nbits);
    return (data[i / kWordBits] >> (i % kWordBits)) & 1ull;
}

void
BitVec::set(std::size_t i, bool v)
{
    assert(i < nbits);
    std::uint64_t mask = 1ull << (i % kWordBits);
    if (v)
        data[i / kWordBits] |= mask;
    else
        data[i / kWordBits] &= ~mask;
}

void
BitVec::pushBack(bool v)
{
    if (nbits % kWordBits == 0)
        data.push_back(0);
    ++nbits;
    set(nbits - 1, v);
}

std::size_t
BitVec::popcount() const
{
    std::size_t acc = 0;
    for (auto w : data)
        acc += static_cast<std::size_t>(std::popcount(w));
    return acc;
}

std::size_t
BitVec::hammingDistance(const BitVec &other) const
{
    assert(nbits == other.nbits);
    std::size_t acc = 0;
    for (std::size_t i = 0; i < data.size(); ++i)
        acc += static_cast<std::size_t>(std::popcount(data[i] ^
                                                      other.data[i]));
    return acc;
}

BitVec
BitVec::operator^(const BitVec &other) const
{
    assert(nbits == other.nbits);
    BitVec out(nbits);
    for (std::size_t i = 0; i < data.size(); ++i)
        out.data[i] = data[i] ^ other.data[i];
    return out;
}

void
BitVec::flip(std::size_t i)
{
    assert(i < nbits);
    data[i / kWordBits] ^= 1ull << (i % kWordBits);
}

void
BitVec::clear()
{
    for (auto &w : data)
        w = 0;
}

std::string
BitVec::toString() const
{
    std::string s;
    s.reserve(nbits);
    for (std::size_t i = 0; i < nbits; ++i)
        s.push_back(get(i) ? '1' : '0');
    return s;
}

BitVec
BitVec::fromString(const std::string &s)
{
    BitVec v(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] == '1')
            v.set(i, true);
        else if (s[i] != '0')
            throw std::invalid_argument("BitVec: bad character");
    }
    return v;
}

BitVec
BitVec::fromWords(std::vector<std::uint64_t> words, std::size_t nbits)
{
    if (words.size() != wordsFor(nbits))
        throw std::invalid_argument("BitVec: word count mismatch");
    BitVec v;
    v.data = std::move(words);
    v.nbits = nbits;
    v.maskTail();
    return v;
}

void
BitVec::maskTail()
{
    std::size_t rem = nbits % kWordBits;
    if (rem != 0 && !data.empty())
        data.back() &= (~0ull >> (kWordBits - rem));
}

} // namespace authenticache::util
