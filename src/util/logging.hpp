/**
 * @file
 * Minimal leveled logger. Firmware modules log state transitions so
 * integration tests and examples can narrate what the simulated machine
 * is doing; everything defaults to warnings-only so test output stays
 * quiet.
 *
 * Levels can be overridden per component: setLogLevel("server",
 * LogLevel::Debug) turns on shard-level server tracing without
 * drowning the output in firmware logs. Component names are
 * hierarchical with '.' separators; a component without its own
 * override inherits the nearest dotted prefix ("server.sessions"
 * falls back to "server"), then the global threshold.
 */

#ifndef AUTH_UTIL_LOGGING_HPP
#define AUTH_UTIL_LOGGING_HPP

#include <sstream>
#include <string>

namespace authenticache::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/** Global log threshold; messages below it are dropped. */
void setLogLevel(LogLevel level);
LogLevel logLevel();

/** Per-component threshold override (hierarchical, '.'-separated). */
void setLogLevel(const std::string &component, LogLevel level);

/** Effective threshold for a component (override, prefix, global). */
LogLevel logLevel(const std::string &component);

/** Remove every per-component override (tests). */
void clearComponentLogLevels();

/**
 * Would a message at @p level for @p component be emitted? Cheap when
 * no per-component override exists (one atomic load), so hot paths
 * can guard expensive message formatting with it.
 */
bool logEnabled(LogLevel level, const std::string &component);

/** Emit one log line (already formatted) at the given level. */
void logMessage(LogLevel level, const std::string &component,
                const std::string &message);

/** Stream-style helper: LogStream(level, "sim") << "x=" << 3; */
class LogStream
{
  public:
    LogStream(LogLevel message_level, std::string component_name)
        : level(message_level), component(std::move(component_name)),
          enabled(logEnabled(message_level, component))
    {
    }

    ~LogStream()
    {
        if (enabled)
            logMessage(level, component, os.str());
    }

    LogStream(const LogStream &) = delete;
    LogStream &operator=(const LogStream &) = delete;

    template <typename T>
    LogStream &
    operator<<(const T &v)
    {
        if (enabled)
            os << v;
        return *this;
    }

  private:
    LogLevel level;
    std::string component;
    bool enabled;
    std::ostringstream os;
};

} // namespace authenticache::util

#define AUTH_LOG_DEBUG(component)                                          \
    ::authenticache::util::LogStream(                                      \
        ::authenticache::util::LogLevel::Debug, component)
#define AUTH_LOG_INFO(component)                                           \
    ::authenticache::util::LogStream(                                      \
        ::authenticache::util::LogLevel::Info, component)
#define AUTH_LOG_WARN(component)                                           \
    ::authenticache::util::LogStream(                                      \
        ::authenticache::util::LogLevel::Warn, component)
#define AUTH_LOG_ERROR(component)                                          \
    ::authenticache::util::LogStream(                                      \
        ::authenticache::util::LogLevel::Error, component)

#endif // AUTH_UTIL_LOGGING_HPP
