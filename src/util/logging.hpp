/**
 * @file
 * Minimal leveled logger. Firmware modules log state transitions so
 * integration tests and examples can narrate what the simulated machine
 * is doing; everything defaults to warnings-only so test output stays
 * quiet.
 */

#ifndef AUTH_UTIL_LOGGING_HPP
#define AUTH_UTIL_LOGGING_HPP

#include <sstream>
#include <string>

namespace authenticache::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/** Global log threshold; messages below it are dropped. */
void setLogLevel(LogLevel level);
LogLevel logLevel();

/** Emit one log line (already formatted) at the given level. */
void logMessage(LogLevel level, const std::string &component,
                const std::string &message);

/** Stream-style helper: LogStream(level, "sim") << "x=" << 3; */
class LogStream
{
  public:
    LogStream(LogLevel message_level, std::string component_name)
        : level(message_level), component(std::move(component_name))
    {
    }

    ~LogStream() { logMessage(level, component, os.str()); }

    LogStream(const LogStream &) = delete;
    LogStream &operator=(const LogStream &) = delete;

    template <typename T>
    LogStream &
    operator<<(const T &v)
    {
        os << v;
        return *this;
    }

  private:
    LogLevel level;
    std::string component;
    std::ostringstream os;
};

} // namespace authenticache::util

#define AUTH_LOG_DEBUG(component)                                          \
    ::authenticache::util::LogStream(                                      \
        ::authenticache::util::LogLevel::Debug, component)
#define AUTH_LOG_INFO(component)                                           \
    ::authenticache::util::LogStream(                                      \
        ::authenticache::util::LogLevel::Info, component)
#define AUTH_LOG_WARN(component)                                           \
    ::authenticache::util::LogStream(                                      \
        ::authenticache::util::LogLevel::Warn, component)
#define AUTH_LOG_ERROR(component)                                          \
    ::authenticache::util::LogStream(                                      \
        ::authenticache::util::LogLevel::Error, component)

#endif // AUTH_UTIL_LOGGING_HPP
