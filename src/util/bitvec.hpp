/**
 * @file
 * Compact dynamic bit vector with Hamming-weight helpers.
 *
 * PUF responses and error-map planes are bit strings whose dominant
 * operations are XOR and popcount; std::vector<bool> supports neither
 * efficiently, hence this type.
 */

#ifndef AUTH_UTIL_BITVEC_HPP
#define AUTH_UTIL_BITVEC_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace authenticache::util {

/** Fixed-length bit vector backed by 64-bit words. */
class BitVec
{
  public:
    BitVec() = default;

    /** All-zero vector of the given length in bits. */
    explicit BitVec(std::size_t nbits);

    std::size_t size() const { return nbits; }
    bool empty() const { return nbits == 0; }

    bool get(std::size_t i) const;
    void set(std::size_t i, bool v);

    /** Append one bit, growing the vector. */
    void pushBack(bool v);

    /** Number of set bits. */
    std::size_t popcount() const;

    /** Hamming distance; both vectors must have equal length. */
    std::size_t hammingDistance(const BitVec &other) const;

    /** Bitwise XOR; both vectors must have equal length. */
    BitVec operator^(const BitVec &other) const;

    bool operator==(const BitVec &other) const = default;

    /** Flip bit i in place. */
    void flip(std::size_t i);

    /** Set all bits to zero, keeping the length. */
    void clear();

    /** "0"/"1" string, bit 0 first; for debugging and golden tests. */
    std::string toString() const;

    /** Parse from a "0"/"1" string. */
    static BitVec fromString(const std::string &s);

    /** Access to backing words (for serialization). */
    const std::vector<std::uint64_t> &words() const { return data; }

    /** Rebuild from raw words + bit count (for deserialization). */
    static BitVec fromWords(std::vector<std::uint64_t> words,
                            std::size_t nbits);

  private:
    void maskTail();

    std::vector<std::uint64_t> data;
    std::size_t nbits = 0;
};

} // namespace authenticache::util

#endif // AUTH_UTIL_BITVEC_HPP
