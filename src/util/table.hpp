/**
 * @file
 * Aligned-table and CSV emitters used by the benchmark harness to print
 * the paper's figure/table series in a uniform way.
 */

#ifndef AUTH_UTIL_TABLE_HPP
#define AUTH_UTIL_TABLE_HPP

#include <iosfwd>
#include <string>
#include <vector>

namespace authenticache::util {

/**
 * Column-aligned text table. Cells are strings; numeric convenience
 * overloads format with a fixed precision.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Begin a new row. */
    Table &row();

    /** Append a cell to the current row. */
    Table &cell(const std::string &value);
    Table &cell(const char *value);
    Table &cell(double value, int precision = 3);
    Table &cell(std::uint64_t value);
    Table &cell(std::int64_t value);
    Table &cell(int value);

    /** Render with aligned columns to the stream. */
    void print(std::ostream &os) const;

    /** Render as CSV (comma separated, header first). */
    void printCsv(std::ostream &os) const;

    std::size_t rowCount() const { return rows.size(); }

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
};

/** Print a section banner for bench output. */
void printBanner(std::ostream &os, const std::string &title);

} // namespace authenticache::util

#endif // AUTH_UTIL_TABLE_HPP
