/**
 * @file
 * Simulated step clock shared by the reliability layer.
 *
 * All protocol timing (channel delivery delays, client retry timeouts
 * and backoff, server session deadlines) is expressed in abstract
 * *steps* of one shared SimClock rather than wall-clock time, so every
 * fault schedule and retry interleaving is replayable bit-for-bit and
 * tests never sleep. A step corresponds to one iteration of the
 * exchange driver loop (see server::runExchangeSteps).
 */

#ifndef AUTH_UTIL_SIM_CLOCK_HPP
#define AUTH_UTIL_SIM_CLOCK_HPP

#include <cstdint>

namespace authenticache::util {

/** Monotonic step counter; the only time source of the protocol. */
class SimClock
{
  public:
    std::uint64_t now() const { return tick; }

    void advance(std::uint64_t steps = 1) { tick += steps; }

  private:
    std::uint64_t tick = 0;
};

} // namespace authenticache::util

#endif // AUTH_UTIL_SIM_CLOCK_HPP
