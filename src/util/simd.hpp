/**
 * @file
 * Runtime SIMD capability detection and width selection.
 *
 * The hot kernels (core::nearestErrorScan, ecc::SecdedCodec batch
 * encode/decode) ship scalar, SSE2, and AVX2 implementations that
 * produce bit-identical results; the widest instruction set the CPU
 * supports is selected once at startup. Every kernel also accepts an
 * explicit SimdLevel so tests and benchmarks can pin a width.
 *
 * The environment variable AUTHENTICACHE_SIMD overrides the choice
 * ("scalar", "sse2", or "avx2", case-sensitive); a request the CPU
 * cannot honor is clamped down to the widest supported level with a
 * one-time warning on stderr. This is how CI exercises every code
 * path on one machine and how a production fleet can pin a width
 * across heterogeneous hardware.
 *
 * Determinism contract: the selected width never changes results --
 * the bit-identical replay, fault-sweep, and determinism-lint suites
 * pass identically at every level (tests/test_simd_dispatch.cpp and
 * the differential fuzz in tests/test_nearest_scan.cpp enforce it).
 */

#ifndef AUTH_UTIL_SIMD_HPP
#define AUTH_UTIL_SIMD_HPP

#include <string>
#include <vector>

namespace authenticache::util {

/** Kernel instruction-set width, narrowest to widest. */
enum class SimdLevel
{
    Scalar, ///< Portable C++; always available.
    Sse2,   ///< 128-bit integer SIMD (x86-64 baseline).
    Avx2,   ///< 256-bit integer SIMD.
};

/** Canonical lowercase name ("scalar", "sse2", "avx2"). */
const char *simdLevelName(SimdLevel level);

/** The widest level this CPU supports (no env override applied). */
SimdLevel detectedSimdLevel();

/**
 * The level hot-path kernels dispatch to by default: the detected
 * level, overridden (and clamped to what the CPU supports) by
 * AUTHENTICACHE_SIMD. Resolved once and cached for the process.
 */
SimdLevel simdLevel();

/** All levels this CPU can run, narrowest first (always >= 1). */
std::vector<SimdLevel> supportedSimdLevels();

namespace detail {

/**
 * Pure resolution of an override string against a detected level:
 * empty/null keeps @p detected; a recognized name is clamped to
 * @p detected; an unrecognized name keeps @p detected. Out-params
 * report clamping/parse failure so callers can warn. Exposed
 * separately from the cached simdLevel() so tests can drive every
 * branch without re-execing the process.
 */
SimdLevel resolveSimdLevel(const char *override_name,
                           SimdLevel detected, bool *clamped,
                           bool *unrecognized);

} // namespace detail

} // namespace authenticache::util

#endif // AUTH_UTIL_SIMD_HPP
