#include "util/stats_registry.hpp"

#include <ostream>

#include "util/table.hpp"

namespace authenticache::util {

std::string
StatsRegistry::key(const std::string &component,
                   const std::string &name)
{
    return component + "." + name;
}

void
StatsRegistry::set(const std::string &component,
                   const std::string &name, std::uint64_t value)
{
    ints[key(component, name)] = value;
}

void
StatsRegistry::set(const std::string &component,
                   const std::string &name, double value)
{
    floats[key(component, name)] = value;
}

void
StatsRegistry::add(const std::string &component,
                   const std::string &name, std::uint64_t delta)
{
    ints[key(component, name)] += delta;
}

std::optional<std::uint64_t>
StatsRegistry::getInt(const std::string &component,
                      const std::string &name) const
{
    auto it = ints.find(key(component, name));
    if (it == ints.end())
        return std::nullopt;
    return it->second;
}

std::optional<double>
StatsRegistry::getFloat(const std::string &component,
                        const std::string &name) const
{
    auto it = floats.find(key(component, name));
    if (it == floats.end())
        return std::nullopt;
    return it->second;
}

void
StatsRegistry::clear()
{
    ints.clear();
    floats.clear();
}

void
StatsRegistry::dump(std::ostream &os) const
{
    Table table({"statistic", "value"});
    for (const auto &[k, v] : ints)
        table.row().cell(k).cell(v);
    for (const auto &[k, v] : floats)
        table.row().cell(k).cell(v, 3);
    table.print(os);
}

} // namespace authenticache::util
