#include "util/stats_registry.hpp"

#include <ostream>

#include "util/table.hpp"

namespace authenticache::util {

std::string
StatsRegistry::key(const std::string &component,
                   const std::string &name)
{
    return component + "." + name;
}

void
StatsRegistry::set(const std::string &component,
                   const std::string &name, std::uint64_t value)
{
    MutexLock lock(mutex);
    ints[key(component, name)] = value;
}

void
StatsRegistry::set(const std::string &component,
                   const std::string &name, double value)
{
    MutexLock lock(mutex);
    floats[key(component, name)] = value;
}

void
StatsRegistry::add(const std::string &component,
                   const std::string &name, std::uint64_t delta)
{
    MutexLock lock(mutex);
    ints[key(component, name)] += delta;
}

std::optional<std::uint64_t>
StatsRegistry::getInt(const std::string &component,
                      const std::string &name) const
{
    MutexLock lock(mutex);
    auto it = ints.find(key(component, name));
    if (it == ints.end())
        return std::nullopt;
    return it->second;
}

std::optional<double>
StatsRegistry::getFloat(const std::string &component,
                        const std::string &name) const
{
    MutexLock lock(mutex);
    auto it = floats.find(key(component, name));
    if (it == floats.end())
        return std::nullopt;
    return it->second;
}

std::size_t
StatsRegistry::size() const
{
    MutexLock lock(mutex);
    return ints.size() + floats.size();
}

void
StatsRegistry::clear()
{
    MutexLock lock(mutex);
    ints.clear();
    floats.clear();
}

void
StatsRegistry::dump(std::ostream &os) const
{
    // Snapshot under the lock, format outside it: streaming into os
    // can block arbitrarily and must not extend the critical section.
    std::map<std::string, std::uint64_t> int_snap;
    std::map<std::string, double> float_snap;
    {
        MutexLock lock(mutex);
        int_snap = ints;
        float_snap = floats;
    }
    Table table({"statistic", "value"});
    for (const auto &[k, v] : int_snap)
        table.row().cell(k).cell(v);
    for (const auto &[k, v] : float_snap)
        table.row().cell(k).cell(v, 3);
    table.print(os);
}

} // namespace authenticache::util
