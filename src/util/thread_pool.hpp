/**
 * @file
 * Deterministic fork-join execution for the Monte Carlo engine.
 *
 * A ThreadPool owns a fixed set of worker threads and exposes
 * parallelFor / parallelReduce over an index range. Determinism is a
 * contract, not an accident: callers derive all per-shard randomness
 * from the shard *index* (see util::Rng::forStream) and write results
 * into index-addressed slots, so the outcome is bit-identical whether
 * the indices run on 1 thread or 64. The pool only changes wall-clock
 * time, never results.
 *
 * The calling thread participates in every batch, so ThreadPool(1)
 * spawns no workers and runs inline, and threadCount() counts the
 * caller.
 */

#ifndef AUTH_UTIL_THREAD_POOL_HPP
#define AUTH_UTIL_THREAD_POOL_HPP

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/mutex.hpp"

namespace authenticache::util {

class ThreadPool
{
  public:
    /**
     * @param threads Total execution width including the caller;
     *        0 means defaultThreadCount().
     */
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Execution width, caller included. */
    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers.size()) + 1;
    }

    /**
     * Run body(i) for every i in [0, count); blocks until all indices
     * complete. Indices are claimed dynamically, so shards need not be
     * equal-cost; the body must only depend on its index (plus shared
     * read-only state) for results to be schedule-independent. The
     * first exception thrown by any shard is rethrown here after the
     * batch drains.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &body)
        AUTH_EXCLUDES(mutex);

    /**
     * Map every index to a T, then fold the per-index results *in
     * index order* (so floating-point reductions are deterministic).
     *
     * combine is called as combine(acc, partial[i]) for i ascending.
     */
    template <typename T, typename MapFn, typename CombineFn>
    T
    parallelReduce(std::size_t count, T init, MapFn mapFn,
                   CombineFn combineFn)
    {
        std::vector<T> partial(count);
        parallelFor(count, [&](std::size_t i) { partial[i] = mapFn(i); });
        T acc = std::move(init);
        for (std::size_t i = 0; i < count; ++i)
            acc = combineFn(std::move(acc), std::move(partial[i]));
        return acc;
    }

    /**
     * Execution width when none is requested: AUTHENTICACHE_THREADS
     * if set to a positive integer, else the hardware concurrency
     * (minimum 1).
     */
    static unsigned defaultThreadCount();

    /** Shared process-wide pool at the default width. */
    static ThreadPool &global();

  private:
    /** One parallelFor invocation; workers hold their own reference
     *  so a stale worker can never claim indices of a later batch. */
    struct Batch
    {
        /** Immutable after publication (set before the batch becomes
         *  visible to any worker), so not lock-guarded. */
        // LINT:allow(lock-annotation)
        const std::function<void(std::size_t)> *body = nullptr;
        std::size_t count = 0; // LINT:allow(lock-annotation)
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> finished{0};
        std::atomic<bool> failed{false};
        Mutex errorMutex;
        std::exception_ptr error AUTH_GUARDED_BY(errorMutex);
        Mutex doneMutex;
        CondVar doneCv;

        void run();
        void wait() AUTH_EXCLUDES(doneMutex);
    };

    void workerLoop() AUTH_EXCLUDES(mutex);

    std::vector<std::thread> workers;
    Mutex mutex;
    CondVar wake;
    std::shared_ptr<Batch> current AUTH_GUARDED_BY(mutex);
    bool stopping AUTH_GUARDED_BY(mutex) = false;
};

} // namespace authenticache::util

#endif // AUTH_UTIL_THREAD_POOL_HPP
