/**
 * @file
 * Annotated mutex wrappers for Clang Thread Safety Analysis.
 *
 * Every lock in the project goes through these types instead of raw
 * std::mutex / std::shared_mutex, so the lock discipline -- which
 * fields a mutex guards, which methods require it held, which must be
 * called without it -- is stated in the type system and checked at
 * compile time by Clang's -Wthread-safety. Under GCC (and any other
 * compiler without the capability attributes) the macros expand to
 * nothing and the wrappers are zero-cost shims over the std types, so
 * the annotated build is byte-for-byte the plain build.
 *
 * Conventions (see DESIGN.md section 5g):
 *  - data members guarded by a lock carry AUTH_GUARDED_BY(mu);
 *  - methods whose caller must already hold the lock carry
 *    AUTH_REQUIRES(mu) -- capability expressions may name a
 *    parameter's lock, e.g. AUTH_REQUIRES(sh.mutex);
 *  - methods that take the lock themselves carry AUTH_EXCLUDES(mu) so
 *    re-entrant callers are rejected instead of deadlocking;
 *  - fixed acquisition orders are declared with AUTH_ACQUIRED_BEFORE /
 *    AUTH_ACQUIRED_AFTER on the mutex declarations themselves;
 *  - a `mutable Mutex` on a const read API that locks internally is
 *    idiomatic, NOT a workaround; const_cast around locking is.
 */

#ifndef AUTH_UTIL_MUTEX_HPP
#define AUTH_UTIL_MUTEX_HPP

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// Attribute shims, modeled on Abseil's thread_annotations.h. Clang
// understands the capability attributes; everything else sees no-ops.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define AUTH_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef AUTH_THREAD_ANNOTATION
#define AUTH_THREAD_ANNOTATION(x) // no-op outside Clang
#endif

#define AUTH_CAPABILITY(x) AUTH_THREAD_ANNOTATION(capability(x))
#define AUTH_SCOPED_CAPABILITY AUTH_THREAD_ANNOTATION(scoped_lockable)
#define AUTH_GUARDED_BY(x) AUTH_THREAD_ANNOTATION(guarded_by(x))
#define AUTH_PT_GUARDED_BY(x) AUTH_THREAD_ANNOTATION(pt_guarded_by(x))
#define AUTH_ACQUIRED_BEFORE(...)                                           \
    AUTH_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define AUTH_ACQUIRED_AFTER(...)                                            \
    AUTH_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define AUTH_REQUIRES(...)                                                  \
    AUTH_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define AUTH_REQUIRES_SHARED(...)                                           \
    AUTH_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define AUTH_ACQUIRE(...)                                                   \
    AUTH_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define AUTH_ACQUIRE_SHARED(...)                                            \
    AUTH_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define AUTH_RELEASE(...)                                                   \
    AUTH_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define AUTH_RELEASE_SHARED(...)                                            \
    AUTH_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define AUTH_TRY_ACQUIRE(...)                                               \
    AUTH_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define AUTH_EXCLUDES(...) AUTH_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define AUTH_ASSERT_CAPABILITY(x)                                           \
    AUTH_THREAD_ANNOTATION(assert_capability(x))
#define AUTH_RETURN_CAPABILITY(x)                                           \
    AUTH_THREAD_ANNOTATION(lock_returned(x))
#define AUTH_NO_THREAD_SAFETY_ANALYSIS                                      \
    AUTH_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace authenticache::util {

/** Exclusive mutex; a Clang "capability" the analysis can track. */
class AUTH_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() AUTH_ACQUIRE() { m.lock(); }
    void unlock() AUTH_RELEASE() { m.unlock(); }
    bool try_lock() AUTH_TRY_ACQUIRE(true) { return m.try_lock(); }

  private:
    friend class CondVar;
    std::mutex m;
};

/** RAII exclusive lock over a Mutex (the std::lock_guard analogue). */
class AUTH_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex) AUTH_ACQUIRE(mutex) : mu(mutex)
    {
        mu.lock();
    }
    ~MutexLock() AUTH_RELEASE() { mu.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mu;
};

/** Reader/writer mutex capability over std::shared_mutex. */
class AUTH_CAPABILITY("shared_mutex") SharedMutex
{
  public:
    SharedMutex() = default;
    SharedMutex(const SharedMutex &) = delete;
    SharedMutex &operator=(const SharedMutex &) = delete;

    void lock() AUTH_ACQUIRE() { m.lock(); }
    void unlock() AUTH_RELEASE() { m.unlock(); }
    void lock_shared() AUTH_ACQUIRE_SHARED() { m.lock_shared(); }
    void unlock_shared() AUTH_RELEASE_SHARED() { m.unlock_shared(); }

  private:
    std::shared_mutex m;
};

/** RAII exclusive (writer) lock over a SharedMutex. */
class AUTH_SCOPED_CAPABILITY SharedMutexLock
{
  public:
    explicit SharedMutexLock(SharedMutex &mutex) AUTH_ACQUIRE(mutex)
        : mu(mutex)
    {
        mu.lock();
    }
    ~SharedMutexLock() AUTH_RELEASE() { mu.unlock(); }

    SharedMutexLock(const SharedMutexLock &) = delete;
    SharedMutexLock &operator=(const SharedMutexLock &) = delete;

  private:
    SharedMutex &mu;
};

/** RAII shared (reader) lock over a SharedMutex. */
class AUTH_SCOPED_CAPABILITY SharedReaderLock
{
  public:
    explicit SharedReaderLock(SharedMutex &mutex)
        AUTH_ACQUIRE_SHARED(mutex)
        : mu(mutex)
    {
        mu.lock_shared();
    }
    ~SharedReaderLock() AUTH_RELEASE() { mu.unlock_shared(); }

    SharedReaderLock(const SharedReaderLock &) = delete;
    SharedReaderLock &operator=(const SharedReaderLock &) = delete;

  private:
    SharedMutex &mu;
};

/**
 * Condition variable paired with util::Mutex. wait() is annotated
 * REQUIRES(mu), so the predicate re-check loop around it is analyzed
 * with the lock held -- write the loop in the caller:
 *
 *   MutexLock lock(mu);
 *   while (!ready)
 *       cv.wait(mu);
 *
 * (No predicate overload on purpose: a lambda predicate is analyzed
 * as a separate unannotated function and would defeat the checking of
 * the guarded fields it reads.)
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /** Atomically release @p mu, sleep, and re-acquire before return. */
    void
    wait(Mutex &mu) AUTH_REQUIRES(mu)
    {
        std::unique_lock<std::mutex> native(mu.m, std::adopt_lock);
        cv.wait(native);
        native.release(); // Ownership stays with the caller's scope.
    }

    void notify_one() { cv.notify_one(); }
    void notify_all() { cv.notify_all(); }

  private:
    std::condition_variable cv;
};

} // namespace authenticache::util

#endif // AUTH_UTIL_MUTEX_HPP
