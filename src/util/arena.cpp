#include "util/arena.hpp"

#include <algorithm>

namespace authenticache::util {

namespace {

constexpr std::size_t kMinBlock = 256;

std::size_t
roundUp(std::size_t value, std::size_t align)
{
    return (value + align - 1) & ~(align - 1);
}

} // namespace

Arena::Arena(std::size_t initial_bytes)
{
    Block b;
    b.size = std::max(initial_bytes, kMinBlock);
    b.data = std::make_unique<std::byte[]>(b.size);
    blocks.push_back(std::move(b));
}

void *
Arena::allocateBytes(std::size_t bytes, std::size_t align)
{
    Block *b = &blocks.back();
    std::size_t at = roundUp(b->offset, align);
    if (at + bytes > b->size) {
        // Overflow: chain a block big enough for this allocation and
        // at least double the previous block, amortizing growth.
        Block next;
        next.size = std::max(b->size * 2, roundUp(bytes, 64));
        next.data = std::make_unique<std::byte[]>(next.size);
        blocks.push_back(std::move(next));
        b = &blocks.back();
        at = 0;
    }
    b->offset = at + bytes;
    used += bytes;
    return b->data.get() + at;
}

void
Arena::reset()
{
    if (blocks.size() > 1) {
        // Consolidate to one block covering the observed peak so the
        // next cycle never overflows.
        std::size_t total = 0;
        for (const auto &b : blocks)
            total += b.size;
        blocks.clear();
        Block b;
        b.size = total;
        b.data = std::make_unique<std::byte[]>(b.size);
        blocks.push_back(std::move(b));
    } else {
        blocks.back().offset = 0;
    }
    used = 0;
}

std::size_t
Arena::capacity() const
{
    std::size_t total = 0;
    for (const auto &b : blocks)
        total += b.size;
    return total;
}

} // namespace authenticache::util
