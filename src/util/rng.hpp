/**
 * @file
 * Deterministic random number generation for simulation and Monte Carlo.
 *
 * All randomness in the repository flows through Rng so that every
 * experiment is reproducible from a single 64-bit seed. The generator is
 * xoshiro256** seeded through SplitMix64, which is the recommended
 * seeding procedure from the xoshiro authors.
 */

#ifndef AUTH_UTIL_RNG_HPP
#define AUTH_UTIL_RNG_HPP

#include <array>
#include <cstdint>
#include <vector>

namespace authenticache::util {

/** SplitMix64 stream; used for seeding and cheap hashing of seeds. */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state(seed) {}

    /** Next 64-bit value in the stream. */
    std::uint64_t next();

  private:
    std::uint64_t state;
};

/**
 * xoshiro256** pseudo random generator.
 *
 * Satisfies the UniformRandomBitGenerator concept so it can be used with
 * standard library distributions, but the member helpers below are
 * preferred because their results are stable across standard library
 * implementations.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed via SplitMix64 expansion. */
    explicit Rng(std::uint64_t seed = 0xA0C4EC17ull);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ull; }

    /** Raw 64 random bits. */
    result_type operator()() { return next(); }

    /** Raw 64 random bits. */
    std::uint64_t next();

    /** Uniform integer in [0, bound); bound must be nonzero. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextInRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with success probability p. */
    bool nextBool(double p = 0.5);

    /** Standard normal deviate (Box-Muller with caching). */
    double nextGaussian();

    /** Normal deviate with given mean and standard deviation. */
    double nextGaussian(double mean, double stddev);

    /** Exponential deviate with given rate lambda. */
    double nextExponential(double lambda);

    /** Gamma deviate, shape/scale, Marsaglia-Tsang method. */
    double nextGamma(double shape, double scale);

    /** Beta(a, b) deviate via two gamma draws. */
    double nextBeta(double a, double b);

    /**
     * Sample k distinct values from [0, n) without replacement.
     * Uses Floyd's algorithm; O(k) expected time, result unsorted.
     */
    std::vector<std::uint64_t> sampleDistinct(std::uint64_t n,
                                              std::size_t k);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = nextBelow(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Derive an independent child generator (for parallel streams). */
    Rng fork();

    /**
     * Independent stream for a (seed, stream-index) pair. This is the
     * seed-splitting primitive of the parallel Monte Carlo engine:
     * shard i of an experiment seeds itself with
     * forStream(cfg.seed, i), so results depend only on the shard
     * index and never on which thread ran it or in what order.
     */
    static Rng forStream(std::uint64_t seed, std::uint64_t stream);

  private:
    std::array<std::uint64_t, 4> state;
    bool hasCachedGaussian = false;
    double cachedGaussian = 0.0;
};

} // namespace authenticache::util

#endif // AUTH_UTIL_RNG_HPP
