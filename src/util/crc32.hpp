/**
 * @file
 * CRC-32 (IEEE 802.3 polynomial) used as a frame check sequence on
 * protocol messages.
 */

#ifndef AUTH_UTIL_CRC32_HPP
#define AUTH_UTIL_CRC32_HPP

#include <cstdint>
#include <span>

namespace authenticache::util {

/** CRC-32/IEEE over a byte span (init 0xFFFFFFFF, final xor). */
std::uint32_t crc32(std::span<const std::uint8_t> data);

/** Incremental variant: feed a prior CRC to continue a computation. */
std::uint32_t crc32Update(std::uint32_t crc,
                          std::span<const std::uint8_t> data);

} // namespace authenticache::util

#endif // AUTH_UTIL_CRC32_HPP
