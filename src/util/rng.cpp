#include "util/rng.hpp"

#include <cassert>
#include <cmath>
#include <unordered_set>

namespace authenticache::util {

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
SplitMix64::next()
{
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed)
{
    SplitMix64 sm(seed);
    for (auto &s : state)
        s = sm.next();
    // A theoretical possibility only: all-zero state is invalid.
    if (state[0] == 0 && state[1] == 0 && state[2] == 0 && state[3] == 0)
        state[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
    const std::uint64_t t = state[1] << 17;
    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl(state[3], 45);
    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    assert(bound > 0);
    // Lemire's rejection method for unbiased bounded integers.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < bound) {
        std::uint64_t t = -bound % bound;
        while (l < t) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            l = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t
Rng::nextInRange(std::int64_t lo, std::int64_t hi)
{
    assert(lo <= hi);
    std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBelow(span));
}

double
Rng::nextDouble()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

double
Rng::nextGaussian()
{
    if (hasCachedGaussian) {
        hasCachedGaussian = false;
        return cachedGaussian;
    }
    double u1 = 0.0;
    do {
        u1 = nextDouble();
    } while (u1 <= 0.0);
    double u2 = nextDouble();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    cachedGaussian = r * std::sin(theta);
    hasCachedGaussian = true;
    return r * std::cos(theta);
}

double
Rng::nextGaussian(double mean, double stddev)
{
    return mean + stddev * nextGaussian();
}

double
Rng::nextExponential(double lambda)
{
    assert(lambda > 0.0);
    double u = 0.0;
    do {
        u = nextDouble();
    } while (u <= 0.0);
    return -std::log(u) / lambda;
}

double
Rng::nextGamma(double shape, double scale)
{
    assert(shape > 0.0 && scale > 0.0);
    if (shape < 1.0) {
        // Boost to shape >= 1 then apply the standard power correction.
        double u = 0.0;
        do {
            u = nextDouble();
        } while (u <= 0.0);
        return nextGamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
    }
    // Marsaglia & Tsang squeeze method.
    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
        double x = 0.0;
        double v = 0.0;
        do {
            x = nextGaussian();
            v = 1.0 + c * x;
        } while (v <= 0.0);
        v = v * v * v;
        double u = nextDouble();
        if (u < 1.0 - 0.0331 * x * x * x * x)
            return d * v * scale;
        if (u > 0.0 &&
            std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
            return d * v * scale;
        }
    }
}

double
Rng::nextBeta(double a, double b)
{
    double x = nextGamma(a, 1.0);
    double y = nextGamma(b, 1.0);
    return x / (x + y);
}

std::vector<std::uint64_t>
Rng::sampleDistinct(std::uint64_t n, std::size_t k)
{
    assert(k <= n);
    // Robert Floyd's sampling algorithm: k iterations, no retries.
    std::vector<std::uint64_t> result;
    std::unordered_set<std::uint64_t> chosen;
    result.reserve(k);
    chosen.reserve(k * 2);
    for (std::uint64_t j = n - k; j < n; ++j) {
        std::uint64_t t = nextBelow(j + 1);
        std::uint64_t pick = chosen.count(t) ? j : t;
        chosen.insert(pick);
        result.push_back(pick);
    }
    return result;
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0x6A09E667F3BCC908ull);
}

Rng
Rng::forStream(std::uint64_t seed, std::uint64_t stream)
{
    // Two SplitMix64 passes decorrelate nearby (seed, stream) pairs;
    // the constructor runs a third over the combined value.
    SplitMix64 outer(seed);
    std::uint64_t a = outer.next();
    std::uint64_t b = outer.next();
    SplitMix64 inner(a ^ (stream * 0x9E3779B97F4A7C15ull) ^ b);
    return Rng(inner.next());
}

} // namespace authenticache::util
