#include "util/thread_pool.hpp"

#include <cstdlib>
#include <string>

namespace authenticache::util {

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = defaultThreadCount();
    workers.reserve(threads - 1);
    for (unsigned t = 1; t < threads; ++t)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mutex);
        stopping = true;
    }
    wake.notify_all();
    for (auto &w : workers)
        w.join();
}

void
ThreadPool::Batch::run()
{
    std::size_t done_here = 0;
    for (;;) {
        std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count)
            break;
        if (!failed.load(std::memory_order_acquire)) {
            try {
                (*body)(i);
            } catch (...) {
                {
                    MutexLock lock(errorMutex);
                    if (!error)
                        error = std::current_exception();
                }
                failed.store(true, std::memory_order_release);
            }
        }
        ++done_here;
    }
    if (done_here == 0)
        return;
    std::size_t total =
        finished.fetch_add(done_here, std::memory_order_acq_rel) +
        done_here;
    if (total == count) {
        MutexLock lock(doneMutex);
        doneCv.notify_all();
    }
}

void
ThreadPool::Batch::wait()
{
    MutexLock lock(doneMutex);
    while (finished.load(std::memory_order_acquire) != count)
        doneCv.wait(doneMutex);
}

void
ThreadPool::workerLoop()
{
    std::shared_ptr<Batch> last;
    for (;;) {
        std::shared_ptr<Batch> batch;
        {
            MutexLock lock(mutex);
            while (!stopping && current == last)
                wake.wait(mutex);
            if (stopping)
                return;
            batch = current;
        }
        if (batch)
            batch->run();
        last = std::move(batch);
    }
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &body)
{
    if (count == 0)
        return;
    if (workers.empty() || count == 1) {
        for (std::size_t i = 0; i < count; ++i)
            body(i);
        return;
    }

    auto batch = std::make_shared<Batch>();
    batch->body = &body;
    batch->count = count;
    {
        MutexLock lock(mutex);
        current = batch;
    }
    wake.notify_all();
    batch->run(); // The caller is one of the execution lanes.
    batch->wait();
    {
        // Unpublish so idle workers park instead of re-checking a
        // finished batch.
        MutexLock lock(mutex);
        if (current == batch)
            current = nullptr;
    }
    // Reading the slot under its lock keeps the annotation sound; the
    // finished-counter handshake in wait() already ordered the write.
    std::exception_ptr error;
    {
        MutexLock lock(batch->errorMutex);
        error = batch->error;
    }
    if (error)
        std::rethrow_exception(error);
}

unsigned
ThreadPool::defaultThreadCount()
{
    if (const char *env = std::getenv("AUTHENTICACHE_THREADS")) {
        char *end = nullptr;
        long parsed = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && parsed > 0)
            return static_cast<unsigned>(parsed);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

} // namespace authenticache::util
