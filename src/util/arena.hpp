/**
 * @file
 * Bump-pointer scratch arena for hot-path temporaries.
 *
 * The authentication hot path (challenge generation, batched
 * nearest-error queries, response evaluation) needs short-lived
 * buffers whose lifetime is one frame or one query batch. Allocating
 * them from the general heap puts malloc/free on every request; the
 * arena instead hands out slices of one growing block and recycles
 * the whole block with a single reset() at the frame boundary, so
 * steady-state request processing performs no heap allocation at all.
 *
 * Only trivially-destructible element types are supported: reset()
 * runs no destructors. The arena is move-only and not thread-safe;
 * each session shard owns its own (guarded by the shard mutex, like
 * the rest of the shard state).
 */

#ifndef AUTH_UTIL_ARENA_HPP
#define AUTH_UTIL_ARENA_HPP

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace authenticache::util {

class Arena
{
  public:
    /** @param initial_bytes Capacity of the first block. */
    explicit Arena(std::size_t initial_bytes = 4096);

    Arena(Arena &&) noexcept = default;
    Arena &operator=(Arena &&) noexcept = default;
    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /**
     * Allocate an uninitialized span of @p n elements, aligned for T.
     * Grows by adding overflow blocks (doubling) when the current
     * block is exhausted; after the next reset() the arena owns one
     * block large enough for the whole previous high-water mark.
     */
    template <typename T>
    std::span<T>
    allocate(std::size_t n)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "Arena::reset runs no destructors");
        void *p = allocateBytes(n * sizeof(T), alignof(T));
        return {static_cast<T *>(p), n};
    }

    /** Allocate and zero-fill. */
    template <typename T>
    std::span<T>
    allocateZeroed(std::size_t n)
    {
        auto s = allocate<T>(n);
        std::fill(s.begin(), s.end(), T{});
        return s;
    }

    /**
     * Recycle every allocation. Invalidates all outstanding spans.
     * If the last cycle overflowed into extra blocks, they are
     * consolidated into one block sized for the observed peak, so a
     * steady-state workload settles into zero heap traffic.
     */
    void reset();

    /** Bytes handed out since the last reset (excludes padding). */
    std::size_t bytesInUse() const { return used; }

    /** Total capacity across blocks. */
    std::size_t capacity() const;

    /** Blocks currently owned (1 in steady state). */
    std::size_t blockCount() const { return blocks.size(); }

  private:
    struct Block
    {
        std::unique_ptr<std::byte[]> data;
        std::size_t size = 0;
        std::size_t offset = 0;
    };

    void *allocateBytes(std::size_t bytes, std::size_t align);

    std::vector<Block> blocks; ///< blocks.back() is the active one.
    std::size_t used = 0;
};

} // namespace authenticache::util

#endif // AUTH_UTIL_ARENA_HPP
