/**
 * @file
 * On-demand challenge generation from stored error maps (paper
 * Sec 4.2-4.3). Challenges are drawn in *logical* coordinates under
 * the device's current map key; consumed pairs are retired by their
 * *physical* identity so a key rotation cannot resurrect a pair.
 */

#ifndef AUTH_SERVER_CHALLENGE_GEN_HPP
#define AUTH_SERVER_CHALLENGE_GEN_HPP

#include <cstdint>

#include <vector>

#include "core/challenge.hpp"
#include "core/remap.hpp"
#include "server/database.hpp"
#include "server/journal.hpp"
#include "util/rng.hpp"

namespace authenticache::server {

/** A generated challenge plus the server's expected response. */
struct GeneratedChallenge
{
    core::Challenge challenge;     ///< Logical coordinates.
    core::Response expected;       ///< From the stored error map.
    core::VddMv level = 0;

    /**
     * The pairs this generation consumed, in *physical* identity --
     * exactly what the durability journal must persist before the
     * challenge is disclosed (retire-before-reply).
     */
    std::vector<journal::RetiredPair> retired;
};

/**
 * Draws challenges from stored error maps. The generator itself holds
 * no per-device state: every overload taking an explicit util::Rng
 * draws all randomness from it, so callers that keep one RNG stream
 * per device (the sharded session layer) can generate challenges for
 * distinct devices concurrently and deterministically. The overloads
 * without an Rng use the generator's own member stream (the original
 * single-threaded API, kept for tools and tests).
 */
class ChallengeGenerator
{
  public:
    explicit ChallengeGenerator(util::Rng rng);

    /**
     * Generate an n-bit single-voltage challenge for a device,
     * retiring the consumed pairs. Throws std::runtime_error when the
     * device's fresh-pair supply at the chosen level is exhausted.
     *
     * @param record Device state (mutated: pairs consumed).
     * @param level Challenge voltage; must be a challenge level.
     * @param bits Challenge length.
     */
    GeneratedChallenge generate(DeviceRecord &record, core::VddMv level,
                                std::size_t bits);
    GeneratedChallenge generate(DeviceRecord &record, core::VddMv level,
                                std::size_t bits, util::Rng &rng);

    /**
     * Same, with caller-provided evaluation scratch (one per session
     * shard): the expected response is computed through the record's
     * cached logical indexes with core::evaluateIndexed, so the
     * steady-state hot path performs no per-challenge map copy and no
     * heap allocation beyond the returned challenge itself. Results
     * are bit-identical to the scratch-less overloads.
     */
    GeneratedChallenge generate(DeviceRecord &record, core::VddMv level,
                                std::size_t bits, util::Rng &rng,
                                core::EvalScratch &scratch);

    /**
     * Same, for a remap key-derivation challenge at a reserved level:
     * drawn under the *default* (identity) mapping, expected response
     * evaluated directly on the physical map.
     */
    GeneratedChallenge generateReserved(DeviceRecord &record,
                                        core::VddMv level,
                                        std::size_t bits);
    GeneratedChallenge generateReserved(DeviceRecord &record,
                                        core::VddMv level,
                                        std::size_t bits,
                                        util::Rng &rng);

    /**
     * Multi-voltage challenge (paper Eq 7 with V != V', left as
     * future work in the prototype): each endpoint is drawn at a
     * uniformly random challenge level, multiplying the pair space by
     * the square of the level count. The client minimizes regulator
     * transitions by sorting endpoints in descending Vdd (Sec 5.4);
     * see bench_ablation_multivdd for the residual cost.
     *
     * Pair retirement is per unordered physical line pair *per level
     * pair*, consistent with the single-level rule.
     */
    GeneratedChallenge generateMultiLevel(DeviceRecord &record,
                                          std::size_t bits);
    GeneratedChallenge generateMultiLevel(DeviceRecord &record,
                                          std::size_t bits,
                                          util::Rng &rng);
    GeneratedChallenge generateMultiLevel(DeviceRecord &record,
                                          std::size_t bits,
                                          util::Rng &rng,
                                          core::EvalScratch &scratch);

  private:
    /**
     * Draw the challenge and retire its pairs; expected response is
     * NOT filled in (each public overload evaluates through the view
     * appropriate to its remap).
     */
    static GeneratedChallenge
    drawWithRemap(DeviceRecord &record, core::VddMv level,
                  std::size_t bits, const core::LogicalRemap &remap,
                  util::Rng &rng);

    util::Rng ownRng; ///< Backs the legacy no-Rng overloads only.
    core::EvalScratch ownScratch; ///< Backs the no-scratch overloads.
};

} // namespace authenticache::server

#endif // AUTH_SERVER_CHALLENGE_GEN_HPP
