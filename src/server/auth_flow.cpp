#include "server/auth_flow.hpp"

#include <stdexcept>
#include <utility>

#include "util/logging.hpp"

namespace authenticache::server {

FlowOutput
AuthFlow::onRequest(SessionShard &sh, const protocol::AuthRequest &msg)
{
    FlowOutput out;
    if (!devices.contains(msg.deviceId)) {
        out.replies.push_back(protocol::ErrorMsg{"unknown device"});
        return out;
    }
    DeviceRecord &record = devices.at(msg.deviceId);
    if (record.revoked()) {
        out.replies.push_back(protocol::ErrorMsg{"device revoked"});
        return out;
    }
    if (record.locked()) {
        out.replies.push_back(protocol::ErrorMsg{"device locked"});
        return out;
    }
    if (record.reenrollRequired()) {
        out.replies.push_back(
            protocol::ErrorMsg{"re-enrollment required"});
        return out;
    }

    // Idempotent retransmission handling: while this device already
    // has an outstanding challenge, a duplicated or retransmitted
    // AuthRequest re-issues the *same* challenge instead of burning
    // fresh CRPs on every lost reply.
    auto active = sh.activeAuthByDevice.find(msg.deviceId);
    if (active != sh.activeAuthByDevice.end()) {
        auto pending = sh.pendingAuths.find(active->second);
        if (pending != sh.pendingAuths.end()) {
            ++sh.counters.dupRequests;
            pending->second.deadline = sessions.sessionDeadline();
            sh.noteDeadline(active->second,
                            pending->second.deadline);
            protocol::ChallengeMsg again;
            again.nonce = active->second;
            again.challenge = pending->second.challenge;
            out.replies.push_back(std::move(again));
            return out;
        }
        // Stale index entry (evicted/expired session).
        sh.activeAuthByDevice.erase(active);
    }

    const auto &levels = record.challengeLevels();
    if (levels.empty()) {
        out.replies.push_back(
            protocol::ErrorMsg{"no challenge levels"});
        return out;
    }
    const ServerConfig &cfg = sessions.config();
    util::Rng &rng = sessions.deviceRng(sh, msg.deviceId);
    core::VddMv level = levels[rng.nextBelow(levels.size())];

    GeneratedChallenge gen;
    try {
        if (cfg.multiLevelChallenges && levels.size() >= 2)
            gen = generator.generateMultiLevel(
                record, cfg.challengeBits, rng, sh.evalScratch);
        else
            gen = generator.generate(record, level, cfg.challengeBits,
                                     rng, sh.evalScratch);
    } catch (const std::runtime_error &e) {
        out.replies.push_back(protocol::ErrorMsg{e.what()});
        return out;
    }

    // Retire-before-reply: the consumed pairs are journaled (and
    // synced at the batch boundary) before the challenge that
    // discloses them leaves the server. A crash in between only
    // over-retires -- the safe direction for no-reuse.
    if (sessions.journalingEnabled())
        sh.wal.push_back(journal::PairsRetired{
            msg.deviceId, std::move(gen.retired)});

    std::uint64_t nonce = sessions.makeNonce(sh, rng);
    std::uint64_t deadline = sessions.sessionDeadline();
    sh.pendingAuths[nonce] =
        PendingAuth{msg.deviceId, std::move(gen.expected),
                    gen.challenge, deadline};
    sh.noteDeadline(nonce, deadline);
    sh.activeAuthByDevice[msg.deviceId] = nonce;
    out.openedNonce = nonce;

    protocol::ChallengeMsg reply;
    reply.nonce = nonce;
    reply.challenge = std::move(gen.challenge);
    out.replies.push_back(std::move(reply));
    return out;
}

FlowOutput
AuthFlow::onResponse(SessionShard &sh,
                     const protocol::ResponseMsg &msg)
{
    FlowOutput out;
    auto it = sh.pendingAuths.find(msg.nonce);
    if (it == sh.pendingAuths.end()) {
        // A retransmitted response for an already-completed session
        // gets the original decision again -- and never re-counts
        // toward the lockout policy. Anything else is a replay or a
        // stray; it never grants access.
        if (const protocol::Message *done =
                sh.findCompleted(msg.nonce)) {
            ++sh.counters.dupCompletions;
            out.replies.push_back(*done);
            return out;
        }
        out.replies.push_back(protocol::ErrorMsg{"unknown nonce"});
        return out;
    }
    PendingAuth pending = std::move(it->second);
    sh.pendingAuths.erase(it);
    sh.forgetActiveAuth(pending.deviceId, msg.nonce);

    Verdict verdict = verify.verify(pending.expected, msg.response);

    const ServerConfig &cfg = sessions.config();
    DeviceRecord &record = devices.at(pending.deviceId);
    bool locked_now = false;
    if (verdict.accepted) {
        record.recordAccept();
    } else {
        record.recordReject();
        if (cfg.lockoutThreshold > 0 &&
            record.consecutiveFailures() >= cfg.lockoutThreshold) {
            record.lock();
            locked_now = true;
            ++sh.counters.lockouts;
            AUTH_LOG_WARN("server.auth")
                << "device " << pending.deviceId << " locked after "
                << record.consecutiveFailures()
                << " consecutive failures";
        }
    }
    if (sessions.journalingEnabled()) {
        sh.wal.push_back(journal::AuthOutcome{
            pending.deviceId, verdict.accepted, locked_now});
        if (cfg.counterCheckpointEvery > 0 &&
            (record.accepted() + record.rejected()) %
                    cfg.counterCheckpointEvery ==
                0)
            sh.wal.push_back(journal::CounterCheckpoint{
                pending.deviceId, record.accepted(),
                record.rejected(), record.consecutiveFailures()});
    }

    out.report = AuthReport{pending.deviceId, msg.nonce,
                            verdict.accepted, verdict.hammingDistance,
                            verdict.threshold};

    protocol::AuthDecision decision;
    decision.nonce = msg.nonce;
    decision.accepted = verdict.accepted;
    decision.hammingDistance = verdict.hammingDistance;
    sh.cacheCompleted(msg.nonce, decision, cfg.completedCacheSize);
    out.replies.push_back(std::move(decision));
    return out;
}

} // namespace authenticache::server
