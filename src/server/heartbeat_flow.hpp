/**
 * @file
 * State machine for continuous-authentication heartbeat sessions.
 *
 * A heartbeat session streams periodic low-cost challenges to an
 * enrolled device and feeds the verdicts into a per-device trust
 * ledger (ServerConfig::trust). Trust recovers on clean rounds and
 * decays on marginal or failed ones; crossing the policy thresholds
 * walks the device down a graceful-degradation ladder:
 *
 *   Nominal -> StepUp (full-width challenge next round)
 *           -> RemapScheduled (proactive remap, budget permitting)
 *           -> ReenrollRequired (budget exhausted; auth refused)
 *           -> Revoked (trust exhausted; admin unlock required)
 *
 * Like AuthFlow/RemapFlow, the flow operates on a locked session
 * shard and returns a FlowOutput -- it never touches a channel. Every
 * trust mutation journals an absolute journal::TrustUpdate before the
 * reply that discloses it leaves the server, so recovered trust state
 * replays byte-identically through the PR 4 crash sweep.
 */

#ifndef AUTH_SERVER_HEARTBEAT_FLOW_HPP
#define AUTH_SERVER_HEARTBEAT_FLOW_HPP

#include <cstdint>

#include "server/remap_flow.hpp"

namespace authenticache::server {

class HeartbeatFlow
{
  public:
    HeartbeatFlow(SessionManager &sessions_, DeviceDirectory &devices_,
                  ChallengeGenerator &generator_,
                  const Verifier &verifier, RemapFlow &remap_)
        : sessions(sessions_), devices(devices_),
          generator(generator_), verify(verifier), remap(remap_)
    {
    }

    /**
     * Open a heartbeat session for a device and issue round 1.
     * Trust starts at TrustPolicy::initial. Revoked / locked /
     * re-enroll-required devices get an ErrorMsg reject. Caller holds
     * @p sh's mutex; @p sh is the device's shard.
     */
    FlowOutput start(SessionShard &sh, std::uint64_t device_id)
        AUTH_REQUIRES(sh.mutex);

    /**
     * Service a HeartbeatProof on the nonce's shard: verify, classify
     * clean/marginal/failed, adjust the trust ledger, and apply the
     * degradation tier (possibly emitting a RemapRequest or Revoke
     * alongside the TrustUpdate verdict). Caller holds @p sh's mutex.
     */
    FlowOutput onProof(SessionShard &sh,
                       const protocol::HeartbeatProof &msg)
        AUTH_REQUIRES(sh.mutex);

    /**
     * Advance the shard's heartbeat cadence to @p now: rounds whose
     * proof never arrived count as failed (a dead or cloned client
     * drains trust instead of holding it), and due sessions get their
     * next challenge. One FlowOutput per due session, in wheel order,
     * so the front end can rank any proactively opened remap nonces
     * with per-output ordinals. Caller holds @p sh's mutex.
     */
    std::vector<FlowOutput> tick(SessionShard &sh, std::uint64_t now)
        AUTH_REQUIRES(sh.mutex);

    /** Tear down a device's session (revocation/admin). @return
     *  whether one existed. Caller holds @p sh's mutex. */
    bool stop(SessionShard &sh, std::uint64_t device_id)
        AUTH_REQUIRES(sh.mutex);

  private:
    /** Issue the next challenge round for a live session. */
    void issueRound(SessionShard &sh, HeartbeatSession &session,
                    FlowOutput &out) AUTH_REQUIRES(sh.mutex);

    /**
     * Fold one round's verdict into the trust ledger and apply the
     * degradation tier. @p nonce is the answered round (0 for a
     * missed round, which emits no TrustUpdate reply).
     */
    void applyVerdict(SessionShard &sh, HeartbeatSession &session,
                      std::uint64_t nonce, bool accepted,
                      std::uint32_t hamming_distance, bool marginal,
                      FlowOutput &out) AUTH_REQUIRES(sh.mutex);

    SessionManager &sessions;
    DeviceDirectory &devices;
    ChallengeGenerator &generator;
    const Verifier &verify;
    RemapFlow &remap;
};

} // namespace authenticache::server

#endif // AUTH_SERVER_HEARTBEAT_FLOW_HPP
