/**
 * @file
 * Thin facade over the EnrollmentDatabase, giving the session layers
 * one seam for device-record access. The directory does not add
 * locking: a device record is only ever mutated by the session shard
 * that owns the device (devices hash to shards by id), and the record
 * table itself is structurally modified only during trusted
 * enrollment, which is serialized by contract.
 */

#ifndef AUTH_SERVER_DEVICE_DIRECTORY_HPP
#define AUTH_SERVER_DEVICE_DIRECTORY_HPP

#include <cstdint>
#include <utility>

#include "server/database.hpp"

namespace authenticache::server {

class DeviceDirectory
{
  public:
    DeviceDirectory() = default;

    DeviceDirectory(const DeviceDirectory &) = delete;
    DeviceDirectory &operator=(const DeviceDirectory &) = delete;

    bool contains(std::uint64_t device_id) const
    {
        return db.contains(device_id);
    }

    DeviceRecord &at(std::uint64_t device_id)
    {
        return db.at(device_id);
    }

    const DeviceRecord &at(std::uint64_t device_id) const
    {
        return db.at(device_id);
    }

    /** Add a record; throws if the id is already enrolled. */
    DeviceRecord &enroll(DeviceRecord record)
    {
        return db.enroll(std::move(record));
    }

    /** Remove a record (re-enrollment); @return false if absent. */
    bool remove(std::uint64_t device_id) { return db.remove(device_id); }

    std::size_t size() const { return db.size(); }

    /** The wrapped database (persistence, reporting, tests). */
    EnrollmentDatabase &database() { return db; }
    const EnrollmentDatabase &database() const { return db; }

    /** Replace the database wholesale (recovery / restore). */
    void adopt(EnrollmentDatabase replacement)
    {
        db = std::move(replacement);
    }

  private:
    EnrollmentDatabase db;
};

} // namespace authenticache::server

#endif // AUTH_SERVER_DEVICE_DIRECTORY_HPP
