/**
 * @file
 * Sharded session state for the authentication server.
 *
 * The SessionManager owns N independent session shards. Devices hash
 * to shards by device id, and every nonce a shard issues carries the
 * shard index in its low bits, so nonce-keyed frames (responses,
 * remap acks) route back to the owning shard in O(1) with no global
 * index. Each shard has its own mutex, pending-auth / pending-remap
 * tables, completed-nonce replay cache, deadline wheel, per-device
 * RNG streams, and counters -- frames for distinct devices on
 * distinct shards are serviced concurrently with zero shared state.
 *
 * Determinism recipe (the contract the batch front end relies on):
 *  - all per-device randomness comes from util::Rng::forStream(seed,
 *    deviceId), so challenge/nonce streams depend only on the device,
 *    never on cross-device interleaving or the thread count;
 *  - sessions opened by a batch are ranked by a deterministic open
 *    ordinal (batch base + frame index), and the global pending cap
 *    evicts strictly oldest-ordinal-first at batch boundaries;
 *  - expiry (GC) runs single-threaded over shards in index order.
 */

#ifndef AUTH_SERVER_SESSION_MANAGER_HPP
#define AUTH_SERVER_SESSION_MANAGER_HPP

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/challenge.hpp"
#include "crypto/key.hpp"
#include "protocol/messages.hpp"
#include "server/config.hpp"
#include "server/journal.hpp"
#include "util/mutex.hpp"
#include "util/rng.hpp"
#include "util/sim_clock.hpp"
#include "util/stats_registry.hpp"

namespace authenticache::server {

/** An outstanding authentication challenge. */
struct PendingAuth
{
    std::uint64_t deviceId = 0;
    core::Response expected;
    core::Challenge challenge;  ///< Kept for idempotent re-issue.
    std::uint64_t deadline = 0; ///< Absolute step; 0 = no expiry.
};

/** An outstanding remap exchange awaiting the client's ack. */
struct PendingRemap
{
    std::uint64_t deviceId = 0;
    crypto::Key256 newKey;
    std::uint64_t deadline = 0;
};

/**
 * One long-lived continuous-authentication session. Unlike
 * PendingAuth these are deliberately exempt from the pending-session
 * cap and the deadline GC: a heartbeat session lives until the device
 * is revoked, forced to re-enroll, or explicitly stopped, and its
 * cadence runs off the heartbeatWheel instead.
 */
struct HeartbeatSession
{
    std::uint64_t deviceId = 0;
    std::uint64_t seq = 0;         ///< Rounds issued so far.
    std::uint64_t activeNonce = 0; ///< Outstanding round; 0 = answered.
    core::Response expected;
    std::uint64_t nextDue = 0;     ///< Step the next round fires at.
    bool stepUp = false;           ///< Next round uses a full challenge.
};

/** Per-shard event counters (published via collectStats). */
struct ShardCounters
{
    std::uint64_t dupRequests = 0;    ///< Dedup hits: challenge re-issued.
    std::uint64_t dupCompletions = 0; ///< Replay-cache hits.
    std::uint64_t expired = 0;        ///< Sessions GC'd by deadline.
    std::uint64_t evicted = 0;        ///< Sessions evicted by the cap.
    std::uint64_t lockouts = 0;       ///< Devices locked by policy.
    std::uint64_t remapsCommitted = 0;
    std::uint64_t remapsRejected = 0;
    // Continuous-authentication trust ledger.
    std::uint64_t trustDecays = 0;     ///< Heartbeats that lowered trust.
    std::uint64_t stepUps = 0;         ///< Escalations to full challenges.
    std::uint64_t proactiveRemaps = 0; ///< Remaps the ledger scheduled.
    std::uint64_t revocations = 0;     ///< Devices revoked (policy+admin).
    std::uint64_t heartbeatsClean = 0;
    std::uint64_t heartbeatsMarginal = 0;
    std::uint64_t heartbeatsFailed = 0; ///< Rejected or missed rounds.
};

/**
 * One session shard. All members are guarded by mutex; the flows and
 * the front end lock the shard for the duration of each frame they
 * dispatch to it.
 */
struct SessionShard
{
    // Immutable after construction. LINT:allow(lock-annotation)
    unsigned index = 0;

    /** `mutable` so const aggregation APIs can lock; DESIGN.md 5g. */
    mutable util::Mutex mutex;

    std::unordered_map<std::uint64_t, PendingAuth> pendingAuths
        AUTH_GUARDED_BY(mutex);
    std::unordered_map<std::uint64_t, PendingRemap> pendingRemaps
        AUTH_GUARDED_BY(mutex);
    /** Device -> nonce of its outstanding auth challenge. */
    std::unordered_map<std::uint64_t, std::uint64_t> activeAuthByDevice
        AUTH_GUARDED_BY(mutex);
    /** Completed nonce -> the decision/commit originally sent. */
    std::unordered_map<std::uint64_t, protocol::Message> completed
        AUTH_GUARDED_BY(mutex);
    std::deque<std::uint64_t> completedOrder AUTH_GUARDED_BY(mutex);
    /** Deadline wheel: absolute step -> nonce (entries validated
     *  lazily against the live session's current deadline, so a
     *  refreshed deadline simply strands a stale entry). */
    std::multimap<std::uint64_t, std::uint64_t> deadlineWheel
        AUTH_GUARDED_BY(mutex);
    /** Lazily created per-device RNG streams. */
    std::unordered_map<std::uint64_t, util::Rng> deviceRngs
        AUTH_GUARDED_BY(mutex);
    /** Live heartbeat sessions, keyed by device id. */
    std::unordered_map<std::uint64_t, HeartbeatSession> heartbeats
        AUTH_GUARDED_BY(mutex);
    /** Outstanding heartbeat nonce -> device id (proof routing). */
    std::unordered_map<std::uint64_t, std::uint64_t> heartbeatByNonce
        AUTH_GUARDED_BY(mutex);
    /** Cadence wheel: due step -> device id. Entries are validated
     *  lazily against the session's current nextDue, same idiom as
     *  deadlineWheel. */
    std::multimap<std::uint64_t, std::uint64_t> heartbeatWheel
        AUTH_GUARDED_BY(mutex);
    ShardCounters counters AUTH_GUARDED_BY(mutex);

    /**
     * Shard-local write-ahead buffer: flows push the journal events
     * their frame produced (under the shard mutex, so parallel
     * dispatch stays race-free); the front end drains every shard in
     * index order at the batch boundary and syncs the journal before
     * any reply leaves. Empty unless journaling is enabled.
     */
    std::vector<journal::Event> wal AUTH_GUARDED_BY(mutex);

    /**
     * Shard-local challenge-evaluation scratch, reused across every
     * frame this shard services: steady-state challenge generation
     * performs no heap allocation (see core::EvalScratch).
     */
    core::EvalScratch evalScratch AUTH_GUARDED_BY(mutex);

    std::size_t
    pending() const AUTH_REQUIRES(mutex)
    {
        return pendingAuths.size() + pendingRemaps.size();
    }

    /** Schedule a (new or refreshed) deadline for a nonce. */
    void noteDeadline(std::uint64_t nonce, std::uint64_t deadline)
        AUTH_REQUIRES(mutex);

    /** Remember a completed decision/commit for retransmit replies. */
    void cacheCompleted(std::uint64_t nonce, protocol::Message reply,
                        std::size_t cache_size) AUTH_REQUIRES(mutex);

    /** Cached reply for a completed nonce, or nullptr. */
    const protocol::Message *findCompleted(std::uint64_t nonce) const
        AUTH_REQUIRES(mutex);

    /** Remove a finished/evicted auth nonce from the device index. */
    void forgetActiveAuth(std::uint64_t device_id, std::uint64_t nonce)
        AUTH_REQUIRES(mutex);

    /** Drop every pending session whose deadline has passed. */
    void expire(std::uint64_t now) AUTH_REQUIRES(mutex);

    /** Evict one session by nonce. @return something was dropped. */
    bool evict(std::uint64_t nonce) AUTH_REQUIRES(mutex);
};

class SessionManager
{
  public:
    SessionManager(const ServerConfig &config, std::uint64_t seed);

    SessionManager(const SessionManager &) = delete;
    SessionManager &operator=(const SessionManager &) = delete;

    unsigned shardCount() const
    {
        return static_cast<unsigned>(shards.size());
    }

    unsigned shardIndexForDevice(std::uint64_t device_id) const;

    unsigned shardIndexForNonce(std::uint64_t nonce) const
    {
        return static_cast<unsigned>(nonce & shardMask);
    }

    SessionShard &shard(unsigned index) { return *shards[index]; }
    const SessionShard &shard(unsigned index) const
    {
        return *shards[index];
    }

    SessionShard &shardForDevice(std::uint64_t device_id)
    {
        return *shards[shardIndexForDevice(device_id)];
    }

    SessionShard &shardForNonce(std::uint64_t nonce)
    {
        return *shards[shardIndexForNonce(nonce)];
    }

    /**
     * Per-device deterministic RNG stream (created on first use from
     * Rng::forStream(seed, device_id)). Caller holds the shard lock.
     */
    util::Rng &deviceRng(SessionShard &sh, std::uint64_t device_id)
        AUTH_REQUIRES(sh.mutex);

    /**
     * Draw a fresh nonce from @p rng tagged with the shard's index in
     * its low bits, so the nonce routes back to its shard.
     */
    std::uint64_t makeNonce(const SessionShard &sh, util::Rng &rng) const
        AUTH_REQUIRES(sh.mutex);

    /** Bind the simulated clock driving session deadlines (not owned). */
    void bindClock(const util::SimClock *clk) { simClock = clk; }

    /** Deadline for a session opened now (0 when expiry is off). */
    std::uint64_t sessionDeadline() const;

    /** Current step of the bound clock (0 without a clock). */
    std::uint64_t currentStep() const
    {
        return simClock == nullptr ? 0 : simClock->now();
    }

    /** GC every shard against the bound clock (single-threaded). */
    void expireAll();

    /**
     * Reserve @p count deterministic open ordinals for a batch;
     * returns the base (frame k of the batch opens at base + k).
     * Caller-serialized: called only from batch boundaries.
     */
    std::uint64_t reserveOrdinals(std::size_t count);

    /** Rank an opened session for oldest-first cap eviction. */
    void registerOpen(std::uint64_t ordinal, std::uint64_t nonce);

    /**
     * Enforce the global pending cap: evict oldest-ordinal-first
     * until the total pending count is back at the cap.
     * Caller-serialized: called only from batch boundaries.
     */
    void enforceCap();

    // Aggregates (each takes the shard locks briefly).
    std::size_t totalPending() const;
    std::uint64_t sessionsEvicted() const;
    std::uint64_t sessionsExpired() const;
    std::uint64_t duplicateRequests() const;
    std::uint64_t duplicateCompletions() const;
    std::uint64_t remapsCommitted() const;
    std::uint64_t remapsRejected() const;
    std::uint64_t lockouts() const;
    std::uint64_t trustDecays() const;
    std::uint64_t stepUps() const;
    std::uint64_t proactiveRemaps() const;
    std::uint64_t revocations() const;
    std::uint64_t heartbeatsClean() const;
    std::uint64_t heartbeatsMarginal() const;
    std::uint64_t heartbeatsFailed() const;
    std::size_t activeHeartbeats() const;

    /**
     * Publish per-shard counters as "<component>.shard<k>" entries:
     * sessions_active, dedup_hits, replay_cache_hits, gc_evictions,
     * cap_evictions, lockouts.
     */
    void collectStats(util::StatsRegistry &registry,
                      const std::string &component) const;

    const ServerConfig &config() const { return cfg; }

    /**
     * Turn shard-local event journaling on/off. Off (the default)
     * keeps the WAL buffers empty -- zero cost for servers without a
     * durability layer attached.
     */
    void setJournaling(bool on) { journalingOn = on; }
    bool journalingEnabled() const { return journalingOn; }

  private:
    /**
     * Sum one counter across the shards, taking each shard lock in
     * turn. A member pointer instead of a lambda keeps the guarded
     * read inside this (analyzed) function body -- a lambda would be
     * analyzed as a separate, lock-unaware function.
     */
    std::uint64_t
    sumCounter(std::uint64_t ShardCounters::*member) const
    {
        std::uint64_t total = 0;
        for (const auto &sh : shards) {
            util::MutexLock guard(sh->mutex);
            total += sh->counters.*member;
        }
        return total;
    }

    /** Drop stale ordinal entries once the map outgrows the live set. */
    void compactOrdinals();

    const ServerConfig &cfg;
    bool journalingOn = false;
    std::uint64_t masterSeed;
    std::uint64_t shardMask = 0;
    std::vector<std::unique_ptr<SessionShard>> shards;
    const util::SimClock *simClock = nullptr;

    // Open-order bookkeeping for the cap. Only touched from
    // caller-serialized batch boundaries, so no mutex is needed.
    std::map<std::uint64_t, std::uint64_t> pendingByOrdinal;
    std::uint64_t nextOrdinal = 0;
};

} // namespace authenticache::server

#endif // AUTH_SERVER_SESSION_MANAGER_HPP
