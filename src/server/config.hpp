/**
 * @file
 * Server behaviour knobs and the per-authentication report record,
 * shared by every layer of the server stack (SessionManager, the
 * auth/remap flows, the batch front end, and the wiring facade).
 */

#ifndef AUTH_SERVER_CONFIG_HPP
#define AUTH_SERVER_CONFIG_HPP

#include <cstddef>
#include <cstdint>

#include "server/verifier.hpp"

namespace authenticache::server {

/** Server behaviour knobs. */
struct ServerConfig
{
    /** Bits per authentication challenge. */
    std::size_t challengeBits = 128;

    /** Secret bits derived per remap exchange. */
    std::size_t remapSecretBits = 32;

    /** Fuzzy-extractor repetition factor for remap helper data. */
    unsigned fuzzyRepetition = 5;

    /**
     * Draw each challenge endpoint at an independent random voltage
     * level (the paper's Eq 7 with V != V'; its prototype restricted
     * itself to single-Vdd challenges). Requires >= 2 enrolled
     * challenge levels; costs extra regulator transitions client-side.
     */
    bool multiLevelChallenges = false;

    /**
     * Lock a device after this many consecutive rejections (brute
     * force / cloning attempts burn the CRP space otherwise). 0
     * disables the policy; locked devices need unlockDevice().
     */
    std::uint64_t lockoutThreshold = 0;

    /**
     * Cap on simultaneously outstanding challenges (and remap
     * exchanges), summed across all session shards. A flood of
     * AuthRequests from clients that never answer would otherwise
     * grow server state without bound; when full, the globally oldest
     * outstanding session is evicted (its nonce is dead, the consumed
     * pairs stay retired). The cap is enforced at batch boundaries:
     * after every handleMessage and after every handleBatch.
     */
    std::size_t maxPendingSessions = 1024;

    /**
     * Per-session deadline in simulated clock steps: an outstanding
     * challenge (or remap exchange) not answered within this many
     * steps of issue is garbage-collected -- its consumed pairs stay
     * retired, its nonce is dead. 0 disables expiry; expiry also needs
     * a clock bound with bindClock().
     */
    std::uint64_t sessionTimeoutSteps = 0;

    /**
     * Completed sessions kept *per shard* for idempotent
     * retransmission handling: a duplicated or retransmitted
     * ResponseMsg / RemapAck whose nonce already completed gets the
     * original decision / commit resent verbatim instead of an
     * "unknown nonce" error (and never double-counts toward the
     * lockout policy).
     */
    std::size_t completedCacheSize = 256;

    /**
     * Independent session shards (rounded up to a power of two).
     * Devices hash to shards by device id; each shard owns its own
     * mutex, pending tables, replay cache, deadline wheel, and
     * per-device RNG streams, so a batch of frames from distinct
     * devices is serviced concurrently. 1 recovers a fully serial
     * server.
     */
    unsigned sessionShards = 8;

    /**
     * With a durability layer attached: journal an absolute
     * counter checkpoint for a device every N authentication
     * outcomes (0 disables). Checkpoints are redundant with the
     * AuthOutcome stream -- they exist to keep recovered counters
     * self-correcting for hot devices whose snapshots are far apart.
     */
    std::uint64_t counterCheckpointEvery = 0;

    VerifierPolicy verifier;
};

/** Record of one completed authentication (for reporting/tests). */
struct AuthReport
{
    std::uint64_t deviceId = 0;
    std::uint64_t nonce = 0;
    bool accepted = false;
    std::uint32_t hammingDistance = 0;
    std::int64_t threshold = 0;
};

} // namespace authenticache::server

#endif // AUTH_SERVER_CONFIG_HPP
