/**
 * @file
 * Server behaviour knobs and the per-authentication report record,
 * shared by every layer of the server stack (SessionManager, the
 * auth/remap flows, the batch front end, and the wiring facade).
 */

#ifndef AUTH_SERVER_CONFIG_HPP
#define AUTH_SERVER_CONFIG_HPP

#include <cstddef>
#include <cstdint>

#include "server/verifier.hpp"

namespace authenticache::server {

/**
 * Continuous-authentication (heartbeat) trust-ledger policy.
 *
 * Trust is a per-device integer in [0, max]. Clean heartbeats recover
 * it, marginal ones (accepted but close to threshold) and failures
 * decay it, and thresholds below define a tiered graceful-degradation
 * ladder: step-up -> proactive remap -> forced re-enrollment ->
 * revocation. All arithmetic is integral so trajectories replay
 * bit-for-bit.
 */
struct TrustPolicy
{
    /** Trust assigned at enrollment / heartbeat-session start. */
    std::uint32_t initial = 80;

    /** Ceiling trust can recover to. */
    std::uint32_t max = 100;

    /** Trust regained per clean heartbeat. */
    std::uint32_t cleanRecovery = 4;

    /** Trust lost per marginal heartbeat (accepted, but close). */
    std::uint32_t marginalPenalty = 8;

    /** Trust lost per failed or missed heartbeat. */
    std::uint32_t failPenalty = 20;

    /** Below this, the next heartbeat steps up to a full challenge. */
    std::uint32_t stepUpBelow = 60;

    /** Below this, schedule a proactive remap (budget permitting). */
    std::uint32_t remapBelow = 35;

    /** Below this, revoke the device outright. */
    std::uint32_t revokeBelow = 12;

    /** Trust granted back when a proactive remap is scheduled. */
    std::uint32_t remapRecovery = 30;

    /** Proactive remaps allowed before forcing re-enrollment. */
    std::uint32_t remapBudget = 2;

    /**
     * A heartbeat is *marginal* when accepted with hammingDistance >=
     * threshold * marginPercent / 100 (and threshold > 0): still
     * within tolerance, but drifting toward the boundary.
     */
    std::uint32_t marginPercent = 60;

    /**
     * Bits per low-cost heartbeat challenge (step-up uses
     * ServerConfig::challengeBits instead). 64 keeps a round at half
     * the full-auth cost while leaving enough bits that a healthy
     * device at nominal conditions reliably clears the EER threshold;
     * narrower widths make nominal rounds noisy enough to decay a
     * genuine device's trust.
     */
    std::size_t heartbeatBits = 64;

    /** Clock steps between heartbeat rounds. */
    std::uint64_t periodSteps = 4;
};

/** Server behaviour knobs. */
struct ServerConfig
{
    /** Bits per authentication challenge. */
    std::size_t challengeBits = 128;

    /** Secret bits derived per remap exchange. */
    std::size_t remapSecretBits = 32;

    /** Fuzzy-extractor repetition factor for remap helper data. */
    unsigned fuzzyRepetition = 5;

    /**
     * Draw each challenge endpoint at an independent random voltage
     * level (the paper's Eq 7 with V != V'; its prototype restricted
     * itself to single-Vdd challenges). Requires >= 2 enrolled
     * challenge levels; costs extra regulator transitions client-side.
     */
    bool multiLevelChallenges = false;

    /**
     * Lock a device after this many consecutive rejections (brute
     * force / cloning attempts burn the CRP space otherwise). 0
     * disables the policy; locked devices need unlockDevice().
     */
    std::uint64_t lockoutThreshold = 0;

    /**
     * Cap on simultaneously outstanding challenges (and remap
     * exchanges), summed across all session shards. A flood of
     * AuthRequests from clients that never answer would otherwise
     * grow server state without bound; when full, the globally oldest
     * outstanding session is evicted (its nonce is dead, the consumed
     * pairs stay retired). The cap is enforced at batch boundaries:
     * after every handleMessage and after every handleBatch.
     */
    std::size_t maxPendingSessions = 1024;

    /**
     * Per-session deadline in simulated clock steps: an outstanding
     * challenge (or remap exchange) not answered within this many
     * steps of issue is garbage-collected -- its consumed pairs stay
     * retired, its nonce is dead. 0 disables expiry; expiry also needs
     * a clock bound with bindClock().
     */
    std::uint64_t sessionTimeoutSteps = 0;

    /**
     * Completed sessions kept *per shard* for idempotent
     * retransmission handling: a duplicated or retransmitted
     * ResponseMsg / RemapAck whose nonce already completed gets the
     * original decision / commit resent verbatim instead of an
     * "unknown nonce" error (and never double-counts toward the
     * lockout policy).
     */
    std::size_t completedCacheSize = 256;

    /**
     * Independent session shards (rounded up to a power of two).
     * Devices hash to shards by device id; each shard owns its own
     * mutex, pending tables, replay cache, deadline wheel, and
     * per-device RNG streams, so a batch of frames from distinct
     * devices is serviced concurrently. 1 recovers a fully serial
     * server.
     */
    unsigned sessionShards = 8;

    /**
     * With a durability layer attached: journal an absolute
     * counter checkpoint for a device every N authentication
     * outcomes (0 disables). Checkpoints are redundant with the
     * AuthOutcome stream -- they exist to keep recovered counters
     * self-correcting for hot devices whose snapshots are far apart.
     */
    std::uint64_t counterCheckpointEvery = 0;

    VerifierPolicy verifier;

    TrustPolicy trust;
};

/** Record of one completed authentication (for reporting/tests). */
struct AuthReport
{
    std::uint64_t deviceId = 0;
    std::uint64_t nonce = 0;
    bool accepted = false;
    std::uint32_t hammingDistance = 0;
    std::int64_t threshold = 0;
};

} // namespace authenticache::server

#endif // AUTH_SERVER_CONFIG_HPP
