/**
 * @file
 * Per-message state machines for the authentication exchange
 * (AuthRequest -> Challenge, Response -> Decision), extracted from the
 * old monolithic handleMessage. A flow never touches a channel: it is
 * handed a locked session shard plus the decoded message and returns a
 * FlowOutput -- the replies to emit, an optional completed-auth
 * report, and the nonce of any newly opened session (which the front
 * end ranks for cap eviction in deterministic batch order).
 */

#ifndef AUTH_SERVER_AUTH_FLOW_HPP
#define AUTH_SERVER_AUTH_FLOW_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "protocol/messages.hpp"
#include "server/challenge_gen.hpp"
#include "server/config.hpp"
#include "server/device_directory.hpp"
#include "server/session_manager.hpp"
#include "server/verifier.hpp"

namespace authenticache::server {

/** What servicing one frame produced (merged by the front end). */
struct FlowOutput
{
    /** Replies to send back, in order. */
    std::vector<protocol::Message> replies;

    /** Report of a completed authentication, if one finished. */
    std::optional<AuthReport> report;

    /** Nonce of a session this frame opened (for cap ranking). */
    std::optional<std::uint64_t> openedNonce;
};

class AuthFlow
{
  public:
    AuthFlow(SessionManager &sessions_, DeviceDirectory &devices_,
             ChallengeGenerator &generator_, const Verifier &verifier)
        : sessions(sessions_), devices(devices_),
          generator(generator_), verify(verifier)
    {
    }

    /**
     * Service an AuthRequest on the device's shard: idempotent
     * challenge re-issue for duplicates, fresh challenge otherwise.
     * Caller holds @p sh's mutex; @p sh is the device's shard.
     */
    FlowOutput onRequest(SessionShard &sh,
                         const protocol::AuthRequest &msg)
        AUTH_REQUIRES(sh.mutex);

    /**
     * Service a ResponseMsg on the nonce's shard: verify against the
     * expected response, apply the lockout policy, cache the decision
     * for replay. Caller holds @p sh's mutex.
     */
    FlowOutput onResponse(SessionShard &sh,
                          const protocol::ResponseMsg &msg)
        AUTH_REQUIRES(sh.mutex);

  private:
    SessionManager &sessions;
    DeviceDirectory &devices;
    ChallengeGenerator &generator;
    const Verifier &verify;
};

} // namespace authenticache::server

#endif // AUTH_SERVER_AUTH_FLOW_HPP
