#include "server/heartbeat_flow.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/logging.hpp"

namespace authenticache::server {

FlowOutput
HeartbeatFlow::start(SessionShard &sh, std::uint64_t device_id)
{
    FlowOutput out;
    if (!devices.contains(device_id)) {
        out.replies.push_back(protocol::ErrorMsg{"unknown device"});
        return out;
    }
    DeviceRecord &record = devices.at(device_id);
    if (record.revoked()) {
        out.replies.push_back(protocol::ErrorMsg{"device revoked"});
        return out;
    }
    if (record.locked()) {
        out.replies.push_back(protocol::ErrorMsg{"device locked"});
        return out;
    }
    if (record.reenrollRequired()) {
        out.replies.push_back(
            protocol::ErrorMsg{"re-enrollment required"});
        return out;
    }
    if (sh.heartbeats.count(device_id) != 0) {
        out.replies.push_back(
            protocol::ErrorMsg{"heartbeat already active"});
        return out;
    }

    const TrustPolicy &pol = sessions.config().trust;
    record.setTrustScore(std::min(pol.initial, pol.max));
    if (sessions.journalingEnabled())
        sh.wal.push_back(journal::TrustUpdate{
            device_id, record.trustScore(), record.remapBudgetUsed(),
            record.reenrollRequired()});

    HeartbeatSession session;
    session.deviceId = device_id;
    session.stepUp = record.trustScore() < pol.stepUpBelow;
    auto it = sh.heartbeats.emplace(device_id, session).first;
    issueRound(sh, it->second, out);
    return out;
}

void
HeartbeatFlow::issueRound(SessionShard &sh, HeartbeatSession &session,
                          FlowOutput &out)
{
    DeviceRecord &record = devices.at(session.deviceId);
    const ServerConfig &cfg = sessions.config();
    const auto &levels = record.challengeLevels();
    const std::uint64_t device = session.deviceId;

    // A session that cannot issue its next round (no levels / pair
    // supply exhausted) is torn down rather than left to strand
    // wheel entries forever. (Inlined rather than a lambda: the
    // thread-safety analysis treats lambdas as lock-unaware
    // functions; see SessionManager::sumCounter.)
    std::string abort_reason;
    GeneratedChallenge gen;
    if (levels.empty()) {
        abort_reason = "no challenge levels";
    } else {
        util::Rng &rng = sessions.deviceRng(sh, device);
        core::VddMv level = levels[rng.nextBelow(levels.size())];
        const std::size_t bits = session.stepUp
                                     ? cfg.challengeBits
                                     : cfg.trust.heartbeatBits;
        try {
            gen = generator.generate(record, level, bits, rng,
                                     sh.evalScratch);
        } catch (const std::runtime_error &e) {
            abort_reason = e.what();
        }
    }
    if (!abort_reason.empty()) {
        if (session.activeNonce != 0)
            sh.heartbeatByNonce.erase(session.activeNonce);
        sh.heartbeats.erase(device);
        out.replies.push_back(
            protocol::ErrorMsg{std::move(abort_reason)});
        return;
    }

    // Retire-before-reply, same as AuthFlow.
    if (sessions.journalingEnabled())
        sh.wal.push_back(
            journal::PairsRetired{device, std::move(gen.retired)});

    const std::uint64_t nonce =
        sessions.makeNonce(sh, sessions.deviceRng(sh, device));
    session.expected = std::move(gen.expected);
    session.activeNonce = nonce;
    ++session.seq;
    // Clamped to >= 1: the re-armed entry must land strictly after
    // the tick that issued it, or the cadence walk would never drain.
    session.nextDue =
        sessions.currentStep() +
        std::max<std::uint64_t>(1, cfg.trust.periodSteps);
    sh.heartbeatByNonce[nonce] = device;
    sh.heartbeatWheel.emplace(session.nextDue, device);

    protocol::Heartbeat beat;
    beat.nonce = nonce;
    beat.seq = session.seq;
    beat.challenge = std::move(gen.challenge);
    out.replies.push_back(std::move(beat));
}

FlowOutput
HeartbeatFlow::onProof(SessionShard &sh,
                       const protocol::HeartbeatProof &msg)
{
    FlowOutput out;
    auto route = sh.heartbeatByNonce.find(msg.nonce);
    if (route == sh.heartbeatByNonce.end()) {
        // Retransmitted proof for an answered round: replay the
        // original verdict, never double-count it into the ledger.
        if (const protocol::Message *done =
                sh.findCompleted(msg.nonce)) {
            ++sh.counters.dupCompletions;
            out.replies.push_back(*done);
            return out;
        }
        out.replies.push_back(
            protocol::ErrorMsg{"unknown heartbeat nonce"});
        return out;
    }
    const std::uint64_t device = route->second;
    auto hb = sh.heartbeats.find(device);
    if (hb == sh.heartbeats.end() ||
        hb->second.activeNonce != msg.nonce) {
        sh.heartbeatByNonce.erase(route);
        out.replies.push_back(
            protocol::ErrorMsg{"unknown heartbeat nonce"});
        return out;
    }
    HeartbeatSession &session = hb->second;
    sh.heartbeatByNonce.erase(route);
    session.activeNonce = 0;

    Verdict verdict = verify.verify(session.expected, msg.response);
    const TrustPolicy &pol = sessions.config().trust;
    const bool marginal =
        verdict.accepted && verdict.threshold > 0 &&
        static_cast<std::uint64_t>(verdict.hammingDistance) * 100 >=
            static_cast<std::uint64_t>(verdict.threshold) *
                pol.marginPercent;
    applyVerdict(sh, session, msg.nonce, verdict.accepted,
                 verdict.hammingDistance, marginal, out);
    return out;
}

std::vector<FlowOutput>
HeartbeatFlow::tick(SessionShard &sh, std::uint64_t now)
{
    std::vector<FlowOutput> outs;
    // Drain every due wheel entry *before* processing any of them:
    // issueRound re-arms a session by inserting a fresh entry, and a
    // saved end iterator would walk into it (a new last element sits
    // before the end() sentinel), scoring rounds issued this very
    // tick as missed. Entries are validated lazily against the
    // session's current nextDue.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> due;
    for (auto it = sh.heartbeatWheel.begin();
         it != sh.heartbeatWheel.end() && it->first <= now;
         it = sh.heartbeatWheel.erase(it))
        due.emplace_back(it->first, it->second);
    for (const auto &[when, device] : due) {
        auto hb = sh.heartbeats.find(device);
        if (hb == sh.heartbeats.end() || hb->second.nextDue != when)
            continue; // Stale entry (stopped or re-armed session).
        FlowOutput out;
        if (hb->second.activeNonce != 0) {
            // The proof never arrived: a dead (or cloned) client
            // drains trust instead of holding it, which bounds the
            // CRP burn of an abandoned session via revocation.
            sh.heartbeatByNonce.erase(hb->second.activeNonce);
            hb->second.activeNonce = 0;
            applyVerdict(sh, hb->second, 0, false, 0, false, out);
            hb = sh.heartbeats.find(device);
        }
        if (hb != sh.heartbeats.end())
            issueRound(sh, hb->second, out);
        outs.push_back(std::move(out));
    }
    return outs;
}

bool
HeartbeatFlow::stop(SessionShard &sh, std::uint64_t device_id)
{
    auto hb = sh.heartbeats.find(device_id);
    if (hb == sh.heartbeats.end())
        return false;
    if (hb->second.activeNonce != 0)
        sh.heartbeatByNonce.erase(hb->second.activeNonce);
    sh.heartbeats.erase(hb);
    return true;
}

void
HeartbeatFlow::applyVerdict(SessionShard &sh,
                            HeartbeatSession &session,
                            std::uint64_t nonce, bool accepted,
                            std::uint32_t hamming_distance,
                            bool marginal, FlowOutput &out)
{
    const ServerConfig &cfg = sessions.config();
    const TrustPolicy &pol = cfg.trust;
    const std::uint64_t device = session.deviceId;
    DeviceRecord &record = devices.at(device);

    if (!accepted)
        ++sh.counters.heartbeatsFailed;
    else if (marginal)
        ++sh.counters.heartbeatsMarginal;
    else
        ++sh.counters.heartbeatsClean;

    std::uint32_t trust = record.trustScore();
    if (!accepted) {
        trust = trust > pol.failPenalty ? trust - pol.failPenalty : 0;
    } else if (marginal) {
        trust = trust > pol.marginalPenalty
                    ? trust - pol.marginalPenalty
                    : 0;
    } else {
        trust = static_cast<std::uint32_t>(std::min<std::uint64_t>(
            static_cast<std::uint64_t>(trust) + pol.cleanRecovery,
            pol.max));
    }
    if (trust < record.trustScore())
        ++sh.counters.trustDecays;
    record.setTrustScore(trust);

    // Degradation ladder, most severe tier first.
    protocol::TrustTier tier = protocol::TrustTier::Nominal;
    bool revoked_now = false;
    if (trust < pol.revokeBelow) {
        tier = protocol::TrustTier::Revoked;
        revoked_now = true;
        record.revoke();
        ++sh.counters.revocations;
        AUTH_LOG_WARN("server.heartbeat")
            << "device " << device << " revoked at trust " << trust;
    } else if (trust < pol.remapBelow) {
        if (record.remapBudgetUsed() < pol.remapBudget) {
            // Proactive remap: refresh the logical map before auth
            // becomes unreliable, and grant back enough trust to
            // keep the session off the revocation edge while the
            // fresh map takes effect.
            record.setRemapBudgetUsed(record.remapBudgetUsed() + 1);
            trust = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(
                    static_cast<std::uint64_t>(trust) +
                        pol.remapRecovery,
                    pol.max));
            record.setTrustScore(trust);
            tier = protocol::TrustTier::RemapScheduled;
            ++sh.counters.proactiveRemaps;
        } else {
            tier = protocol::TrustTier::ReenrollRequired;
            record.setReenrollRequired(true);
            AUTH_LOG_WARN("server.heartbeat")
                << "device " << device
                << " remap budget exhausted; re-enrollment required";
        }
    }
    if (!revoked_now && tier != protocol::TrustTier::ReenrollRequired) {
        const bool want_step_up = trust < pol.stepUpBelow;
        if (want_step_up && !session.stepUp)
            ++sh.counters.stepUps;
        session.stepUp = want_step_up;
        if (want_step_up && tier == protocol::TrustTier::Nominal)
            tier = protocol::TrustTier::StepUp;
    }

    // Journal the absolute post-adjustment state before anything that
    // discloses it; revocation follows as its own event so every
    // event-stream prefix stays consistent.
    if (sessions.journalingEnabled()) {
        sh.wal.push_back(journal::TrustUpdate{
            device, trust, record.remapBudgetUsed(),
            record.reenrollRequired()});
        if (revoked_now)
            sh.wal.push_back(journal::DeviceRevoked{device});
    }

    // Verdict reply (absent for a missed round: nothing asked).
    if (nonce != 0) {
        protocol::TrustUpdate verdict;
        verdict.nonce = nonce;
        verdict.trust = trust;
        verdict.tier = static_cast<std::uint8_t>(tier);
        verdict.accepted = accepted;
        verdict.hammingDistance = hamming_distance;
        sh.cacheCompleted(nonce, verdict, cfg.completedCacheSize);
        out.replies.push_back(std::move(verdict));
    }

    if (tier == protocol::TrustTier::RemapScheduled) {
        // Same locked shard: the remap flow's replies (and any
        // opened-nonce ranking) ride this frame's FlowOutput.
        FlowOutput remap_out = remap.start(sh, device);
        for (auto &reply : remap_out.replies)
            out.replies.push_back(std::move(reply));
        if (remap_out.openedNonce)
            out.openedNonce = remap_out.openedNonce;
    }
    if (revoked_now)
        out.replies.push_back(
            protocol::Revoke{device, "trust exhausted"});
    if (revoked_now || tier == protocol::TrustTier::ReenrollRequired)
        sh.heartbeats.erase(device);
}

} // namespace authenticache::server
