#include "server/database.hpp"

#include <algorithm>

#include "core/crp.hpp"

namespace authenticache::server {

DeviceRecord::DeviceRecord(std::uint64_t device_id,
                           core::ErrorMap physical_map,
                           std::vector<core::VddMv> challenge_levels,
                           std::vector<core::VddMv> reserved_levels)
    : id(device_id),
      map(std::move(physical_map)),
      authLevels(std::move(challenge_levels)),
      remapLevels(std::move(reserved_levels))
{
    // A level must not serve both roles: remap responses are secret.
    for (auto level : authLevels) {
        if (std::find(remapLevels.begin(), remapLevels.end(), level) !=
            remapLevels.end()) {
            throw std::invalid_argument(
                "DeviceRecord: level both challenge and reserved");
        }
    }
}

const core::LogicalRemap &
DeviceRecord::logicalRemap() const
{
    if (!remapCache)
        remapCache = std::make_shared<core::LogicalRemap>(
            key, map.geometry());
    return *remapCache;
}

const core::ErrorMap &
DeviceRecord::logicalMap() const
{
    const core::LogicalRemap &remap = logicalRemap();
    if (remap.isIdentity())
        return map;
    if (!logicalCache)
        logicalCache = std::make_shared<core::ErrorMap>(
            remap.mapErrorMap(map));
    return *logicalCache;
}

const core::ErrorIndexMap &
DeviceRecord::logicalIndexes() const
{
    if (!indexCache)
        indexCache = std::make_shared<core::ErrorIndexMap>(
            core::buildErrorIndexes(logicalMap()));
    return *indexCache;
}

std::uint64_t
DeviceRecord::pairKey(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t lo = std::min(a, b);
    std::uint64_t hi = std::max(a, b);
    // Exact encoding: line indices are < 2^32 for any realistic cache.
    return (lo << 32) | hi;
}

bool
DeviceRecord::consumePair(core::VddMv level, std::uint64_t line_a,
                          std::uint64_t line_b)
{
    return consumed[level].insert(pairKey(line_a, line_b)).second;
}

bool
DeviceRecord::pairAvailable(core::VddMv level, std::uint64_t line_a,
                            std::uint64_t line_b) const
{
    auto it = consumed.find(level);
    if (it == consumed.end())
        return true;
    return it->second.count(pairKey(line_a, line_b)) == 0;
}

bool
DeviceRecord::consumeMixedPair(core::VddMv level_a,
                               std::uint64_t line_a,
                               core::VddMv level_b,
                               std::uint64_t line_b)
{
    if (level_a == level_b)
        return consumePair(level_a, line_a, line_b);
    std::array<std::uint64_t, 4> key_a{level_a, line_a, level_b,
                                       line_b};
    std::array<std::uint64_t, 4> key_b{level_b, line_b, level_a,
                                       line_a};
    const auto &canonical = key_a < key_b ? key_a : key_b;
    return mixed.insert(canonical).second;
}

std::size_t
DeviceRecord::consumedCount(core::VddMv level) const
{
    auto it = consumed.find(level);
    return it == consumed.end() ? 0 : it->second.size();
}

std::uint64_t
DeviceRecord::remainingPairs(core::VddMv level) const
{
    return core::possibleCrps(map.geometry().lines()) -
           consumedCount(level);
}

DeviceRecord &
EnrollmentDatabase::enroll(DeviceRecord record)
{
    std::uint64_t id = record.deviceId();
    auto [it, inserted] = records.emplace(id, std::move(record));
    if (!inserted)
        throw std::invalid_argument(
            "EnrollmentDatabase: device already enrolled");
    return it->second;
}

bool
EnrollmentDatabase::contains(std::uint64_t device_id) const
{
    return records.count(device_id) > 0;
}

DeviceRecord &
EnrollmentDatabase::at(std::uint64_t device_id)
{
    auto it = records.find(device_id);
    if (it == records.end())
        throw std::out_of_range("EnrollmentDatabase: unknown device");
    return it->second;
}

const DeviceRecord &
EnrollmentDatabase::at(std::uint64_t device_id) const
{
    auto it = records.find(device_id);
    if (it == records.end())
        throw std::out_of_range("EnrollmentDatabase: unknown device");
    return it->second;
}

} // namespace authenticache::server
