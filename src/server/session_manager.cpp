#include "server/session_manager.hpp"

#include <string>

#include "util/logging.hpp"

namespace authenticache::server {

namespace {

/** SplitMix64 finalizer: device ids are often small and sequential,
 *  so spread them over the shards with a full-avalanche mix. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::uint64_t
roundUpPowerOfTwo(std::uint64_t n)
{
    if (n <= 1)
        return 1;
    --n;
    for (unsigned shift = 1; shift < 64; shift <<= 1)
        n |= n >> shift;
    return n + 1;
}

} // namespace

void
SessionShard::noteDeadline(std::uint64_t nonce, std::uint64_t deadline)
{
    if (deadline != 0)
        deadlineWheel.emplace(deadline, nonce);
}

void
SessionShard::cacheCompleted(std::uint64_t nonce,
                             protocol::Message reply,
                             std::size_t cache_size)
{
    if (cache_size == 0)
        return;
    if (completed.emplace(nonce, std::move(reply)).second)
        completedOrder.push_back(nonce);
    while (completed.size() > cache_size) {
        completed.erase(completedOrder.front());
        completedOrder.pop_front();
    }
}

const protocol::Message *
SessionShard::findCompleted(std::uint64_t nonce) const
{
    auto it = completed.find(nonce);
    return it == completed.end() ? nullptr : &it->second;
}

void
SessionShard::forgetActiveAuth(std::uint64_t device_id,
                               std::uint64_t nonce)
{
    auto it = activeAuthByDevice.find(device_id);
    if (it != activeAuthByDevice.end() && it->second == nonce)
        activeAuthByDevice.erase(it);
}

void
SessionShard::expire(std::uint64_t now)
{
    // Walk the wheel up to `now`; entries are validated lazily against
    // the live session's *current* deadline, so a dup-request deadline
    // refresh simply strands the old entry (skipped here) while the
    // refreshed one fires later.
    auto end = deadlineWheel.upper_bound(now);
    for (auto it = deadlineWheel.begin(); it != end;
         it = deadlineWheel.erase(it)) {
        const std::uint64_t nonce = it->second;
        auto auth = pendingAuths.find(nonce);
        if (auth != pendingAuths.end()) {
            if (auth->second.deadline == 0 ||
                auth->second.deadline > now)
                continue; // Refreshed since this entry was queued.
            // Consumed pairs stay retired; the nonce is simply dead.
            forgetActiveAuth(auth->second.deviceId, nonce);
            pendingAuths.erase(auth);
            ++counters.expired;
            continue;
        }
        auto remap = pendingRemaps.find(nonce);
        if (remap != pendingRemaps.end()) {
            if (remap->second.deadline == 0 ||
                remap->second.deadline > now)
                continue;
            pendingRemaps.erase(remap);
            ++counters.expired;
        }
    }
}

bool
SessionShard::evict(std::uint64_t nonce)
{
    // The nonce may already have completed; eviction only counts when
    // something was actually dropped.
    auto auth = pendingAuths.find(nonce);
    if (auth != pendingAuths.end()) {
        forgetActiveAuth(auth->second.deviceId, nonce);
        pendingAuths.erase(auth);
        ++counters.evicted;
        AUTH_LOG_WARN("server.sessions")
            << "pending-session cap: evicted nonce " << nonce;
        return true;
    }
    if (pendingRemaps.erase(nonce) > 0) {
        ++counters.evicted;
        AUTH_LOG_WARN("server.sessions")
            << "pending-session cap: evicted nonce " << nonce;
        return true;
    }
    return false;
}

SessionManager::SessionManager(const ServerConfig &config,
                               std::uint64_t seed)
    : cfg(config), masterSeed(seed)
{
    const std::uint64_t count = roundUpPowerOfTwo(
        config.sessionShards == 0 ? 1 : config.sessionShards);
    shardMask = count - 1;
    shards.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        shards.push_back(std::make_unique<SessionShard>());
        shards.back()->index = static_cast<unsigned>(i);
    }
}

unsigned
SessionManager::shardIndexForDevice(std::uint64_t device_id) const
{
    return static_cast<unsigned>(mix64(device_id) & shardMask);
}

util::Rng &
SessionManager::deviceRng(SessionShard &sh, std::uint64_t device_id)
{
    auto it = sh.deviceRngs.find(device_id);
    if (it == sh.deviceRngs.end()) {
        it = sh.deviceRngs
                 .emplace(device_id,
                          util::Rng::forStream(masterSeed, device_id))
                 .first;
    }
    return it->second;
}

std::uint64_t
SessionManager::makeNonce(const SessionShard &sh, util::Rng &rng) const
{
    return (rng.next() & ~shardMask) |
           static_cast<std::uint64_t>(sh.index);
}

std::uint64_t
SessionManager::sessionDeadline() const
{
    if (!simClock || cfg.sessionTimeoutSteps == 0)
        return 0;
    return simClock->now() + cfg.sessionTimeoutSteps;
}

void
SessionManager::expireAll()
{
    if (!simClock || cfg.sessionTimeoutSteps == 0)
        return;
    const std::uint64_t now = simClock->now();
    for (auto &sh : shards) {
        util::MutexLock guard(sh->mutex);
        sh->expire(now);
    }
}

std::uint64_t
SessionManager::reserveOrdinals(std::size_t count)
{
    const std::uint64_t base = nextOrdinal;
    nextOrdinal += count;
    return base;
}

void
SessionManager::registerOpen(std::uint64_t ordinal, std::uint64_t nonce)
{
    pendingByOrdinal.emplace(ordinal, nonce);
}

void
SessionManager::enforceCap()
{
    std::size_t total = totalPending();
    while (total > cfg.maxPendingSessions &&
           !pendingByOrdinal.empty()) {
        auto oldest = pendingByOrdinal.begin();
        const std::uint64_t victim = oldest->second;
        pendingByOrdinal.erase(oldest);
        SessionShard &sh = shardForNonce(victim);
        util::MutexLock guard(sh.mutex);
        if (sh.evict(victim))
            --total; // Stale entries (completed nonces) just drop out.
    }
    compactOrdinals();
}

void
SessionManager::compactOrdinals()
{
    // Completed sessions leave stale nonces in the ordinal map (lazy
    // deletion); compact before it grows past a small multiple of the
    // live set.
    if (pendingByOrdinal.size() <= 4 * (cfg.maxPendingSessions + 1))
        return;
    for (auto it = pendingByOrdinal.begin();
         it != pendingByOrdinal.end();) {
        SessionShard &sh = shardForNonce(it->second);
        util::MutexLock guard(sh.mutex);
        if (sh.pendingAuths.count(it->second) ||
            sh.pendingRemaps.count(it->second))
            ++it;
        else
            it = pendingByOrdinal.erase(it);
    }
}

std::size_t
SessionManager::totalPending() const
{
    std::size_t total = 0;
    for (const auto &sh : shards) {
        util::MutexLock guard(sh->mutex);
        total += sh->pending();
    }
    return total;
}

std::uint64_t
SessionManager::sessionsEvicted() const
{
    return sumCounter(&ShardCounters::evicted);
}

std::uint64_t
SessionManager::sessionsExpired() const
{
    return sumCounter(&ShardCounters::expired);
}

std::uint64_t
SessionManager::duplicateRequests() const
{
    return sumCounter(&ShardCounters::dupRequests);
}

std::uint64_t
SessionManager::duplicateCompletions() const
{
    return sumCounter(&ShardCounters::dupCompletions);
}

std::uint64_t
SessionManager::remapsCommitted() const
{
    return sumCounter(&ShardCounters::remapsCommitted);
}

std::uint64_t
SessionManager::remapsRejected() const
{
    return sumCounter(&ShardCounters::remapsRejected);
}

std::uint64_t
SessionManager::lockouts() const
{
    return sumCounter(&ShardCounters::lockouts);
}

std::uint64_t
SessionManager::trustDecays() const
{
    return sumCounter(&ShardCounters::trustDecays);
}

std::uint64_t
SessionManager::stepUps() const
{
    return sumCounter(&ShardCounters::stepUps);
}

std::uint64_t
SessionManager::proactiveRemaps() const
{
    return sumCounter(&ShardCounters::proactiveRemaps);
}

std::uint64_t
SessionManager::revocations() const
{
    return sumCounter(&ShardCounters::revocations);
}

std::uint64_t
SessionManager::heartbeatsClean() const
{
    return sumCounter(&ShardCounters::heartbeatsClean);
}

std::uint64_t
SessionManager::heartbeatsMarginal() const
{
    return sumCounter(&ShardCounters::heartbeatsMarginal);
}

std::uint64_t
SessionManager::heartbeatsFailed() const
{
    return sumCounter(&ShardCounters::heartbeatsFailed);
}

std::size_t
SessionManager::activeHeartbeats() const
{
    std::size_t total = 0;
    for (const auto &sh : shards) {
        util::MutexLock guard(sh->mutex);
        total += sh->heartbeats.size();
    }
    return total;
}

void
SessionManager::collectStats(util::StatsRegistry &registry,
                             const std::string &component) const
{
    for (const auto &sh : shards) {
        util::MutexLock guard(sh->mutex);
        const std::string name =
            component + ".shard" + std::to_string(sh->index);
        registry.set(name, "sessions_active",
                     std::uint64_t(sh->pending()));
        registry.set(name, "dedup_hits", sh->counters.dupRequests);
        registry.set(name, "replay_cache_hits",
                     sh->counters.dupCompletions);
        registry.set(name, "gc_evictions", sh->counters.expired);
        registry.set(name, "cap_evictions", sh->counters.evicted);
        registry.set(name, "lockouts", sh->counters.lockouts);
        registry.set(name, "heartbeats_active",
                     std::uint64_t(sh->heartbeats.size()));
        registry.set(name, "trust_decays", sh->counters.trustDecays);
    }
}

} // namespace authenticache::server
