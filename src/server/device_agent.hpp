/**
 * @file
 * The device-side protocol agent and its retry policy, split out of
 * the server header: the agent bridges the wire protocol to the
 * firmware client and runs the client half of the reliability layer
 * (paper Sec 2.1, 4.2-4.5).
 */

#ifndef AUTH_SERVER_DEVICE_AGENT_HPP
#define AUTH_SERVER_DEVICE_AGENT_HPP

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "crypto/key.hpp"
#include "firmware/client.hpp"
#include "protocol/channel.hpp"
#include "util/sim_clock.hpp"

namespace authenticache::server {

/**
 * Client-side retry knobs; all time in simulated clock steps.
 * Attempt k (k = 0 for the original send) is declared lost after
 *
 *     timeoutSteps + min(capSteps, baseSteps << (k-1)) + jitter(k)
 *
 * steps (no backoff on the first attempt), where jitter(k) is drawn
 * deterministically from Rng::forStream(jitterSeed, k) -- the same
 * policy and seed always produce the same schedule.
 */
struct RetryPolicy
{
    /** Per-attempt reply deadline. */
    std::uint64_t timeoutSteps = 12;

    /** Total send attempts (original + retransmissions). */
    std::uint32_t maxAttempts = 4;

    /** Exponential backoff base, doubling per retransmission. */
    std::uint64_t backoffBaseSteps = 2;

    /** Backoff ceiling. */
    std::uint64_t backoffCapSteps = 32;

    /** Deterministic jitter drawn uniformly from [0, jitterSteps]. */
    std::uint64_t jitterSteps = 2;
    std::uint64_t jitterSeed = 0x0BACC0FF;

    /** Deadline of attempt @p attempt sent at @p now. */
    std::uint64_t deadlineFor(std::uint64_t now,
                              std::uint32_t attempt) const;
};

/**
 * Device-side protocol agent: bridges the wire protocol to the
 * firmware client, and (when a clock is bound) runs the retry state
 * machine: per-request timeout, bounded exponential backoff with
 * deterministic jitter, and a clean TimedOut outcome once the
 * retransmission budget is exhausted -- a lost frame can no longer
 * wedge an exchange.
 */
class DeviceAgent
{
  public:
    DeviceAgent(std::uint64_t device_id,
                firmware::AuthenticacheClient &client,
                protocol::ClientEndpoint endpoint);

    /** Kick off an authentication round. */
    void requestAuthentication();

    /** Handle one queued message, if any. @return message handled. */
    bool pumpOnce();

    /** Drain the endpoint until idle. */
    void pumpAll();

    /** Bind the simulated clock enabling timeouts (not owned). */
    void bindClock(const util::SimClock *clk) { simClock = clk; }

    void setRetryPolicy(const RetryPolicy &p) { policy = p; }

    /**
     * Drive the retry state machine one step: retransmit anything
     * past its deadline, or fail the session once the budget is gone.
     * No-op without a bound clock. @return true when it acted.
     */
    bool tick();

    /**
     * An exchange is still in flight: an authentication awaiting its
     * challenge or decision, or a remap awaiting its commit.
     * Heartbeat rounds are deliberately *not* counted: a continuous
     * session never quiesces, so it must not keep stepped drivers
     * (runExchangeSteps) from declaring the foreground work done.
     */
    bool sessionActive() const
    {
        return authPhase != AuthPhase::Idle || !awaitCommit.empty();
    }

    /**
     * How the last authentication round ended: Ok (decision
     * received), Aborted (firmware refused), or TimedOut (retries
     * exhausted). Empty while in flight or before the first round.
     */
    const std::optional<firmware::AuthOutcome::Status> &
    lastAuthStatus() const
    {
        return authStatus;
    }

    /** Decision from the most recent completed authentication. */
    const std::optional<protocol::AuthDecision> &lastDecision() const
    {
        return decision;
    }

    /** Protocol-level errors received. */
    const std::vector<std::string> &errors() const { return errorLog; }

    std::uint64_t remapsProcessed() const { return nRemaps; }

    /** Remap exchanges abandoned after exhausting retransmissions. */
    std::uint64_t remapsTimedOut() const { return nRemapsTimedOut; }

    /** Frames retransmitted by the retry state machine. */
    std::uint64_t retransmissions() const { return nRetransmits; }

    /** Trust score from the most recent TrustUpdate, if any. */
    const std::optional<std::uint32_t> &lastTrust() const
    {
        return trustScore;
    }

    /** Trust tier from the most recent TrustUpdate, if any. */
    const std::optional<std::uint8_t> &lastTier() const
    {
        return trustTier;
    }

    /** Full verdict from the most recent TrustUpdate, if any. */
    const std::optional<protocol::TrustUpdate> &lastVerdict() const
    {
        return lastVerdictMsg;
    }

    /** The server revoked this device's heartbeat session. */
    bool revoked() const { return isRevoked; }

    /** Heartbeat challenges answered (fresh, not cached replays). */
    std::uint64_t heartbeatsAnswered() const { return nHeartbeats; }

  private:
    enum class AuthPhase
    {
        Idle,
        AwaitChallenge,
        AwaitDecision,
    };

    /** A sent frame we may have to retransmit. */
    struct OutstandingSend
    {
        protocol::Message frame;
        std::uint32_t attempt = 0;
        std::uint64_t deadline = 0;
    };

    void armAuthSend(protocol::Message frame);
    void failAuthSession();
    void answerChallenge(const protocol::ChallengeMsg &ch);
    void answerHeartbeat(const protocol::Heartbeat &hb);

    std::uint64_t deviceId;
    firmware::AuthenticacheClient &client;
    protocol::ClientEndpoint endpoint;
    const util::SimClock *simClock = nullptr;
    RetryPolicy policy;
    std::optional<protocol::AuthDecision> decision;
    std::optional<firmware::AuthOutcome::Status> authStatus;
    AuthPhase authPhase = AuthPhase::Idle;
    OutstandingSend authSend;
    /** Answered auth nonces -> cached response (bounded FIFO). */
    std::unordered_map<std::uint64_t, protocol::ResponseMsg>
        answeredAuths;
    std::deque<std::uint64_t> answeredOrder;
    /** Remap nonce -> ack awaiting the server's commit. */
    std::unordered_map<std::uint64_t, OutstandingSend> awaitCommit;
    /** Answered heartbeat nonces -> cached proof (bounded FIFO). */
    std::unordered_map<std::uint64_t, protocol::HeartbeatProof>
        answeredHeartbeats;
    std::deque<std::uint64_t> heartbeatOrder;
    /** Heartbeat nonce -> proof awaiting the server's TrustUpdate. */
    std::unordered_map<std::uint64_t, OutstandingSend> awaitVerdict;
    std::vector<std::string> errorLog;
    std::uint64_t nRemaps = 0;
    std::uint64_t nRemapsTimedOut = 0;
    std::uint64_t nRetransmits = 0;
    std::unordered_map<std::uint64_t, crypto::Key256>
        pendingRemapKeys;
    std::optional<std::uint32_t> trustScore;
    std::optional<std::uint8_t> trustTier;
    std::optional<protocol::TrustUpdate> lastVerdictMsg;
    bool isRevoked = false;
    std::uint64_t nHeartbeats = 0;
};

} // namespace authenticache::server

#endif // AUTH_SERVER_DEVICE_AGENT_HPP
