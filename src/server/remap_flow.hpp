/**
 * @file
 * State machine for the server-initiated adaptive remap exchange
 * (RemapRequest -> RemapAck -> RemapCommit, paper Sec 4.4-4.5).
 * Mirrors AuthFlow: operates on a locked session shard, returns a
 * FlowOutput instead of touching a channel. Precondition failures
 * (device without reserved levels, exhausted pair supply) surface as
 * protocol-level ErrorMsg rejects, never as exceptions.
 */

#ifndef AUTH_SERVER_REMAP_FLOW_HPP
#define AUTH_SERVER_REMAP_FLOW_HPP

#include <cstdint>

#include "server/auth_flow.hpp"

namespace authenticache::server {

class RemapFlow
{
  public:
    RemapFlow(SessionManager &sessions_, DeviceDirectory &devices_,
              ChallengeGenerator &generator_)
        : sessions(sessions_), devices(devices_), generator(generator_)
    {
    }

    /**
     * Phase 0 (server-initiated): derive a fresh key from a reserved
     * level, open the pending exchange, emit the RemapRequest. Caller
     * holds @p sh's mutex; @p sh is the device's shard. Devices with
     * no reserved levels or an exhausted pair supply get an ErrorMsg
     * reject instead of an exception.
     */
    FlowOutput start(SessionShard &sh, std::uint64_t device_id)
        AUTH_REQUIRES(sh.mutex);

    /**
     * Phase 2: check the client's key-confirmation MAC and commit or
     * reject (two-phase: keys switch only on proof of agreement).
     * Caller holds @p sh's mutex.
     */
    FlowOutput onAck(SessionShard &sh, const protocol::RemapAck &msg)
        AUTH_REQUIRES(sh.mutex);

  private:
    SessionManager &sessions;
    DeviceDirectory &devices;
    ChallengeGenerator &generator;
};

} // namespace authenticache::server

#endif // AUTH_SERVER_REMAP_FLOW_HPP
