#include "server/durable_io.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

namespace authenticache::server {

namespace {

[[noreturn]] void
throwErrno(const std::string &what)
{
    throw std::runtime_error(what + ": " + std::strerror(errno));
}

void
writeFully(int fd, const std::uint8_t *data, std::size_t n,
           const char *tag)
{
    std::size_t done = 0;
    while (done < n) {
        ssize_t w = ::write(fd, data + done, n - done);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            throwErrno(std::string("write failed at ") + tag);
        }
        done += static_cast<std::size_t>(w);
    }
}

} // namespace

void
FdGuard::reset(int replacement)
{
    if (fd >= 0)
        ::close(fd);
    fd = replacement;
}

void
writeAllOrCrash(int fd, std::span<const std::uint8_t> bytes,
                CrashInjector *inj, const char *tag)
{
    if (inj != nullptr) {
        if (auto prefix = inj->writeCrash(bytes.size(), tag)) {
            writeFully(fd, bytes.data(), *prefix, tag);
            // The torn prefix must be *on disk* for recovery to see
            // it -- a simulated dying process cannot rely on the page
            // cache, but the test's recovery pass reads the same
            // filesystem, so flushing the fd is enough.
            ::fsync(fd);
            throw CrashException(tag);
        }
    }
    writeFully(fd, bytes.data(), bytes.size(), tag);
}

void
fsyncFd(int fd, const std::string &what)
{
    if (::fsync(fd) != 0)
        throwErrno("fsync failed for " + what);
}

void
fsyncParentDir(const std::string &path)
{
    auto slash = path.find_last_of('/');
    std::string dir = slash == std::string::npos
                          ? std::string(".")
                          : path.substr(0, slash == 0 ? 1 : slash);
    FdGuard fd(::open(dir.c_str(), O_RDONLY | O_DIRECTORY));
    if (!fd.valid())
        return; // Some filesystems refuse directory opens; best effort.
    ::fsync(fd.get());
}

void
atomicWriteFile(const std::string &path,
                std::span<const std::uint8_t> bytes, CrashInjector *inj,
                const char *tag)
{
    const std::string tmp = path + ".tmp";
    const std::string t(tag);
    {
        FdGuard fd(::open(tmp.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                          0644));
        if (!fd.valid())
            throwErrno("atomicWriteFile: cannot create " + tmp);
        writeAllOrCrash(fd.get(), bytes, inj, tag);
        if (inj != nullptr)
            inj->point((t + ".fsync").c_str());
        fsyncFd(fd.get(), tmp);
    }
    if (inj != nullptr)
        inj->point((t + ".rename").c_str());
    if (::rename(tmp.c_str(), path.c_str()) != 0)
        throwErrno("atomicWriteFile: rename to " + path);
    if (inj != nullptr)
        inj->point((t + ".dirsync").c_str());
    fsyncParentDir(path);
}

} // namespace authenticache::server
