/**
 * @file
 * Low-level durable-write primitives shared by the snapshot writer
 * (server/storage.cpp) and the write-ahead journal (server/journal.*):
 * fsync'd appends, atomic whole-file replacement (write temp + fsync +
 * rename + parent-directory fsync), and the deterministic crash
 * injector the recovery sweep uses to kill the process at every
 * durability-relevant step.
 *
 * Crash model: a crash may interrupt a write at an arbitrary byte
 * offset and may strike between any two syscalls, but completed
 * fsyncs are durable and rename(2) on a single filesystem is atomic.
 * The injector realizes exactly this model in-process by throwing
 * CrashException after a chosen prefix of the side effects.
 */

#ifndef AUTH_SERVER_DURABLE_IO_HPP
#define AUTH_SERVER_DURABLE_IO_HPP

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>

namespace authenticache::server {

/** Simulated process death, thrown by an armed CrashInjector. */
class CrashException : public std::runtime_error
{
  public:
    explicit CrashException(const std::string &tag)
        : std::runtime_error("crash injected at " + tag)
    {
    }
};

/**
 * Deterministic crash-point counter. Every durability-relevant side
 * effect calls point() (whole-step effects: fsync, rename, create,
 * unlink) or writeCrash() (byte-granular writes). Each call burns one
 * or more numbered *opportunities*; when armed, reaching the target
 * opportunity kills the process via CrashException. A disarmed
 * injector only counts, which is how sweeps size themselves: dry-run
 * once, then arm at every opportunity in [0, opportunities()).
 */
class CrashInjector
{
  public:
    /** How finely partial writes are probed. */
    enum class WriteGranularity
    {
        Coarse,   ///< 3 opportunities per write: 0, n/2, n bytes.
        EveryByte ///< n+1 opportunities: every prefix length.
    };

    /** Die at opportunity @p target_opportunity (counter resets). */
    void
    arm(std::uint64_t target_opportunity)
    {
        armed = true;
        target = target_opportunity;
        counter = 0;
    }

    /** Count opportunities without dying (counter resets). */
    void
    disarm()
    {
        armed = false;
        counter = 0;
    }

    void setGranularity(WriteGranularity g) { gran = g; }
    WriteGranularity granularity() const { return gran; }

    /** Opportunities burned since the last arm()/disarm(). */
    std::uint64_t opportunities() const { return counter; }

    /** One all-or-nothing crash opportunity. */
    void
    point(const char *tag)
    {
        if (armed && counter == target) {
            ++counter;
            throw CrashException(tag);
        }
        ++counter;
    }

    /**
     * Crash opportunities for an @p n byte write. Returns the number
     * of bytes the caller must write before dying, or nullopt to
     * write all @p n bytes and live.
     */
    std::optional<std::size_t>
    writeCrash(std::size_t n, const char *tag)
    {
        (void)tag;
        if (gran == WriteGranularity::EveryByte) {
            for (std::size_t k = 0; k <= n; ++k)
                if (burnOne())
                    return k;
        } else {
            const std::size_t offs[3] = {0, n / 2, n};
            for (auto k : offs)
                if (burnOne())
                    return k;
        }
        return std::nullopt;
    }

  private:
    bool
    burnOne()
    {
        bool hit = armed && counter == target;
        ++counter;
        return hit;
    }

    bool armed = false;
    std::uint64_t target = 0;
    std::uint64_t counter = 0;
    WriteGranularity gran = WriteGranularity::Coarse;
};

/** RAII file descriptor (close on scope exit, including crashes). */
class FdGuard
{
  public:
    explicit FdGuard(int fd_ = -1) : fd(fd_) {}
    ~FdGuard() { reset(); }
    FdGuard(const FdGuard &) = delete;
    FdGuard &operator=(const FdGuard &) = delete;

    int get() const { return fd; }
    bool valid() const { return fd >= 0; }

    /** Close now (idempotent). */
    void reset(int replacement = -1);

    /** Give up ownership without closing. */
    int
    release()
    {
        int out = fd;
        fd = -1;
        return out;
    }

  private:
    int fd;
};

/**
 * Write @p bytes to @p fd, honouring the injector's write crash
 * points: a partial prefix is really written (so the file shows a
 * torn write) before CrashException propagates. Throws
 * std::runtime_error on real I/O errors.
 */
void writeAllOrCrash(int fd, std::span<const std::uint8_t> bytes,
                     CrashInjector *inj, const char *tag);

/** fsync a descriptor; throws std::runtime_error on failure. */
void fsyncFd(int fd, const std::string &what);

/** fsync the directory containing @p path (crash-safe rename). */
void fsyncParentDir(const std::string &path);

/**
 * Atomically replace @p path with @p bytes: write "<path>.tmp", fsync
 * it, rename over @p path, fsync the parent directory. A crash at any
 * point leaves either the old file intact or the new file complete --
 * never a torn target. Injector crash points: the write itself
 * (byte-granular), "<tag>.fsync", "<tag>.rename", "<tag>.dirsync".
 */
void atomicWriteFile(const std::string &path,
                     std::span<const std::uint8_t> bytes,
                     CrashInjector *inj = nullptr,
                     const char *tag = "atomic-write");

} // namespace authenticache::server

#endif // AUTH_SERVER_DURABLE_IO_HPP
