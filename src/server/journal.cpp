#include "server/journal.hpp"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

#include "server/storage.hpp"
#include "util/crc32.hpp"

namespace authenticache::server {

/**
 * Befriended accessor for replaying absolute counter checkpoints onto
 * a DeviceRecord (the record exposes no setters for its counters).
 */
struct JournalApplyAccess
{
    static void
    setCounters(DeviceRecord &record, std::uint64_t accepted,
                std::uint64_t rejected, std::uint64_t fails)
    {
        record.nAccepted = accepted;
        record.nRejected = rejected;
        record.consecutiveFails = fails;
    }

    static void
    setTrustState(DeviceRecord &record, std::uint32_t trust,
                  std::uint32_t remaps_used, bool reenroll)
    {
        record.trust = trust;
        record.remapsUsed = remaps_used;
        record.reenrollNeeded = reenroll;
    }
};

namespace journal {

namespace {

constexpr std::uint32_t kMagic = 0x4C4A4341; // "ACJL".
constexpr std::uint16_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 4 + 2 + 8;
constexpr std::size_t kMaxRecordBytes = 1u << 24;

enum EventType : std::uint8_t
{
    kPairsRetired = 0,
    kAuthOutcome = 1,
    kRemapPrepared = 2,
    kRemapCommitted = 3,
    kRemapRejected = 4,
    kDeviceUnlocked = 5,
    kDeviceRemoved = 6,
    kEnrolled = 7,
    kCounterCheckpoint = 8,
    kTrustUpdate = 9,
    kDeviceRevoked = 10,
};

void
requireDevice(const EnrollmentDatabase &db, std::uint64_t id)
{
    if (!db.contains(id))
        throw protocol::DecodeError(
            "journal replay: unknown device " + std::to_string(id));
}

} // namespace

void
encodeEvent(protocol::ByteWriter &w, const Event &event)
{
    std::visit(
        [&w](const auto &e) {
            using T = std::decay_t<decltype(e)>;
            if constexpr (std::is_same_v<T, PairsRetired>) {
                w.putU8(kPairsRetired);
                w.putU64(e.deviceId);
                w.putU32(static_cast<std::uint32_t>(e.pairs.size()));
                for (const auto &p : e.pairs) {
                    w.putU32(p.levelA);
                    w.putU32(p.levelB);
                    w.putU64(p.lineA);
                    w.putU64(p.lineB);
                }
            } else if constexpr (std::is_same_v<T, AuthOutcome>) {
                w.putU8(kAuthOutcome);
                w.putU64(e.deviceId);
                w.putU8(e.accepted ? 1 : 0);
                w.putU8(e.lockedNow ? 1 : 0);
            } else if constexpr (std::is_same_v<T, RemapPrepared>) {
                w.putU8(kRemapPrepared);
                w.putU64(e.deviceId);
                w.putU64(e.nonce);
            } else if constexpr (std::is_same_v<T, RemapCommitted>) {
                w.putU8(kRemapCommitted);
                w.putU64(e.deviceId);
                w.putU64(e.nonce);
                w.putBytes(std::span<const std::uint8_t>(
                    e.newKey.bytes.data(), e.newKey.bytes.size()));
            } else if constexpr (std::is_same_v<T, RemapRejected>) {
                w.putU8(kRemapRejected);
                w.putU64(e.deviceId);
                w.putU64(e.nonce);
            } else if constexpr (std::is_same_v<T, DeviceUnlocked>) {
                w.putU8(kDeviceUnlocked);
                w.putU64(e.deviceId);
            } else if constexpr (std::is_same_v<T, DeviceRemoved>) {
                w.putU8(kDeviceRemoved);
                w.putU64(e.deviceId);
            } else if constexpr (std::is_same_v<T, Enrolled>) {
                w.putU8(kEnrolled);
                w.putU32(static_cast<std::uint32_t>(e.record.size()));
                w.putBytes(e.record);
            } else if constexpr (std::is_same_v<T,
                                                CounterCheckpoint>) {
                w.putU8(kCounterCheckpoint);
                w.putU64(e.deviceId);
                w.putU64(e.accepted);
                w.putU64(e.rejected);
                w.putU64(e.consecutiveFails);
            } else if constexpr (std::is_same_v<T, TrustUpdate>) {
                w.putU8(kTrustUpdate);
                w.putU64(e.deviceId);
                w.putU32(e.trust);
                w.putU32(e.remapBudgetUsed);
                w.putU8(e.reenrollRequired ? 1 : 0);
            } else if constexpr (std::is_same_v<T, DeviceRevoked>) {
                w.putU8(kDeviceRevoked);
                w.putU64(e.deviceId);
            }
        },
        event);
}

Event
decodeEvent(protocol::ByteReader &r)
{
    switch (r.getU8()) {
    case kPairsRetired: {
        PairsRetired e;
        e.deviceId = r.getU64();
        std::uint32_t count = r.getU32();
        if (count > kMaxRecordBytes / 24)
            throw protocol::DecodeError("journal: pair count");
        e.pairs.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
            RetiredPair p;
            p.levelA = r.getU32();
            p.levelB = r.getU32();
            p.lineA = r.getU64();
            p.lineB = r.getU64();
            e.pairs.push_back(p);
        }
        return e;
    }
    case kAuthOutcome: {
        AuthOutcome e;
        e.deviceId = r.getU64();
        e.accepted = r.getU8() != 0;
        e.lockedNow = r.getU8() != 0;
        return e;
    }
    case kRemapPrepared: {
        RemapPrepared e;
        e.deviceId = r.getU64();
        e.nonce = r.getU64();
        return e;
    }
    case kRemapCommitted: {
        RemapCommitted e;
        e.deviceId = r.getU64();
        e.nonce = r.getU64();
        auto bytes = r.getBytes(e.newKey.bytes.size());
        std::copy(bytes.begin(), bytes.end(),
                  e.newKey.bytes.begin());
        return e;
    }
    case kRemapRejected: {
        RemapRejected e;
        e.deviceId = r.getU64();
        e.nonce = r.getU64();
        return e;
    }
    case kDeviceUnlocked:
        return DeviceUnlocked{r.getU64()};
    case kDeviceRemoved:
        return DeviceRemoved{r.getU64()};
    case kEnrolled: {
        Enrolled e;
        std::uint32_t size = r.getU32();
        if (size > kMaxRecordBytes)
            throw protocol::DecodeError("journal: record size");
        e.record = r.getBytes(size);
        return e;
    }
    case kCounterCheckpoint: {
        CounterCheckpoint e;
        e.deviceId = r.getU64();
        e.accepted = r.getU64();
        e.rejected = r.getU64();
        e.consecutiveFails = r.getU64();
        return e;
    }
    case kTrustUpdate: {
        TrustUpdate e;
        e.deviceId = r.getU64();
        e.trust = r.getU32();
        e.remapBudgetUsed = r.getU32();
        e.reenrollRequired = r.getU8() != 0;
        return e;
    }
    case kDeviceRevoked:
        return DeviceRevoked{r.getU64()};
    default:
        throw protocol::DecodeError("journal: unknown event type");
    }
}

void
applyEvent(EnrollmentDatabase &db, const Event &event)
{
    std::visit(
        [&db](const auto &e) {
            using T = std::decay_t<decltype(e)>;
            if constexpr (std::is_same_v<T, PairsRetired>) {
                requireDevice(db, e.deviceId);
                DeviceRecord &record = db.at(e.deviceId);
                for (const auto &p : e.pairs) {
                    // Already-consumed is fine: replay after a
                    // snapshot that includes the pair is idempotent.
                    if (p.levelA == p.levelB)
                        record.consumePair(p.levelA, p.lineA,
                                           p.lineB);
                    else
                        record.consumeMixedPair(p.levelA, p.lineA,
                                                p.levelB, p.lineB);
                }
            } else if constexpr (std::is_same_v<T, AuthOutcome>) {
                requireDevice(db, e.deviceId);
                DeviceRecord &record = db.at(e.deviceId);
                if (e.accepted)
                    record.recordAccept();
                else
                    record.recordReject();
                // The lockout decision is replayed, not re-derived:
                // recovered state must not depend on the restarted
                // server's policy config.
                if (e.lockedNow)
                    record.lock();
            } else if constexpr (std::is_same_v<T, RemapPrepared>) {
                requireDevice(db, e.deviceId);
                // Pending state is volatile by design: an in-flight
                // remap whose commit never journaled is simply
                // abandoned (its pairs stay retired).
            } else if constexpr (std::is_same_v<T, RemapCommitted>) {
                requireDevice(db, e.deviceId);
                db.at(e.deviceId).setMapKey(e.newKey);
            } else if constexpr (std::is_same_v<T, RemapRejected>) {
                requireDevice(db, e.deviceId);
            } else if constexpr (std::is_same_v<T, DeviceUnlocked>) {
                requireDevice(db, e.deviceId);
                db.at(e.deviceId).unlock();
            } else if constexpr (std::is_same_v<T, DeviceRemoved>) {
                requireDevice(db, e.deviceId);
                db.remove(e.deviceId);
            } else if constexpr (std::is_same_v<T, Enrolled>) {
                protocol::ByteReader r(e.record);
                DeviceRecord record = decodeDeviceRecord(r);
                r.expectEnd();
                db.enroll(std::move(record));
            } else if constexpr (std::is_same_v<T,
                                                CounterCheckpoint>) {
                requireDevice(db, e.deviceId);
                JournalApplyAccess::setCounters(
                    db.at(e.deviceId), e.accepted, e.rejected,
                    e.consecutiveFails);
            } else if constexpr (std::is_same_v<T, TrustUpdate>) {
                requireDevice(db, e.deviceId);
                JournalApplyAccess::setTrustState(
                    db.at(e.deviceId), e.trust, e.remapBudgetUsed,
                    e.reenrollRequired);
            } else if constexpr (std::is_same_v<T, DeviceRevoked>) {
                requireDevice(db, e.deviceId);
                db.at(e.deviceId).revoke();
            }
        },
        event);
}

Journal::~Journal()
{
    if (fd >= 0)
        ::close(fd);
}

Journal::Journal(Journal &&other) noexcept
    : fd(std::exchange(other.fd, -1)), path(std::move(other.path)),
      inj(other.inj), dirty(other.dirty), written(other.written)
{
}

Journal &
Journal::operator=(Journal &&other) noexcept
{
    if (this != &other) {
        if (fd >= 0)
            ::close(fd);
        fd = std::exchange(other.fd, -1);
        path = std::move(other.path);
        inj = other.inj;
        dirty = other.dirty;
        written = other.written;
    }
    return *this;
}

Journal
Journal::create(const std::string &path, std::uint64_t generation,
                CrashInjector *inj)
{
    if (inj != nullptr)
        inj->point("journal.create");
    FdGuard fd(::open(path.c_str(),
                      O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                      0644));
    if (!fd.valid())
        throw std::runtime_error("journal: cannot create " + path +
                                 ": " + std::strerror(errno));

    protocol::ByteWriter w;
    w.putU32(kMagic);
    w.putU16(kVersion);
    w.putU64(generation);
    auto header = w.take();
    writeAllOrCrash(fd.get(), header, inj, "journal.header");
    if (inj != nullptr)
        inj->point("journal.header-fsync");
    fsyncFd(fd.get(), path);
    fsyncParentDir(path);

    Journal out(fd.release(), path, inj);
    out.written = header.size();
    return out;
}

void
Journal::append(std::uint64_t seq, const Event &event)
{
    if (fd < 0)
        throw std::logic_error("journal: append on closed file");

    protocol::ByteWriter payload;
    payload.putU64(seq);
    encodeEvent(payload, event);

    protocol::ByteWriter frame;
    frame.putU32(static_cast<std::uint32_t>(payload.bytes().size()));
    frame.putU32(util::crc32(payload.bytes()));
    frame.putBytes(payload.bytes());
    auto bytes = frame.take();

    // Mark dirty before the write: a crash *during* the write still
    // leaves a torn tail that recovery must (and does) truncate.
    dirty = true;
    writeAllOrCrash(fd, bytes, inj, "journal.append");
    written += bytes.size();
}

bool
Journal::sync()
{
    if (fd < 0 || !dirty)
        return false;
    if (inj != nullptr)
        inj->point("journal.fsync");
    fsyncFd(fd, path);
    dirty = false;
    if (inj != nullptr)
        inj->point("journal.fsync-done");
    return true;
}

void
Journal::close()
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

Journal::ReplayResult
Journal::replay(
    const std::string &path, std::uint64_t after_seq,
    const std::function<void(std::uint64_t, const Event &)> &fn)
{
    ReplayResult out;

    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) {
        out.tornTail = true;
        return out;
    }
    auto size = in.tellg();
    in.seekg(0);
    std::vector<std::uint8_t> blob(static_cast<std::size_t>(size));
    in.read(reinterpret_cast<char *>(blob.data()), size);
    if (!in) {
        out.tornTail = true;
        return out;
    }

    if (blob.size() < kHeaderBytes) {
        out.tornTail = true;
        return out;
    }
    {
        protocol::ByteReader r(
            std::span<const std::uint8_t>(blob.data(), kHeaderBytes));
        if (r.getU32() != kMagic || r.getU16() != kVersion) {
            out.tornTail = true;
            return out;
        }
        out.generation = r.getU64();
    }
    out.headerValid = true;
    out.validBytes = kHeaderBytes;

    std::size_t off = kHeaderBytes;
    while (off < blob.size()) {
        if (blob.size() - off < 8) {
            out.tornTail = true;
            break;
        }
        auto readU32 = [&blob](std::size_t at) {
            std::uint32_t v = 0;
            for (int i = 0; i < 4; ++i)
                v |= static_cast<std::uint32_t>(blob[at + i])
                     << (8 * i);
            return v;
        };
        std::uint32_t len = readU32(off);
        std::uint32_t crc = readU32(off + 4);
        if (len > kMaxRecordBytes || blob.size() - off - 8 < len) {
            out.tornTail = true;
            break;
        }
        std::span<const std::uint8_t> payload(blob.data() + off + 8,
                                              len);
        if (util::crc32(payload) != crc) {
            out.tornTail = true;
            break;
        }

        std::uint64_t seq = 0;
        Event event;
        try {
            protocol::ByteReader r(payload);
            seq = r.getU64();
            event = decodeEvent(r);
            r.expectEnd();
        } catch (const protocol::DecodeError &) {
            // CRC-valid but undecodable: corruption, not a torn
            // write; stop here and let recovery keep the prefix.
            out.tornTail = true;
            break;
        }

        if (seq > after_seq) {
            fn(seq, event);
            ++out.records;
            out.lastSeq = seq;
        }
        off += 8 + len;
        out.validBytes = off;
    }
    return out;
}

} // namespace journal

} // namespace authenticache::server
