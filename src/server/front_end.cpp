#include "server/front_end.hpp"

#include <exception>
#include <optional>
#include <string>
#include <utility>

#include "server/durability.hpp"

namespace authenticache::server {

FlowOutput
ServerFrontEnd::dispatch(const protocol::Message &msg)
{
    try {
        if (auto *req = std::get_if<protocol::AuthRequest>(&msg)) {
            SessionShard &sh = sessions.shardForDevice(req->deviceId);
            util::MutexLock lock(sh.mutex);
            return auth.onRequest(sh, *req);
        }
        if (auto *resp = std::get_if<protocol::ResponseMsg>(&msg)) {
            SessionShard &sh = sessions.shardForNonce(resp->nonce);
            util::MutexLock lock(sh.mutex);
            return auth.onResponse(sh, *resp);
        }
        if (auto *ack = std::get_if<protocol::RemapAck>(&msg)) {
            SessionShard &sh = sessions.shardForNonce(ack->nonce);
            util::MutexLock lock(sh.mutex);
            return remap.onAck(sh, *ack);
        }
        if (auto *proof =
                std::get_if<protocol::HeartbeatProof>(&msg)) {
            SessionShard &sh = sessions.shardForNonce(proof->nonce);
            util::MutexLock lock(sh.mutex);
            return heartbeat.onProof(sh, *proof);
        }
        FlowOutput out;
        if (std::get_if<protocol::ErrorMsg>(&msg) == nullptr)
            out.replies.push_back(
                protocol::ErrorMsg{"unexpected message"});
        return out;
    } catch (const std::exception &e) {
        // Programmer-error invariants aside, nothing a frame carries
        // may crash the verifier: reject the frame and move on.
        FlowOutput out;
        out.replies.push_back(
            protocol::ErrorMsg{std::string("server: ") + e.what()});
        return out;
    }
}

void
ServerFrontEnd::flushJournal()
{
    if (dur == nullptr)
        return;
    // Shard index order, under each shard's mutex: the journal byte
    // stream is a pure function of the batch contents, independent of
    // the thread count (the determinism contract extends to disk).
    for (unsigned s = 0; s < sessions.shardCount(); ++s) {
        SessionShard &sh = sessions.shard(s);
        util::MutexLock lock(sh.mutex);
        for (auto &event : sh.wal)
            dur->append(event);
        sh.wal.clear();
    }
    dur->sync();
}

void
ServerFrontEnd::mergeOutputs(std::span<Frame> frames,
                             std::vector<FlowOutput> &outputs,
                             std::uint64_t ordinal_base)
{
    // Sync-before-reply: everything this batch mutated becomes
    // durable before the first reply that could disclose it.
    flushJournal();
    for (std::size_t i = 0; i < outputs.size(); ++i) {
        if (frames[i].reply != nullptr) {
            for (const auto &reply : outputs[i].replies)
                frames[i].reply->send(reply);
        }
        if (outputs[i].report)
            log.push_back(*outputs[i].report);
        if (outputs[i].openedNonce)
            sessions.registerOpen(ordinal_base + i,
                                  *outputs[i].openedNonce);
    }
    sessions.enforceCap();
    if (dur != nullptr)
        dur->maybeRotate(devices.database());
}

void
ServerFrontEnd::handleBatch(std::span<Frame> frames,
                            util::ThreadPool &pool)
{
    sessions.expireAll();
    const std::size_t n = frames.size();
    const std::uint64_t base = sessions.reserveOrdinals(n);

    std::vector<FlowOutput> outputs(n);
    std::vector<std::optional<protocol::Message>> decoded(n);
    pool.parallelFor(n, [&](std::size_t i) {
        try {
            decoded[i] = protocol::decodeMessage(frames[i].bytes);
        } catch (const std::exception &e) {
            outputs[i].replies.push_back(protocol::ErrorMsg{
                std::string("decode: ") + e.what()});
        }
    });

    // Group frames by owning shard, preserving frame order within
    // each shard. Frames that need no session state (decode errors,
    // unexpected types) are answered right here.
    std::vector<std::vector<std::size_t>> perShard(
        sessions.shardCount());
    for (std::size_t i = 0; i < n; ++i) {
        if (!decoded[i])
            continue;
        const protocol::Message &m = *decoded[i];
        if (auto *req = std::get_if<protocol::AuthRequest>(&m)) {
            perShard[sessions.shardIndexForDevice(req->deviceId)]
                .push_back(i);
        } else if (auto *resp =
                       std::get_if<protocol::ResponseMsg>(&m)) {
            perShard[sessions.shardIndexForNonce(resp->nonce)]
                .push_back(i);
        } else if (auto *ack = std::get_if<protocol::RemapAck>(&m)) {
            perShard[sessions.shardIndexForNonce(ack->nonce)]
                .push_back(i);
        } else if (auto *proof =
                       std::get_if<protocol::HeartbeatProof>(&m)) {
            perShard[sessions.shardIndexForNonce(proof->nonce)]
                .push_back(i);
        } else if (std::get_if<protocol::ErrorMsg>(&m) == nullptr) {
            outputs[i].replies.push_back(
                protocol::ErrorMsg{"unexpected message"});
        }
    }

    std::vector<unsigned> active;
    for (unsigned s = 0; s < sessions.shardCount(); ++s) {
        if (!perShard[s].empty())
            active.push_back(s);
    }

    // Each shard's frames run on exactly one pool index, in input
    // order; all randomness is per-device, so the thread count only
    // changes wall-clock time, never results.
    pool.parallelFor(active.size(), [&](std::size_t k) {
        for (std::size_t i : perShard[active[k]])
            outputs[i] = dispatch(*decoded[i]);
    });

    mergeOutputs(frames, outputs, base);
}

void
ServerFrontEnd::handleMessage(const protocol::Message &msg,
                              protocol::ServerEndpoint &endpoint)
{
    // A one-frame batch: same GC / open-ordinal / cap timing the
    // monolithic per-message server had.
    sessions.expireAll();
    const std::uint64_t base = sessions.reserveOrdinals(1);
    std::vector<FlowOutput> outputs(1);
    outputs[0] = dispatch(msg);
    Frame frame;
    frame.reply = &endpoint;
    mergeOutputs(std::span<Frame>(&frame, 1), outputs, base);
}

bool
ServerFrontEnd::pumpOnce(protocol::ServerEndpoint &endpoint)
{
    sessions.expireAll();
    std::optional<protocol::Message> msg;
    try {
        msg = endpoint.receive();
    } catch (const protocol::DecodeError &e) {
        endpoint.send(protocol::ErrorMsg{std::string("decode: ") +
                                         e.what()});
        return true;
    }
    if (!msg)
        return false;
    handleMessage(*msg, endpoint);
    return true;
}

void
ServerFrontEnd::pumpAll(protocol::ServerEndpoint &endpoint)
{
    while (pumpOnce(endpoint)) {
    }
}

void
ServerFrontEnd::startRemap(std::uint64_t device_id,
                           protocol::ServerEndpoint &endpoint)
{
    const std::uint64_t base = sessions.reserveOrdinals(1);
    std::vector<FlowOutput> outputs(1);
    try {
        SessionShard &sh = sessions.shardForDevice(device_id);
        util::MutexLock lock(sh.mutex);
        outputs[0] = remap.start(sh, device_id);
    } catch (const std::exception &e) {
        outputs[0].replies.push_back(
            protocol::ErrorMsg{std::string("remap: ") + e.what()});
    }
    Frame frame;
    frame.reply = &endpoint;
    mergeOutputs(std::span<Frame>(&frame, 1), outputs, base);
}

void
ServerFrontEnd::startHeartbeat(std::uint64_t device_id,
                               protocol::ReplySink &endpoint)
{
    const std::uint64_t base = sessions.reserveOrdinals(1);
    std::vector<FlowOutput> outputs(1);
    try {
        SessionShard &sh = sessions.shardForDevice(device_id);
        util::MutexLock lock(sh.mutex);
        outputs[0] = heartbeat.start(sh, device_id);
    } catch (const std::exception &e) {
        outputs[0].replies.push_back(protocol::ErrorMsg{
            std::string("heartbeat: ") + e.what()});
    }
    Frame frame;
    frame.reply = &endpoint;
    mergeOutputs(std::span<Frame>(&frame, 1), outputs, base);
}

void
ServerFrontEnd::tickHeartbeats(protocol::ReplySink &endpoint)
{
    // Shard index order, single-threaded: the cadence walk (and the
    // RNG draws it triggers) must not depend on a pool width. Every
    // due session yields one FlowOutput so proactively opened remap
    // nonces rank with deterministic per-output ordinals.
    const std::uint64_t now = sessions.currentStep();
    std::vector<FlowOutput> outputs;
    for (unsigned s = 0; s < sessions.shardCount(); ++s) {
        SessionShard &sh = sessions.shard(s);
        util::MutexLock lock(sh.mutex);
        for (auto &out : heartbeat.tick(sh, now))
            outputs.push_back(std::move(out));
    }
    if (outputs.empty()) {
        // Nothing came due; skip the batch tail (journal sync would
        // be a no-op, but the rotation check is not free).
        return;
    }
    const std::uint64_t base =
        sessions.reserveOrdinals(outputs.size());
    std::vector<Frame> frames(outputs.size());
    for (auto &frame : frames)
        frame.reply = &endpoint;
    mergeOutputs(frames, outputs, base);
}

bool
ServerFrontEnd::stopHeartbeat(std::uint64_t device_id)
{
    SessionShard &sh = sessions.shardForDevice(device_id);
    util::MutexLock lock(sh.mutex);
    return heartbeat.stop(sh, device_id);
}

} // namespace authenticache::server
