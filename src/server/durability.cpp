#include "server/durability.hpp"

#include <algorithm>
#include <filesystem>
#include <map>

#include "util/logging.hpp"

namespace authenticache::server {

namespace fs = std::filesystem;

namespace {

constexpr const char *kSnapshotPrefix = "snapshot-";
constexpr const char *kSnapshotSuffix = ".acdb";
constexpr const char *kJournalPrefix = "journal-";
constexpr const char *kJournalSuffix = ".acjl";

/** Parse "<prefix><decimal><suffix>"; nullopt for anything else. */
std::optional<std::uint64_t>
parseGeneration(const std::string &name, const char *prefix,
                const char *suffix)
{
    std::string pre(prefix);
    std::string suf(suffix);
    if (name.size() <= pre.size() + suf.size())
        return std::nullopt;
    if (name.compare(0, pre.size(), pre) != 0)
        return std::nullopt;
    if (name.compare(name.size() - suf.size(), suf.size(), suf) != 0)
        return std::nullopt;
    std::string digits = name.substr(
        pre.size(), name.size() - pre.size() - suf.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos)
        return std::nullopt;
    return std::stoull(digits);
}

/** Generation -> path maps for the two file kinds in @p dir. */
struct GenerationScan
{
    std::map<std::uint64_t, std::string> snapshots;
    std::map<std::uint64_t, std::string> journals;
};

GenerationScan
scanDir(const std::string &dir)
{
    GenerationScan out;
    if (!fs::exists(dir))
        return out;
    for (const auto &entry : fs::directory_iterator(dir)) {
        if (!entry.is_regular_file())
            continue;
        std::string name = entry.path().filename().string();
        if (auto g = parseGeneration(name, kSnapshotPrefix,
                                     kSnapshotSuffix))
            out.snapshots[*g] = entry.path().string();
        else if (auto j = parseGeneration(name, kJournalPrefix,
                                          kJournalSuffix))
            out.journals[*j] = entry.path().string();
    }
    return out;
}

} // namespace

std::string
DurabilityManager::snapshotPath(const std::string &dir,
                                std::uint64_t generation)
{
    return dir + "/" + kSnapshotPrefix + std::to_string(generation) +
           kSnapshotSuffix;
}

std::string
DurabilityManager::journalPath(const std::string &dir,
                               std::uint64_t generation)
{
    return dir + "/" + kJournalPrefix + std::to_string(generation) +
           kJournalSuffix;
}

RecoveryResult
DurabilityManager::recover(const DurabilityConfig &config)
{
    RecoveryResult out;
    GenerationScan scan = scanDir(config.dir);

    if (scan.snapshots.empty()) {
        if (!scan.journals.empty())
            throw protocol::DecodeError(
                "durability: journal files without any snapshot");
        out.freshStart = true;
        return out;
    }

    // 1. Newest snapshot that loads wins; corrupt ones fall back a
    // generation each.
    SnapshotMeta meta;
    bool loaded = false;
    for (auto it = scan.snapshots.rbegin();
         it != scan.snapshots.rend(); ++it) {
        try {
            out.db = loadDatabaseFile(it->second, &meta);
            out.generation = it->first;
            loaded = true;
            break;
        } catch (const std::exception &e) {
            ++out.snapshotFallbacks;
            AUTH_LOG_WARN("server.durability")
                << "snapshot generation " << it->first
                << " unreadable (" << e.what()
                << "); falling back";
        }
    }
    if (!loaded)
        throw protocol::DecodeError(
            "durability: no readable snapshot generation");
    out.lastSeq = meta.journalWatermark;

    // 2. Replay the journal chain from the chosen generation upward.
    const std::uint64_t newest_journal =
        scan.journals.empty() ? 0 : scan.journals.rbegin()->first;
    for (std::uint64_t g = out.generation;
         scan.journals.count(g) != 0; ++g) {
        auto rr = journal::Journal::replay(
            scan.journals[g], out.lastSeq,
            [&out](std::uint64_t seq, const journal::Event &event) {
                journal::applyEvent(out.db, event);
                out.lastSeq = seq;
                if (const auto *c =
                        std::get_if<journal::RemapCommitted>(&event))
                    out.remapOutcomes.emplace_back(c->nonce, true);
                else if (const auto *rj =
                             std::get_if<journal::RemapRejected>(
                                 &event))
                    out.remapOutcomes.emplace_back(rj->nonce, false);
            });
        out.replayedRecords += rr.records;
        if (rr.tornTail) {
            // 3. Torn tail in the newest journal marks the crash
            // point: truncate to the valid prefix. Anywhere else it
            // just ends the chain (older corruption cannot be "the
            // crash", so nothing is rewritten).
            if (g == newest_journal && rr.headerValid) {
                std::error_code ec;
                fs::resize_file(scan.journals[g], rr.validBytes, ec);
                out.tornTailTruncated = !ec;
            }
            break;
        }
    }
    return out;
}

DurabilityManager::DurabilityManager(DurabilityConfig config,
                                     const EnrollmentDatabase &db,
                                     std::uint64_t last_seq,
                                     CrashInjector *inj_)
    : cfg(std::move(config)), inj(inj_), lastSeq(last_seq)
{
    fs::create_directories(cfg.dir);
    GenerationScan scan = scanDir(cfg.dir);
    std::uint64_t max_seen = 0;
    bool any = false;
    if (!scan.snapshots.empty()) {
        max_seen = std::max(max_seen, scan.snapshots.rbegin()->first);
        any = true;
    }
    if (!scan.journals.empty()) {
        max_seen = std::max(max_seen, scan.journals.rbegin()->first);
        any = true;
    }
    // Startup always begins a fresh generation: one uniform path
    // (atomic snapshot + empty journal) whether the directory was
    // empty, clean, or mid-crash.
    gen = any ? max_seen + 1 : 0;
    saveDatabaseFile(snapshotPath(cfg.dir, gen), gen, db);
    log = journal::Journal::create(journalPath(cfg.dir, gen), gen,
                                   inj);
    ++counters.rotations;
    if (gen >= 1)
        pruneBelow(gen - 1);
}

void
DurabilityManager::saveDatabaseFile(const std::string &path,
                                    std::uint64_t generation,
                                    const EnrollmentDatabase &db)
{
    server::saveDatabaseFile(db, path,
                             SnapshotMeta{generation, lastSeq}, inj);
}

void
DurabilityManager::append(const journal::Event &event)
{
    log.append(++lastSeq, event);
    ++counters.appends;
    ++appendsSinceRotate;
    counters.appendedBytes = log.bytesWritten();
}

void
DurabilityManager::sync()
{
    if (log.sync())
        ++counters.fsyncs;
}

void
DurabilityManager::maybeRotate(const EnrollmentDatabase &db)
{
    if (cfg.rotateEveryAppends > 0 &&
        appendsSinceRotate >= cfg.rotateEveryAppends)
        rotate(db);
}

void
DurabilityManager::rotate(const EnrollmentDatabase &db)
{
    // Order matters: current journal durable first, then the atomic
    // snapshot (which embeds the watermark), then the fresh journal.
    // A crash anywhere leaves either the old generation authoritative
    // or the new snapshot complete -- never a gap.
    sync();
    log.close();
    std::uint64_t next = gen + 1;
    saveDatabaseFile(snapshotPath(cfg.dir, next), next, db);
    log = journal::Journal::create(journalPath(cfg.dir, next), next,
                                   inj);
    gen = next;
    appendsSinceRotate = 0;
    ++counters.rotations;
    if (gen >= 1)
        pruneBelow(gen - 1);
}

void
DurabilityManager::pruneBelow(std::uint64_t keep_from)
{
    GenerationScan scan = scanDir(cfg.dir);
    auto drop = [this, keep_from](
                    const std::map<std::uint64_t, std::string> &files) {
        for (const auto &[g, path] : files) {
            if (g >= keep_from)
                break;
            if (inj != nullptr)
                inj->point("gc.unlink");
            std::error_code ec;
            fs::remove(path, ec);
        }
    };
    drop(scan.snapshots);
    drop(scan.journals);
}

void
DurabilityManager::noteRecovery(const RecoveryResult &result)
{
    counters.replayedRecords = result.replayedRecords;
    counters.tornTruncations = result.tornTailTruncated ? 1 : 0;
    counters.snapshotFallbacks = result.snapshotFallbacks;
    counters.recoveryOutcome =
        static_cast<std::uint64_t>(result.outcome());
}

void
DurabilityManager::collectStats(util::StatsRegistry &registry,
                                const std::string &component) const
{
    const std::string c = component + ".durability";
    registry.set(c, "journal_appends", counters.appends);
    registry.set(c, "journal_bytes", counters.appendedBytes);
    registry.set(c, "fsyncs", counters.fsyncs);
    registry.set(c, "snapshot_rotations", counters.rotations);
    registry.set(c, "generation", gen);
    registry.set(c, "last_sequence", lastSeq);
    registry.set(c, "replayed_records", counters.replayedRecords);
    registry.set(c, "torn_tail_truncations",
                 counters.tornTruncations);
    registry.set(c, "snapshot_fallbacks", counters.snapshotFallbacks);
    registry.set(c, "recovery_outcome", counters.recoveryOutcome);
}

} // namespace authenticache::server
