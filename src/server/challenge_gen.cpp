#include "server/challenge_gen.hpp"

#include <algorithm>
#include <stdexcept>

namespace authenticache::server {

ChallengeGenerator::ChallengeGenerator(util::Rng rng_) : ownRng(rng_)
{
}

GeneratedChallenge
ChallengeGenerator::drawWithRemap(DeviceRecord &record,
                                  core::VddMv level, std::size_t bits,
                                  const core::LogicalRemap &remap,
                                  util::Rng &rng)
{
    const auto &geom = record.physicalMap().geometry();
    if (!record.physicalMap().hasPlane(level))
        throw std::invalid_argument(
            "ChallengeGenerator: no error map at that level");

    GeneratedChallenge out;
    out.level = level;
    out.challenge.bits.reserve(bits);

    // Retire-before-use: each drawn pair is checked against the
    // consumed set by its physical identity.
    std::size_t attempts = 0;
    const std::size_t max_attempts = bits * 64 + 1024;
    while (out.challenge.bits.size() < bits) {
        if (++attempts > max_attempts) {
            throw std::runtime_error(
                "ChallengeGenerator: fresh pair supply exhausted");
        }
        std::uint64_t la = rng.nextBelow(geom.lines());
        std::uint64_t lb = rng.nextBelow(geom.lines());
        if (la == lb)
            continue;

        sim::LinePoint logical_a = geom.pointOf(la);
        sim::LinePoint logical_b = geom.pointOf(lb);
        std::uint64_t phys_a =
            geom.lineIndex(remap.unmap(logical_a, level));
        std::uint64_t phys_b =
            geom.lineIndex(remap.unmap(logical_b, level));
        if (!record.consumePair(level, phys_a, phys_b))
            continue; // Already used (in either order); redraw.
        out.retired.push_back(
            journal::RetiredPair{level, level, phys_a, phys_b});

        core::ChallengeBit bit;
        bit.a = core::ChallengePoint{logical_a, level};
        bit.b = core::ChallengePoint{logical_b, level};
        out.challenge.bits.push_back(bit);
    }
    return out;
}

GeneratedChallenge
ChallengeGenerator::generate(DeviceRecord &record, core::VddMv level,
                             std::size_t bits, util::Rng &rng,
                             core::EvalScratch &scratch)
{
    const auto &levels = record.challengeLevels();
    if (std::find(levels.begin(), levels.end(), level) == levels.end())
        throw std::invalid_argument(
            "ChallengeGenerator: not a challenge level");
    GeneratedChallenge out = drawWithRemap(
        record, level, bits, record.logicalRemap(), rng);
    out.expected = core::evaluateIndexed(record.logicalIndexes(),
                                         out.challenge, scratch);
    return out;
}

GeneratedChallenge
ChallengeGenerator::generate(DeviceRecord &record, core::VddMv level,
                             std::size_t bits, util::Rng &rng)
{
    return generate(record, level, bits, rng, ownScratch);
}

GeneratedChallenge
ChallengeGenerator::generate(DeviceRecord &record, core::VddMv level,
                             std::size_t bits)
{
    return generate(record, level, bits, ownRng, ownScratch);
}

GeneratedChallenge
ChallengeGenerator::generateMultiLevel(DeviceRecord &record,
                                       std::size_t bits,
                                       util::Rng &rng,
                                       core::EvalScratch &scratch)
{
    const auto &levels = record.challengeLevels();
    if (levels.size() < 2)
        throw std::invalid_argument(
            "generateMultiLevel: need >= 2 challenge levels");
    const auto &geom = record.physicalMap().geometry();
    for (auto level : levels) {
        if (!record.physicalMap().hasPlane(level))
            throw std::invalid_argument(
                "generateMultiLevel: missing error map plane");
    }

    const core::LogicalRemap &remap = record.logicalRemap();

    GeneratedChallenge out;
    out.level = 0; // Mixed levels; no single value applies.
    out.challenge.bits.reserve(bits);

    std::size_t attempts = 0;
    const std::size_t max_attempts = bits * 64 + 1024;
    while (out.challenge.bits.size() < bits) {
        if (++attempts > max_attempts) {
            throw std::runtime_error(
                "generateMultiLevel: fresh pair supply exhausted");
        }
        core::VddMv level_a = levels[rng.nextBelow(levels.size())];
        core::VddMv level_b = levels[rng.nextBelow(levels.size())];
        std::uint64_t la = rng.nextBelow(geom.lines());
        std::uint64_t lb = rng.nextBelow(geom.lines());
        if (la == lb && level_a == level_b)
            continue;

        sim::LinePoint logical_a = geom.pointOf(la);
        sim::LinePoint logical_b = geom.pointOf(lb);
        std::uint64_t phys_a =
            geom.lineIndex(remap.unmap(logical_a, level_a));
        std::uint64_t phys_b =
            geom.lineIndex(remap.unmap(logical_b, level_b));
        if (!record.consumeMixedPair(level_a, phys_a, level_b,
                                     phys_b))
            continue;
        out.retired.push_back(journal::RetiredPair{level_a, level_b,
                                                   phys_a, phys_b});

        core::ChallengeBit bit;
        bit.a = core::ChallengePoint{logical_a, level_a};
        bit.b = core::ChallengePoint{logical_b, level_b};
        out.challenge.bits.push_back(bit);
    }

    out.expected = core::evaluateIndexed(record.logicalIndexes(),
                                         out.challenge, scratch);
    return out;
}

GeneratedChallenge
ChallengeGenerator::generateMultiLevel(DeviceRecord &record,
                                       std::size_t bits,
                                       util::Rng &rng)
{
    return generateMultiLevel(record, bits, rng, ownScratch);
}

GeneratedChallenge
ChallengeGenerator::generateMultiLevel(DeviceRecord &record,
                                       std::size_t bits)
{
    return generateMultiLevel(record, bits, ownRng, ownScratch);
}

GeneratedChallenge
ChallengeGenerator::generateReserved(DeviceRecord &record,
                                     core::VddMv level,
                                     std::size_t bits, util::Rng &rng)
{
    const auto &levels = record.reservedLevels();
    if (std::find(levels.begin(), levels.end(), level) == levels.end())
        throw std::invalid_argument(
            "ChallengeGenerator: not a reserved level");
    // Reserved-level challenges use the identity mapping, so the
    // expected response is evaluated directly on the physical map
    // (no logical copy was ever needed here).
    core::LogicalRemap identity(crypto::Key256::zero(),
                                record.physicalMap().geometry());
    GeneratedChallenge out =
        drawWithRemap(record, level, bits, identity, rng);
    out.expected =
        core::evaluate(record.physicalMap(), out.challenge);
    return out;
}

GeneratedChallenge
ChallengeGenerator::generateReserved(DeviceRecord &record,
                                     core::VddMv level,
                                     std::size_t bits)
{
    return generateReserved(record, level, bits, ownRng);
}

} // namespace authenticache::server
