#include "server/verifier.hpp"

namespace authenticache::server {

Verifier::Verifier(const VerifierPolicy &policy) : pol(policy) {}

Verifier::Verifier(const Verifier &other)
{
    // Read the source's policy under *its* lock: a concurrent
    // operator= on `other` would otherwise tear the doubles.
    util::MutexLock lock(other.cacheMutex);
    pol = other.pol;
}

Verifier &
Verifier::operator=(const Verifier &other)
{
    if (this != &other) {
        // Copy out under the source's lock, then install under ours;
        // never hold both, so no acquisition order can deadlock.
        VerifierPolicy incoming;
        {
            util::MutexLock lock(other.cacheMutex);
            incoming = other.pol;
        }
        util::MutexLock lock(cacheMutex);
        pol = incoming;
        cache.clear();
    }
    return *this;
}

VerifierPolicy
Verifier::policy() const
{
    util::MutexLock lock(cacheMutex);
    return pol;
}

metrics::ThresholdChoice
Verifier::choiceFor(std::size_t response_bits) const
{
    VerifierPolicy p;
    {
        util::MutexLock lock(cacheMutex);
        auto it = cache.find(response_bits);
        if (it != cache.end())
            return it->second;
        p = pol;
    }
    // Compute outside the lock: the sweep is O(response_bits) and two
    // threads racing on a cold entry just store the same value twice.
    auto choice = metrics::eerThreshold(response_bits, p.pInter, p.pIntra);
    util::MutexLock lock(cacheMutex);
    cache.emplace(response_bits, choice);
    return choice;
}

std::int64_t
Verifier::thresholdFor(std::size_t response_bits) const
{
    return choiceFor(response_bits).threshold;
}

Verdict
Verifier::verify(const core::Response &expected,
                 const core::Response &received) const
{
    Verdict v;
    auto choice = choiceFor(expected.size());
    v.threshold = choice.threshold;
    v.farAtThreshold = choice.far;
    v.frrAtThreshold = choice.frr;

    if (received.size() != expected.size()) {
        v.accepted = false;
        v.hammingDistance =
            static_cast<std::uint32_t>(expected.size());
        return v;
    }
    v.hammingDistance = static_cast<std::uint32_t>(
        expected.hammingDistance(received));
    v.accepted = v.hammingDistance <=
                 static_cast<std::uint32_t>(v.threshold);
    return v;
}

} // namespace authenticache::server
