#include "server/verifier.hpp"

namespace authenticache::server {

Verifier::Verifier(const VerifierPolicy &policy) : pol(policy) {}

std::int64_t
Verifier::thresholdFor(std::size_t response_bits) const
{
    return metrics::eerThreshold(response_bits, pol.pInter, pol.pIntra)
        .threshold;
}

Verdict
Verifier::verify(const core::Response &expected,
                 const core::Response &received) const
{
    Verdict v;
    auto choice = metrics::eerThreshold(expected.size(), pol.pInter,
                                        pol.pIntra);
    v.threshold = choice.threshold;
    v.farAtThreshold = choice.far;
    v.frrAtThreshold = choice.frr;

    if (received.size() != expected.size()) {
        v.accepted = false;
        v.hammingDistance =
            static_cast<std::uint32_t>(expected.size());
        return v;
    }
    v.hammingDistance = static_cast<std::uint32_t>(
        expected.hammingDistance(received));
    v.accepted = v.hammingDistance <=
                 static_cast<std::uint32_t>(v.threshold);
    return v;
}

} // namespace authenticache::server
