/**
 * @file
 * Persistence for the enrollment database.
 *
 * The paper's server keeps each client's error maps "in a secure
 * database" (Sec 2.1, 4.2); this module provides the storage format:
 * a versioned, CRC-protected binary snapshot of every device record --
 * error maps, logical-map key, level roles, consumed-pair state, and
 * counters -- so a server can restart without losing the no-reuse
 * guarantees.
 *
 * Format (little endian):
 *
 *   [u32 magic "ACDB"][u16 version]
 *   v2 only: [u64 generation][u64 journal watermark]
 *   [u32 record count]
 *     per record: id, geometry, planes, key, levels, consumed sets,
 *                 mixed pairs, counters
 *   [u32 crc32 of everything above]
 *
 * v2 adds the snapshot's durability metadata: its generation number
 * and the journal sequence number it compacts up to (replay resumes
 * after the watermark). v1 snapshots still load, with zero metadata.
 * Record encoding is canonical -- records sorted by id, consumed-pair
 * sets dumped in sorted order -- so equal logical states produce
 * byte-identical snapshots (the crash-recovery sweep compares states
 * this way).
 */

#ifndef AUTH_SERVER_STORAGE_HPP
#define AUTH_SERVER_STORAGE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "protocol/serialize.hpp"
#include "server/database.hpp"
#include "server/durable_io.hpp"

namespace authenticache::server {

/** Serialize an error map (shared by record encoding and tests). */
void encodeErrorMap(protocol::ByteWriter &w, const core::ErrorMap &map);

/** Deserialize an error map; throws protocol::DecodeError. */
core::ErrorMap decodeErrorMap(protocol::ByteReader &r);

/** Serialize one device record, including consumed-pair state. */
void encodeDeviceRecord(protocol::ByteWriter &w,
                        const DeviceRecord &record);

/** Deserialize one device record. */
DeviceRecord decodeDeviceRecord(protocol::ByteReader &r);

/** Durability metadata carried by v2 snapshots (zero for v1). */
struct SnapshotMeta
{
    /** Snapshot generation number (rotation counter). */
    std::uint64_t generation = 0;

    /** Journal sequence this snapshot compacts up to (inclusive). */
    std::uint64_t journalWatermark = 0;
};

/** Snapshot the whole database into a byte blob (current format). */
std::vector<std::uint8_t> saveDatabase(const EnrollmentDatabase &db,
                                       const SnapshotMeta &meta = {});

/** Legacy v1 writer, kept for migration tests and old tooling. */
std::vector<std::uint8_t> saveDatabaseV1(const EnrollmentDatabase &db);

/**
 * Restore a database from a blob (v1 or v2); throws
 * protocol::DecodeError. @p meta, when given, receives the snapshot's
 * durability metadata (zeros for v1).
 */
EnrollmentDatabase loadDatabase(std::span<const std::uint8_t> blob,
                                SnapshotMeta *meta = nullptr);

/**
 * Write a snapshot to a file atomically (temp file + fsync + rename),
 * so a crash mid-write never destroys the previous snapshot. Throws
 * std::runtime_error on I/O failure. @p inj is the crash-injection
 * hook used by the recovery sweep.
 */
void saveDatabaseFile(const EnrollmentDatabase &db,
                      const std::string &path,
                      const SnapshotMeta &meta = {},
                      CrashInjector *inj = nullptr);

/** Load a snapshot from a file (v1 or v2). */
EnrollmentDatabase loadDatabaseFile(const std::string &path,
                                    SnapshotMeta *meta = nullptr);

} // namespace authenticache::server

#endif // AUTH_SERVER_STORAGE_HPP
