/**
 * @file
 * Persistence for the enrollment database.
 *
 * The paper's server keeps each client's error maps "in a secure
 * database" (Sec 2.1, 4.2); this module provides the storage format:
 * a versioned, CRC-protected binary snapshot of every device record --
 * error maps, logical-map key, level roles, consumed-pair state, and
 * counters -- so a server can restart without losing the no-reuse
 * guarantees.
 *
 * Format (little endian):
 *
 *   [u32 magic "ACDB"][u16 version][u32 record count]
 *     per record: id, geometry, planes, key, levels, consumed sets,
 *                 mixed pairs, counters
 *   [u32 crc32 of everything above]
 */

#ifndef AUTH_SERVER_STORAGE_HPP
#define AUTH_SERVER_STORAGE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "protocol/serialize.hpp"
#include "server/database.hpp"

namespace authenticache::server {

/** Serialize an error map (shared by record encoding and tests). */
void encodeErrorMap(protocol::ByteWriter &w, const core::ErrorMap &map);

/** Deserialize an error map; throws protocol::DecodeError. */
core::ErrorMap decodeErrorMap(protocol::ByteReader &r);

/** Serialize one device record, including consumed-pair state. */
void encodeDeviceRecord(protocol::ByteWriter &w,
                        const DeviceRecord &record);

/** Deserialize one device record. */
DeviceRecord decodeDeviceRecord(protocol::ByteReader &r);

/** Snapshot the whole database into a byte blob. */
std::vector<std::uint8_t> saveDatabase(const EnrollmentDatabase &db);

/** Restore a database from a blob; throws protocol::DecodeError. */
EnrollmentDatabase loadDatabase(std::span<const std::uint8_t> blob);

/** Write a snapshot to a file; throws std::runtime_error on I/O. */
void saveDatabaseFile(const EnrollmentDatabase &db,
                      const std::string &path);

/** Load a snapshot from a file. */
EnrollmentDatabase loadDatabaseFile(const std::string &path);

} // namespace authenticache::server

#endif // AUTH_SERVER_STORAGE_HPP
