/**
 * @file
 * The Authenticache authentication server and the device-side protocol
 * agent (paper Sec 2.1, 4.2-4.5, Figures 6-7).
 *
 * Enrollment is a trusted, direct interaction: the server drives the
 * device firmware to capture its error maps, stores them, and installs
 * the initial logical-map key. Field authentication then runs over the
 * message protocol: AuthRequest -> Challenge -> Response -> Decision,
 * plus the server-initiated adaptive remap exchange.
 */

#ifndef AUTH_SERVER_SERVER_HPP
#define AUTH_SERVER_SERVER_HPP

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "crypto/fuzzy_extractor.hpp"
#include "firmware/client.hpp"
#include "protocol/channel.hpp"
#include "server/challenge_gen.hpp"
#include "server/database.hpp"
#include "server/verifier.hpp"
#include "util/sim_clock.hpp"
#include "util/stats_registry.hpp"

namespace authenticache::server {

/** Server behaviour knobs. */
struct ServerConfig
{
    /** Bits per authentication challenge. */
    std::size_t challengeBits = 128;

    /** Secret bits derived per remap exchange. */
    std::size_t remapSecretBits = 32;

    /** Fuzzy-extractor repetition factor for remap helper data. */
    unsigned fuzzyRepetition = 5;

    /**
     * Draw each challenge endpoint at an independent random voltage
     * level (the paper's Eq 7 with V != V'; its prototype restricted
     * itself to single-Vdd challenges). Requires >= 2 enrolled
     * challenge levels; costs extra regulator transitions client-side.
     */
    bool multiLevelChallenges = false;

    /**
     * Lock a device after this many consecutive rejections (brute
     * force / cloning attempts burn the CRP space otherwise). 0
     * disables the policy; locked devices need unlockDevice().
     */
    std::uint64_t lockoutThreshold = 0;

    /**
     * Cap on simultaneously outstanding challenges (and remap
     * exchanges). A flood of AuthRequests from clients that never
     * answer would otherwise grow server state without bound; when
     * full, the oldest outstanding session is evicted (its nonce is
     * dead, the consumed pairs stay retired).
     */
    std::size_t maxPendingSessions = 1024;

    /**
     * Per-session deadline in simulated clock steps: an outstanding
     * challenge (or remap exchange) not answered within this many
     * steps of issue is garbage-collected -- its consumed pairs stay
     * retired, its nonce is dead. 0 disables expiry; expiry also needs
     * a clock bound with bindClock().
     */
    std::uint64_t sessionTimeoutSteps = 0;

    /**
     * Completed sessions kept for idempotent retransmission handling:
     * a duplicated or retransmitted ResponseMsg / RemapAck whose nonce
     * already completed gets the original decision / commit resent
     * verbatim instead of an "unknown nonce" error (and never
     * double-counts toward the lockout policy).
     */
    std::size_t completedCacheSize = 256;

    VerifierPolicy verifier;
};

/** Record of one completed authentication (for reporting/tests). */
struct AuthReport
{
    std::uint64_t deviceId = 0;
    std::uint64_t nonce = 0;
    bool accepted = false;
    std::uint32_t hammingDistance = 0;
    std::int64_t threshold = 0;
};

class AuthenticationServer
{
  public:
    AuthenticationServer(const ServerConfig &config, std::uint64_t seed);

    /**
     * Trusted enrollment: boot the device if needed, capture its error
     * maps at the given levels, install a fresh logical-map key, and
     * store the record.
     */
    DeviceRecord &enroll(std::uint64_t device_id,
                         firmware::AuthenticacheClient &client,
                         const std::vector<core::VddMv> &challenge_levels,
                         const std::vector<core::VddMv> &reserved_levels,
                         std::uint32_t sweep_passes = 8);

    /**
     * Enroll with a pre-captured error map (robust enrollment: the
     * factory captures under several environmental conditions and
     * combines with core::combineErrorMaps before enrolling). Still
     * installs the initial key into the live client.
     */
    DeviceRecord &
    enrollWithMap(std::uint64_t device_id, core::ErrorMap map,
                  firmware::AuthenticacheClient &client,
                  const std::vector<core::VddMv> &challenge_levels,
                  const std::vector<core::VddMv> &reserved_levels);

    /**
     * Re-enroll a device whose silicon has drifted (trusted, like
     * first enrollment): recapture the error maps and issue a fresh
     * key. The old record -- including its consumed-pair history --
     * is discarded, since the old fingerprint's CRPs no longer
     * describe the device.
     */
    DeviceRecord &
    reenroll(std::uint64_t device_id,
             firmware::AuthenticacheClient &client,
             const std::vector<core::VddMv> &challenge_levels,
             const std::vector<core::VddMv> &reserved_levels,
             std::uint32_t sweep_passes = 8)
    {
        db.remove(device_id);
        return enroll(device_id, client, challenge_levels,
                      reserved_levels, sweep_passes);
    }

    /** Handle one queued message, if any. @return message handled. */
    bool pumpOnce(protocol::ServerEndpoint &endpoint);

    /** Drain the endpoint until idle. */
    void pumpAll(protocol::ServerEndpoint &endpoint);

    /**
     * Bind the simulated clock driving session deadlines (not owned).
     * Without a clock (or with sessionTimeoutSteps == 0) sessions
     * never expire, preserving the pre-reliability behavior.
     */
    void bindClock(const util::SimClock *clk) { simClock = clk; }

    /** Garbage-collect expired sessions against the bound clock. */
    void tick() { expireSessions(); }

    /** Initiate the adaptive remap exchange for a device. */
    void startRemap(std::uint64_t device_id,
                    protocol::ServerEndpoint &endpoint);

    EnrollmentDatabase &database() { return db; }
    const EnrollmentDatabase &database() const { return db; }
    const Verifier &verifier() const { return verify; }
    const std::vector<AuthReport> &reports() const { return log; }
    const ServerConfig &config() const { return cfg; }

    /** Remap exchanges committed after key confirmation. */
    std::uint64_t remapsCommitted() const { return nRemaps; }

    /** Remap exchanges rejected at the confirmation step. */
    std::uint64_t remapsRejected() const { return nRemapsRejected; }

    /** Outstanding sessions (challenges awaiting a response). */
    std::size_t pendingSessions() const
    {
        return pendingAuths.size() + pendingRemaps.size();
    }

    /** Sessions evicted by the pending-session cap. */
    std::uint64_t sessionsEvicted() const { return nEvicted; }

    /** Sessions garbage-collected by the per-session deadline. */
    std::uint64_t sessionsExpired() const { return nExpired; }

    /** Retransmitted AuthRequests answered with the same challenge. */
    std::uint64_t duplicateRequests() const { return nDupRequests; }

    /** Retransmitted responses/acks served from the completed cache. */
    std::uint64_t duplicateCompletions() const
    {
        return nDupCompletions;
    }

    /** Administrator action: clear a device's lockout. */
    void unlockDevice(std::uint64_t device_id)
    {
        db.at(device_id).unlock();
    }

  private:
    void handleAuthRequest(const protocol::AuthRequest &msg,
                           protocol::ServerEndpoint &endpoint);
    void handleResponse(const protocol::ResponseMsg &msg,
                        protocol::ServerEndpoint &endpoint);
    void handleRemapAck(const protocol::RemapAck &msg,
                        protocol::ServerEndpoint &endpoint);

    struct PendingAuth
    {
        std::uint64_t deviceId;
        core::Response expected;
        core::Challenge challenge; ///< Kept for idempotent re-issue.
        std::uint64_t deadline = 0; ///< Absolute step; 0 = no expiry.
    };
    struct PendingRemap
    {
        std::uint64_t deviceId;
        crypto::Key256 newKey;
        std::uint64_t deadline = 0;
    };

    /** Evict oldest pending sessions down to the configured cap. */
    void enforcePendingCap();

    /** Drop every pending session whose deadline has passed. */
    void expireSessions();

    /** Remove a finished/evicted auth nonce from the device index. */
    void forgetActiveAuth(std::uint64_t device_id,
                          std::uint64_t nonce);

    /** Deadline for a session opened now (0 when expiry is off). */
    std::uint64_t sessionDeadline() const;

    /** Remember a completed decision/commit for retransmit replies. */
    void cacheCompleted(std::uint64_t nonce, protocol::Message reply);

    ServerConfig cfg;
    util::Rng rng;
    EnrollmentDatabase db;
    ChallengeGenerator generator;
    Verifier verify;
    const util::SimClock *simClock = nullptr;
    std::unordered_map<std::uint64_t, PendingAuth> pendingAuths;
    std::unordered_map<std::uint64_t, PendingRemap> pendingRemaps;
    std::deque<std::uint64_t> pendingOrder; // Nonces, oldest first.
    /** Device -> nonce of its outstanding auth challenge. */
    std::unordered_map<std::uint64_t, std::uint64_t> activeAuthByDevice;
    /** Completed nonce -> the decision/commit originally sent. */
    std::unordered_map<std::uint64_t, protocol::Message> completed;
    std::deque<std::uint64_t> completedOrder;
    std::uint64_t nEvicted = 0;
    std::uint64_t nExpired = 0;
    std::uint64_t nDupRequests = 0;
    std::uint64_t nDupCompletions = 0;
    std::vector<AuthReport> log;
    std::uint64_t nRemaps = 0;
    std::uint64_t nRemapsRejected = 0;
};

/**
 * Client-side retry knobs; all time in simulated clock steps.
 * Attempt k (k = 0 for the original send) is declared lost after
 *
 *     timeoutSteps + min(capSteps, baseSteps << (k-1)) + jitter(k)
 *
 * steps (no backoff on the first attempt), where jitter(k) is drawn
 * deterministically from Rng::forStream(jitterSeed, k) -- the same
 * policy and seed always produce the same schedule.
 */
struct RetryPolicy
{
    /** Per-attempt reply deadline. */
    std::uint64_t timeoutSteps = 12;

    /** Total send attempts (original + retransmissions). */
    std::uint32_t maxAttempts = 4;

    /** Exponential backoff base, doubling per retransmission. */
    std::uint64_t backoffBaseSteps = 2;

    /** Backoff ceiling. */
    std::uint64_t backoffCapSteps = 32;

    /** Deterministic jitter drawn uniformly from [0, jitterSteps]. */
    std::uint64_t jitterSteps = 2;
    std::uint64_t jitterSeed = 0x0BACC0FF;

    /** Deadline of attempt @p attempt sent at @p now. */
    std::uint64_t deadlineFor(std::uint64_t now,
                              std::uint32_t attempt) const;
};

/**
 * Device-side protocol agent: bridges the wire protocol to the
 * firmware client, and (when a clock is bound) runs the retry state
 * machine: per-request timeout, bounded exponential backoff with
 * deterministic jitter, and a clean TimedOut outcome once the
 * retransmission budget is exhausted -- a lost frame can no longer
 * wedge an exchange.
 */
class DeviceAgent
{
  public:
    DeviceAgent(std::uint64_t device_id,
                firmware::AuthenticacheClient &client,
                protocol::ClientEndpoint endpoint);

    /** Kick off an authentication round. */
    void requestAuthentication();

    /** Handle one queued message, if any. @return message handled. */
    bool pumpOnce();

    /** Drain the endpoint until idle. */
    void pumpAll();

    /** Bind the simulated clock enabling timeouts (not owned). */
    void bindClock(const util::SimClock *clk) { simClock = clk; }

    void setRetryPolicy(const RetryPolicy &p) { policy = p; }

    /**
     * Drive the retry state machine one step: retransmit anything
     * past its deadline, or fail the session once the budget is gone.
     * No-op without a bound clock. @return true when it acted.
     */
    bool tick();

    /**
     * An exchange is still in flight: an authentication awaiting its
     * challenge or decision, or a remap awaiting its commit.
     */
    bool sessionActive() const
    {
        return authPhase != AuthPhase::Idle || !awaitCommit.empty();
    }

    /**
     * How the last authentication round ended: Ok (decision
     * received), Aborted (firmware refused), or TimedOut (retries
     * exhausted). Empty while in flight or before the first round.
     */
    const std::optional<firmware::AuthOutcome::Status> &
    lastAuthStatus() const
    {
        return authStatus;
    }

    /** Decision from the most recent completed authentication. */
    const std::optional<protocol::AuthDecision> &lastDecision() const
    {
        return decision;
    }

    /** Protocol-level errors received. */
    const std::vector<std::string> &errors() const { return errorLog; }

    std::uint64_t remapsProcessed() const { return nRemaps; }

    /** Remap exchanges abandoned after exhausting retransmissions. */
    std::uint64_t remapsTimedOut() const { return nRemapsTimedOut; }

    /** Frames retransmitted by the retry state machine. */
    std::uint64_t retransmissions() const { return nRetransmits; }

  private:
    enum class AuthPhase
    {
        Idle,
        AwaitChallenge,
        AwaitDecision,
    };

    /** A sent frame we may have to retransmit. */
    struct OutstandingSend
    {
        protocol::Message frame;
        std::uint32_t attempt = 0;
        std::uint64_t deadline = 0;
    };

    void armAuthSend(protocol::Message frame);
    void failAuthSession();
    void answerChallenge(const protocol::ChallengeMsg &ch);

    std::uint64_t deviceId;
    firmware::AuthenticacheClient &client;
    protocol::ClientEndpoint endpoint;
    const util::SimClock *simClock = nullptr;
    RetryPolicy policy;
    std::optional<protocol::AuthDecision> decision;
    std::optional<firmware::AuthOutcome::Status> authStatus;
    AuthPhase authPhase = AuthPhase::Idle;
    OutstandingSend authSend;
    /** Answered auth nonces -> cached response (bounded FIFO). */
    std::unordered_map<std::uint64_t, protocol::ResponseMsg>
        answeredAuths;
    std::deque<std::uint64_t> answeredOrder;
    /** Remap nonce -> ack awaiting the server's commit. */
    std::unordered_map<std::uint64_t, OutstandingSend> awaitCommit;
    std::vector<std::string> errorLog;
    std::uint64_t nRemaps = 0;
    std::uint64_t nRemapsTimedOut = 0;
    std::uint64_t nRetransmits = 0;
    std::unordered_map<std::uint64_t, crypto::Key256>
        pendingRemapKeys;
};

/** Snapshot a server's aggregate counters into a stats registry. */
void collectServerStats(const AuthenticationServer &server,
                        util::StatsRegistry &registry,
                        const std::string &component = "server");

/**
 * Pump both sides of a channel until neither has queued work -- the
 * synchronous equivalent of letting the exchange run to completion.
 */
void runExchange(AuthenticationServer &server,
                 protocol::ServerEndpoint &server_endpoint,
                 DeviceAgent &agent);

/** Result of a clock-driven exchange (see runExchangeSteps). */
struct SteppedExchangeResult
{
    /**
     * The exchange reached quiescence (agent idle, channel empty)
     * within the step budget; false means a hang, which the
     * reliability layer exists to rule out.
     */
    bool quiesced = false;
    std::uint64_t steps = 0;
};

/**
 * Clock-driven exchange driver: each step pumps both sides to
 * quiescence, then advances the shared clock by one and lets the
 * server expire sessions and the agent retransmit. Returns once the
 * agent has no session in flight and no frame is queued or delayed,
 * or after @p max_steps (a hang).
 */
SteppedExchangeResult
runExchangeSteps(AuthenticationServer &server,
                 protocol::ServerEndpoint &server_endpoint,
                 DeviceAgent &agent, util::SimClock &clock,
                 protocol::InMemoryChannel &channel,
                 std::uint64_t max_steps = 1000);

/**
 * Convenience: challenge levels spaced @p spacing_mv apart starting
 * just above the device's calibrated floor. The device must be booted.
 */
std::vector<core::VddMv>
defaultChallengeLevels(const firmware::AuthenticacheClient &client,
                       std::size_t count, double spacing_mv = 10.0);

/** A reserved (remap) level offset between the challenge levels. */
core::VddMv
defaultReservedLevel(const firmware::AuthenticacheClient &client);

} // namespace authenticache::server

#endif // AUTH_SERVER_SERVER_HPP
