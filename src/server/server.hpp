/**
 * @file
 * The Authenticache authentication server and the device-side protocol
 * agent (paper Sec 2.1, 4.2-4.5, Figures 6-7).
 *
 * Enrollment is a trusted, direct interaction: the server drives the
 * device firmware to capture its error maps, stores them, and installs
 * the initial logical-map key. Field authentication then runs over the
 * message protocol: AuthRequest -> Challenge -> Response -> Decision,
 * plus the server-initiated adaptive remap exchange.
 */

#ifndef AUTH_SERVER_SERVER_HPP
#define AUTH_SERVER_SERVER_HPP

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "crypto/fuzzy_extractor.hpp"
#include "firmware/client.hpp"
#include "protocol/channel.hpp"
#include "server/challenge_gen.hpp"
#include "server/database.hpp"
#include "server/verifier.hpp"
#include "util/stats_registry.hpp"

namespace authenticache::server {

/** Server behaviour knobs. */
struct ServerConfig
{
    /** Bits per authentication challenge. */
    std::size_t challengeBits = 128;

    /** Secret bits derived per remap exchange. */
    std::size_t remapSecretBits = 32;

    /** Fuzzy-extractor repetition factor for remap helper data. */
    unsigned fuzzyRepetition = 5;

    /**
     * Draw each challenge endpoint at an independent random voltage
     * level (the paper's Eq 7 with V != V'; its prototype restricted
     * itself to single-Vdd challenges). Requires >= 2 enrolled
     * challenge levels; costs extra regulator transitions client-side.
     */
    bool multiLevelChallenges = false;

    /**
     * Lock a device after this many consecutive rejections (brute
     * force / cloning attempts burn the CRP space otherwise). 0
     * disables the policy; locked devices need unlockDevice().
     */
    std::uint64_t lockoutThreshold = 0;

    /**
     * Cap on simultaneously outstanding challenges (and remap
     * exchanges). A flood of AuthRequests from clients that never
     * answer would otherwise grow server state without bound; when
     * full, the oldest outstanding session is evicted (its nonce is
     * dead, the consumed pairs stay retired).
     */
    std::size_t maxPendingSessions = 1024;

    VerifierPolicy verifier;
};

/** Record of one completed authentication (for reporting/tests). */
struct AuthReport
{
    std::uint64_t deviceId = 0;
    std::uint64_t nonce = 0;
    bool accepted = false;
    std::uint32_t hammingDistance = 0;
    std::int64_t threshold = 0;
};

class AuthenticationServer
{
  public:
    AuthenticationServer(const ServerConfig &config, std::uint64_t seed);

    /**
     * Trusted enrollment: boot the device if needed, capture its error
     * maps at the given levels, install a fresh logical-map key, and
     * store the record.
     */
    DeviceRecord &enroll(std::uint64_t device_id,
                         firmware::AuthenticacheClient &client,
                         const std::vector<core::VddMv> &challenge_levels,
                         const std::vector<core::VddMv> &reserved_levels,
                         std::uint32_t sweep_passes = 8);

    /**
     * Enroll with a pre-captured error map (robust enrollment: the
     * factory captures under several environmental conditions and
     * combines with core::combineErrorMaps before enrolling). Still
     * installs the initial key into the live client.
     */
    DeviceRecord &
    enrollWithMap(std::uint64_t device_id, core::ErrorMap map,
                  firmware::AuthenticacheClient &client,
                  const std::vector<core::VddMv> &challenge_levels,
                  const std::vector<core::VddMv> &reserved_levels);

    /**
     * Re-enroll a device whose silicon has drifted (trusted, like
     * first enrollment): recapture the error maps and issue a fresh
     * key. The old record -- including its consumed-pair history --
     * is discarded, since the old fingerprint's CRPs no longer
     * describe the device.
     */
    DeviceRecord &
    reenroll(std::uint64_t device_id,
             firmware::AuthenticacheClient &client,
             const std::vector<core::VddMv> &challenge_levels,
             const std::vector<core::VddMv> &reserved_levels,
             std::uint32_t sweep_passes = 8)
    {
        db.remove(device_id);
        return enroll(device_id, client, challenge_levels,
                      reserved_levels, sweep_passes);
    }

    /** Handle one queued message, if any. @return message handled. */
    bool pumpOnce(protocol::ServerEndpoint &endpoint);

    /** Drain the endpoint until idle. */
    void pumpAll(protocol::ServerEndpoint &endpoint);

    /** Initiate the adaptive remap exchange for a device. */
    void startRemap(std::uint64_t device_id,
                    protocol::ServerEndpoint &endpoint);

    EnrollmentDatabase &database() { return db; }
    const EnrollmentDatabase &database() const { return db; }
    const Verifier &verifier() const { return verify; }
    const std::vector<AuthReport> &reports() const { return log; }
    const ServerConfig &config() const { return cfg; }

    /** Remap exchanges committed after key confirmation. */
    std::uint64_t remapsCommitted() const { return nRemaps; }

    /** Remap exchanges rejected at the confirmation step. */
    std::uint64_t remapsRejected() const { return nRemapsRejected; }

    /** Outstanding sessions (challenges awaiting a response). */
    std::size_t pendingSessions() const
    {
        return pendingAuths.size() + pendingRemaps.size();
    }

    /** Sessions evicted by the pending-session cap. */
    std::uint64_t sessionsEvicted() const { return nEvicted; }

    /** Administrator action: clear a device's lockout. */
    void unlockDevice(std::uint64_t device_id)
    {
        db.at(device_id).unlock();
    }

  private:
    void handleAuthRequest(const protocol::AuthRequest &msg,
                           protocol::ServerEndpoint &endpoint);
    void handleResponse(const protocol::ResponseMsg &msg,
                        protocol::ServerEndpoint &endpoint);
    void handleRemapAck(const protocol::RemapAck &msg,
                        protocol::ServerEndpoint &endpoint);

    struct PendingAuth
    {
        std::uint64_t deviceId;
        core::Response expected;
    };
    struct PendingRemap
    {
        std::uint64_t deviceId;
        crypto::Key256 newKey;
    };

    /** Evict oldest pending sessions down to the configured cap. */
    void enforcePendingCap();

    ServerConfig cfg;
    util::Rng rng;
    EnrollmentDatabase db;
    ChallengeGenerator generator;
    Verifier verify;
    std::unordered_map<std::uint64_t, PendingAuth> pendingAuths;
    std::unordered_map<std::uint64_t, PendingRemap> pendingRemaps;
    std::deque<std::uint64_t> pendingOrder; // Nonces, oldest first.
    std::uint64_t nEvicted = 0;
    std::vector<AuthReport> log;
    std::uint64_t nRemaps = 0;
    std::uint64_t nRemapsRejected = 0;
};

/**
 * Device-side protocol agent: bridges the wire protocol to the
 * firmware client.
 */
class DeviceAgent
{
  public:
    DeviceAgent(std::uint64_t device_id,
                firmware::AuthenticacheClient &client,
                protocol::ClientEndpoint endpoint);

    /** Kick off an authentication round. */
    void requestAuthentication();

    /** Handle one queued message, if any. @return message handled. */
    bool pumpOnce();

    /** Drain the endpoint until idle. */
    void pumpAll();

    /** Decision from the most recent completed authentication. */
    const std::optional<protocol::AuthDecision> &lastDecision() const
    {
        return decision;
    }

    /** Protocol-level errors received. */
    const std::vector<std::string> &errors() const { return errorLog; }

    std::uint64_t remapsProcessed() const { return nRemaps; }

  private:
    std::uint64_t deviceId;
    firmware::AuthenticacheClient &client;
    protocol::ClientEndpoint endpoint;
    std::optional<protocol::AuthDecision> decision;
    std::vector<std::string> errorLog;
    std::uint64_t nRemaps = 0;
    std::unordered_map<std::uint64_t, crypto::Key256>
        pendingRemapKeys;
};

/** Snapshot a server's aggregate counters into a stats registry. */
void collectServerStats(const AuthenticationServer &server,
                        util::StatsRegistry &registry,
                        const std::string &component = "server");

/**
 * Pump both sides of a channel until neither has queued work -- the
 * synchronous equivalent of letting the exchange run to completion.
 */
void runExchange(AuthenticationServer &server,
                 protocol::ServerEndpoint &server_endpoint,
                 DeviceAgent &agent);

/**
 * Convenience: challenge levels spaced @p spacing_mv apart starting
 * just above the device's calibrated floor. The device must be booted.
 */
std::vector<core::VddMv>
defaultChallengeLevels(const firmware::AuthenticacheClient &client,
                       std::size_t count, double spacing_mv = 10.0);

/** A reserved (remap) level offset between the challenge levels. */
core::VddMv
defaultReservedLevel(const firmware::AuthenticacheClient &client);

} // namespace authenticache::server

#endif // AUTH_SERVER_SERVER_HPP
