/**
 * @file
 * The Authenticache authentication server facade (paper Sec 2.1,
 * 4.2-4.5, Figures 6-7).
 *
 * The server is wired from composable layers, each in its own header:
 *
 *  - SessionManager  (session_manager.hpp): N independent session
 *    shards -- pending tables, replay cache, deadline wheel, GC,
 *    per-device RNG streams -- plus the global pending-session cap.
 *  - AuthFlow / RemapFlow (auth_flow.hpp / remap_flow.hpp): the
 *    per-message protocol state machines.
 *  - DeviceDirectory (device_directory.hpp): device-record access.
 *  - ServerFrontEnd  (front_end.hpp): frame decode, shard routing,
 *    and the parallel batch pipeline (handleBatch); the single-frame
 *    pumpOnce path is a one-frame batch.
 *
 * This header keeps the stable public surface: trusted enrollment
 * (capture error maps, install the initial logical-map key),
 * single-message pumping, batch servicing, remap initiation, and the
 * aggregate counters, all delegating to the layers above. The
 * device-side agent lives in device_agent.hpp.
 */

#ifndef AUTH_SERVER_SERVER_HPP
#define AUTH_SERVER_SERVER_HPP

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "firmware/client.hpp"
#include "protocol/channel.hpp"
#include "server/challenge_gen.hpp"
#include "server/config.hpp"
#include "server/database.hpp"
#include "server/device_agent.hpp"
#include "server/device_directory.hpp"
#include "server/front_end.hpp"
#include "server/session_manager.hpp"
#include "server/verifier.hpp"
#include "util/sim_clock.hpp"
#include "util/stats_registry.hpp"
#include "util/thread_pool.hpp"

namespace authenticache::server {

class AuthenticationServer
{
  public:
    AuthenticationServer(const ServerConfig &config, std::uint64_t seed);

    /**
     * Trusted enrollment: boot the device if needed, capture its error
     * maps at the given levels, install a fresh logical-map key, and
     * store the record.
     */
    DeviceRecord &enroll(std::uint64_t device_id,
                         firmware::AuthenticacheClient &client,
                         const std::vector<core::VddMv> &challenge_levels,
                         const std::vector<core::VddMv> &reserved_levels,
                         std::uint32_t sweep_passes = 8);

    /**
     * Enroll with a pre-captured error map (robust enrollment: the
     * factory captures under several environmental conditions and
     * combines with core::combineErrorMaps before enrolling). Still
     * installs the initial key into the live client.
     */
    DeviceRecord &
    enrollWithMap(std::uint64_t device_id, core::ErrorMap map,
                  firmware::AuthenticacheClient &client,
                  const std::vector<core::VddMv> &challenge_levels,
                  const std::vector<core::VddMv> &reserved_levels);

    /**
     * Enroll a fully prepared record (key already set) -- the path
     * used by synthetic fixtures and by restores. Journaled like any
     * other enrollment when a durability layer is attached.
     */
    DeviceRecord &enrollRecord(DeviceRecord record);

    /**
     * Re-enroll a device whose silicon has drifted (trusted, like
     * first enrollment): recapture the error maps and issue a fresh
     * key. The old record -- including its consumed-pair history --
     * is discarded, since the old fingerprint's CRPs no longer
     * describe the device.
     */
    DeviceRecord &
    reenroll(std::uint64_t device_id,
             firmware::AuthenticacheClient &client,
             const std::vector<core::VddMv> &challenge_levels,
             const std::vector<core::VddMv> &reserved_levels,
             std::uint32_t sweep_passes = 8);

    /** Handle one queued message, if any. @return message handled. */
    bool pumpOnce(protocol::ServerEndpoint &endpoint)
    {
        return front.pumpOnce(endpoint);
    }

    /** Drain the endpoint until idle. */
    void pumpAll(protocol::ServerEndpoint &endpoint)
    {
        front.pumpAll(endpoint);
    }

    /**
     * Service a batch of frames, parallelising across session shards
     * on @p pool (ThreadPool::global() by default). Outcomes are
     * bit-identical at any pool width; replies are emitted to each
     * frame's endpoint in frame order.
     */
    void
    handleBatch(std::span<Frame> frames, util::ThreadPool &pool)
    {
        front.handleBatch(frames, pool);
    }

    void
    handleBatch(std::span<Frame> frames)
    {
        front.handleBatch(frames, util::ThreadPool::global());
    }

    /**
     * Bind the simulated clock driving session deadlines (not owned).
     * Without a clock (or with sessionTimeoutSteps == 0) sessions
     * never expire, preserving the pre-reliability behavior.
     */
    void bindClock(const util::SimClock *clk)
    {
        sessionsMgr.bindClock(clk);
    }

    /** Garbage-collect expired sessions against the bound clock. */
    void tick() { sessionsMgr.expireAll(); }

    /** Initiate the adaptive remap exchange for a device. */
    void startRemap(std::uint64_t device_id,
                    protocol::ServerEndpoint &endpoint)
    {
        front.startRemap(device_id, endpoint);
    }

    /**
     * Open a continuous-authentication heartbeat session: the server
     * streams periodic low-cost challenges to the device and feeds
     * the verdicts into its trust ledger (ServerConfig::trust). The
     * first challenge is emitted immediately; subsequent rounds fire
     * from tickHeartbeats() on the bound clock's cadence.
     */
    void startHeartbeat(std::uint64_t device_id,
                        protocol::ReplySink &endpoint)
    {
        front.startHeartbeat(device_id, endpoint);
    }

    /**
     * Advance heartbeat cadence to the bound clock: penalize missed
     * rounds, emit due challenges. Call once per clock step (after
     * tick()); drivers without heartbeats can skip it.
     */
    void tickHeartbeats(protocol::ReplySink &endpoint)
    {
        front.tickHeartbeats(endpoint);
    }

    /** Tear down a device's heartbeat session. @return one existed. */
    bool stopHeartbeat(std::uint64_t device_id)
    {
        return front.stopHeartbeat(device_id);
    }

    /**
     * Administrator action: revoke a device outright (journaled).
     * Tears down any live heartbeat session; authentication is
     * refused until unlockDevice().
     */
    void revokeDevice(std::uint64_t device_id);

    /**
     * Administrator action: permanently delete a device's enrollment
     * (journaled as DeviceRemoved and synced before return). Tears
     * down any live heartbeat session first.
     * @return whether the device existed.
     */
    bool removeDevice(std::uint64_t device_id);

    EnrollmentDatabase &database() { return devices.database(); }
    const EnrollmentDatabase &database() const
    {
        return devices.database();
    }
    DeviceDirectory &directory() { return devices; }
    const Verifier &verifier() const { return verify; }
    const std::vector<AuthReport> &reports() const
    {
        return front.reports();
    }
    const ServerConfig &config() const { return cfg; }

    /** The session layer (per-shard state and counters). */
    SessionManager &sessions() { return sessionsMgr; }
    const SessionManager &sessions() const { return sessionsMgr; }

    /** The frame-level front end (batch API without the facade). */
    ServerFrontEnd &frontEnd() { return front; }

    /** Remap exchanges committed after key confirmation. */
    std::uint64_t remapsCommitted() const
    {
        return sessionsMgr.remapsCommitted();
    }

    /** Remap exchanges rejected at the confirmation step. */
    std::uint64_t remapsRejected() const
    {
        return sessionsMgr.remapsRejected();
    }

    /** Outstanding sessions (challenges awaiting a response). */
    std::size_t pendingSessions() const
    {
        return sessionsMgr.totalPending();
    }

    /** Sessions evicted by the pending-session cap. */
    std::uint64_t sessionsEvicted() const
    {
        return sessionsMgr.sessionsEvicted();
    }

    /** Sessions garbage-collected by the per-session deadline. */
    std::uint64_t sessionsExpired() const
    {
        return sessionsMgr.sessionsExpired();
    }

    /** Retransmitted AuthRequests answered with the same challenge. */
    std::uint64_t duplicateRequests() const
    {
        return sessionsMgr.duplicateRequests();
    }

    /** Retransmitted responses/acks served from the completed cache. */
    std::uint64_t duplicateCompletions() const
    {
        return sessionsMgr.duplicateCompletions();
    }

    /** Devices locked by the lockout policy since construction. */
    std::uint64_t lockouts() const { return sessionsMgr.lockouts(); }

    // Trust-ledger aggregates (continuous authentication).
    std::uint64_t trustDecays() const
    {
        return sessionsMgr.trustDecays();
    }
    std::uint64_t stepUps() const { return sessionsMgr.stepUps(); }
    std::uint64_t proactiveRemaps() const
    {
        return sessionsMgr.proactiveRemaps();
    }
    std::uint64_t revocations() const
    {
        return sessionsMgr.revocations();
    }
    std::uint64_t adminUnlocks() const { return unlockCount; }

    /**
     * Administrator action: clear a device's lockout, revocation and
     * re-enroll flag, restoring trust to the policy ceiling
     * (journaled as DeviceUnlocked + an absolute TrustUpdate).
     */
    void unlockDevice(std::uint64_t device_id);

    /**
     * Attach (or detach, with nullptr) a durability layer: every
     * batch journals its events and syncs before replying, and
     * snapshot rotation runs at batch boundaries. The manager is not
     * owned and must outlive the attachment.
     */
    void attachDurability(DurabilityManager *manager)
    {
        front.attachDurability(manager);
    }

    /** The attached durability layer, or nullptr. */
    DurabilityManager *durability() { return front.durability(); }
    const DurabilityManager *durability() const
    {
        return front.durability();
    }

    /**
     * Replace the whole database (recovery / persistence restore).
     * Only valid before traffic: pending sessions are not rebuilt.
     */
    void adoptDatabase(EnrollmentDatabase db)
    {
        devices.adopt(std::move(db));
    }

    /**
     * Seed the completed-nonce replay cache with remap commit
     * decisions recovered from the journal, so a client whose
     * RemapAck raced the crash can retransmit it and still get the
     * original commit (RecoveryResult::remapOutcomes).
     */
    void seedCompletedRemaps(
        const std::vector<std::pair<std::uint64_t, bool>> &outcomes);

  private:
    ServerConfig cfg;
    util::Rng rng; ///< Master stream: enrollment keys only.
    DeviceDirectory devices;
    ChallengeGenerator generator;
    Verifier verify;
    SessionManager sessionsMgr;
    ServerFrontEnd front;
    std::uint64_t unlockCount = 0; ///< Admin unlocks (stats).
};

/**
 * Snapshot a server's aggregate counters into a stats registry,
 * including the per-shard session counters (published under
 * "<component>.shard<k>").
 */
void collectServerStats(const AuthenticationServer &server,
                        util::StatsRegistry &registry,
                        const std::string &component = "server");

/**
 * Pump both sides of a channel until neither has queued work -- the
 * synchronous equivalent of letting the exchange run to completion.
 */
void runExchange(AuthenticationServer &server,
                 protocol::ServerEndpoint &server_endpoint,
                 DeviceAgent &agent);

/** Result of a clock-driven exchange (see runExchangeSteps). */
struct SteppedExchangeResult
{
    /**
     * The exchange reached quiescence (agent idle, channel empty)
     * within the step budget; false means a hang, which the
     * reliability layer exists to rule out.
     */
    bool quiesced = false;
    std::uint64_t steps = 0;
};

/**
 * Clock-driven exchange driver: each step pumps both sides to
 * quiescence, then advances the shared clock by one and lets the
 * server expire sessions and the agent retransmit. Returns once the
 * agent has no session in flight and no frame is queued or delayed,
 * or after @p max_steps (a hang).
 */
SteppedExchangeResult
runExchangeSteps(AuthenticationServer &server,
                 protocol::ServerEndpoint &server_endpoint,
                 DeviceAgent &agent, util::SimClock &clock,
                 protocol::InMemoryChannel &channel,
                 std::uint64_t max_steps = 1000);

/**
 * Convenience: challenge levels spaced @p spacing_mv apart starting
 * just above the device's calibrated floor. The device must be booted
 * first -- calling this on an unbooted client is a programming error
 * (std::logic_error), not a protocol condition, since no frame is in
 * flight yet.
 */
std::vector<core::VddMv>
defaultChallengeLevels(const firmware::AuthenticacheClient &client,
                       std::size_t count, double spacing_mv = 10.0);

/**
 * A reserved (remap) level offset between the challenge levels. Same
 * precondition as defaultChallengeLevels: the device must be booted.
 */
core::VddMv
defaultReservedLevel(const firmware::AuthenticacheClient &client);

} // namespace authenticache::server

#endif // AUTH_SERVER_SERVER_HPP
