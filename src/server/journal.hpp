/**
 * @file
 * Write-ahead journal for the authentication server's durable state.
 *
 * Every state-mutating event -- pair retirement, auth outcome (with
 * lockout), remap prepare/commit/reject, enrollment, removal, unlock,
 * counter checkpoints -- is appended as a CRC-framed record *before*
 * the reply that discloses it leaves the server (sync-before-reply).
 * A snapshot rotation (server/durability.hpp) periodically compacts
 * the journal into the storage.cpp snapshot format; recovery replays
 * the journal tail on top of the newest valid snapshot.
 *
 * File format (little endian):
 *
 *   header:  [u32 magic "ACJL"][u16 version][u64 generation]
 *   records: [u32 payload length][u32 crc32(payload)][payload]
 *   payload: [u64 sequence][u8 event type][event fields]
 *
 * A torn final record (short frame or CRC mismatch) marks the crash
 * point: replay stops there and reports the byte offset of the last
 * valid record so recovery can truncate the tail instead of rejecting
 * the file. Sequence numbers are global and contiguous across
 * generations; replay skips records at or below the snapshot's
 * watermark, making it idempotent.
 *
 * Event semantics are chosen so that *every prefix* of the event
 * stream is a consistent database state: pair retirement is separate
 * from (and precedes) the challenge reply, so a crash between append
 * and reply can only over-retire pairs -- the safe direction for the
 * paper's no-reuse guarantee (Sec 4.4) -- and a remap key is switched
 * by a single RemapCommitted record, never partially (Sec 4.5).
 */

#ifndef AUTH_SERVER_JOURNAL_HPP
#define AUTH_SERVER_JOURNAL_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <variant>
#include <vector>

#include "crypto/key.hpp"
#include "protocol/serialize.hpp"
#include "server/database.hpp"
#include "server/durable_io.hpp"

namespace authenticache::server::journal {

/**
 * One retired challenge pair in *physical* identity (level per
 * endpoint; same level twice = a single-voltage pair). Physical
 * identity survives key rotations, matching the consumed-set rule.
 */
struct RetiredPair
{
    std::uint32_t levelA = 0;
    std::uint32_t levelB = 0;
    std::uint64_t lineA = 0;
    std::uint64_t lineB = 0;
};

/** Pairs one generated challenge consumed (retire-before-reply). */
struct PairsRetired
{
    std::uint64_t deviceId = 0;
    std::vector<RetiredPair> pairs;
};

/** A completed authentication: counters plus any lockout decision. */
struct AuthOutcome
{
    std::uint64_t deviceId = 0;
    bool accepted = false;
    bool lockedNow = false; ///< The lockout policy fired on this one.
};

/** A remap exchange opened (pairs retired via PairsRetired). */
struct RemapPrepared
{
    std::uint64_t deviceId = 0;
    std::uint64_t nonce = 0;
};

/** Key confirmation succeeded: the device's map key switched. */
struct RemapCommitted
{
    std::uint64_t deviceId = 0;
    std::uint64_t nonce = 0;
    crypto::Key256 newKey;
};

/** Key confirmation failed: the old key stays. */
struct RemapRejected
{
    std::uint64_t deviceId = 0;
    std::uint64_t nonce = 0;
};

/** Administrator cleared a lockout. */
struct DeviceUnlocked
{
    std::uint64_t deviceId = 0;
};

/** A device record was removed (re-enrollment discards history). */
struct DeviceRemoved
{
    std::uint64_t deviceId = 0;
};

/** A device was enrolled; carries the full record encoding. */
struct Enrolled
{
    std::vector<std::uint8_t> record; ///< encodeDeviceRecord bytes.
};

/** Absolute counter checkpoint (bounds replay divergence windows). */
struct CounterCheckpoint
{
    std::uint64_t deviceId = 0;
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t consecutiveFails = 0;
};

/**
 * Absolute trust-ledger state after a heartbeat verdict or admin
 * unlock. Absolute (not a delta) so replay never depends on the
 * restarted server's TrustPolicy config -- the same rule as
 * AuthOutcome's lockedNow.
 */
struct TrustUpdate
{
    std::uint64_t deviceId = 0;
    std::uint32_t trust = 0;
    std::uint32_t remapBudgetUsed = 0;
    bool reenrollRequired = false;
};

/** The trust policy revoked a device (cleared by DeviceUnlocked). */
struct DeviceRevoked
{
    std::uint64_t deviceId = 0;
};

using Event =
    std::variant<PairsRetired, AuthOutcome, RemapPrepared,
                 RemapCommitted, RemapRejected, DeviceUnlocked,
                 DeviceRemoved, Enrolled, CounterCheckpoint,
                 TrustUpdate, DeviceRevoked>;

/** Serialize one event (type byte + fields). */
void encodeEvent(protocol::ByteWriter &w, const Event &event);

/** Deserialize one event; throws protocol::DecodeError. */
Event decodeEvent(protocol::ByteReader &r);

/**
 * Apply one event to a database (replay). Throws
 * protocol::DecodeError when the event references an unknown device
 * or carries an undecodable record -- CRC-valid journals produced by
 * this server never do.
 */
void applyEvent(EnrollmentDatabase &db, const Event &event);

/**
 * The append log. One Journal owns one open generation file; the
 * DurabilityManager rotates to a fresh one at snapshot boundaries.
 * append() buffers nothing: records hit the file immediately, and
 * sync() (an fsync, skipped when clean) makes the batch durable --
 * the front end syncs once per batch, before any reply is sent.
 */
class Journal
{
  public:
    Journal() = default;
    ~Journal();
    Journal(Journal &&other) noexcept;
    Journal &operator=(Journal &&other) noexcept;
    Journal(const Journal &) = delete;
    Journal &operator=(const Journal &) = delete;

    /** Create a fresh journal file (header written and synced). */
    static Journal create(const std::string &path,
                          std::uint64_t generation,
                          CrashInjector *inj = nullptr);

    /** Append one framed record (not yet durable; see sync()). */
    void append(std::uint64_t seq, const Event &event);

    /** fsync pending appends. @return whether an fsync happened. */
    bool sync();

    /** Close the file (further appends are a logic error). */
    void close();

    bool isOpen() const { return fd >= 0; }
    std::uint64_t bytesWritten() const { return written; }

    /** What a replay pass found in one journal file. */
    struct ReplayResult
    {
        bool headerValid = false;
        std::uint64_t generation = 0;
        std::uint64_t records = 0; ///< Records delivered to the callback.
        std::uint64_t lastSeq = 0; ///< Highest sequence delivered.
        bool tornTail = false;     ///< Trailing torn/corrupt record.
        std::uint64_t validBytes = 0; ///< Offset of the valid prefix.
    };

    /**
     * Scan a journal file, delivering each CRC-valid record with
     * sequence > @p after_seq to @p fn in order. Stops (tornTail) at
     * the first short or CRC-mismatched frame; never throws for file
     * corruption. Exceptions from @p fn propagate.
     */
    static ReplayResult
    replay(const std::string &path, std::uint64_t after_seq,
           const std::function<void(std::uint64_t, const Event &)> &fn);

  private:
    Journal(int fd_, std::string path_, CrashInjector *inj_)
        : fd(fd_), path(std::move(path_)), inj(inj_)
    {
    }

    int fd = -1;
    std::string path;
    CrashInjector *inj = nullptr;
    bool dirty = false;
    std::uint64_t written = 0;
};

} // namespace authenticache::server::journal

#endif // AUTH_SERVER_JOURNAL_HPP
