#include "server/storage.hpp"

#include <algorithm>
#include <fstream>

#include "util/crc32.hpp"

namespace authenticache::server {

namespace {

constexpr std::uint32_t kMagic = 0x42444341; // "ACDB".
constexpr std::uint16_t kVersionLegacy = 1;
constexpr std::uint16_t kVersion = 2; // Adds durability metadata.

} // namespace

/** Befriended accessor for DeviceRecord's private consumed state. */
struct RecordStorageAccess
{
    static void
    encode(protocol::ByteWriter &w, const DeviceRecord &record)
    {
        w.putU64(record.id);
        encodeErrorMap(w, record.map);

        w.putBytes(std::span<const std::uint8_t>(
            record.key.bytes.data(), record.key.bytes.size()));

        w.putU32(static_cast<std::uint32_t>(record.authLevels.size()));
        for (auto level : record.authLevels)
            w.putU32(level);
        w.putU32(
            static_cast<std::uint32_t>(record.remapLevels.size()));
        for (auto level : record.remapLevels)
            w.putU32(level);

        // Canonical order: the consumed sets are unordered in memory,
        // so sort before dumping -- equal logical states must produce
        // byte-identical snapshots (recovery sweeps compare them).
        w.putU32(static_cast<std::uint32_t>(record.consumed.size()));
        for (const auto &[level, pairs] : record.consumed) {
            w.putU32(level);
            w.putU64(pairs.size());
            std::vector<std::uint64_t> sorted(pairs.begin(),
                                              pairs.end());
            std::sort(sorted.begin(), sorted.end());
            for (auto pair_key : sorted)
                w.putU64(pair_key);
        }

        w.putU64(record.mixed.size());
        for (const auto &entry : record.mixed) {
            for (auto v : entry)
                w.putU64(v);
        }

        w.putU64(record.nAccepted);
        w.putU64(record.nRejected);
        w.putU64(record.consecutiveFails);
        w.putU8(record.isLocked ? 1 : 0);

        // Trust ledger (continuous authentication).
        w.putU32(record.trust);
        w.putU32(record.remapsUsed);
        w.putU8(record.isRevoked ? 1 : 0);
        w.putU8(record.reenrollNeeded ? 1 : 0);
    }

    static DeviceRecord
    decode(protocol::ByteReader &r)
    {
        std::uint64_t id = r.getU64();
        core::ErrorMap map = decodeErrorMap(r);

        crypto::Key256 key;
        auto key_bytes = r.getBytes(key.bytes.size());
        std::copy(key_bytes.begin(), key_bytes.end(),
                  key.bytes.begin());

        auto read_levels = [&r]() {
            std::uint32_t count = r.getU32();
            if (count > 4096)
                throw protocol::DecodeError("too many levels");
            std::vector<core::VddMv> levels;
            levels.reserve(count);
            for (std::uint32_t i = 0; i < count; ++i)
                levels.push_back(r.getU32());
            return levels;
        };
        auto auth_levels = read_levels();
        auto remap_levels = read_levels();

        DeviceRecord record(id, std::move(map), auth_levels,
                            remap_levels);
        record.setMapKey(key);

        std::uint32_t consumed_levels = r.getU32();
        for (std::uint32_t i = 0; i < consumed_levels; ++i) {
            core::VddMv level = r.getU32();
            std::uint64_t count = r.getU64();
            auto &set = record.consumed[level];
            set.reserve(count * 2);
            for (std::uint64_t k = 0; k < count; ++k)
                set.insert(r.getU64());
        }

        std::uint64_t mixed_count = r.getU64();
        for (std::uint64_t i = 0; i < mixed_count; ++i) {
            std::array<std::uint64_t, 4> entry;
            for (auto &v : entry)
                v = r.getU64();
            record.mixed.insert(entry);
        }

        record.nAccepted = r.getU64();
        record.nRejected = r.getU64();
        record.consecutiveFails = r.getU64();
        record.isLocked = r.getU8() != 0;
        record.trust = r.getU32();
        record.remapsUsed = r.getU32();
        record.isRevoked = r.getU8() != 0;
        record.reenrollNeeded = r.getU8() != 0;
        return record;
    }
};

void
encodeErrorMap(protocol::ByteWriter &w, const core::ErrorMap &map)
{
    const auto &geom = map.geometry();
    w.putU64(geom.sizeBytes());
    w.putU32(geom.lineBytes());
    w.putU32(geom.ways());

    auto levels = map.levels();
    w.putU32(static_cast<std::uint32_t>(levels.size()));
    for (auto level : levels) {
        const auto &plane = map.plane(level);
        w.putU32(level);
        w.putU64(plane.errorCount());
        for (const auto &e : plane.errors()) {
            w.putU32(e.set);
            w.putU32(e.way);
        }
    }
}

core::ErrorMap
decodeErrorMap(protocol::ByteReader &r)
{
    std::uint64_t size_bytes = r.getU64();
    std::uint32_t line_bytes = r.getU32();
    std::uint32_t ways = r.getU32();

    core::ErrorMap map(
        [&] {
            try {
                return core::CacheGeometry(size_bytes, line_bytes,
                                           ways);
            } catch (const std::invalid_argument &e) {
                throw protocol::DecodeError(
                    std::string("bad geometry: ") + e.what());
            }
        }());

    std::uint32_t levels = r.getU32();
    if (levels > 4096)
        throw protocol::DecodeError("too many map levels");
    for (std::uint32_t i = 0; i < levels; ++i) {
        core::VddMv level = r.getU32();
        std::uint64_t count = r.getU64();
        if (count > map.geometry().lines())
            throw protocol::DecodeError("error count exceeds cache");
        auto &plane = map.plane(level);
        for (std::uint64_t k = 0; k < count; ++k) {
            sim::LinePoint p;
            p.set = r.getU32();
            p.way = r.getU32();
            if (!map.geometry().contains(p))
                throw protocol::DecodeError("error outside cache");
            plane.add(p);
        }
    }
    return map;
}

void
encodeDeviceRecord(protocol::ByteWriter &w, const DeviceRecord &record)
{
    RecordStorageAccess::encode(w, record);
}

DeviceRecord
decodeDeviceRecord(protocol::ByteReader &r)
{
    return RecordStorageAccess::decode(r);
}

namespace {

std::vector<std::uint8_t>
saveDatabaseVersioned(const EnrollmentDatabase &db,
                      std::uint16_t version, const SnapshotMeta &meta)
{
    protocol::ByteWriter w;
    w.putU32(kMagic);
    w.putU16(version);
    if (version >= 2) {
        w.putU64(meta.generation);
        w.putU64(meta.journalWatermark);
    }
    w.putU32(static_cast<std::uint32_t>(db.size()));

    // Deterministic order: ids are sorted below before any byte is
    // written, so the map's order never reaches the snapshot.
    std::vector<std::uint64_t> ids;
    ids.reserve(db.size());
    // LINT:allow(unordered-iter)
    for (const auto &[id, _] : db.all())
        ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    for (auto id : ids)
        encodeDeviceRecord(w, db.at(id));

    std::uint32_t crc = util::crc32(w.bytes());
    w.putU32(crc);
    return w.take();
}

} // namespace

std::vector<std::uint8_t>
saveDatabase(const EnrollmentDatabase &db, const SnapshotMeta &meta)
{
    return saveDatabaseVersioned(db, kVersion, meta);
}

std::vector<std::uint8_t>
saveDatabaseV1(const EnrollmentDatabase &db)
{
    return saveDatabaseVersioned(db, kVersionLegacy, {});
}

EnrollmentDatabase
loadDatabase(std::span<const std::uint8_t> blob, SnapshotMeta *meta)
{
    if (meta != nullptr)
        *meta = {};
    if (blob.size() < 4)
        throw protocol::DecodeError("snapshot truncated");
    std::uint32_t stored_crc = 0;
    for (int i = 0; i < 4; ++i) {
        stored_crc |= static_cast<std::uint32_t>(
                          blob[blob.size() - 4 + i])
                      << (8 * i);
    }
    auto body = blob.first(blob.size() - 4);
    if (util::crc32(body) != stored_crc)
        throw protocol::DecodeError("snapshot CRC mismatch");

    protocol::ByteReader r(body);
    if (r.getU32() != kMagic)
        throw protocol::DecodeError("bad snapshot magic");
    std::uint16_t version = r.getU16();
    if (version < kVersionLegacy || version > kVersion)
        throw protocol::DecodeError("unsupported snapshot version");
    if (version >= 2) {
        SnapshotMeta m;
        m.generation = r.getU64();
        m.journalWatermark = r.getU64();
        if (meta != nullptr)
            *meta = m;
    }

    EnrollmentDatabase db;
    std::uint32_t count = r.getU32();
    for (std::uint32_t i = 0; i < count; ++i)
        db.enroll(decodeDeviceRecord(r));
    r.expectEnd();
    return db;
}

void
saveDatabaseFile(const EnrollmentDatabase &db, const std::string &path,
                 const SnapshotMeta &meta, CrashInjector *inj)
{
    // Atomic replacement: a crash mid-write must never destroy the
    // previous snapshot (the old ofstream+trunc version did exactly
    // that).
    auto blob = saveDatabase(db, meta);
    atomicWriteFile(path, blob, inj, "snapshot");
}

EnrollmentDatabase
loadDatabaseFile(const std::string &path, SnapshotMeta *meta)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in)
        throw std::runtime_error("loadDatabaseFile: cannot open " +
                                 path);
    auto size = in.tellg();
    in.seekg(0);
    std::vector<std::uint8_t> blob(static_cast<std::size_t>(size));
    in.read(reinterpret_cast<char *>(blob.data()), size);
    if (!in)
        throw std::runtime_error("loadDatabaseFile: read failed");
    return loadDatabase(blob, meta);
}

} // namespace authenticache::server
