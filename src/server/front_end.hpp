/**
 * @file
 * The server's frame-level entry point. The ServerFrontEnd decodes
 * incoming frames, routes them to the owning session shard (by device
 * id for AuthRequests, by the shard tag in the nonce for responses
 * and remap acks), runs the auth/remap flows, and merges the results
 * back in deterministic frame order.
 *
 * handleBatch services frames from distinct devices in parallel on a
 * util::ThreadPool with a fixed pipeline:
 *
 *   GC -> reserve open ordinals -> parallel decode -> group by shard
 *      -> parallel per-shard flow (input order within a shard, under
 *         the shard mutex)
 *      -> sequential merge (replies/reports emitted in frame order,
 *         opened sessions ranked by batch ordinal)
 *      -> global cap enforcement
 *
 * Every source of randomness is a per-device Rng stream and every
 * cross-frame effect happens in the sequential stages, so outcomes
 * are bit-identical at any thread count. The single-frame pumpOnce
 * path is a one-frame batch, preserving the old per-message GC and
 * cap timing exactly.
 *
 * Frame dispatch is exception-hardened: a malformed or out-of-phase
 * frame yields a protocol-level ErrorMsg reply, never an escaping
 * exception -- one bad frame cannot take down the verifier.
 */

#ifndef AUTH_SERVER_FRONT_END_HPP
#define AUTH_SERVER_FRONT_END_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "protocol/channel.hpp"
#include "server/auth_flow.hpp"
#include "server/heartbeat_flow.hpp"
#include "server/remap_flow.hpp"
#include "util/thread_pool.hpp"

namespace authenticache::server {

class DurabilityManager;

/**
 * One received frame plus the sink its replies go to: an in-memory
 * ServerEndpoint in simulation, or a wire-transport stream sink when
 * the frame arrived over a socket (src/net).
 */
struct Frame
{
    std::vector<std::uint8_t> bytes;
    protocol::ReplySink *reply = nullptr;
};

class ServerFrontEnd
{
  public:
    ServerFrontEnd(SessionManager &sessions_,
                   DeviceDirectory &devices_,
                   ChallengeGenerator &generator,
                   const Verifier &verifier)
        : sessions(sessions_), devices(devices_),
          auth(sessions_, devices_, generator, verifier),
          remap(sessions_, devices_, generator),
          heartbeat(sessions_, devices_, generator, verifier, remap)
    {
    }

    /**
     * Attach (or detach, with nullptr) the durability layer. While
     * attached, every batch drains the shard-local event buffers into
     * the journal and syncs it *before* any reply is sent
     * (sync-before-reply), and snapshot rotation runs at batch
     * boundaries.
     */
    void attachDurability(DurabilityManager *manager)
    {
        dur = manager;
        sessions.setJournaling(manager != nullptr);
    }

    DurabilityManager *durability() { return dur; }
    const DurabilityManager *durability() const { return dur; }

    /**
     * Service a batch of frames, parallelising across session shards
     * on @p pool. Replies are sent to each frame's endpoint in frame
     * order; outcomes are bit-identical at any pool width.
     */
    void handleBatch(std::span<Frame> frames, util::ThreadPool &pool);

    /** One-frame-batch convenience for an already-decoded message. */
    void handleMessage(const protocol::Message &msg,
                       protocol::ServerEndpoint &endpoint);

    /** Handle one queued message, if any. @return message handled. */
    bool pumpOnce(protocol::ServerEndpoint &endpoint);

    /** Drain the endpoint until idle. */
    void pumpAll(protocol::ServerEndpoint &endpoint);

    /** Initiate the adaptive remap exchange for a device. */
    void startRemap(std::uint64_t device_id,
                    protocol::ServerEndpoint &endpoint);

    /** Open a continuous-authentication heartbeat session. */
    void startHeartbeat(std::uint64_t device_id,
                        protocol::ReplySink &endpoint);

    /**
     * Advance every shard's heartbeat cadence to the bound clock:
     * missed rounds are penalized and due sessions get their next
     * challenge, all emitted to @p endpoint. Runs shards in index
     * order, single-threaded, so the trust trajectory is a pure
     * function of the clock and the device streams.
     */
    void tickHeartbeats(protocol::ReplySink &endpoint);

    /** Tear down a device's heartbeat session. @return one existed. */
    bool stopHeartbeat(std::uint64_t device_id);

    /** Completed-authentication reports, in completion order. */
    const std::vector<AuthReport> &reports() const { return log; }

  private:
    /**
     * Route a decoded message to its shard and flow. Takes the shard
     * mutex; never throws (failures become ErrorMsg replies).
     */
    FlowOutput dispatch(const protocol::Message &msg);

    /** Sequential tail of every batch: journal + emit + rank + cap. */
    void mergeOutputs(std::span<Frame> frames,
                      std::vector<FlowOutput> &outputs,
                      std::uint64_t ordinal_base);

    /**
     * Drain every shard's WAL buffer into the journal (shard index
     * order, so journal bytes are identical at any thread count) and
     * sync. Called before any reply of the batch is emitted.
     */
    void flushJournal();

    SessionManager &sessions;
    DeviceDirectory &devices;
    AuthFlow auth;
    RemapFlow remap;
    HeartbeatFlow heartbeat;
    DurabilityManager *dur = nullptr;
    std::vector<AuthReport> log;
};

} // namespace authenticache::server

#endif // AUTH_SERVER_FRONT_END_HPP
