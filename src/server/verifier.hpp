/**
 * @file
 * Response verification with an identification threshold chosen at the
 * equal error rate (paper Sec 2.2.3).
 *
 * The EER search sweeps all n+1 candidate thresholds with binomial
 * tail evaluations, which is far too expensive to redo on every
 * authentication. The Verifier memoizes one ThresholdChoice per
 * response length -- the policy's (pInter, pIntra) are fixed for the
 * verifier's lifetime, so the response bit-count is the full cache
 * key -- making steady-state verification an O(1) lookup plus one
 * Hamming distance. The cache (and the policy, which copy-assignment
 * can replace) is mutex-guarded so concurrent server sessions can
 * verify on pool threads; the guard relationships are stated with
 * Clang thread-safety annotations (util/mutex.hpp).
 */

#ifndef AUTH_SERVER_VERIFIER_HPP
#define AUTH_SERVER_VERIFIER_HPP

#include <cstdint>
#include <map>

#include "util/mutex.hpp"

#include "core/challenge.hpp"
#include "metrics/identifiability.hpp"

namespace authenticache::server {

/** Verifier policy parameters. */
struct VerifierPolicy
{
    /** Inter-chip per-bit disagreement probability (ideal 0.5). */
    double pInter = 0.5;

    /**
     * Intra-chip per-bit flip probability the deployment must
     * tolerate; the paper measures <6% on hardware across a 25C
     * temperature swing (Sec 3).
     */
    double pIntra = 0.06;
};

/** One verification verdict. */
struct Verdict
{
    bool accepted = false;
    std::uint32_t hammingDistance = 0;
    std::int64_t threshold = 0;
    double farAtThreshold = 0.0;
    double frrAtThreshold = 0.0;
};

class Verifier
{
  public:
    explicit Verifier(const VerifierPolicy &policy = {});

    /** Copies share the policy but rebuild their cache lazily. */
    Verifier(const Verifier &other);
    Verifier &operator=(const Verifier &other);

    /** EER threshold for an n-bit response under the policy. */
    std::int64_t thresholdFor(std::size_t response_bits) const
        AUTH_EXCLUDES(cacheMutex);

    /** Compare a received response against the expected one. */
    Verdict verify(const core::Response &expected,
                   const core::Response &received) const
        AUTH_EXCLUDES(cacheMutex);

    /** Snapshot of the policy (by value: assignment can replace it). */
    VerifierPolicy policy() const AUTH_EXCLUDES(cacheMutex);

  private:
    /** Memoized EER sweep for one response length. */
    metrics::ThresholdChoice choiceFor(std::size_t response_bits) const
        AUTH_EXCLUDES(cacheMutex);

    /** `mutable` so const read APIs can lock; see DESIGN.md 5g. */
    mutable util::Mutex cacheMutex;
    VerifierPolicy pol AUTH_GUARDED_BY(cacheMutex);
    mutable std::map<std::size_t, metrics::ThresholdChoice> cache
        AUTH_GUARDED_BY(cacheMutex);
};

} // namespace authenticache::server

#endif // AUTH_SERVER_VERIFIER_HPP
