#include "server/remap_flow.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "crypto/fuzzy_extractor.hpp"
#include "crypto/key.hpp"
#include "util/logging.hpp"

namespace authenticache::server {

FlowOutput
RemapFlow::start(SessionShard &sh, std::uint64_t device_id)
{
    FlowOutput out;
    // Precondition failures are protocol-level rejects: a remap aimed
    // at a bad target must not take the verifier down.
    if (!devices.contains(device_id)) {
        out.replies.push_back(
            protocol::ErrorMsg{"remap: unknown device"});
        return out;
    }
    DeviceRecord &record = devices.at(device_id);
    if (record.reservedLevels().empty()) {
        out.replies.push_back(
            protocol::ErrorMsg{"remap: no reserved levels"});
        return out;
    }

    const ServerConfig &cfg = sessions.config();
    util::Rng &rng = sessions.deviceRng(sh, device_id);
    core::VddMv level = record.reservedLevels()[rng.nextBelow(
        record.reservedLevels().size())];

    const std::size_t bits =
        cfg.remapSecretBits * cfg.fuzzyRepetition;
    GeneratedChallenge gen;
    try {
        gen = generator.generateReserved(record, level, bits, rng);
    } catch (const std::runtime_error &e) {
        out.replies.push_back(
            protocol::ErrorMsg{std::string("remap: ") + e.what()});
        return out;
    }

    crypto::FuzzyExtractor extractor(cfg.fuzzyRepetition);
    auto extraction = extractor.generate(gen.expected, rng);

    std::uint64_t nonce = sessions.makeNonce(sh, rng);
    if (sessions.journalingEnabled()) {
        sh.wal.push_back(journal::PairsRetired{
            device_id, std::move(gen.retired)});
        sh.wal.push_back(journal::RemapPrepared{device_id, nonce});
    }
    std::uint64_t deadline = sessions.sessionDeadline();
    sh.pendingRemaps[nonce] =
        PendingRemap{device_id, extraction.key, deadline};
    sh.noteDeadline(nonce, deadline);
    out.openedNonce = nonce;

    protocol::RemapRequest msg;
    msg.nonce = nonce;
    msg.challenge = std::move(gen.challenge);
    msg.helper = std::move(extraction.helper);
    msg.repetition = cfg.fuzzyRepetition;
    out.replies.push_back(std::move(msg));
    return out;
}

FlowOutput
RemapFlow::onAck(SessionShard &sh, const protocol::RemapAck &msg)
{
    FlowOutput out;
    auto it = sh.pendingRemaps.find(msg.nonce);
    if (it == sh.pendingRemaps.end()) {
        // Retransmitted ack for a completed exchange: resend the
        // commit verbatim so a lost commit frame cannot desync keys.
        if (const protocol::Message *done =
                sh.findCompleted(msg.nonce)) {
            ++sh.counters.dupCompletions;
            out.replies.push_back(*done);
        }
        return out;
    }

    // Two-phase commit: only switch keys when the client proves it
    // derived the same one (a mis-derived key would desynchronize
    // both sides until the next rotation).
    auto expected = crypto::keyConfirmation(it->second.newKey,
                                            msg.nonce);
    bool confirmed =
        msg.success &&
        std::equal(expected.begin(), expected.end(),
                   msg.confirmation.begin(), msg.confirmation.end());

    if (confirmed) {
        devices.at(it->second.deviceId).setMapKey(it->second.newKey);
        ++sh.counters.remapsCommitted;
        AUTH_LOG_INFO("server.remap")
            << "device " << it->second.deviceId << " key rotated";
    } else {
        ++sh.counters.remapsRejected;
        AUTH_LOG_WARN("server.remap")
            << "device " << it->second.deviceId
            << " remap rejected (key confirmation failed)";
    }
    // The key switch is a single journal record: after recovery the
    // device's key is fully old or fully new, never in between.
    if (sessions.journalingEnabled()) {
        if (confirmed)
            sh.wal.push_back(journal::RemapCommitted{
                it->second.deviceId, msg.nonce, it->second.newKey});
        else
            sh.wal.push_back(journal::RemapRejected{
                it->second.deviceId, msg.nonce});
    }
    protocol::RemapCommit commit{msg.nonce, confirmed};
    sh.cacheCompleted(msg.nonce, commit,
                      sessions.config().completedCacheSize);
    out.replies.push_back(commit);
    sh.pendingRemaps.erase(it);
    return out;
}

} // namespace authenticache::server
