#include "server/device_agent.hpp"

#include <algorithm>

#include "crypto/fuzzy_extractor.hpp"
#include "util/rng.hpp"

namespace authenticache::server {

std::uint64_t
RetryPolicy::deadlineFor(std::uint64_t now,
                         std::uint32_t attempt) const
{
    std::uint64_t backoff = 0;
    if (attempt > 0) {
        // Bounded exponential: base * 2^(attempt-1), capped.
        std::uint64_t shifted = attempt - 1 >= 63
                                    ? backoffCapSteps
                                    : backoffBaseSteps
                                          << (attempt - 1);
        backoff = std::min(backoffCapSteps, shifted);
    }
    std::uint64_t jitter =
        jitterSteps == 0
            ? 0
            : util::Rng::forStream(jitterSeed, attempt)
                  .nextBelow(jitterSteps + 1);
    return now + timeoutSteps + backoff + jitter;
}

DeviceAgent::DeviceAgent(std::uint64_t device_id,
                         firmware::AuthenticacheClient &client_,
                         protocol::ClientEndpoint endpoint_)
    : deviceId(device_id), client(client_), endpoint(endpoint_)
{
}

void
DeviceAgent::armAuthSend(protocol::Message frame)
{
    endpoint.send(frame);
    authSend.frame = std::move(frame);
    authSend.attempt = 0;
    if (simClock)
        authSend.deadline =
            policy.deadlineFor(simClock->now(), 0);
}

void
DeviceAgent::failAuthSession()
{
    authPhase = AuthPhase::Idle;
    authStatus = firmware::AuthOutcome::Status::TimedOut;
    errorLog.push_back("authentication timed out: retries exhausted");
}

void
DeviceAgent::requestAuthentication()
{
    decision.reset();
    authStatus.reset();
    authPhase = AuthPhase::AwaitChallenge;
    armAuthSend(protocol::AuthRequest{deviceId});
}

void
DeviceAgent::answerChallenge(const protocol::ChallengeMsg &ch)
{
    // A re-issued or duplicated challenge is answered from the cache:
    // the nonce was already evaluated, and re-running the firmware
    // would waste line tests (and could flip noisy bits).
    auto seen = answeredAuths.find(ch.nonce);
    if (seen != answeredAuths.end()) {
        endpoint.send(seen->second);
        if (authPhase == AuthPhase::AwaitChallenge ||
            authPhase == AuthPhase::AwaitDecision) {
            authPhase = AuthPhase::AwaitDecision;
            authSend.frame = seen->second;
            authSend.attempt = 0;
            if (simClock)
                authSend.deadline =
                    policy.deadlineFor(simClock->now(), 0);
        }
        return;
    }

    auto outcome = client.authenticate(ch.challenge);
    if (!outcome.ok()) {
        errorLog.push_back("authentication aborted: " +
                           outcome.abortReason);
        endpoint.send(protocol::ErrorMsg{outcome.abortReason});
        authPhase = AuthPhase::Idle;
        authStatus = outcome.status;
        return;
    }
    protocol::ResponseMsg resp;
    resp.nonce = ch.nonce;
    resp.response = std::move(outcome.response);
    if (answeredAuths.emplace(ch.nonce, resp).second)
        answeredOrder.push_back(ch.nonce);
    while (answeredAuths.size() > 32) {
        answeredAuths.erase(answeredOrder.front());
        answeredOrder.pop_front();
    }
    authPhase = AuthPhase::AwaitDecision;
    armAuthSend(std::move(resp));
}

void
DeviceAgent::answerHeartbeat(const protocol::Heartbeat &hb)
{
    // Duplicated round (a lost TrustUpdate made the server re-issue,
    // or the channel duplicated the frame): replay the cached proof.
    // Re-measuring would burn line tests and could flip noisy bits.
    auto seen = answeredHeartbeats.find(hb.nonce);
    if (seen != answeredHeartbeats.end()) {
        endpoint.send(seen->second);
        return;
    }
    if (isRevoked)
        return;

    auto outcome = client.authenticate(hb.challenge);
    if (!outcome.ok()) {
        errorLog.push_back("heartbeat aborted: " +
                           outcome.abortReason);
        endpoint.send(protocol::ErrorMsg{outcome.abortReason});
        return;
    }
    protocol::HeartbeatProof proof;
    proof.nonce = hb.nonce;
    proof.response = std::move(outcome.response);
    if (answeredHeartbeats.emplace(hb.nonce, proof).second)
        heartbeatOrder.push_back(hb.nonce);
    while (answeredHeartbeats.size() > 32) {
        answeredHeartbeats.erase(heartbeatOrder.front());
        heartbeatOrder.pop_front();
    }
    ++nHeartbeats;
    endpoint.send(proof);
    OutstandingSend waiting;
    waiting.frame = std::move(proof);
    if (simClock)
        waiting.deadline = policy.deadlineFor(simClock->now(), 0);
    awaitVerdict[hb.nonce] = std::move(waiting);
}

bool
DeviceAgent::pumpOnce()
{
    std::optional<protocol::Message> msg;
    try {
        msg = endpoint.receive();
    } catch (const protocol::DecodeError &e) {
        errorLog.push_back(std::string("decode: ") + e.what());
        return true;
    }
    if (!msg)
        return false;

    if (auto *ch = std::get_if<protocol::ChallengeMsg>(&*msg)) {
        answerChallenge(*ch);
    } else if (auto *remap =
                   std::get_if<protocol::RemapRequest>(&*msg)) {
        // Duplicated request for an exchange already in phase 1:
        // resend the cached ack rather than re-deriving.
        auto seen = awaitCommit.find(remap->nonce);
        if (seen != awaitCommit.end()) {
            endpoint.send(seen->second.frame);
            return true;
        }
        // Phase 1: derive the candidate key and prove it with the
        // confirmation MAC; install nothing yet.
        std::optional<crypto::Key256> candidate;
        try {
            crypto::FuzzyExtractor extractor(remap->repetition);
            candidate = client.deriveRemapKey(
                remap->challenge, remap->helper, extractor);
        } catch (const std::exception &e) {
            errorLog.push_back(std::string("remap: ") + e.what());
        }
        protocol::RemapAck ack;
        ack.nonce = remap->nonce;
        ack.success = candidate.has_value();
        if (candidate) {
            pendingRemapKeys[remap->nonce] = *candidate;
            ack.confirmation =
                crypto::keyConfirmation(*candidate, remap->nonce);
        }
        endpoint.send(ack);
        OutstandingSend waiting;
        waiting.frame = ack;
        if (simClock)
            waiting.deadline = policy.deadlineFor(simClock->now(), 0);
        awaitCommit[remap->nonce] = std::move(waiting);
    } else if (auto *commit =
                   std::get_if<protocol::RemapCommit>(&*msg)) {
        // Phase 2: the server verified the confirmation.
        awaitCommit.erase(commit->nonce);
        auto it = pendingRemapKeys.find(commit->nonce);
        if (it != pendingRemapKeys.end()) {
            if (commit->committed) {
                client.setMapKey(it->second);
                ++nRemaps;
            }
            pendingRemapKeys.erase(it);
        }
    } else if (auto *dec = std::get_if<protocol::AuthDecision>(&*msg)) {
        decision = *dec;
        authPhase = AuthPhase::Idle;
        authStatus = firmware::AuthOutcome::Status::Ok;
    } else if (auto *hb = std::get_if<protocol::Heartbeat>(&*msg)) {
        answerHeartbeat(*hb);
    } else if (auto *verdict =
                   std::get_if<protocol::TrustUpdate>(&*msg)) {
        awaitVerdict.erase(verdict->nonce);
        trustScore = verdict->trust;
        trustTier = verdict->tier;
        lastVerdictMsg = *verdict;
    } else if (auto *rev = std::get_if<protocol::Revoke>(&*msg)) {
        if (rev->deviceId == deviceId) {
            isRevoked = true;
            awaitVerdict.clear();
            answeredHeartbeats.clear();
            heartbeatOrder.clear();
            errorLog.push_back("revoked: " + rev->reason);
        }
    } else if (auto *err = std::get_if<protocol::ErrorMsg>(&*msg)) {
        // Transport-level errors (decode failures, dead nonces) are
        // logged but do not end the session: the retry state machine
        // either recovers it or times it out cleanly.
        errorLog.push_back(err->reason);
    }
    return true;
}

void
DeviceAgent::pumpAll()
{
    while (pumpOnce()) {
    }
}

bool
DeviceAgent::tick()
{
    if (!simClock)
        return false;
    const std::uint64_t step = simClock->now();
    bool acted = false;

    if (authPhase != AuthPhase::Idle && authSend.deadline <= step) {
        if (authSend.attempt + 1 >= policy.maxAttempts) {
            failAuthSession();
        } else {
            ++authSend.attempt;
            ++nRetransmits;
            endpoint.send(authSend.frame);
            authSend.deadline =
                policy.deadlineFor(step, authSend.attempt);
        }
        acted = true;
    }

    for (auto it = awaitCommit.begin(); it != awaitCommit.end();) {
        if (it->second.deadline > step) {
            ++it;
            continue;
        }
        if (it->second.attempt + 1 >= policy.maxAttempts) {
            pendingRemapKeys.erase(it->first);
            ++nRemapsTimedOut;
            errorLog.push_back(
                "remap timed out: retries exhausted");
            it = awaitCommit.erase(it);
        } else {
            ++it->second.attempt;
            ++nRetransmits;
            endpoint.send(it->second.frame);
            it->second.deadline =
                policy.deadlineFor(step, it->second.attempt);
            ++it;
        }
        acted = true;
    }

    // A lost HeartbeatProof is retransmitted like a remap ack; once
    // the budget is gone the round is abandoned -- the server's
    // cadence wheel scores it as missed and decays trust, so a silent
    // client cannot coast on an old score.
    for (auto it = awaitVerdict.begin(); it != awaitVerdict.end();) {
        if (it->second.deadline > step) {
            ++it;
            continue;
        }
        if (it->second.attempt + 1 >= policy.maxAttempts) {
            errorLog.push_back(
                "heartbeat proof timed out: retries exhausted");
            it = awaitVerdict.erase(it);
        } else {
            ++it->second.attempt;
            ++nRetransmits;
            endpoint.send(it->second.frame);
            it->second.deadline =
                policy.deadlineFor(step, it->second.attempt);
            ++it;
        }
        acted = true;
    }
    return acted;
}

} // namespace authenticache::server
