/**
 * @file
 * Server-side enrollment database (paper Sec 2.1, 4.2).
 *
 * The Authenticache server does not store CRPs: it stores each
 * client's *error maps* (a compact representation) and generates
 * challenges on demand. It additionally tracks consumed challenge
 * pairs -- both orderings of a pair retire together (Sec 4.4) -- and
 * the device's current logical-map key.
 */

#ifndef AUTH_SERVER_DATABASE_HPP
#define AUTH_SERVER_DATABASE_HPP

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/error_index.hpp"
#include "core/error_map.hpp"
#include "core/remap.hpp"
#include "crypto/key.hpp"

namespace authenticache::server {

/** Everything the server knows about one enrolled device. */
class DeviceRecord
{
  public:
    DeviceRecord(std::uint64_t device_id, core::ErrorMap physical_map,
                 std::vector<core::VddMv> challenge_levels,
                 std::vector<core::VddMv> reserved_levels);

    std::uint64_t deviceId() const { return id; }
    const core::ErrorMap &physicalMap() const { return map; }

    /** Voltage levels usable for ordinary authentication. */
    const std::vector<core::VddMv> &challengeLevels() const
    {
        return authLevels;
    }

    /** Voltage levels reserved for remap key derivation (Sec 4.5). */
    const std::vector<core::VddMv> &reservedLevels() const
    {
        return remapLevels;
    }

    const crypto::Key256 &mapKey() const { return key; }

    /** Rotate the map key; drops the cached logical views. */
    void setMapKey(const crypto::Key256 &k)
    {
        if (!(k == key)) {
            remapCache.reset();
            logicalCache.reset();
            indexCache.reset();
        }
        key = k;
    }

    /**
     * The coordinate permutation under the current map key, built on
     * first use and cached until setMapKey(). Like the rest of the
     * record's mutable state, callers synchronize externally (the
     * session layer holds the device's shard mutex).
     */
    const core::LogicalRemap &logicalRemap() const;

    /**
     * The device's error map in logical coordinates under the current
     * map key -- the view challenges are evaluated against. Computed
     * on first use and cached until the key rotates, which removes
     * the full-map permutation from the per-challenge hot path. The
     * identity key returns physicalMap() itself. The physical map is
     * immutable after enrollment, so key rotation is the only
     * invalidation point.
     */
    const core::ErrorMap &logicalMap() const;

    /**
     * Per-plane nearest-error indexes over logicalMap(), cached the
     * same way; the generator's batched expected-response evaluation
     * (core::evaluateIndexed) runs against these.
     */
    const core::ErrorIndexMap &logicalIndexes() const;

    /**
     * Consume a challenge pair at a level. Pairs are canonicalized
     * (unordered), so C(A,B) and C(B,A) retire together.
     * @return false when the pair was already consumed.
     */
    bool consumePair(core::VddMv level, std::uint64_t line_a,
                     std::uint64_t line_b);

    /** True when the pair is still fresh. */
    bool pairAvailable(core::VddMv level, std::uint64_t line_a,
                       std::uint64_t line_b) const;

    /**
     * Consume a mixed-voltage pair {(level_a, line_a), (level_b,
     * line_b)}; canonicalized so both orderings retire together.
     * Same-level pairs share the single-level consumed set.
     * @return false when already consumed.
     */
    bool consumeMixedPair(core::VddMv level_a, std::uint64_t line_a,
                          core::VddMv level_b, std::uint64_t line_b);

    /** Consumed pairs at a level (storage grows with usage only). */
    std::size_t consumedCount(core::VddMv level) const;

    /** Consumed mixed-voltage pairs. */
    std::size_t consumedMixedCount() const { return mixed.size(); }

    /** Pairs remaining at a level given the cache's line count. */
    std::uint64_t remainingPairs(core::VddMv level) const;

    // Authentication outcome counters.
    void recordAccept()
    {
        ++nAccepted;
        consecutiveFails = 0;
    }
    void recordReject()
    {
        ++nRejected;
        ++consecutiveFails;
    }
    std::uint64_t accepted() const { return nAccepted; }
    std::uint64_t rejected() const { return nRejected; }

    /** Rejections since the last acceptance (lockout input). */
    std::uint64_t consecutiveFailures() const
    {
        return consecutiveFails;
    }

    // Lockout state (set by the server's policy, cleared by an
    // administrator action). unlock() is the single admin escape
    // hatch: it also clears revocation and restores heartbeat trust,
    // so one command recovers a device from any degradation tier.
    bool locked() const { return isLocked; }
    void lock() { isLocked = true; }
    void unlock(std::uint32_t restored_trust = 100)
    {
        isLocked = false;
        consecutiveFails = 0;
        isRevoked = false;
        reenrollNeeded = false;
        trust = restored_trust;
    }

    // Continuous-authentication trust ledger (TrustPolicy).
    std::uint32_t trustScore() const { return trust; }
    void setTrustScore(std::uint32_t t) { trust = t; }
    std::uint32_t remapBudgetUsed() const { return remapsUsed; }
    void setRemapBudgetUsed(std::uint32_t n) { remapsUsed = n; }
    bool revoked() const { return isRevoked; }
    void revoke() { isRevoked = true; }
    bool reenrollRequired() const { return reenrollNeeded; }
    void setReenrollRequired(bool v) { reenrollNeeded = v; }

  private:
    static std::uint64_t pairKey(std::uint64_t a, std::uint64_t b);

    // Persistence (server/storage.cpp) snapshots/restores the
    // consumed-pair state, which has no other public surface; journal
    // replay (server/journal.cpp) restores absolute counter
    // checkpoints the same way.
    friend struct RecordStorageAccess;
    friend struct JournalApplyAccess;

    std::uint64_t id;
    core::ErrorMap map;
    std::vector<core::VddMv> authLevels;
    std::vector<core::VddMv> remapLevels;
    crypto::Key256 key;
    // Cached views under `key`; shared_ptr keeps the record copyable
    // (copies share the immutable cache until either side rotates,
    // which swaps the pointer rather than mutating through it).
    mutable std::shared_ptr<core::LogicalRemap> remapCache;
    mutable std::shared_ptr<core::ErrorMap> logicalCache;
    mutable std::shared_ptr<core::ErrorIndexMap> indexCache;
    std::map<core::VddMv, std::unordered_set<std::uint64_t>> consumed;
    std::set<std::array<std::uint64_t, 4>> mixed;
    std::uint64_t nAccepted = 0;
    std::uint64_t nRejected = 0;
    std::uint64_t consecutiveFails = 0;
    bool isLocked = false;
    // Trust ledger (heartbeat sessions). The default matches
    // TrustPolicy::max so records predating the ledger replay as
    // fully trusted.
    std::uint32_t trust = 100;
    std::uint32_t remapsUsed = 0;
    bool isRevoked = false;
    bool reenrollNeeded = false;
};

/** The database: device id -> record. */
class EnrollmentDatabase
{
  public:
    /** Add a record; throws if the id is already enrolled. */
    DeviceRecord &enroll(DeviceRecord record);

    bool contains(std::uint64_t device_id) const;

    DeviceRecord &at(std::uint64_t device_id);
    const DeviceRecord &at(std::uint64_t device_id) const;

    std::size_t size() const { return records.size(); }

    /** Remove a record (re-enrollment); @return false if absent. */
    bool remove(std::uint64_t device_id)
    {
        return records.erase(device_id) > 0;
    }

    /** Read-only iteration over all records (reporting/persistence). */
    const std::unordered_map<std::uint64_t, DeviceRecord> &
    all() const
    {
        return records;
    }

  private:
    std::unordered_map<std::uint64_t, DeviceRecord> records;
};

} // namespace authenticache::server

#endif // AUTH_SERVER_DATABASE_HPP
