/**
 * @file
 * The server's durability layer: snapshot generations + write-ahead
 * journal + recovery.
 *
 * On-disk layout inside the durability directory:
 *
 *   snapshot-<gen>.acdb   storage.cpp v2 snapshot (atomic write)
 *   journal-<gen>.acjl    events appended since that snapshot
 *
 * Rotation writes snapshot g+1 (carrying the journal watermark),
 * opens journal g+1, then deletes generations <= g-1: the previous
 * generation is always retained, so a corrupt newest snapshot falls
 * back one generation and re-reaches the same state by replaying the
 * retained journal chain. Startup always rotates to a fresh
 * generation (max seen + 1), which makes the first write of every
 * process life an atomic snapshot -- recovery therefore never needs
 * to re-open a journal for append.
 *
 * Recovery algorithm (static, runs before the server is built):
 *   1. newest snapshot that loads and CRC-checks wins; each corrupt
 *      one falls back a generation (counted in the stats);
 *   2. replay journal files gen, gen+1, ... in order, skipping
 *      records at or below the snapshot watermark;
 *   3. a torn final record in the *newest* journal is truncated --
 *      that is the crash point, not corruption -- while a torn record
 *      in an older journal just ends the chain;
 *   4. no snapshot at all (but journals present) is real corruption:
 *      protocol::DecodeError.
 */

#ifndef AUTH_SERVER_DURABILITY_HPP
#define AUTH_SERVER_DURABILITY_HPP

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "server/journal.hpp"
#include "server/storage.hpp"
#include "util/stats_registry.hpp"

namespace authenticache::server {

/** Where and how often the durability layer persists. */
struct DurabilityConfig
{
    /** Directory holding snapshot + journal generations. */
    std::string dir;

    /**
     * Rotate (snapshot + fresh journal) after this many journal
     * appends; 0 disables automatic rotation (manual rotate() only).
     * Rotation happens at batch boundaries, never mid-batch.
     */
    std::uint64_t rotateEveryAppends = 4096;
};

/** How a recovery pass ended (surfaced through the stats). */
enum class RecoveryOutcome : std::uint8_t
{
    FreshStart = 0,      ///< Empty directory: new database.
    SnapshotOnly = 1,    ///< Snapshot loaded, no events replayed.
    SnapshotPlusJournal = 2, ///< Snapshot plus replayed tail.
    FallbackSnapshot = 3 ///< Newest snapshot corrupt; used previous.
};

/** Everything recovery learned, plus the recovered database. */
struct RecoveryResult
{
    EnrollmentDatabase db;
    std::uint64_t generation = 0; ///< Generation the snapshot had.
    std::uint64_t lastSeq = 0;    ///< Highest durable sequence.
    std::uint64_t replayedRecords = 0;
    std::uint64_t snapshotFallbacks = 0; ///< Corrupt snapshots skipped.
    bool tornTailTruncated = false;
    bool freshStart = false;

    /**
     * Remap commit decisions seen in the journal, newest last:
     * (nonce, committed). Seeding these into the completed-nonce
     * cache lets a client that crashed us with its RemapAck in flight
     * retransmit the ack and still receive the original commit.
     */
    std::vector<std::pair<std::uint64_t, bool>> remapOutcomes;

    RecoveryOutcome
    outcome() const
    {
        if (freshStart)
            return RecoveryOutcome::FreshStart;
        if (snapshotFallbacks > 0)
            return RecoveryOutcome::FallbackSnapshot;
        return replayedRecords > 0
                   ? RecoveryOutcome::SnapshotPlusJournal
                   : RecoveryOutcome::SnapshotOnly;
    }
};

/** Counters published under "<component>.durability.*". */
struct DurabilityStats
{
    std::uint64_t appends = 0;
    std::uint64_t appendedBytes = 0;
    std::uint64_t fsyncs = 0;
    std::uint64_t rotations = 0;
    // Recovery-side numbers (folded in via noteRecovery).
    std::uint64_t replayedRecords = 0;
    std::uint64_t tornTruncations = 0;
    std::uint64_t snapshotFallbacks = 0;
    std::uint64_t recoveryOutcome = 0; ///< RecoveryOutcome value.
};

/**
 * Owns the open journal generation and the rotation policy. The
 * front end appends the shard-drained events and syncs once per
 * batch *before* any reply is emitted (sync-before-reply), so every
 * state a client has observed is durable.
 */
class DurabilityManager
{
  public:
    /**
     * Open the durability directory for writing: scans existing
     * generations, rotates to a fresh one (atomic snapshot of @p db
     * + empty journal), and prunes generations older than the
     * previous one. @p last_seq is the recovered sequence floor
     * (RecoveryResult::lastSeq); appends continue from there.
     */
    DurabilityManager(DurabilityConfig config,
                      const EnrollmentDatabase &db,
                      std::uint64_t last_seq = 0,
                      CrashInjector *inj = nullptr);

    DurabilityManager(const DurabilityManager &) = delete;
    DurabilityManager &operator=(const DurabilityManager &) = delete;

    /** Recover (or fresh-start) from a durability directory. */
    static RecoveryResult recover(const DurabilityConfig &config);

    /** Append one event (assigning the next sequence number). */
    void append(const journal::Event &event);

    /** Make pending appends durable (no-op when clean). */
    void sync();

    /** Rotate when the append budget since the last rotation is spent. */
    void maybeRotate(const EnrollmentDatabase &db);

    /** Snapshot @p db as the next generation and start its journal. */
    void rotate(const EnrollmentDatabase &db);

    std::uint64_t generation() const { return gen; }
    std::uint64_t lastSequence() const { return lastSeq; }
    const DurabilityConfig &config() const { return cfg; }
    const DurabilityStats &stats() const { return counters; }

    /** Fold a recovery pass's numbers into the published stats. */
    void noteRecovery(const RecoveryResult &result);

    /** Publish counters as "<component>.durability.*". */
    void collectStats(util::StatsRegistry &registry,
                      const std::string &component) const;

    static std::string snapshotPath(const std::string &dir,
                                    std::uint64_t generation);
    static std::string journalPath(const std::string &dir,
                                   std::uint64_t generation);

  private:
    void pruneBelow(std::uint64_t keep_from);
    void saveDatabaseFile(const std::string &path,
                          std::uint64_t generation,
                          const EnrollmentDatabase &db);

    DurabilityConfig cfg;
    CrashInjector *inj = nullptr;
    journal::Journal log;
    std::uint64_t gen = 0;
    std::uint64_t lastSeq = 0;
    std::uint64_t appendsSinceRotate = 0;
    DurabilityStats counters;
};

} // namespace authenticache::server

#endif // AUTH_SERVER_DURABILITY_HPP
