#include "server/server.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace authenticache::server {

AuthenticationServer::AuthenticationServer(const ServerConfig &config,
                                           std::uint64_t seed)
    : cfg(config),
      rng(seed),
      generator(rng.fork()),
      verify(config.verifier)
{
}

DeviceRecord &
AuthenticationServer::enrollWithMap(
    std::uint64_t device_id, core::ErrorMap map,
    firmware::AuthenticacheClient &client,
    const std::vector<core::VddMv> &challenge_levels,
    const std::vector<core::VddMv> &reserved_levels)
{
    DeviceRecord record(device_id, std::move(map), challenge_levels,
                        reserved_levels);

    // Install the initial logical-map key over the trusted enrollment
    // channel.
    crypto::Key256 initial;
    for (auto &b : initial.bytes)
        b = static_cast<std::uint8_t>(rng.nextBelow(256));
    record.setMapKey(initial);
    client.setMapKey(initial);

    AUTH_LOG_INFO("server")
        << "enrolled device " << device_id << " with "
        << record.physicalMap().totalErrors() << " errors";
    return db.enroll(std::move(record));
}

DeviceRecord &
AuthenticationServer::enroll(
    std::uint64_t device_id, firmware::AuthenticacheClient &client,
    const std::vector<core::VddMv> &challenge_levels,
    const std::vector<core::VddMv> &reserved_levels,
    std::uint32_t sweep_passes)
{
    if (client.floorMv() <= 0.0)
        client.boot();

    std::vector<core::VddMv> all_levels = challenge_levels;
    all_levels.insert(all_levels.end(), reserved_levels.begin(),
                      reserved_levels.end());
    core::ErrorMap map =
        client.captureErrorMap(all_levels, sweep_passes);
    return enrollWithMap(device_id, std::move(map), client,
                         challenge_levels, reserved_levels);
}

std::uint64_t
AuthenticationServer::sessionDeadline() const
{
    if (!simClock || cfg.sessionTimeoutSteps == 0)
        return 0;
    return simClock->now() + cfg.sessionTimeoutSteps;
}

void
AuthenticationServer::forgetActiveAuth(std::uint64_t device_id,
                                       std::uint64_t nonce)
{
    auto it = activeAuthByDevice.find(device_id);
    if (it != activeAuthByDevice.end() && it->second == nonce)
        activeAuthByDevice.erase(it);
}

void
AuthenticationServer::cacheCompleted(std::uint64_t nonce,
                                     protocol::Message reply)
{
    if (cfg.completedCacheSize == 0)
        return;
    if (completed.emplace(nonce, std::move(reply)).second)
        completedOrder.push_back(nonce);
    while (completed.size() > cfg.completedCacheSize) {
        completed.erase(completedOrder.front());
        completedOrder.pop_front();
    }
}

void
AuthenticationServer::expireSessions()
{
    if (!simClock || cfg.sessionTimeoutSteps == 0)
        return;
    const std::uint64_t step = simClock->now();
    for (auto it = pendingAuths.begin(); it != pendingAuths.end();) {
        if (it->second.deadline != 0 && it->second.deadline <= step) {
            // Consumed pairs stay retired; the nonce is simply dead.
            forgetActiveAuth(it->second.deviceId, it->first);
            it = pendingAuths.erase(it);
            ++nExpired;
        } else {
            ++it;
        }
    }
    for (auto it = pendingRemaps.begin();
         it != pendingRemaps.end();) {
        if (it->second.deadline != 0 && it->second.deadline <= step) {
            it = pendingRemaps.erase(it);
            ++nExpired;
        } else {
            ++it;
        }
    }
}

void
AuthenticationServer::handleAuthRequest(
    const protocol::AuthRequest &msg,
    protocol::ServerEndpoint &endpoint)
{
    if (!db.contains(msg.deviceId)) {
        endpoint.send(protocol::ErrorMsg{"unknown device"});
        return;
    }
    DeviceRecord &record = db.at(msg.deviceId);
    if (record.locked()) {
        endpoint.send(protocol::ErrorMsg{"device locked"});
        return;
    }

    // Idempotent retransmission handling: while this device already
    // has an outstanding challenge, a duplicated or retransmitted
    // AuthRequest re-issues the *same* challenge instead of burning
    // fresh CRPs on every lost reply.
    auto active = activeAuthByDevice.find(msg.deviceId);
    if (active != activeAuthByDevice.end()) {
        auto pending = pendingAuths.find(active->second);
        if (pending != pendingAuths.end()) {
            ++nDupRequests;
            pending->second.deadline = sessionDeadline();
            protocol::ChallengeMsg again;
            again.nonce = active->second;
            again.challenge = pending->second.challenge;
            endpoint.send(again);
            return;
        }
        // Stale index entry (evicted/expired session).
        activeAuthByDevice.erase(active);
    }

    const auto &levels = record.challengeLevels();
    if (levels.empty()) {
        endpoint.send(protocol::ErrorMsg{"no challenge levels"});
        return;
    }
    core::VddMv level = levels[rng.nextBelow(levels.size())];

    GeneratedChallenge gen;
    try {
        if (cfg.multiLevelChallenges && levels.size() >= 2)
            gen = generator.generateMultiLevel(record,
                                               cfg.challengeBits);
        else
            gen = generator.generate(record, level,
                                     cfg.challengeBits);
    } catch (const std::runtime_error &e) {
        endpoint.send(protocol::ErrorMsg{e.what()});
        return;
    }

    std::uint64_t nonce = rng.next();
    pendingAuths[nonce] =
        PendingAuth{msg.deviceId, std::move(gen.expected),
                    gen.challenge, sessionDeadline()};
    pendingOrder.push_back(nonce);
    activeAuthByDevice[msg.deviceId] = nonce;
    enforcePendingCap();

    protocol::ChallengeMsg out;
    out.nonce = nonce;
    out.challenge = std::move(gen.challenge);
    endpoint.send(out);
}

void
AuthenticationServer::handleResponse(const protocol::ResponseMsg &msg,
                                     protocol::ServerEndpoint &endpoint)
{
    auto it = pendingAuths.find(msg.nonce);
    if (it == pendingAuths.end()) {
        // A retransmitted response for an already-completed session
        // gets the original decision again -- and never re-counts
        // toward the lockout policy. Anything else is a replay or a
        // stray; it never grants access.
        auto done = completed.find(msg.nonce);
        if (done != completed.end()) {
            ++nDupCompletions;
            endpoint.send(done->second);
            return;
        }
        endpoint.send(protocol::ErrorMsg{"unknown nonce"});
        return;
    }
    PendingAuth pending = std::move(it->second);
    pendingAuths.erase(it);
    forgetActiveAuth(pending.deviceId, msg.nonce);

    Verdict verdict = verify.verify(pending.expected, msg.response);

    DeviceRecord &record = db.at(pending.deviceId);
    if (verdict.accepted) {
        record.recordAccept();
    } else {
        record.recordReject();
        if (cfg.lockoutThreshold > 0 &&
            record.consecutiveFailures() >= cfg.lockoutThreshold) {
            record.lock();
            AUTH_LOG_WARN("server")
                << "device " << pending.deviceId << " locked after "
                << record.consecutiveFailures()
                << " consecutive failures";
        }
    }

    log.push_back(AuthReport{pending.deviceId, msg.nonce,
                             verdict.accepted, verdict.hammingDistance,
                             verdict.threshold});

    protocol::AuthDecision decision;
    decision.nonce = msg.nonce;
    decision.accepted = verdict.accepted;
    decision.hammingDistance = verdict.hammingDistance;
    cacheCompleted(msg.nonce, decision);
    endpoint.send(decision);
}

void
AuthenticationServer::handleRemapAck(const protocol::RemapAck &msg,
                                     protocol::ServerEndpoint &endpoint)
{
    auto it = pendingRemaps.find(msg.nonce);
    if (it == pendingRemaps.end()) {
        // Retransmitted ack for a completed exchange: resend the
        // commit verbatim so a lost commit frame cannot desync keys.
        auto done = completed.find(msg.nonce);
        if (done != completed.end()) {
            ++nDupCompletions;
            endpoint.send(done->second);
        }
        return;
    }

    // Two-phase commit: only switch keys when the client proves it
    // derived the same one (a mis-derived key would desynchronize
    // both sides until the next rotation).
    auto expected = crypto::keyConfirmation(it->second.newKey,
                                            msg.nonce);
    bool confirmed =
        msg.success &&
        std::equal(expected.begin(), expected.end(),
                   msg.confirmation.begin(), msg.confirmation.end());

    if (confirmed) {
        db.at(it->second.deviceId).setMapKey(it->second.newKey);
        ++nRemaps;
        AUTH_LOG_INFO("server")
            << "device " << it->second.deviceId << " key rotated";
    } else {
        ++nRemapsRejected;
        AUTH_LOG_WARN("server")
            << "device " << it->second.deviceId
            << " remap rejected (key confirmation failed)";
    }
    protocol::RemapCommit commit{msg.nonce, confirmed};
    cacheCompleted(msg.nonce, commit);
    endpoint.send(commit);
    pendingRemaps.erase(it);
}

void
AuthenticationServer::enforcePendingCap()
{
    while (pendingSessions() > cfg.maxPendingSessions &&
           !pendingOrder.empty()) {
        std::uint64_t victim = pendingOrder.front();
        pendingOrder.pop_front();
        // The nonce may already have completed; eviction only counts
        // when something was actually dropped.
        auto auth = pendingAuths.find(victim);
        if (auth != pendingAuths.end()) {
            forgetActiveAuth(auth->second.deviceId, victim);
            pendingAuths.erase(auth);
            ++nEvicted;
            AUTH_LOG_WARN("server")
                << "pending-session cap: evicted nonce " << victim;
        } else if (pendingRemaps.erase(victim) > 0) {
            ++nEvicted;
            AUTH_LOG_WARN("server")
                << "pending-session cap: evicted nonce " << victim;
        }
    }

    // Completed sessions leave stale nonces in the order queue
    // (lazy deletion); compact before it grows past a small multiple
    // of the live set.
    if (pendingOrder.size() > 4 * (cfg.maxPendingSessions + 1)) {
        std::deque<std::uint64_t> live;
        for (auto nonce : pendingOrder) {
            if (pendingAuths.count(nonce) ||
                pendingRemaps.count(nonce))
                live.push_back(nonce);
        }
        pendingOrder = std::move(live);
    }
}

bool
AuthenticationServer::pumpOnce(protocol::ServerEndpoint &endpoint)
{
    expireSessions();
    std::optional<protocol::Message> msg;
    try {
        msg = endpoint.receive();
    } catch (const protocol::DecodeError &e) {
        endpoint.send(protocol::ErrorMsg{std::string("decode: ") +
                                         e.what()});
        return true;
    }
    if (!msg)
        return false;

    if (auto *req = std::get_if<protocol::AuthRequest>(&*msg))
        handleAuthRequest(*req, endpoint);
    else if (auto *resp = std::get_if<protocol::ResponseMsg>(&*msg))
        handleResponse(*resp, endpoint);
    else if (auto *ack = std::get_if<protocol::RemapAck>(&*msg))
        handleRemapAck(*ack, endpoint);
    else if (std::get_if<protocol::ErrorMsg>(&*msg) == nullptr)
        endpoint.send(protocol::ErrorMsg{"unexpected message"});
    return true;
}

void
AuthenticationServer::pumpAll(protocol::ServerEndpoint &endpoint)
{
    while (pumpOnce(endpoint)) {
    }
}

void
AuthenticationServer::startRemap(std::uint64_t device_id,
                                 protocol::ServerEndpoint &endpoint)
{
    DeviceRecord &record = db.at(device_id);
    if (record.reservedLevels().empty())
        throw std::logic_error("startRemap: no reserved levels");
    core::VddMv level = record.reservedLevels()[rng.nextBelow(
        record.reservedLevels().size())];

    const std::size_t bits =
        cfg.remapSecretBits * cfg.fuzzyRepetition;
    GeneratedChallenge gen =
        generator.generateReserved(record, level, bits);

    crypto::FuzzyExtractor extractor(cfg.fuzzyRepetition);
    auto extraction = extractor.generate(gen.expected, rng);

    std::uint64_t nonce = rng.next();
    pendingRemaps[nonce] =
        PendingRemap{device_id, extraction.key, sessionDeadline()};
    pendingOrder.push_back(nonce);
    enforcePendingCap();

    protocol::RemapRequest msg;
    msg.nonce = nonce;
    msg.challenge = std::move(gen.challenge);
    msg.helper = std::move(extraction.helper);
    msg.repetition = cfg.fuzzyRepetition;
    endpoint.send(msg);
}

std::uint64_t
RetryPolicy::deadlineFor(std::uint64_t now,
                         std::uint32_t attempt) const
{
    std::uint64_t backoff = 0;
    if (attempt > 0) {
        // Bounded exponential: base * 2^(attempt-1), capped.
        std::uint64_t shifted = attempt - 1 >= 63
                                    ? backoffCapSteps
                                    : backoffBaseSteps
                                          << (attempt - 1);
        backoff = std::min(backoffCapSteps, shifted);
    }
    std::uint64_t jitter =
        jitterSteps == 0
            ? 0
            : util::Rng::forStream(jitterSeed, attempt)
                  .nextBelow(jitterSteps + 1);
    return now + timeoutSteps + backoff + jitter;
}

DeviceAgent::DeviceAgent(std::uint64_t device_id,
                         firmware::AuthenticacheClient &client_,
                         protocol::ClientEndpoint endpoint_)
    : deviceId(device_id), client(client_), endpoint(endpoint_)
{
}

void
DeviceAgent::armAuthSend(protocol::Message frame)
{
    endpoint.send(frame);
    authSend.frame = std::move(frame);
    authSend.attempt = 0;
    if (simClock)
        authSend.deadline =
            policy.deadlineFor(simClock->now(), 0);
}

void
DeviceAgent::failAuthSession()
{
    authPhase = AuthPhase::Idle;
    authStatus = firmware::AuthOutcome::Status::TimedOut;
    errorLog.push_back("authentication timed out: retries exhausted");
}

void
DeviceAgent::requestAuthentication()
{
    decision.reset();
    authStatus.reset();
    authPhase = AuthPhase::AwaitChallenge;
    armAuthSend(protocol::AuthRequest{deviceId});
}

void
DeviceAgent::answerChallenge(const protocol::ChallengeMsg &ch)
{
    // A re-issued or duplicated challenge is answered from the cache:
    // the nonce was already evaluated, and re-running the firmware
    // would waste line tests (and could flip noisy bits).
    auto seen = answeredAuths.find(ch.nonce);
    if (seen != answeredAuths.end()) {
        endpoint.send(seen->second);
        if (authPhase == AuthPhase::AwaitChallenge ||
            authPhase == AuthPhase::AwaitDecision) {
            authPhase = AuthPhase::AwaitDecision;
            authSend.frame = seen->second;
            authSend.attempt = 0;
            if (simClock)
                authSend.deadline =
                    policy.deadlineFor(simClock->now(), 0);
        }
        return;
    }

    auto outcome = client.authenticate(ch.challenge);
    if (!outcome.ok()) {
        errorLog.push_back("authentication aborted: " +
                           outcome.abortReason);
        endpoint.send(protocol::ErrorMsg{outcome.abortReason});
        authPhase = AuthPhase::Idle;
        authStatus = outcome.status;
        return;
    }
    protocol::ResponseMsg resp;
    resp.nonce = ch.nonce;
    resp.response = std::move(outcome.response);
    if (answeredAuths.emplace(ch.nonce, resp).second)
        answeredOrder.push_back(ch.nonce);
    while (answeredAuths.size() > 32) {
        answeredAuths.erase(answeredOrder.front());
        answeredOrder.pop_front();
    }
    authPhase = AuthPhase::AwaitDecision;
    armAuthSend(std::move(resp));
}

bool
DeviceAgent::pumpOnce()
{
    std::optional<protocol::Message> msg;
    try {
        msg = endpoint.receive();
    } catch (const protocol::DecodeError &e) {
        errorLog.push_back(std::string("decode: ") + e.what());
        return true;
    }
    if (!msg)
        return false;

    if (auto *ch = std::get_if<protocol::ChallengeMsg>(&*msg)) {
        answerChallenge(*ch);
    } else if (auto *remap =
                   std::get_if<protocol::RemapRequest>(&*msg)) {
        // Duplicated request for an exchange already in phase 1:
        // resend the cached ack rather than re-deriving.
        auto seen = awaitCommit.find(remap->nonce);
        if (seen != awaitCommit.end()) {
            endpoint.send(seen->second.frame);
            return true;
        }
        // Phase 1: derive the candidate key and prove it with the
        // confirmation MAC; install nothing yet.
        std::optional<crypto::Key256> candidate;
        try {
            crypto::FuzzyExtractor extractor(remap->repetition);
            candidate = client.deriveRemapKey(
                remap->challenge, remap->helper, extractor);
        } catch (const std::exception &e) {
            errorLog.push_back(std::string("remap: ") + e.what());
        }
        protocol::RemapAck ack;
        ack.nonce = remap->nonce;
        ack.success = candidate.has_value();
        if (candidate) {
            pendingRemapKeys[remap->nonce] = *candidate;
            ack.confirmation =
                crypto::keyConfirmation(*candidate, remap->nonce);
        }
        endpoint.send(ack);
        OutstandingSend waiting;
        waiting.frame = ack;
        if (simClock)
            waiting.deadline = policy.deadlineFor(simClock->now(), 0);
        awaitCommit[remap->nonce] = std::move(waiting);
    } else if (auto *commit =
                   std::get_if<protocol::RemapCommit>(&*msg)) {
        // Phase 2: the server verified the confirmation.
        awaitCommit.erase(commit->nonce);
        auto it = pendingRemapKeys.find(commit->nonce);
        if (it != pendingRemapKeys.end()) {
            if (commit->committed) {
                client.setMapKey(it->second);
                ++nRemaps;
            }
            pendingRemapKeys.erase(it);
        }
    } else if (auto *dec = std::get_if<protocol::AuthDecision>(&*msg)) {
        decision = *dec;
        authPhase = AuthPhase::Idle;
        authStatus = firmware::AuthOutcome::Status::Ok;
    } else if (auto *err = std::get_if<protocol::ErrorMsg>(&*msg)) {
        // Transport-level errors (decode failures, dead nonces) are
        // logged but do not end the session: the retry state machine
        // either recovers it or times it out cleanly.
        errorLog.push_back(err->reason);
    }
    return true;
}

void
DeviceAgent::pumpAll()
{
    while (pumpOnce()) {
    }
}

bool
DeviceAgent::tick()
{
    if (!simClock)
        return false;
    const std::uint64_t step = simClock->now();
    bool acted = false;

    if (authPhase != AuthPhase::Idle && authSend.deadline <= step) {
        if (authSend.attempt + 1 >= policy.maxAttempts) {
            failAuthSession();
        } else {
            ++authSend.attempt;
            ++nRetransmits;
            endpoint.send(authSend.frame);
            authSend.deadline =
                policy.deadlineFor(step, authSend.attempt);
        }
        acted = true;
    }

    for (auto it = awaitCommit.begin(); it != awaitCommit.end();) {
        if (it->second.deadline > step) {
            ++it;
            continue;
        }
        if (it->second.attempt + 1 >= policy.maxAttempts) {
            pendingRemapKeys.erase(it->first);
            ++nRemapsTimedOut;
            errorLog.push_back(
                "remap timed out: retries exhausted");
            it = awaitCommit.erase(it);
        } else {
            ++it->second.attempt;
            ++nRetransmits;
            endpoint.send(it->second.frame);
            it->second.deadline =
                policy.deadlineFor(step, it->second.attempt);
            ++it;
        }
        acted = true;
    }
    return acted;
}

void
runExchange(AuthenticationServer &server,
            protocol::ServerEndpoint &server_endpoint,
            DeviceAgent &agent)
{
    bool progress = true;
    while (progress) {
        progress = false;
        progress |= server.pumpOnce(server_endpoint);
        progress |= agent.pumpOnce();
    }
}

SteppedExchangeResult
runExchangeSteps(AuthenticationServer &server,
                 protocol::ServerEndpoint &server_endpoint,
                 DeviceAgent &agent, util::SimClock &clock,
                 protocol::InMemoryChannel &channel,
                 std::uint64_t max_steps)
{
    SteppedExchangeResult result;
    for (; result.steps < max_steps; ++result.steps) {
        bool progress = true;
        while (progress) {
            progress = false;
            progress |= server.pumpOnce(server_endpoint);
            progress |= agent.pumpOnce();
        }
        if (!agent.sessionActive() && channel.idle()) {
            result.quiesced = true;
            return result;
        }
        clock.advance(1);
        server.tick();
        agent.tick();
    }
    return result;
}

void
collectServerStats(const AuthenticationServer &server,
                   util::StatsRegistry &registry,
                   const std::string &component)
{
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t locked = 0;
    std::uint64_t errors = 0;
    for (const auto &[id, record] : server.database().all()) {
        accepted += record.accepted();
        rejected += record.rejected();
        locked += record.locked() ? 1 : 0;
        errors += record.physicalMap().totalErrors();
    }
    registry.set(component, "devices",
                 std::uint64_t(server.database().size()));
    registry.set(component, "authentications_accepted", accepted);
    registry.set(component, "authentications_rejected", rejected);
    registry.set(component, "devices_locked", locked);
    registry.set(component, "enrolled_error_lines", errors);
    registry.set(component, "remaps_committed",
                 server.remapsCommitted());
    registry.set(component, "remaps_rejected",
                 server.remapsRejected());
    registry.set(component, "pending_sessions",
                 std::uint64_t(server.pendingSessions()));
    registry.set(component, "sessions_evicted",
                 server.sessionsEvicted());
    registry.set(component, "sessions_expired",
                 server.sessionsExpired());
    registry.set(component, "duplicate_requests",
                 server.duplicateRequests());
    registry.set(component, "duplicate_completions",
                 server.duplicateCompletions());
}

std::vector<core::VddMv>
defaultChallengeLevels(const firmware::AuthenticacheClient &client,
                       std::size_t count, double spacing_mv)
{
    if (client.floorMv() <= 0.0)
        throw std::logic_error(
            "defaultChallengeLevels: device not booted");
    std::vector<core::VddMv> levels;
    double v = client.floorMv();
    for (std::size_t i = 0; i < count; ++i) {
        levels.push_back(
            static_cast<core::VddMv>(std::lround(v)));
        v += spacing_mv;
    }
    return levels;
}

core::VddMv
defaultReservedLevel(const firmware::AuthenticacheClient &client)
{
    if (client.floorMv() <= 0.0)
        throw std::logic_error(
            "defaultReservedLevel: device not booted");
    return static_cast<core::VddMv>(
        std::lround(client.floorMv() + 5.0));
}

} // namespace authenticache::server
