#include "server/server.hpp"

#include <cmath>

#include "server/durability.hpp"
#include "server/storage.hpp"
#include "util/logging.hpp"

namespace authenticache::server {

namespace {

/** Journal an enrollment (full record encoding) and make it durable. */
void
journalEnrollment(DurabilityManager *dur, const DeviceRecord &record)
{
    if (dur == nullptr)
        return;
    protocol::ByteWriter w;
    encodeDeviceRecord(w, record);
    dur->append(journal::Enrolled{w.take()});
    dur->sync();
}

} // namespace

AuthenticationServer::AuthenticationServer(const ServerConfig &config,
                                           std::uint64_t seed)
    : cfg(config),
      rng(seed),
      generator(rng.fork()),
      verify(config.verifier),
      sessionsMgr(cfg, seed),
      front(sessionsMgr, devices, generator, verify)
{
}

DeviceRecord &
AuthenticationServer::enrollWithMap(
    std::uint64_t device_id, core::ErrorMap map,
    firmware::AuthenticacheClient &client,
    const std::vector<core::VddMv> &challenge_levels,
    const std::vector<core::VddMv> &reserved_levels)
{
    DeviceRecord record(device_id, std::move(map), challenge_levels,
                        reserved_levels);

    // Install the initial logical-map key over the trusted enrollment
    // channel.
    crypto::Key256 initial;
    for (auto &b : initial.bytes)
        b = static_cast<std::uint8_t>(rng.nextBelow(256));
    record.setMapKey(initial);
    client.setMapKey(initial);

    AUTH_LOG_INFO("server")
        << "enrolled device " << device_id << " with "
        << record.physicalMap().totalErrors() << " errors";
    DeviceRecord &stored = devices.enroll(std::move(record));
    journalEnrollment(durability(), stored);
    return stored;
}

DeviceRecord &
AuthenticationServer::enrollRecord(DeviceRecord record)
{
    DeviceRecord &stored = devices.enroll(std::move(record));
    journalEnrollment(durability(), stored);
    return stored;
}

DeviceRecord &
AuthenticationServer::reenroll(
    std::uint64_t device_id, firmware::AuthenticacheClient &client,
    const std::vector<core::VddMv> &challenge_levels,
    const std::vector<core::VddMv> &reserved_levels,
    std::uint32_t sweep_passes)
{
    if (devices.remove(device_id) && durability() != nullptr)
        durability()->append(journal::DeviceRemoved{device_id});
    // The following enrollment syncs the removal and the fresh
    // record together.
    return enroll(device_id, client, challenge_levels,
                  reserved_levels, sweep_passes);
}

void
AuthenticationServer::unlockDevice(std::uint64_t device_id)
{
    DeviceRecord &record = devices.at(device_id);
    record.unlock(cfg.trust.max);
    ++unlockCount;
    if (durability() != nullptr) {
        durability()->append(journal::DeviceUnlocked{device_id});
        // The absolute trust restore follows as its own event so
        // replay never depends on the restarted server's policy
        // (DeviceUnlocked alone replays the record-level default).
        durability()->append(journal::TrustUpdate{
            device_id, record.trustScore(), record.remapBudgetUsed(),
            record.reenrollRequired()});
        durability()->sync();
    }
}

void
AuthenticationServer::revokeDevice(std::uint64_t device_id)
{
    SessionShard &sh = sessionsMgr.shardForDevice(device_id);
    DeviceRecord &record = devices.at(device_id);
    {
        util::MutexLock lock(sh.mutex);
        record.revoke();
        ++sh.counters.revocations;
        // Tear down any live heartbeat session (inline: the flow's
        // stop() would re-lock the shard).
        auto hb = sh.heartbeats.find(device_id);
        if (hb != sh.heartbeats.end()) {
            if (hb->second.activeNonce != 0)
                sh.heartbeatByNonce.erase(hb->second.activeNonce);
            sh.heartbeats.erase(hb);
        }
    }
    if (durability() != nullptr) {
        durability()->append(journal::TrustUpdate{
            device_id, record.trustScore(), record.remapBudgetUsed(),
            record.reenrollRequired()});
        durability()->append(journal::DeviceRevoked{device_id});
        durability()->sync();
    }
    AUTH_LOG_WARN("server")
        << "device " << device_id << " revoked by administrator";
}

bool
AuthenticationServer::removeDevice(std::uint64_t device_id)
{
    SessionShard &sh = sessionsMgr.shardForDevice(device_id);
    {
        // Tear down any live heartbeat session first, so a later
        // tick never dereferences the vanished record.
        util::MutexLock lock(sh.mutex);
        auto hb = sh.heartbeats.find(device_id);
        if (hb != sh.heartbeats.end()) {
            if (hb->second.activeNonce != 0)
                sh.heartbeatByNonce.erase(hb->second.activeNonce);
            sh.heartbeats.erase(hb);
        }
    }
    if (!devices.remove(device_id))
        return false;
    if (durability() != nullptr) {
        durability()->append(journal::DeviceRemoved{device_id});
        durability()->sync();
    }
    AUTH_LOG_WARN("server")
        << "device " << device_id << " removed by administrator";
    return true;
}

void
AuthenticationServer::seedCompletedRemaps(
    const std::vector<std::pair<std::uint64_t, bool>> &outcomes)
{
    for (const auto &[nonce, committed] : outcomes) {
        SessionShard &sh = sessionsMgr.shardForNonce(nonce);
        util::MutexLock lock(sh.mutex);
        sh.cacheCompleted(nonce,
                          protocol::RemapCommit{nonce, committed},
                          cfg.completedCacheSize);
    }
}

DeviceRecord &
AuthenticationServer::enroll(
    std::uint64_t device_id, firmware::AuthenticacheClient &client,
    const std::vector<core::VddMv> &challenge_levels,
    const std::vector<core::VddMv> &reserved_levels,
    std::uint32_t sweep_passes)
{
    if (client.floorMv() <= 0.0)
        client.boot();

    std::vector<core::VddMv> all_levels = challenge_levels;
    all_levels.insert(all_levels.end(), reserved_levels.begin(),
                      reserved_levels.end());
    core::ErrorMap map =
        client.captureErrorMap(all_levels, sweep_passes);
    return enrollWithMap(device_id, std::move(map), client,
                         challenge_levels, reserved_levels);
}

void
runExchange(AuthenticationServer &server,
            protocol::ServerEndpoint &server_endpoint,
            DeviceAgent &agent)
{
    bool progress = true;
    while (progress) {
        progress = false;
        progress |= server.pumpOnce(server_endpoint);
        progress |= agent.pumpOnce();
    }
}

SteppedExchangeResult
runExchangeSteps(AuthenticationServer &server,
                 protocol::ServerEndpoint &server_endpoint,
                 DeviceAgent &agent, util::SimClock &clock,
                 protocol::InMemoryChannel &channel,
                 std::uint64_t max_steps)
{
    SteppedExchangeResult result;
    for (; result.steps < max_steps; ++result.steps) {
        bool progress = true;
        while (progress) {
            progress = false;
            progress |= server.pumpOnce(server_endpoint);
            progress |= agent.pumpOnce();
        }
        if (!agent.sessionActive() && channel.idle()) {
            result.quiesced = true;
            return result;
        }
        clock.advance(1);
        server.tick();
        agent.tick();
    }
    return result;
}

void
collectServerStats(const AuthenticationServer &server,
                   util::StatsRegistry &registry,
                   const std::string &component)
{
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t locked = 0;
    std::uint64_t errors = 0;
    // Order-independent sums over the records. LINT:allow(unordered-iter)
    for (const auto &[id, record] : server.database().all()) {
        accepted += record.accepted();
        rejected += record.rejected();
        locked += record.locked() ? 1 : 0;
        errors += record.physicalMap().totalErrors();
    }
    registry.set(component, "devices",
                 std::uint64_t(server.database().size()));
    registry.set(component, "authentications_accepted", accepted);
    registry.set(component, "authentications_rejected", rejected);
    registry.set(component, "devices_locked", locked);
    registry.set(component, "enrolled_error_lines", errors);
    registry.set(component, "remaps_committed",
                 server.remapsCommitted());
    registry.set(component, "remaps_rejected",
                 server.remapsRejected());
    registry.set(component, "pending_sessions",
                 std::uint64_t(server.pendingSessions()));
    registry.set(component, "sessions_evicted",
                 server.sessionsEvicted());
    registry.set(component, "sessions_expired",
                 server.sessionsExpired());
    registry.set(component, "duplicate_requests",
                 server.duplicateRequests());
    registry.set(component, "duplicate_completions",
                 server.duplicateCompletions());
    registry.set(component, "lockouts", server.lockouts());
    registry.set(component, "session_shards",
                 std::uint64_t(server.sessions().shardCount()));

    // Continuous-authentication trust ledger.
    const std::string trust = component + ".trust";
    const SessionManager &sess = server.sessions();
    registry.set(trust, "decays", sess.trustDecays());
    registry.set(trust, "step_ups", sess.stepUps());
    registry.set(trust, "proactive_remaps", sess.proactiveRemaps());
    registry.set(trust, "revocations", sess.revocations());
    registry.set(trust, "unlocks", server.adminUnlocks());
    registry.set(trust, "heartbeats_clean", sess.heartbeatsClean());
    registry.set(trust, "heartbeats_marginal",
                 sess.heartbeatsMarginal());
    registry.set(trust, "heartbeats_failed", sess.heartbeatsFailed());
    registry.set(trust, "heartbeats_active",
                 std::uint64_t(sess.activeHeartbeats()));
    server.sessions().collectStats(registry, component);
    if (const DurabilityManager *dur = server.durability())
        dur->collectStats(registry, component);
}

std::vector<core::VddMv>
defaultChallengeLevels(const firmware::AuthenticacheClient &client,
                       std::size_t count, double spacing_mv)
{
    if (client.floorMv() <= 0.0)
        throw std::logic_error(
            "defaultChallengeLevels: device not booted");
    std::vector<core::VddMv> levels;
    double v = client.floorMv();
    for (std::size_t i = 0; i < count; ++i) {
        levels.push_back(
            static_cast<core::VddMv>(std::lround(v)));
        v += spacing_mv;
    }
    return levels;
}

core::VddMv
defaultReservedLevel(const firmware::AuthenticacheClient &client)
{
    if (client.floorMv() <= 0.0)
        throw std::logic_error(
            "defaultReservedLevel: device not booted");
    return static_cast<core::VddMv>(
        std::lround(client.floorMv() + 5.0));
}

} // namespace authenticache::server
