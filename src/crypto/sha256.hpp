/**
 * @file
 * SHA-256 (FIPS 180-4), implemented from scratch. Used for key
 * derivation in the adaptive error-remapping protocol (paper Sec 4.5)
 * and for hashing error-map layouts into logical maps (Sec 4.3).
 */

#ifndef AUTH_CRYPTO_SHA256_HPP
#define AUTH_CRYPTO_SHA256_HPP

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace authenticache::crypto {

/** A 256-bit digest. */
using Digest256 = std::array<std::uint8_t, 32>;

/** Incremental SHA-256 hasher. */
class Sha256
{
  public:
    Sha256();

    /** Absorb bytes. */
    void update(std::span<const std::uint8_t> data);

    /** Convenience: absorb a string's bytes. */
    void update(const std::string &s);

    /** Finalize and return the digest; hasher must not be reused. */
    Digest256 finalize();

    /** One-shot hash of a byte span. */
    static Digest256 hash(std::span<const std::uint8_t> data);

    /** One-shot hash of a string. */
    static Digest256 hash(const std::string &s);

  private:
    void processBlock(const std::uint8_t *block);

    std::array<std::uint32_t, 8> state;
    std::array<std::uint8_t, 64> buffer;
    std::size_t bufferLen = 0;
    std::uint64_t totalLen = 0;
    bool finalized = false;
};

/** HMAC-SHA256 (RFC 2104). */
Digest256 hmacSha256(std::span<const std::uint8_t> key,
                     std::span<const std::uint8_t> message);

/** Hex encoding of a digest, for tests against published vectors. */
std::string toHex(const Digest256 &digest);

} // namespace authenticache::crypto

#endif // AUTH_CRYPTO_SHA256_HPP
