/**
 * @file
 * Key material types and derivation helpers shared by the remap
 * protocol and the logical-map permutation.
 */

#ifndef AUTH_CRYPTO_KEY_HPP
#define AUTH_CRYPTO_KEY_HPP

#include <array>
#include <cstdint>
#include <string>

#include "crypto/sha256.hpp"
#include "crypto/siphash.hpp"

namespace authenticache::crypto {

/** 256-bit symmetric key. */
struct Key256
{
    std::array<std::uint8_t, 32> bytes{};

    bool operator==(const Key256 &) const = default;

    /** All-zero key; the "default mapping" of the remap protocol. */
    static Key256 zero() { return Key256{}; }

    /** Key from a digest. */
    static Key256 fromDigest(const Digest256 &d);
};

/**
 * Derive a SipHash key for a named purpose. Domain separation via the
 * label keeps e.g. the coordinate-permutation key independent from any
 * MAC key derived from the same root.
 */
SipHashKey deriveSipHashKey(const Key256 &root, const std::string &label);

/** Derive a child Key256 for a named purpose (HKDF-like, one step). */
Key256 deriveKey(const Key256 &root, const std::string &label);

/**
 * Key-confirmation MAC for the remap two-phase commit: both sides
 * compute HMAC(key, "remap-confirm" || nonce) and compare. Reveals
 * nothing about the key; a mismatch proves the client mis-derived it
 * (noise beyond the helper data's correction radius).
 */
Digest256 keyConfirmation(const Key256 &key, std::uint64_t nonce);

} // namespace authenticache::crypto

#endif // AUTH_CRYPTO_KEY_HPP
