#include "crypto/bch_fuzzy_extractor.hpp"

#include <stdexcept>

namespace authenticache::crypto {

BchFuzzyExtractor::BchFuzzyExtractor(unsigned m, unsigned t)
    : code(m, t)
{
}

FuzzyExtraction
BchFuzzyExtractor::generate(const util::BitVec &response,
                            util::Rng &rng) const
{
    if (response.size() != code.n())
        throw std::invalid_argument(
            "BchFuzzyExtractor: response must be n bits");

    util::BitVec secret(code.k());
    for (std::size_t i = 0; i < secret.size(); ++i)
        secret.set(i, rng.nextBool());

    util::BitVec codeword = code.encode(secret);

    FuzzyExtraction out;
    out.helper = codeword ^ response;
    out.key = hashSecret(secret);
    return out;
}

std::optional<Key256>
BchFuzzyExtractor::reproduce(const util::BitVec &noisy_response,
                             const util::BitVec &helper) const
{
    if (noisy_response.size() != code.n() ||
        helper.size() != code.n())
        throw std::invalid_argument(
            "BchFuzzyExtractor: inputs must be n bits");

    util::BitVec noisy_codeword = helper ^ noisy_response;
    auto corrected = code.decode(noisy_codeword);
    if (!corrected)
        return std::nullopt;
    return hashSecret(code.extractMessage(*corrected));
}

Key256
BchFuzzyExtractor::hashSecret(const util::BitVec &secret) const
{
    Sha256 hasher;
    hasher.update(std::string("authenticache-bch-fuzzy-v1"));
    const auto &words = secret.words();
    std::span<const std::uint8_t> bytes(
        reinterpret_cast<const std::uint8_t *>(words.data()),
        words.size() * sizeof(std::uint64_t));
    hasher.update(bytes);
    return Key256::fromDigest(hasher.finalize());
}

} // namespace authenticache::crypto
