#include "crypto/fuzzy_extractor.hpp"

#include <cassert>
#include <stdexcept>

namespace authenticache::crypto {

FuzzyExtractor::FuzzyExtractor(unsigned repetition) : rep(repetition)
{
    if (rep < 3 || rep % 2 == 0)
        throw std::invalid_argument(
            "FuzzyExtractor: repetition must be odd and >= 3");
}

std::size_t
FuzzyExtractor::secretBits(std::size_t response_bits) const
{
    return response_bits / rep;
}

FuzzyExtraction
FuzzyExtractor::generate(const util::BitVec &response,
                         util::Rng &rng) const
{
    if (response.size() % rep != 0)
        throw std::invalid_argument(
            "FuzzyExtractor: response length not a multiple of R");

    const std::size_t k = response.size() / rep;
    util::BitVec secret(k);
    for (std::size_t i = 0; i < k; ++i)
        secret.set(i, rng.nextBool());

    // Codeword: each secret bit repeated R times.
    util::BitVec codeword(response.size());
    for (std::size_t i = 0; i < k; ++i) {
        for (unsigned j = 0; j < rep; ++j)
            codeword.set(i * rep + j, secret.get(i));
    }

    FuzzyExtraction out;
    out.helper = codeword ^ response;
    out.key = hashSecret(secret);
    return out;
}

Key256
FuzzyExtractor::reproduce(const util::BitVec &noisy_response,
                          const util::BitVec &helper) const
{
    if (noisy_response.size() != helper.size())
        throw std::invalid_argument(
            "FuzzyExtractor: helper/response length mismatch");
    if (noisy_response.size() % rep != 0)
        throw std::invalid_argument(
            "FuzzyExtractor: response length not a multiple of R");

    util::BitVec codeword = helper ^ noisy_response;
    const std::size_t k = codeword.size() / rep;
    util::BitVec secret(k);
    for (std::size_t i = 0; i < k; ++i) {
        unsigned ones = 0;
        for (unsigned j = 0; j < rep; ++j)
            ones += codeword.get(i * rep + j) ? 1 : 0;
        secret.set(i, ones * 2 > rep);
    }
    return hashSecret(secret);
}

Key256
FuzzyExtractor::hashSecret(const util::BitVec &secret) const
{
    Sha256 hasher;
    hasher.update(std::string("authenticache-fuzzy-v1"));
    const auto &words = secret.words();
    std::span<const std::uint8_t> bytes(
        reinterpret_cast<const std::uint8_t *>(words.data()),
        words.size() * sizeof(std::uint64_t));
    hasher.update(bytes);
    return Key256::fromDigest(hasher.finalize());
}

} // namespace authenticache::crypto
