/**
 * @file
 * BCH-based fuzzy extractor: the strong code-offset construction.
 *
 * Same interface shape as the repetition-code FuzzyExtractor but with
 * a BCH(2^m - 1, k, t) code: a k-bit secret is encoded to an n-bit
 * codeword, offset by the reference PUF response to form the helper
 * data, and reproduced exactly from any re-measurement within t bit
 * flips. At m = 7, t = 10 this extracts 64 secret bits from a 127-bit
 * response while tolerating ~8% noise -- a far better rate/tolerance
 * trade than 5x repetition (and the scheme the paper's key-generation
 * references employ, Sec 7.3).
 */

#ifndef AUTH_CRYPTO_BCH_FUZZY_EXTRACTOR_HPP
#define AUTH_CRYPTO_BCH_FUZZY_EXTRACTOR_HPP

#include <optional>

#include "crypto/fuzzy_extractor.hpp"
#include "ecc/bch.hpp"

namespace authenticache::crypto {

class BchFuzzyExtractor
{
  public:
    /**
     * @param m Field degree: response length is 2^m - 1 bits.
     * @param t Correctable bit flips per extraction.
     */
    explicit BchFuzzyExtractor(unsigned m = 7, unsigned t = 10);

    /** Required PUF response length (the code length n). */
    std::size_t responseBits() const { return code.n(); }

    /** Extracted secret length (the code dimension k). */
    std::size_t secretBits() const { return code.k(); }

    /** Tolerated bit flips. */
    unsigned tolerance() const { return code.t(); }

    /** Generation: derive (key, helper) from a reference response. */
    FuzzyExtraction generate(const util::BitVec &response,
                             util::Rng &rng) const;

    /**
     * Reproduction: recover the key from a noisy re-measurement.
     * Returns std::nullopt when the noise exceeded the code's
     * correction capability (detected decoder failure -- unlike the
     * repetition extractor, BCH usually *knows* when it failed).
     */
    std::optional<Key256> reproduce(const util::BitVec &noisy_response,
                                    const util::BitVec &helper) const;

  private:
    Key256 hashSecret(const util::BitVec &secret) const;

    ecc::BchCode code;
};

} // namespace authenticache::crypto

#endif // AUTH_CRYPTO_BCH_FUZZY_EXTRACTOR_HPP
