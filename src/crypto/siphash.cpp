#include "crypto/siphash.hpp"

#include <cstring>

namespace authenticache::crypto {

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int b)
{
    return (x << b) | (x >> (64 - b));
}

struct SipState
{
    std::uint64_t v0, v1, v2, v3;

    void
    round()
    {
        v0 += v1;
        v1 = rotl(v1, 13);
        v1 ^= v0;
        v0 = rotl(v0, 32);
        v2 += v3;
        v3 = rotl(v3, 16);
        v3 ^= v2;
        v0 += v3;
        v3 = rotl(v3, 21);
        v3 ^= v0;
        v2 += v1;
        v1 = rotl(v1, 17);
        v1 ^= v2;
        v2 = rotl(v2, 32);
    }
};

inline std::uint64_t
readLe64(const std::uint8_t *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    return v; // Little-endian host assumed (x86/ARM little-endian).
}

} // namespace

std::uint64_t
siphash24(const SipHashKey &key, std::span<const std::uint8_t> data)
{
    SipState s{
        key.k0 ^ 0x736f6d6570736575ull,
        key.k1 ^ 0x646f72616e646f6dull,
        key.k0 ^ 0x6c7967656e657261ull,
        key.k1 ^ 0x7465646279746573ull,
    };

    const std::size_t len = data.size();
    const std::size_t blocks = len / 8;
    for (std::size_t i = 0; i < blocks; ++i) {
        std::uint64_t m = readLe64(data.data() + 8 * i);
        s.v3 ^= m;
        s.round();
        s.round();
        s.v0 ^= m;
    }

    std::uint64_t last = static_cast<std::uint64_t>(len & 0xFF) << 56;
    const std::uint8_t *tail = data.data() + 8 * blocks;
    switch (len & 7) {
      case 7: last |= static_cast<std::uint64_t>(tail[6]) << 48;
              [[fallthrough]];
      case 6: last |= static_cast<std::uint64_t>(tail[5]) << 40;
              [[fallthrough]];
      case 5: last |= static_cast<std::uint64_t>(tail[4]) << 32;
              [[fallthrough]];
      case 4: last |= static_cast<std::uint64_t>(tail[3]) << 24;
              [[fallthrough]];
      case 3: last |= static_cast<std::uint64_t>(tail[2]) << 16;
              [[fallthrough]];
      case 2: last |= static_cast<std::uint64_t>(tail[1]) << 8;
              [[fallthrough]];
      case 1: last |= static_cast<std::uint64_t>(tail[0]);
              break;
      case 0: break;
    }

    s.v3 ^= last;
    s.round();
    s.round();
    s.v0 ^= last;

    s.v2 ^= 0xFF;
    s.round();
    s.round();
    s.round();
    s.round();
    return s.v0 ^ s.v1 ^ s.v2 ^ s.v3;
}

std::uint64_t
siphash24(const SipHashKey &key, std::uint64_t word)
{
    std::array<std::uint8_t, 8> bytes;
    std::memcpy(bytes.data(), &word, 8);
    return siphash24(key, bytes);
}

} // namespace authenticache::crypto
