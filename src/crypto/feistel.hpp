/**
 * @file
 * Keyed format-preserving permutation over an arbitrary domain [0, n).
 *
 * Authenticache never exposes physical error coordinates in challenges:
 * the server and client agree on a key K_A and communicate *logical*
 * coordinates produced by a keyed bijection of the cache's line index
 * space (paper Sec 4.3, Figure 6). We realize the bijection as a
 * balanced Feistel network over the smallest power-of-four domain
 * covering n, with SipHash-2-4 round functions and cycle walking to
 * stay inside [0, n).
 */

#ifndef AUTH_CRYPTO_FEISTEL_HPP
#define AUTH_CRYPTO_FEISTEL_HPP

#include <cstdint>

#include "crypto/siphash.hpp"

namespace authenticache::crypto {

/**
 * Keyed bijection over [0, domain). Both directions are O(rounds)
 * amortized; cycle walking visits out-of-range points of the covering
 * power-of-two domain but never more than a few in expectation.
 */
class FeistelPermutation
{
  public:
    /**
     * @param key 128-bit permutation key.
     * @param domain Size of the permuted domain; must be >= 2.
     * @param rounds Feistel rounds; 4 suffices for PRP behaviour with
     *               independent round functions, default is 6.
     */
    FeistelPermutation(const SipHashKey &key, std::uint64_t domain,
                       unsigned rounds = 6);

    /** Forward mapping (physical -> logical). */
    std::uint64_t map(std::uint64_t x) const;

    /** Inverse mapping (logical -> physical). */
    std::uint64_t unmap(std::uint64_t y) const;

    std::uint64_t domain() const { return domainSize; }

  private:
    std::uint64_t permuteOnce(std::uint64_t x) const;
    std::uint64_t unpermuteOnce(std::uint64_t y) const;
    std::uint64_t roundFunction(unsigned round, std::uint64_t half) const;

    SipHashKey key;
    std::uint64_t domainSize;
    unsigned rounds;
    unsigned halfBits; // Bits per Feistel half of the covering domain.
};

} // namespace authenticache::crypto

#endif // AUTH_CRYPTO_FEISTEL_HPP
