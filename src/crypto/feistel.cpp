#include "crypto/feistel.hpp"

#include <cassert>

namespace authenticache::crypto {

FeistelPermutation::FeistelPermutation(const SipHashKey &key_,
                                       std::uint64_t domain,
                                       unsigned rounds_)
    : key(key_), domainSize(domain), rounds(rounds_)
{
    assert(domain >= 2);
    assert(rounds >= 3);
    // Smallest even-bit-width power of two covering the domain, so the
    // Feistel halves are balanced.
    unsigned bits = 2;
    while ((domain - 1) >> bits != 0)
        bits += 2;
    halfBits = bits / 2;
}

std::uint64_t
FeistelPermutation::roundFunction(unsigned round, std::uint64_t half) const
{
    // Domain-separate rounds by folding the round index into the input.
    std::uint64_t input = (static_cast<std::uint64_t>(round) << 56) ^
                          (domainSize << 32) ^ half;
    return siphash24(key, input);
}

std::uint64_t
FeistelPermutation::permuteOnce(std::uint64_t x) const
{
    const std::uint64_t mask = (1ull << halfBits) - 1;
    std::uint64_t left = x >> halfBits;
    std::uint64_t right = x & mask;
    for (unsigned r = 0; r < rounds; ++r) {
        std::uint64_t next = left ^ (roundFunction(r, right) & mask);
        left = right;
        right = next;
    }
    return (left << halfBits) | right;
}

std::uint64_t
FeistelPermutation::unpermuteOnce(std::uint64_t y) const
{
    const std::uint64_t mask = (1ull << halfBits) - 1;
    std::uint64_t left = y >> halfBits;
    std::uint64_t right = y & mask;
    for (unsigned r = rounds; r-- > 0;) {
        std::uint64_t prev = right ^ (roundFunction(r, left) & mask);
        right = left;
        left = prev;
    }
    return (left << halfBits) | right;
}

std::uint64_t
FeistelPermutation::map(std::uint64_t x) const
{
    assert(x < domainSize);
    // Cycle walking: iterate until the image lands inside the domain.
    std::uint64_t y = permuteOnce(x);
    while (y >= domainSize)
        y = permuteOnce(y);
    return y;
}

std::uint64_t
FeistelPermutation::unmap(std::uint64_t y) const
{
    assert(y < domainSize);
    std::uint64_t x = unpermuteOnce(y);
    while (x >= domainSize)
        x = unpermuteOnce(x);
    return x;
}

} // namespace authenticache::crypto
