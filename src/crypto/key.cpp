#include "crypto/key.hpp"

#include <cstring>

namespace authenticache::crypto {

Key256
Key256::fromDigest(const Digest256 &d)
{
    Key256 k;
    k.bytes = d;
    return k;
}

SipHashKey
deriveSipHashKey(const Key256 &root, const std::string &label)
{
    Key256 child = deriveKey(root, "siphash:" + label);
    SipHashKey key;
    std::memcpy(&key.k0, child.bytes.data(), 8);
    std::memcpy(&key.k1, child.bytes.data() + 8, 8);
    return key;
}

Digest256
keyConfirmation(const Key256 &key, std::uint64_t nonce)
{
    std::string message = "remap-confirm";
    for (int i = 0; i < 8; ++i)
        message.push_back(static_cast<char>(nonce >> (8 * i)));
    std::span<const std::uint8_t> key_span(key.bytes.data(),
                                           key.bytes.size());
    std::span<const std::uint8_t> msg_span(
        reinterpret_cast<const std::uint8_t *>(message.data()),
        message.size());
    return hmacSha256(key_span, msg_span);
}

Key256
deriveKey(const Key256 &root, const std::string &label)
{
    std::span<const std::uint8_t> key_span(root.bytes.data(),
                                           root.bytes.size());
    std::span<const std::uint8_t> msg_span(
        reinterpret_cast<const std::uint8_t *>(label.data()),
        label.size());
    return Key256::fromDigest(hmacSha256(key_span, msg_span));
}

} // namespace authenticache::crypto
