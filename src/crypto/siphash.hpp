/**
 * @file
 * SipHash-2-4 keyed pseudo random function. Used as the round function
 * of the format-preserving permutation that remaps physical error-map
 * coordinates to logical ones (paper Sec 4.3/4.5).
 */

#ifndef AUTH_CRYPTO_SIPHASH_HPP
#define AUTH_CRYPTO_SIPHASH_HPP

#include <array>
#include <cstdint>
#include <span>

namespace authenticache::crypto {

/** 128-bit SipHash key. */
struct SipHashKey
{
    std::uint64_t k0 = 0;
    std::uint64_t k1 = 0;

    bool operator==(const SipHashKey &) const = default;
};

/** SipHash-2-4 of a byte span under the given key. */
std::uint64_t siphash24(const SipHashKey &key,
                        std::span<const std::uint8_t> data);

/** Convenience: SipHash-2-4 of a single 64-bit word. */
std::uint64_t siphash24(const SipHashKey &key, std::uint64_t word);

} // namespace authenticache::crypto

#endif // AUTH_CRYPTO_SIPHASH_HPP
