/**
 * @file
 * Fuzzy extractor built from a repetition code.
 *
 * The adaptive error-remapping protocol (paper Sec 4.5) derives a fresh
 * logical-map key from a PUF response measured at a *reserved* voltage.
 * PUF responses are noisy, so the server ships error-correcting
 * "helper data" alongside the challenge; the client combines its noisy
 * response with the helper data to reconstruct exactly the key the
 * server derived. A repetition code with majority decoding gives the
 * classic code-offset construction: tolerate fewer than R/2 bit flips
 * per group of R response bits.
 */

#ifndef AUTH_CRYPTO_FUZZY_EXTRACTOR_HPP
#define AUTH_CRYPTO_FUZZY_EXTRACTOR_HPP

#include <cstdint>

#include "crypto/key.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace authenticache::crypto {

/** Output of the generation step: the derived key plus public helper. */
struct FuzzyExtraction
{
    Key256 key;
    util::BitVec helper; // Public; reveals nothing about the key alone.
};

/** Code-offset fuzzy extractor with an R-fold repetition code. */
class FuzzyExtractor
{
  public:
    /**
     * @param repetition Odd repetition factor R (3, 5, 7, ...).
     */
    explicit FuzzyExtractor(unsigned repetition = 5);

    /**
     * Generation: derive (key, helper) from a reference response. The
     * response length must be a multiple of R; the extracted secret
     * has response.size()/R bits and is hashed into a 256-bit key.
     *
     * @param response Reference PUF response w.
     * @param rng Source for the random secret codeword.
     */
    FuzzyExtraction generate(const util::BitVec &response,
                             util::Rng &rng) const;

    /**
     * Reproduction: recover the key from a noisy re-measurement w' and
     * the helper data. Succeeds exactly when every R-bit group of
     * w XOR w' has fewer than R/2 set bits.
     */
    Key256 reproduce(const util::BitVec &noisy_response,
                     const util::BitVec &helper) const;

    unsigned repetition() const { return rep; }

    /** Number of secret bits extractable from an n-bit response. */
    std::size_t secretBits(std::size_t response_bits) const;

  private:
    Key256 hashSecret(const util::BitVec &secret) const;

    unsigned rep;
};

} // namespace authenticache::crypto

#endif // AUTH_CRYPTO_FUZZY_EXTRACTOR_HPP
