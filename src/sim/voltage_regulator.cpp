#include "sim/voltage_regulator.hpp"

#include <cmath>

namespace authenticache::sim {

VoltageRegulator::VoltageRegulator(const RegulatorParams &params_)
    : params(params_), current(params_.nominalMv)
{
}

double
VoltageRegulator::transitionLatencyUs(double from, double to) const
{
    if (from == to)
        return 0.0;
    return params.baseLatencyUs + params.slewUsPerMv * std::abs(to - from);
}

VoltageStatus
VoltageRegulator::request(double vdd_mv, double *latency_us)
{
    // Quantize to the regulator's step grid.
    double quantized =
        std::round(vdd_mv / params.stepMv) * params.stepMv;

    if (quantized > params.nominalMv || quantized < params.absoluteMinMv)
        return VoltageStatus::OutOfRange;
    if (floor > 0.0 && quantized < floor)
        return VoltageStatus::BelowFloor;

    double latency = transitionLatencyUs(current, quantized);
    if (quantized != current)
        ++nTransitions;
    current = quantized;
    if (latency_us)
        *latency_us = latency;
    return VoltageStatus::Ok;
}

double
VoltageRegulator::emergencyRaise()
{
    double latency = transitionLatencyUs(current, params.nominalMv);
    if (current != params.nominalMv)
        ++nTransitions;
    current = params.nominalMv;
    return latency;
}

} // namespace authenticache::sim
