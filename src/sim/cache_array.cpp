#include "sim/cache_array.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace authenticache::sim {

namespace {

/** Severity bucket of a decode outcome; Ok never reaches this. */
EccSeverity
severityOf(ecc::DecodeStatus status)
{
    switch (status) {
      case ecc::DecodeStatus::CorrectedData:
      case ecc::DecodeStatus::CorrectedCheck:
      // A detect-only scheme cannot repair, but a detected event is
      // the same benign, consumable observation a correction is: the
      // stored word is intact and a self-test rewrite recovers it.
      case ecc::DecodeStatus::Detected:
        return EccSeverity::Corrected;
      case ecc::DecodeStatus::Ok:
      case ecc::DecodeStatus::DoubleError:
      case ecc::DecodeStatus::Uncorrectable:
        break;
    }
    return EccSeverity::Uncorrectable;
}

} // namespace

EccCacheArray::EccCacheArray(const DeviceFaultModel &model_,
                             EccErrorLog &log_,
                             std::shared_ptr<ecc::EccScheme> scheme,
                             std::uint64_t access_seed)
    : model(model_), log(log_), code(std::move(scheme)),
      rng(access_seed)
{
    if (!code)
        throw std::invalid_argument(
            "EccCacheArray: null ECC scheme");
    const auto &geom = model.geometry();
    words.assign(geom.lines() * geom.wordsPerLine(), 0);
    checks.assign(words.size(), 0);
}

void
EccCacheArray::writeLine(const LinePoint &p,
                         std::span<const std::uint64_t> data)
{
    const auto &geom = model.geometry();
    if (data.size() != geom.wordsPerLine())
        throw std::invalid_argument("writeLine: word count mismatch");
    std::uint64_t base = geom.lineIndex(p) * geom.wordsPerLine();
    std::copy(data.begin(), data.end(), words.begin() + base);
    code->encodeBatch(data.data(), checks.data() + base, data.size());
    nWrites += geom.wordsPerLine();
}

void
EccCacheArray::fillLine(const LinePoint &p, std::uint64_t pattern)
{
    const auto &geom = model.geometry();
    std::uint64_t base = geom.lineIndex(p) * geom.wordsPerLine();
    std::uint64_t check = code->encode(pattern);
    for (std::uint32_t w = 0; w < geom.wordsPerLine(); ++w) {
        words[base + w] = pattern;
        checks[base + w] = check;
    }
    nWrites += geom.wordsPerLine();
}

void
EccCacheArray::applyFault(FaultKind kind, std::uint64_t line,
                          std::uint64_t &raw,
                          std::uint64_t &check) const
{
    auto flip = [&](std::uint32_t bit) {
        if (bit < 64)
            raw ^= 1ull << bit;
        else
            check ^= 1ull << ((bit - 64) % code->checkBits());
    };
    flip(model.weakBit(line));
    if (kind == FaultKind::Double)
        flip(model.weakBit2(line));
}

void
EccCacheArray::postEvent(const LinePoint &p, std::uint32_t word,
                         const ecc::DecodeResult &decoded)
{
    EccEvent event;
    event.line = p;
    event.word = word;
    event.bitPosition = decoded.bitPosition;
    event.vddMv = level;
    event.severity = severityOf(decoded.status);
    log.post(event);
}

ReadResult
EccCacheArray::readWord(const LinePoint &p, std::uint32_t word)
{
    const auto &geom = model.geometry();
    if (word >= geom.wordsPerLine())
        throw std::out_of_range("readWord: bad word index");

    ++nReads;
    const std::uint64_t line = geom.lineIndex(p);
    const std::uint64_t idx = line * geom.wordsPerLine() + word;
    std::uint64_t raw = words[idx];
    std::uint64_t check = checks[idx];

    // The weak cell lives in exactly one word of the line; only that
    // word can misread.
    if (word == model.weakWord(line)) {
        FaultKind kind = model.faultOn(line, level, conditions, rng);
        if (kind != FaultKind::None)
            applyFault(kind, line, raw, check);
    }

    ecc::DecodeResult decoded = code->decode(raw, check);

    ReadResult out;
    out.data = decoded.data;
    out.status = decoded.status;

    if (decoded.status != ecc::DecodeStatus::Ok)
        postEvent(p, word, decoded);
    return out;
}

LineAccessResult
EccCacheArray::readLine(const LinePoint &p)
{
    const auto &geom = model.geometry();
    LineAccessResult out;
    const std::uint64_t line = geom.lineIndex(p);
    const std::uint64_t base = line * geom.wordsPerLine();
    const std::uint32_t weak = model.weakWord(line);

    // Whole-line read: stage the stored words, inject the fault model
    // on the (single) weak word, then decode the line through the
    // scheme's batch kernel. The fault draw order matches the
    // word-at-a-time path exactly -- one faultOn() per line read, at
    // the weak word -- so replay streams are unchanged.
    constexpr std::size_t kChunk = 64;
    std::uint64_t raw[kChunk];
    std::uint64_t chk[kChunk];
    ecc::DecodeResult dec[kChunk];

    for (std::uint32_t off = 0; off < geom.wordsPerLine();
         off += kChunk) {
        const std::uint32_t m = static_cast<std::uint32_t>(
            std::min<std::size_t>(kChunk,
                                  geom.wordsPerLine() - off));
        for (std::uint32_t i = 0; i < m; ++i) {
            raw[i] = words[base + off + i];
            chk[i] = checks[base + off + i];
        }
        if (weak >= off && weak < off + m) {
            FaultKind kind =
                model.faultOn(line, level, conditions, rng);
            if (kind != FaultKind::None)
                applyFault(kind, line, raw[weak - off],
                           chk[weak - off]);
        }
        code->decodeBatch(raw, chk, dec, m);
        for (std::uint32_t i = 0; i < m; ++i) {
            ++nReads;
            if (dec[i].status == ecc::DecodeStatus::Ok)
                continue;
            if (severityOf(dec[i].status) == EccSeverity::Corrected)
                out.corrected = true;
            else
                out.uncorrectable = true;
            postEvent(p, off + i, dec[i]);
        }
    }
    return out;
}

SramCacheArray::SramCacheArray(const VminField &field,
                               const EnvironmentModel &env,
                               EccErrorLog &log,
                               std::uint64_t access_seed,
                               std::shared_ptr<ecc::EccScheme> scheme)
    : SramModelHolder(field, env),
      EccCacheArray(SramModelHolder::model, log,
                    scheme ? std::move(scheme)
                           : ecc::makeEccScheme("secded_72_64"),
                    access_seed)
{
}

} // namespace authenticache::sim
