#include "sim/cache_array.hpp"

#include <cassert>
#include <stdexcept>

namespace authenticache::sim {

SramCacheArray::SramCacheArray(const VminField &field_,
                               const EnvironmentModel &env_,
                               EccErrorLog &log_,
                               std::uint64_t access_seed)
    : field(field_), env(env_), log(log_), secded(64), rng(access_seed)
{
    const auto &geom = field.geometry();
    words.assign(geom.lines() * geom.wordsPerLine(), 0);
    checks.assign(words.size(), 0);
}

void
SramCacheArray::writeLine(const LinePoint &p,
                          std::span<const std::uint64_t> data)
{
    const auto &geom = field.geometry();
    if (data.size() != geom.wordsPerLine())
        throw std::invalid_argument("writeLine: word count mismatch");
    std::uint64_t base = geom.lineIndex(p) * geom.wordsPerLine();
    for (std::uint32_t w = 0; w < geom.wordsPerLine(); ++w) {
        words[base + w] = data[w];
        checks[base + w] =
            static_cast<std::uint8_t>(secded.encode(data[w]));
    }
    nWrites += geom.wordsPerLine();
}

void
SramCacheArray::fillLine(const LinePoint &p, std::uint64_t pattern)
{
    const auto &geom = field.geometry();
    std::uint64_t base = geom.lineIndex(p) * geom.wordsPerLine();
    std::uint8_t check =
        static_cast<std::uint8_t>(secded.encode(pattern));
    for (std::uint32_t w = 0; w < geom.wordsPerLine(); ++w) {
        words[base + w] = pattern;
        checks[base + w] = check;
    }
    nWrites += geom.wordsPerLine();
}

SramCacheArray::FaultKind
SramCacheArray::faultOn(std::uint64_t line)
{
    const double shift = env.thresholdShiftMv(line, conditions);
    const double jitter = env.measurementJitterMv(conditions, rng);
    const double v_eff = vdd + jitter;

    if (v_eff < field.vUncorrectableMv(line) + shift)
        return FaultKind::Double;
    if (v_eff < field.vCorrectableMv(line) + shift) {
        if (rng.nextBool(field.persistence(line)))
            return FaultKind::Single;
    }
    return FaultKind::None;
}

ReadResult
SramCacheArray::readWord(const LinePoint &p, std::uint32_t word)
{
    const auto &geom = field.geometry();
    if (word >= geom.wordsPerLine())
        throw std::out_of_range("readWord: bad word index");

    ++nReads;
    const std::uint64_t line = geom.lineIndex(p);
    const std::uint64_t idx = line * geom.wordsPerLine() + word;
    std::uint64_t raw = words[idx];
    std::uint32_t check = checks[idx];

    // The weak cell lives in exactly one word of the line; only that
    // word can misread.
    if (word == field.weakWord(line)) {
        FaultKind kind = faultOn(line);
        if (kind != FaultKind::None) {
            auto flip = [&](std::uint32_t bit) {
                if (bit < 64)
                    raw ^= 1ull << bit;
                else
                    check ^= 1u << (bit - 64);
            };
            flip(field.weakBit(line));
            if (kind == FaultKind::Double)
                flip(field.weakBit2(line));
        }
    }

    ecc::DecodeResult decoded = secded.decode(raw, check);

    ReadResult out;
    out.data = decoded.data;
    out.status = decoded.status;

    if (decoded.status != ecc::DecodeStatus::Ok) {
        EccEvent event;
        event.line = p;
        event.word = word;
        event.bitPosition = decoded.bitPosition;
        event.vddMv = vdd;
        event.severity =
            (decoded.status == ecc::DecodeStatus::CorrectedData ||
             decoded.status == ecc::DecodeStatus::CorrectedCheck)
                ? EccSeverity::Corrected
                : EccSeverity::Uncorrectable;
        log.post(event);
    }
    return out;
}

LineAccessResult
SramCacheArray::readLine(const LinePoint &p)
{
    const auto &geom = field.geometry();
    LineAccessResult out;
    for (std::uint32_t w = 0; w < geom.wordsPerLine(); ++w) {
        ReadResult r = readWord(p, w);
        switch (r.status) {
          case ecc::DecodeStatus::Ok:
            break;
          case ecc::DecodeStatus::CorrectedData:
          case ecc::DecodeStatus::CorrectedCheck:
            out.corrected = true;
            break;
          case ecc::DecodeStatus::DoubleError:
          case ecc::DecodeStatus::Uncorrectable:
            out.uncorrectable = true;
            break;
        }
    }
    return out;
}

} // namespace authenticache::sim
