#include "sim/cache_array.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace authenticache::sim {

SramCacheArray::SramCacheArray(const VminField &field_,
                               const EnvironmentModel &env_,
                               EccErrorLog &log_,
                               std::uint64_t access_seed)
    : field(field_), env(env_), log(log_), secded(64), rng(access_seed)
{
    const auto &geom = field.geometry();
    words.assign(geom.lines() * geom.wordsPerLine(), 0);
    checks.assign(words.size(), 0);
}

void
SramCacheArray::writeLine(const LinePoint &p,
                          std::span<const std::uint64_t> data)
{
    const auto &geom = field.geometry();
    if (data.size() != geom.wordsPerLine())
        throw std::invalid_argument("writeLine: word count mismatch");
    std::uint64_t base = geom.lineIndex(p) * geom.wordsPerLine();
    std::copy(data.begin(), data.end(), words.begin() + base);
    // Encode the whole line through the vectorized batch kernel; the
    // stack chunk keeps the path allocation-free for any line width.
    constexpr std::size_t kChunk = 64;
    std::uint32_t cbuf[kChunk];
    for (std::size_t off = 0; off < data.size(); off += kChunk) {
        const std::size_t m = std::min(kChunk, data.size() - off);
        secded.encodeBatch(data.data() + off, cbuf, m);
        for (std::size_t i = 0; i < m; ++i)
            checks[base + off + i] =
                static_cast<std::uint8_t>(cbuf[i]);
    }
    nWrites += geom.wordsPerLine();
}

void
SramCacheArray::fillLine(const LinePoint &p, std::uint64_t pattern)
{
    const auto &geom = field.geometry();
    std::uint64_t base = geom.lineIndex(p) * geom.wordsPerLine();
    std::uint8_t check =
        static_cast<std::uint8_t>(secded.encode(pattern));
    for (std::uint32_t w = 0; w < geom.wordsPerLine(); ++w) {
        words[base + w] = pattern;
        checks[base + w] = check;
    }
    nWrites += geom.wordsPerLine();
}

SramCacheArray::FaultKind
SramCacheArray::faultOn(std::uint64_t line)
{
    const double shift = env.thresholdShiftMv(line, conditions);
    const double jitter = env.measurementJitterMv(conditions, rng);
    const double v_eff = vdd + jitter;

    if (v_eff < field.vUncorrectableMv(line) + shift)
        return FaultKind::Double;
    if (v_eff < field.vCorrectableMv(line) + shift) {
        if (rng.nextBool(field.persistence(line)))
            return FaultKind::Single;
    }
    return FaultKind::None;
}

ReadResult
SramCacheArray::readWord(const LinePoint &p, std::uint32_t word)
{
    const auto &geom = field.geometry();
    if (word >= geom.wordsPerLine())
        throw std::out_of_range("readWord: bad word index");

    ++nReads;
    const std::uint64_t line = geom.lineIndex(p);
    const std::uint64_t idx = line * geom.wordsPerLine() + word;
    std::uint64_t raw = words[idx];
    std::uint32_t check = checks[idx];

    // The weak cell lives in exactly one word of the line; only that
    // word can misread.
    if (word == field.weakWord(line)) {
        FaultKind kind = faultOn(line);
        if (kind != FaultKind::None) {
            auto flip = [&](std::uint32_t bit) {
                if (bit < 64)
                    raw ^= 1ull << bit;
                else
                    check ^= 1u << (bit - 64);
            };
            flip(field.weakBit(line));
            if (kind == FaultKind::Double)
                flip(field.weakBit2(line));
        }
    }

    ecc::DecodeResult decoded = secded.decode(raw, check);

    ReadResult out;
    out.data = decoded.data;
    out.status = decoded.status;

    if (decoded.status != ecc::DecodeStatus::Ok) {
        EccEvent event;
        event.line = p;
        event.word = word;
        event.bitPosition = decoded.bitPosition;
        event.vddMv = vdd;
        event.severity =
            (decoded.status == ecc::DecodeStatus::CorrectedData ||
             decoded.status == ecc::DecodeStatus::CorrectedCheck)
                ? EccSeverity::Corrected
                : EccSeverity::Uncorrectable;
        log.post(event);
    }
    return out;
}

LineAccessResult
SramCacheArray::readLine(const LinePoint &p)
{
    const auto &geom = field.geometry();
    LineAccessResult out;
    const std::uint64_t line = geom.lineIndex(p);
    const std::uint64_t base = line * geom.wordsPerLine();
    const std::uint32_t weak = field.weakWord(line);

    // Whole-line read: stage the stored words, inject the fault model
    // on the (single) weak word, then decode the line through the
    // vectorized batch kernel. The fault draw order matches the
    // word-at-a-time path exactly -- one faultOn() per line read, at
    // the weak word -- so replay streams are unchanged.
    constexpr std::size_t kChunk = 64;
    std::uint64_t raw[kChunk];
    std::uint32_t chk[kChunk];
    ecc::DecodeResult dec[kChunk];

    for (std::uint32_t off = 0; off < geom.wordsPerLine();
         off += kChunk) {
        const std::uint32_t m = static_cast<std::uint32_t>(
            std::min<std::size_t>(kChunk,
                                  geom.wordsPerLine() - off));
        for (std::uint32_t i = 0; i < m; ++i) {
            raw[i] = words[base + off + i];
            chk[i] = checks[base + off + i];
        }
        if (weak >= off && weak < off + m) {
            FaultKind kind = faultOn(line);
            if (kind != FaultKind::None) {
                auto flip = [&](std::uint32_t bit) {
                    if (bit < 64)
                        raw[weak - off] ^= 1ull << bit;
                    else
                        chk[weak - off] ^= 1u << (bit - 64);
                };
                flip(field.weakBit(line));
                if (kind == FaultKind::Double)
                    flip(field.weakBit2(line));
            }
        }
        secded.decodeBatch(raw, chk, dec, m);
        for (std::uint32_t i = 0; i < m; ++i) {
            ++nReads;
            switch (dec[i].status) {
              case ecc::DecodeStatus::Ok:
                continue;
              case ecc::DecodeStatus::CorrectedData:
              case ecc::DecodeStatus::CorrectedCheck:
                out.corrected = true;
                break;
              case ecc::DecodeStatus::DoubleError:
              case ecc::DecodeStatus::Uncorrectable:
                out.uncorrectable = true;
                break;
            }
            EccEvent event;
            event.line = p;
            event.word = off + i;
            event.bitPosition = dec[i].bitPosition;
            event.vddMv = vdd;
            event.severity =
                (dec[i].status == ecc::DecodeStatus::CorrectedData ||
                 dec[i].status == ecc::DecodeStatus::CorrectedCheck)
                    ? EccSeverity::Corrected
                    : EccSeverity::Uncorrectable;
            log.post(event);
        }
    }
    return out;
}

} // namespace authenticache::sim
