/**
 * @file
 * Deterministic environmental drift schedules for long-lived
 * (continuous-authentication) sessions.
 *
 * A DriftSchedule maps a simulated clock step to the sim::Conditions a
 * device experiences at that step: a piecewise-linear ramp from the
 * enrollment environment up to a configured peak (temperature delta,
 * field aging, supply noise), an optional hold at the peak, and an
 * optional return ramp. Per-device variation -- phase offset and peak
 * scaling -- is drawn exactly once from Rng::forStream(seed, deviceId)
 * at construction, so the whole trajectory is a pure function of
 * (seed, deviceId, config, step). That is the determinism contract the
 * heartbeat drift sweep depends on: byte-identical trust trajectories
 * across reruns, thread counts, and pool widths.
 *
 * The schedule itself never touches a device; DriftInjector (in the
 * substrate layer) applies `at(step)` through
 * FingerprintSubstrate::setConditions.
 */

#ifndef AUTH_SIM_DRIFT_HPP
#define AUTH_SIM_DRIFT_HPP

#include <cstdint>

#include "sim/environment.hpp"

namespace authenticache::sim {

/** Shape of a drift excursion, in simulated clock steps. */
struct DriftScheduleConfig
{
    /** Peak temperature delta over enrollment, degrees C. */
    double peakTemperatureDeltaC = 25.0;

    /** Peak field aging, years. */
    double peakAgingYears = 2.0;

    /** Peak supply-noise sigma, mV (ramped from the nominal 1.0). */
    double peakSigmaMv = 2.5;

    /** Steps to ramp from nominal to peak. */
    std::uint64_t rampSteps = 64;

    /** Steps held at peak before (optionally) returning. */
    std::uint64_t holdSteps = 32;

    /** Ramp back to nominal after the hold (else stay at peak). */
    bool returnToNominal = true;

    /** Max per-device phase delay before the ramp starts, steps. */
    std::uint64_t phaseJitterSteps = 16;

    /** Per-device peak scale drawn from [1-s, 1+s] (0 = identical). */
    double peakJitter = 0.15;
};

/**
 * One device's drift trajectory. `at(step)` is const and pure: all
 * randomness was consumed at construction.
 */
class DriftSchedule
{
  public:
    DriftSchedule(std::uint64_t seed, std::uint64_t device_id,
                  const DriftScheduleConfig &config);

    /** Conditions at @p step (monotone inputs not required). */
    Conditions at(std::uint64_t step) const;

    /** Phase offset drawn for this device, steps. */
    std::uint64_t phaseSteps() const { return phase; }

    /** Peak scale drawn for this device. */
    double peakScale() const { return scale; }

  private:
    DriftScheduleConfig cfg;
    std::uint64_t phase = 0;
    double scale = 1.0;
};

} // namespace authenticache::sim

#endif // AUTH_SIM_DRIFT_HPP
