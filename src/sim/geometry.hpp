/**
 * @file
 * Cache geometry: sizes, set/way coordinates, and the bi-dimensional
 * plane the paper maps cache lines onto (Sec 4, Figure 4). The x axis
 * is the set index and the y axis is the way index; Manhattan distances
 * for the challenge-response function are measured on this plane.
 */

#ifndef AUTH_SIM_GEOMETRY_HPP
#define AUTH_SIM_GEOMETRY_HPP

#include <cstddef>
#include <cstdint>
#include <string>

namespace authenticache::sim {

/** A cache line coordinate on the (set, way) plane. */
struct LinePoint
{
    std::uint32_t set = 0;
    std::uint32_t way = 0;

    bool operator==(const LinePoint &) const = default;
    auto operator<=>(const LinePoint &) const = default;
};

/** Manhattan distance between two points (paper Eq 9). */
inline std::uint64_t
manhattan(const LinePoint &a, const LinePoint &b)
{
    std::uint64_t dx = a.set > b.set ? a.set - b.set : b.set - a.set;
    std::uint64_t dy = a.way > b.way ? a.way - b.way : b.way - a.way;
    return dx + dy;
}

/**
 * Set-associative cache geometry. Immutable after construction;
 * validates that sizes are coherent powers of two.
 */
class CacheGeometry
{
  public:
    /**
     * @param size_bytes Total capacity.
     * @param line_bytes Line size (default 64B).
     * @param ways Associativity (default 8).
     */
    CacheGeometry(std::uint64_t size_bytes, std::uint32_t line_bytes = 64,
                  std::uint32_t ways = 8);

    std::uint64_t sizeBytes() const { return bytes; }
    std::uint32_t lineBytes() const { return lineSize; }
    std::uint32_t ways() const { return numWays; }
    std::uint32_t sets() const { return numSets; }

    /** Total number of cache lines. */
    std::uint64_t lines() const
    {
        return static_cast<std::uint64_t>(numSets) * numWays;
    }

    /** 64-bit words per line. */
    std::uint32_t wordsPerLine() const { return lineSize / 8; }

    /** Flat line index of a coordinate (row-major: set * ways + way). */
    std::uint64_t lineIndex(const LinePoint &p) const;

    /** Coordinate of a flat line index. */
    LinePoint pointOf(std::uint64_t line_index) const;

    /** True when the point addresses a valid line. */
    bool contains(const LinePoint &p) const
    {
        return p.set < numSets && p.way < numWays;
    }

    /**
     * Number of distinct single-bit challenges the plane supports,
     * i.e. edges of the complete graph over lines (paper Eq 10).
     */
    std::uint64_t possibleCrps() const;

    /** Human-readable description like "4MB (8192 sets x 8 ways)". */
    std::string describe() const;

    bool operator==(const CacheGeometry &) const = default;

  private:
    std::uint64_t bytes;
    std::uint32_t lineSize;
    std::uint32_t numWays;
    std::uint32_t numSets;
};

} // namespace authenticache::sim

#endif // AUTH_SIM_GEOMETRY_HPP
