/**
 * @file
 * A complete simulated SRAM chip: geometry, silicon profile,
 * environment, ECC-protected cache array, voltage regulator, error
 * log, and self-test engine, wired together. This is the paper's
 * device, and the first FingerprintSubstrate plugin ("sram_vmin"):
 * everything above the device layer talks to it through that
 * interface, with the supply voltage in mV as the stress axis.
 */

#ifndef AUTH_SIM_CHIP_HPP
#define AUTH_SIM_CHIP_HPP

#include <cstdint>
#include <memory>

#include "ecc/scheme.hpp"
#include "sim/cache_array.hpp"
#include "sim/environment.hpp"
#include "sim/error_log.hpp"
#include "sim/geometry.hpp"
#include "sim/self_test.hpp"
#include "sim/variation.hpp"
#include "sim/voltage_regulator.hpp"
#include "substrate/substrate.hpp"
#include "util/stats_registry.hpp"

namespace authenticache::sim {

/** Everything needed to manufacture a chip. */
struct ChipConfig
{
    std::uint64_t cacheBytes = 4ull * 1024 * 1024;
    std::uint32_t lineBytes = 64;
    std::uint32_t ways = 8;
    VariationParams variation;
    EnvironmentParams environment;
    RegulatorParams regulator;
    std::size_t errorLogCapacity = 4096;
};

class SimulatedChip final : public substrate::FingerprintSubstrate
{
  public:
    /**
     * Manufacture a chip. The seed is the die identity: two chips
     * with different seeds have independent error maps (Figure 3).
     * @param scheme Protection code; null selects SECDED(72,64).
     */
    SimulatedChip(const ChipConfig &config, std::uint64_t chip_seed,
                  std::shared_ptr<ecc::EccScheme> scheme = nullptr);

    const CacheGeometry &geometry() const override { return geom; }
    const VminField &vminField() const { return field; }
    std::uint64_t seed() const override { return chipSeed; }

    EccErrorLog &errorLog() override { return log; }
    const EccErrorLog &errorLog() const override { return log; }
    SramCacheArray &cacheArray() { return array; }
    const SramCacheArray &cacheArray() const { return array; }
    VoltageRegulator &regulator() { return vr; }
    const VoltageRegulator &regulator() const { return vr; }
    SelfTestEngine &selfTest() { return tester; }
    const SelfTestEngine &selfTest() const { return tester; }

    /** Set operating conditions (temperature, aging, supply noise). */
    void setConditions(const Conditions &c) override
    {
        array.setConditions(c);
    }
    const Conditions &conditions() const override
    {
        return array.currentConditions();
    }

    /**
     * Request a supply-voltage change through the regulator and
     * propagate it to the array on success.
     */
    VoltageStatus setVddMv(double vdd_mv, double *latency_us = nullptr);

    /** Emergency ramp to nominal; returns latency in microseconds. */
    double emergencyRaise();

    double vddMv() const { return vr.vddMv(); }

    // --- FingerprintSubstrate: stress axis = supply voltage (mV). ---

    std::string kind() const override { return "sram_vmin"; }
    double level() const override { return vr.vddMv(); }
    double nominalLevel() const override { return vr.nominalMv(); }

    substrate::LevelStatus
    setLevel(double level_mv, double *latency_us = nullptr) override;

    void setLevelFloor(double floor) override
    {
        vr.setFloorMv(floor);
    }

    double emergencyRestore() override { return emergencyRaise(); }

    std::uint64_t levelTransitions() const override
    {
        return vr.transitions();
    }

    SweepResult sweepAll(std::uint32_t passes = 1) override
    {
        return tester.sweepAll(passes);
    }

    LineTestResult testLine(const LinePoint &p,
                            std::uint32_t max_attempts = 1) override
    {
        return tester.testLine(p, max_attempts);
    }

    std::uint64_t lineTestsPerformed() const override
    {
        return tester.lineTestsPerformed();
    }

    void reportStats(util::StatsRegistry &registry,
                     const std::string &component =
                         "substrate") const override;

  private:
    ChipConfig cfg;
    std::uint64_t chipSeed;
    CacheGeometry geom;
    VminField field;
    EnvironmentModel env;
    EccErrorLog log;
    SramCacheArray array;
    VoltageRegulator vr;
    SelfTestEngine tester;
};

/** Snapshot a chip's counters into a stats registry. */
void collectChipStats(const SimulatedChip &chip,
                      util::StatsRegistry &registry,
                      const std::string &component = "chip");

} // namespace authenticache::sim

#endif // AUTH_SIM_CHIP_HPP
