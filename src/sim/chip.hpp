/**
 * @file
 * A complete simulated chip: geometry, silicon profile, environment,
 * ECC-protected cache array, voltage regulator, error log, and
 * self-test engine, wired together. This is the "device" everything
 * above the sim layer talks to.
 */

#ifndef AUTH_SIM_CHIP_HPP
#define AUTH_SIM_CHIP_HPP

#include <cstdint>
#include <memory>

#include "sim/cache_array.hpp"
#include "sim/environment.hpp"
#include "sim/error_log.hpp"
#include "sim/geometry.hpp"
#include "sim/self_test.hpp"
#include "sim/variation.hpp"
#include "sim/voltage_regulator.hpp"
#include "util/stats_registry.hpp"

namespace authenticache::sim {

/** Everything needed to manufacture a chip. */
struct ChipConfig
{
    std::uint64_t cacheBytes = 4ull * 1024 * 1024;
    std::uint32_t lineBytes = 64;
    std::uint32_t ways = 8;
    VariationParams variation;
    EnvironmentParams environment;
    RegulatorParams regulator;
    std::size_t errorLogCapacity = 4096;
};

class SimulatedChip
{
  public:
    /**
     * Manufacture a chip. The seed is the die identity: two chips
     * with different seeds have independent error maps (Figure 3).
     */
    SimulatedChip(const ChipConfig &config, std::uint64_t chip_seed);

    const CacheGeometry &geometry() const { return geom; }
    const VminField &vminField() const { return field; }
    std::uint64_t seed() const { return chipSeed; }

    EccErrorLog &errorLog() { return log; }
    const EccErrorLog &errorLog() const { return log; }
    SramCacheArray &cacheArray() { return array; }
    const SramCacheArray &cacheArray() const { return array; }
    VoltageRegulator &regulator() { return vr; }
    const VoltageRegulator &regulator() const { return vr; }
    SelfTestEngine &selfTest() { return tester; }
    const SelfTestEngine &selfTest() const { return tester; }

    /** Set operating conditions (temperature, aging, supply noise). */
    void setConditions(const Conditions &c) { array.setConditions(c); }
    const Conditions &conditions() const
    {
        return array.currentConditions();
    }

    /**
     * Request a supply-voltage change through the regulator and
     * propagate it to the array on success.
     */
    VoltageStatus setVddMv(double vdd_mv, double *latency_us = nullptr);

    /** Emergency ramp to nominal; returns latency in microseconds. */
    double emergencyRaise();

    double vddMv() const { return vr.vddMv(); }

  private:
    ChipConfig cfg;
    std::uint64_t chipSeed;
    CacheGeometry geom;
    VminField field;
    EnvironmentModel env;
    EccErrorLog log;
    SramCacheArray array;
    VoltageRegulator vr;
    SelfTestEngine tester;
};

/** Snapshot a chip's counters into a stats registry. */
void collectChipStats(const SimulatedChip &chip,
                      util::StatsRegistry &registry,
                      const std::string &component = "chip");

} // namespace authenticache::sim

#endif // AUTH_SIM_CHIP_HPP
