/**
 * @file
 * Environmental conditions acting on a chip: temperature, supply noise,
 * and circuit aging (NBTI/HCI-style drift).
 *
 * The paper's noise discussion (Sec 6.1-6.2) reduces every source --
 * static IR drop, dynamic voltage noise, temperature, aging -- to two
 * observable effects on the error map: *new* errors appearing and
 * *enrolled* errors masking. This model produces both mechanically:
 * temperature and aging shift each line's effective failure threshold
 * (with per-line sensitivity), and measurement noise jitters the
 * threshold per access.
 */

#ifndef AUTH_SIM_ENVIRONMENT_HPP
#define AUTH_SIM_ENVIRONMENT_HPP

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace authenticache::sim {

/** Operating conditions relative to the enrollment environment. */
struct Conditions
{
    /** Degrees C above the enrollment temperature. */
    double temperatureDeltaC = 0.0;

    /** Years of field aging since enrollment. */
    double agingYears = 0.0;

    /** Sigma of per-access threshold jitter (supply noise), in mV. */
    double measurementSigmaMv = 1.0;

    static Conditions nominal() { return Conditions{}; }
};

/** Sensitivity parameters translating conditions into mV shifts. */
struct EnvironmentParams
{
    /** Mean threshold rise per degree C (hotter -> fails earlier). */
    double tempCoeffMvPerC = 0.25;

    /** Per-line sigma of the temperature coefficient. */
    double tempCoeffSigma = 0.10;

    /** Mean threshold rise per year of aging. */
    double agingMvPerYear = 1.2;

    /** Per-line sigma of the aging drift per year. */
    double agingSigma = 0.8;
};

/**
 * Per-chip environmental response. Holds each line's private
 * temperature/aging sensitivities (drawn once per chip) and converts a
 * Conditions setting into a per-line effective threshold shift.
 */
class EnvironmentModel
{
  public:
    EnvironmentModel(std::uint64_t lines, const EnvironmentParams &params,
                     std::uint64_t chip_seed);

    /**
     * Deterministic (per conditions) threshold shift of a line in mV.
     * Positive values raise the failure voltage, i.e. make the line
     * fail at higher Vdd -- the source of *new* errors; lines with
     * negative shift can mask out of the enrolled map.
     */
    double thresholdShiftMv(std::uint64_t line,
                            const Conditions &conditions) const;

    /** Per-access measurement jitter in mV; consumes RNG state. */
    double measurementJitterMv(const Conditions &conditions,
                               util::Rng &rng) const;

  private:
    std::vector<float> tempCoeff;  // mV per degree C, per line.
    std::vector<float> agingDrift; // mV per year, per line (signed).
};

} // namespace authenticache::sim

#endif // AUTH_SIM_ENVIRONMENT_HPP
