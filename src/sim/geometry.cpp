#include "sim/geometry.hpp"

#include <bit>
#include <sstream>
#include <stdexcept>

namespace authenticache::sim {

CacheGeometry::CacheGeometry(std::uint64_t size_bytes,
                             std::uint32_t line_bytes, std::uint32_t ways)
    : bytes(size_bytes), lineSize(line_bytes), numWays(ways)
{
    if (!std::has_single_bit(size_bytes) && size_bytes % (line_bytes * ways))
        throw std::invalid_argument("CacheGeometry: size not divisible");
    if (line_bytes < 8 || !std::has_single_bit(line_bytes))
        throw std::invalid_argument("CacheGeometry: bad line size");
    if (ways == 0)
        throw std::invalid_argument("CacheGeometry: zero ways");
    std::uint64_t lines_total = size_bytes / line_bytes;
    if (lines_total % ways != 0 || lines_total == 0)
        throw std::invalid_argument("CacheGeometry: bad associativity");
    numSets = static_cast<std::uint32_t>(lines_total / ways);
}

std::uint64_t
CacheGeometry::lineIndex(const LinePoint &p) const
{
    if (!contains(p))
        throw std::out_of_range("CacheGeometry: point outside cache");
    return static_cast<std::uint64_t>(p.set) * numWays + p.way;
}

LinePoint
CacheGeometry::pointOf(std::uint64_t line_index) const
{
    if (line_index >= lines())
        throw std::out_of_range("CacheGeometry: line index outside cache");
    return LinePoint{static_cast<std::uint32_t>(line_index / numWays),
                     static_cast<std::uint32_t>(line_index % numWays)};
}

std::uint64_t
CacheGeometry::possibleCrps() const
{
    std::uint64_t n = lines();
    return n * (n - 1) / 2;
}

std::string
CacheGeometry::describe() const
{
    std::ostringstream os;
    if (bytes >= 1024 * 1024 && bytes % (1024 * 1024) == 0)
        os << bytes / (1024 * 1024) << "MB";
    else
        os << bytes / 1024 << "KB";
    os << " (" << numSets << " sets x " << numWays << " ways, "
       << lineSize << "B lines)";
    return os.str();
}

} // namespace authenticache::sim
