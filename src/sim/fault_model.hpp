/**
 * @file
 * Per-line fault models: the physics half of a fingerprint substrate.
 *
 * A DeviceFaultModel answers one question for the generic ECC cache
 * array: "does this access of this line misbehave at this stress
 * level, and how badly?" -- plus which cell(s) of the line flip when
 * it does. Everything substrate-specific (threshold distributions,
 * environmental response, persistence) lives behind this interface;
 * the array, the self-test engine, the error log, and every layer
 * above them are shared between substrates.
 *
 * RNG discipline: faultOn() must consume the access RNG in a fixed
 * per-call draw order regardless of outcome branches that *follow*
 * the draws, because replay determinism across the whole stack hinges
 * on the access stream. The SRAM model draws exactly one jitter
 * normal per call, plus one Bernoulli only when the line is inside
 * its correctable window (matching the pre-plugin implementation
 * bit-for-bit).
 */

#ifndef AUTH_SIM_FAULT_MODEL_HPP
#define AUTH_SIM_FAULT_MODEL_HPP

#include <cstdint>

#include "sim/environment.hpp"
#include "sim/geometry.hpp"
#include "sim/variation.hpp"
#include "util/rng.hpp"

namespace authenticache::sim {

/** Severity of a fault on one access, if any. */
enum class FaultKind
{
    None,
    Single,  ///< One cell flips (correctable under SECDED).
    Double,  ///< Two cells flip (detectable, uncorrectable).
};

/** Substrate physics: when and where a line's weak cells flip. */
class DeviceFaultModel
{
  public:
    virtual ~DeviceFaultModel() = default;

    virtual const CacheGeometry &geometry() const = 0;

    /**
     * Fault outcome of one access of @p line at stress @p level under
     * @p conditions. Consumes @p rng (per-access jitter/persistence);
     * the draw order is part of the model's replay contract.
     */
    virtual FaultKind faultOn(std::uint64_t line, double level,
                              const Conditions &conditions,
                              util::Rng &rng) const = 0;

    /** Word within the line holding the weak cell. */
    virtual std::uint32_t weakWord(std::uint64_t line) const = 0;

    /** Flipping bit; values >= 64 denote a check bit. */
    virtual std::uint32_t weakBit(std::uint64_t line) const = 0;

    /** Second bit flipped in the uncorrectable regime. */
    virtual std::uint32_t weakBit2(std::uint64_t line) const = 0;
};

/**
 * The paper's SRAM Vmin model: a line misreads when the effective
 * supply voltage (level + measurement jitter) drops below its
 * environment-shifted failure threshold; persistence gates whether
 * the weak cell actually fires on a given access.
 */
class SramVminFaultModel final : public DeviceFaultModel
{
  public:
    /** Both references must outlive the model. */
    SramVminFaultModel(const VminField &field_,
                       const EnvironmentModel &env_)
        : field(field_), env(env_)
    {
    }

    const CacheGeometry &
    geometry() const override
    {
        return field.geometry();
    }

    FaultKind
    faultOn(std::uint64_t line, double level,
            const Conditions &conditions,
            util::Rng &rng) const override
    {
        const double shift = env.thresholdShiftMv(line, conditions);
        const double jitter =
            env.measurementJitterMv(conditions, rng);
        const double v_eff = level + jitter;

        if (v_eff < field.vUncorrectableMv(line) + shift)
            return FaultKind::Double;
        if (v_eff < field.vCorrectableMv(line) + shift) {
            if (rng.nextBool(field.persistence(line)))
                return FaultKind::Single;
        }
        return FaultKind::None;
    }

    std::uint32_t
    weakWord(std::uint64_t line) const override
    {
        return field.weakWord(line);
    }

    std::uint32_t
    weakBit(std::uint64_t line) const override
    {
        return field.weakBit(line);
    }

    std::uint32_t
    weakBit2(std::uint64_t line) const override
    {
        return field.weakBit2(line);
    }

  private:
    const VminField &field;
    const EnvironmentModel &env;
};

} // namespace authenticache::sim

#endif // AUTH_SIM_FAULT_MODEL_HPP
