/**
 * @file
 * Substrate-neutral fault-observation result types.
 *
 * These are the only shapes the firmware and everything above it see
 * from a device's built-in self-test machinery, so they live apart
 * from any concrete substrate model: an SRAM Vmin chip and a DRAM
 * multi-row-activation chip both report sweeps and targeted line
 * tests in exactly these terms.
 */

#ifndef AUTH_SIM_OBSERVATION_HPP
#define AUTH_SIM_OBSERVATION_HPP

#include <cstdint>
#include <vector>

#include "sim/geometry.hpp"

namespace authenticache::sim {

/** Result of a full-array sweep at one stress level. */
struct SweepResult
{
    std::vector<LinePoint> correctableLines; ///< Distinct failing lines.
    std::uint64_t uncorrectableCount = 0;    ///< Uncorrectable events.
    std::uint64_t linesTested = 0;           ///< Lines exercised.
};

/** Result of a targeted line test. */
struct LineTestResult
{
    bool triggered = false;      ///< Correctable error observed.
    bool uncorrectable = false;  ///< Uncorrectable event observed.
    std::uint32_t attemptsUsed = 0;
};

} // namespace authenticache::sim

#endif // AUTH_SIM_OBSERVATION_HPP
