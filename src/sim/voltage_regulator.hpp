/**
 * @file
 * Supply-voltage regulator model.
 *
 * Exposes the operations the paper's firmware voltage-control module
 * needs: set a target Vdd (with a realistic transition latency that the
 * timing model charges), enforce a floor below which requests are
 * rejected, and an emergency ramp back to nominal (Sec 5.3).
 */

#ifndef AUTH_SIM_VOLTAGE_REGULATOR_HPP
#define AUTH_SIM_VOLTAGE_REGULATOR_HPP

#include <cstdint>

namespace authenticache::sim {

/** Regulator electrical/timing parameters. */
struct RegulatorParams
{
    double nominalMv = 800.0;    ///< Power-on operating voltage.
    double absoluteMinMv = 500.0;///< Hardware lower bound.
    double stepMv = 1.0;         ///< Settable granularity.
    double baseLatencyUs = 200.0;///< Fixed cost of any transition.
    double slewUsPerMv = 12.0;   ///< Additional cost per mV moved.
};

/** Outcome of a voltage request. */
enum class VoltageStatus
{
    Ok,           ///< Voltage set.
    BelowFloor,   ///< Rejected: below the configured safety floor.
    OutOfRange,   ///< Rejected: outside the hardware range.
};

class VoltageRegulator
{
  public:
    explicit VoltageRegulator(const RegulatorParams &params = {});

    double vddMv() const { return current; }
    double nominalMv() const { return params.nominalMv; }

    /**
     * Safety floor; requests below it fail with BelowFloor. A zero
     * floor (power-on state) disables the check so that boot-time
     * calibration can probe downward.
     */
    void setFloorMv(double floor_mv) { floor = floor_mv; }
    double floorMv() const { return floor; }

    /**
     * Request a supply change. On success the voltage is quantized to
     * the step grid and @p latency_us (if non-null) receives the
     * transition time.
     */
    VoltageStatus request(double vdd_mv, double *latency_us = nullptr);

    /**
     * Emergency action: slam back to nominal, ignoring the floor.
     * @return Transition latency in microseconds.
     */
    double emergencyRaise();

    /** Cumulative transition count (for the timing model / tests). */
    std::uint64_t transitions() const { return nTransitions; }

  private:
    double transitionLatencyUs(double from, double to) const;

    RegulatorParams params;
    double current;
    double floor = 0.0;
    std::uint64_t nTransitions = 0;
};

} // namespace authenticache::sim

#endif // AUTH_SIM_VOLTAGE_REGULATOR_HPP
