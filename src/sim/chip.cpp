#include "sim/chip.hpp"

namespace authenticache::sim {

SimulatedChip::SimulatedChip(const ChipConfig &config,
                             std::uint64_t chip_seed,
                             std::shared_ptr<ecc::EccScheme> scheme)
    : cfg(config),
      chipSeed(chip_seed),
      geom(config.cacheBytes, config.lineBytes, config.ways),
      field(geom, config.variation, chip_seed),
      env(geom.lines(), config.environment, chip_seed),
      log(config.errorLogCapacity),
      array(field, env, log, chip_seed ^ 0xACCE55ull,
            std::move(scheme)),
      vr(config.regulator),
      tester(array, log)
{
    array.setVddMv(vr.vddMv());
}

VoltageStatus
SimulatedChip::setVddMv(double vdd_mv, double *latency_us)
{
    VoltageStatus status = vr.request(vdd_mv, latency_us);
    if (status == VoltageStatus::Ok)
        array.setVddMv(vr.vddMv());
    return status;
}

double
SimulatedChip::emergencyRaise()
{
    double latency = vr.emergencyRaise();
    array.setVddMv(vr.vddMv());
    return latency;
}

substrate::LevelStatus
SimulatedChip::setLevel(double level_mv, double *latency_us)
{
    switch (setVddMv(level_mv, latency_us)) {
      case VoltageStatus::Ok:
        return substrate::LevelStatus::Ok;
      case VoltageStatus::BelowFloor:
        return substrate::LevelStatus::BelowFloor;
      case VoltageStatus::OutOfRange:
        break;
    }
    return substrate::LevelStatus::OutOfRange;
}

void
SimulatedChip::reportStats(util::StatsRegistry &registry,
                           const std::string &component) const
{
    registry.set(component, "word_reads", array.wordReads());
    registry.set(component, "word_writes", array.wordWrites());
    registry.set(component, "ecc_corrected", log.totalCorrected());
    registry.set(component, "ecc_uncorrectable",
                 log.totalUncorrectable());
    registry.set(component, "ecc_log_overflows", log.overflowCount());
    registry.set(component, "level_transitions", vr.transitions());
    registry.set(component, "line_self_tests",
                 tester.lineTestsPerformed());
    registry.set(component, "level", vr.vddMv());
    array.scheme().reportStats(registry, "ecc");
}

void
collectChipStats(const SimulatedChip &chip,
                 util::StatsRegistry &registry,
                 const std::string &component)
{
    registry.set(component, "word_reads",
                 chip.cacheArray().wordReads());
    registry.set(component, "word_writes",
                 chip.cacheArray().wordWrites());
    registry.set(component, "ecc_corrected",
                 chip.errorLog().totalCorrected());
    registry.set(component, "ecc_uncorrectable",
                 chip.errorLog().totalUncorrectable());
    registry.set(component, "ecc_log_overflows",
                 chip.errorLog().overflowCount());
    registry.set(component, "vdd_transitions",
                 chip.regulator().transitions());
    registry.set(component, "line_self_tests",
                 chip.selfTest().lineTestsPerformed());
    registry.set(component, "vdd_mv", chip.vddMv());
}

} // namespace authenticache::sim
