#include "sim/error_log.hpp"

namespace authenticache::sim {

EccErrorLog::EccErrorLog(std::size_t capacity_) : capacity(capacity_) {}

bool
EccErrorLog::post(const EccEvent &event)
{
    if (event.severity == EccSeverity::Corrected)
        ++nCorrected;
    else
        ++nUncorrectable;

    if (events.size() >= capacity) {
        ++overflow;
        return false;
    }
    events.push_back(event);
    return true;
}

std::vector<EccEvent>
EccErrorLog::drain()
{
    std::vector<EccEvent> out(events.begin(), events.end());
    events.clear();
    return out;
}

void
EccErrorLog::clear()
{
    events.clear();
    overflow = 0;
    nCorrected = 0;
    nUncorrectable = 0;
}

} // namespace authenticache::sim
