#include "sim/environment.hpp"

namespace authenticache::sim {

EnvironmentModel::EnvironmentModel(std::uint64_t lines,
                                   const EnvironmentParams &params,
                                   std::uint64_t chip_seed)
{
    util::Rng rng(chip_seed ^ 0x454E564D4F444C21ull);
    tempCoeff.resize(lines);
    agingDrift.resize(lines);
    for (std::uint64_t i = 0; i < lines; ++i) {
        tempCoeff[i] = static_cast<float>(rng.nextGaussian(
            params.tempCoeffMvPerC, params.tempCoeffSigma));
        agingDrift[i] = static_cast<float>(
            rng.nextGaussian(params.agingMvPerYear, params.agingSigma));
    }
}

double
EnvironmentModel::thresholdShiftMv(std::uint64_t line,
                                   const Conditions &conditions) const
{
    return tempCoeff[line] * conditions.temperatureDeltaC +
           agingDrift[line] * conditions.agingYears;
}

double
EnvironmentModel::measurementJitterMv(const Conditions &conditions,
                                      util::Rng &rng) const
{
    if (conditions.measurementSigmaMv <= 0.0)
        return 0.0;
    return rng.nextGaussian(0.0, conditions.measurementSigmaMv);
}

} // namespace authenticache::sim
