#include "sim/self_test.hpp"

#include <algorithm>

namespace authenticache::sim {

namespace {

constexpr std::uint64_t kCheckerboard = 0xAAAAAAAAAAAAAAAAull;
constexpr std::uint64_t kInverse = 0x5555555555555555ull;

} // namespace

SelfTestEngine::SelfTestEngine(EccCacheArray &array_, EccErrorLog &log_)
    : array(array_), log(log_)
{
}

LineTestResult
SelfTestEngine::testOnce(const LinePoint &p, std::uint64_t pattern)
{
    ++nLineTests;
    array.fillLine(p, pattern);
    LineAccessResult r = array.readLine(p);
    LineTestResult out;
    out.triggered = r.corrected;
    out.uncorrectable = r.uncorrectable;
    out.attemptsUsed = 1;
    return out;
}

SweepResult
SelfTestEngine::sweepAll(std::uint32_t passes)
{
    const auto &geom = array.geometry();
    SweepResult result;

    // Drop stale events so the sweep only observes its own.
    log.drain();

    std::vector<bool> seen(geom.lines(), false);
    for (std::uint32_t pass = 0; pass < passes; ++pass) {
        std::uint64_t pattern =
            (pass % 2 == 0) ? kCheckerboard : kInverse;
        for (std::uint32_t set = 0; set < geom.sets(); ++set) {
            for (std::uint32_t way = 0; way < geom.ways(); ++way) {
                LinePoint p{set, way};
                LineTestResult r = testOnce(p, pattern);
                ++result.linesTested;
                if (r.uncorrectable)
                    ++result.uncorrectableCount;
                if (r.triggered) {
                    std::uint64_t idx = geom.lineIndex(p);
                    if (!seen[idx]) {
                        seen[idx] = true;
                        result.correctableLines.push_back(p);
                    }
                }
            }
        }
    }
    std::sort(result.correctableLines.begin(),
              result.correctableLines.end());
    log.drain();
    return result;
}

LineTestResult
SelfTestEngine::testLine(const LinePoint &p, std::uint32_t max_attempts)
{
    LineTestResult out;
    for (std::uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
        std::uint64_t pattern =
            (patternToggle++ % 2 == 0) ? kCheckerboard : kInverse;
        LineTestResult r = testOnce(p, pattern);
        out.attemptsUsed = attempt + 1;
        out.uncorrectable = out.uncorrectable || r.uncorrectable;
        if (r.triggered) {
            out.triggered = true;
            break;
        }
    }
    return out;
}

} // namespace authenticache::sim
