#include "sim/variation.hpp"

#include <algorithm>
#include <cassert>

namespace authenticache::sim {

VminField::VminField(const CacheGeometry &geometry,
                     const VariationParams &params,
                     std::uint64_t chip_seed)
    : geom(geometry)
{
    util::Rng rng(chip_seed);
    const std::uint64_t n = geom.lines();

    vCorr.resize(n);
    uncorrGap.resize(n);
    persist.resize(n);
    weakWordIdx.resize(n);
    weakBitIdx.resize(n);
    weakBit2Idx.resize(n);

    const double chip_vcorr =
        rng.nextGaussian(params.vcorrMeanMv, params.vcorrSigmaMv);

    const double expected_tail = params.tailDensityPerMv *
                                 params.windowMv *
                                 (static_cast<double>(n) /
                                  params.densityReferenceLines);
    const double p_tail =
        std::min(1.0, expected_tail / static_cast<double>(n));

    double max_vcorr = 0.0;
    for (std::uint64_t i = 0; i < n; ++i) {
        double v;
        if (rng.nextBool(p_tail)) {
            // Weak-tail line: fails within the measurable window.
            v = chip_vcorr - rng.nextDouble() * params.windowMv;
        } else {
            // Bulk line: fails only far below the window.
            v = chip_vcorr - params.bulkHighMv -
                rng.nextDouble() * (params.bulkLowMv - params.bulkHighMv);
        }
        vCorr[i] = static_cast<float>(v);
        max_vcorr = std::max(max_vcorr, v);

        uncorrGap[i] = static_cast<float>(
            params.uncorrGapMinMv +
            rng.nextDouble() *
                (params.uncorrGapMaxMv - params.uncorrGapMinMv));

        double q = rng.nextBeta(params.persistenceAlpha,
                                params.persistenceBeta);
        persist[i] = static_cast<float>(std::clamp(q, 0.05, 1.0));

        weakWordIdx[i] = static_cast<std::uint8_t>(
            rng.nextBelow(geom.wordsPerLine()));
        // 72-bit codeword: bits 64..71 are the SECDED check bits.
        weakBitIdx[i] = static_cast<std::uint8_t>(rng.nextBelow(72));
        std::uint32_t second = weakBitIdx[i];
        while (second == weakBitIdx[i])
            second = static_cast<std::uint32_t>(rng.nextBelow(72));
        weakBit2Idx[i] = static_cast<std::uint8_t>(second);
    }
    vcorr = max_vcorr;
}

double
VminField::maxUncorrectableMv() const
{
    double best = -1e9;
    for (std::size_t i = 0; i < vCorr.size(); ++i)
        best = std::max(best,
                        static_cast<double>(vCorr[i]) - uncorrGap[i]);
    return best;
}

std::vector<std::uint64_t>
VminField::linesFailingAt(double vdd_mv) const
{
    std::vector<std::uint64_t> out;
    for (std::uint64_t i = 0; i < vCorr.size(); ++i) {
        if (vCorr[i] >= vdd_mv)
            out.push_back(i);
    }
    return out;
}

} // namespace authenticache::sim
