/**
 * @file
 * ECC event log modeled after processor machine-check error banks.
 *
 * The hardware the paper builds on (Itanium 9560) logs every corrected
 * cache error -- location and syndrome -- into registers firmware can
 * read. This class is that logging surface: the cache array posts
 * events, the firmware error handler drains them.
 */

#ifndef AUTH_SIM_ERROR_LOG_HPP
#define AUTH_SIM_ERROR_LOG_HPP

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/geometry.hpp"

namespace authenticache::sim {

/** Severity of a logged ECC event. */
enum class EccSeverity
{
    Corrected,      ///< Single-bit error, fixed in flight.
    Uncorrectable,  ///< Double-bit (or worse); data loss signaled.
};

/** One logged ECC event. */
struct EccEvent
{
    LinePoint line;
    std::uint32_t word = 0;        ///< Word within the line.
    int bitPosition = -1;          ///< Corrected bit, -1 if unknown.
    EccSeverity severity = EccSeverity::Corrected;
    double vddMv = 0.0;            ///< Supply voltage at event time.
};

/**
 * Bounded event log. When full, new events are dropped and an overflow
 * counter increments (matching real MCA bank semantics, where software
 * must drain banks promptly).
 */
class EccErrorLog
{
  public:
    explicit EccErrorLog(std::size_t capacity = 4096);

    /** Post an event; returns false when dropped on overflow. */
    bool post(const EccEvent &event);

    /** Number of events currently queued. */
    std::size_t pending() const { return events.size(); }

    /** Drain all queued events in arrival order. */
    std::vector<EccEvent> drain();

    /** Events dropped due to a full log since the last clear. */
    std::uint64_t overflowCount() const { return overflow; }

    /** Lifetime counters, not reset by drain(). */
    std::uint64_t totalCorrected() const { return nCorrected; }
    std::uint64_t totalUncorrectable() const { return nUncorrectable; }

    /** Reset queue and counters (power-on state). */
    void clear();

  private:
    std::size_t capacity;
    std::deque<EccEvent> events;
    std::uint64_t overflow = 0;
    std::uint64_t nCorrected = 0;
    std::uint64_t nUncorrectable = 0;
};

} // namespace authenticache::sim

#endif // AUTH_SIM_ERROR_LOG_HPP
