#include "sim/drift.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace authenticache::sim {

DriftSchedule::DriftSchedule(std::uint64_t seed,
                             std::uint64_t device_id,
                             const DriftScheduleConfig &config)
    : cfg(config)
{
    // One per-device stream, consumed here and never again: the
    // trajectory must not depend on how often `at` is called.
    util::Rng rng = util::Rng::forStream(seed, device_id);
    if (cfg.phaseJitterSteps > 0)
        phase = rng.nextBelow(cfg.phaseJitterSteps + 1);
    if (cfg.peakJitter > 0.0)
        scale = 1.0 + cfg.peakJitter * (2.0 * rng.nextDouble() - 1.0);
}

Conditions
DriftSchedule::at(std::uint64_t step) const
{
    // Fraction of the excursion reached at `step`: 0 before the phase
    // offset, a linear ramp to 1 over rampSteps, 1 through the hold,
    // then (optionally) a linear ramp back down.
    double f = 0.0;
    if (step > phase) {
        const std::uint64_t t = step - phase;
        if (cfg.rampSteps == 0 || t >= cfg.rampSteps) {
            const std::uint64_t past_peak =
                t - std::min(t, cfg.rampSteps);
            if (past_peak <= cfg.holdSteps || !cfg.returnToNominal) {
                f = 1.0;
            } else {
                const std::uint64_t down = past_peak - cfg.holdSteps;
                f = cfg.rampSteps == 0 || down >= cfg.rampSteps
                        ? 0.0
                        : 1.0 - static_cast<double>(down) /
                                    static_cast<double>(cfg.rampSteps);
            }
        } else {
            f = static_cast<double>(t) /
                static_cast<double>(cfg.rampSteps);
        }
    }
    f *= scale;

    Conditions c = Conditions::nominal();
    c.temperatureDeltaC = cfg.peakTemperatureDeltaC * f;
    c.agingYears = cfg.peakAgingYears * f;
    // Supply noise ramps from the nominal sigma, not from zero.
    c.measurementSigmaMv =
        c.measurementSigmaMv +
        (cfg.peakSigmaMv - Conditions::nominal().measurementSigmaMv) *
            f;
    return c;
}

} // namespace authenticache::sim
