/**
 * @file
 * Voltage-sensitive SRAM cache data array with inline SECDED.
 *
 * Every 64-bit word is stored with its 8 Hsiao check bits. When the
 * array operates below a line's (environment-shifted) failure
 * threshold, the line's weak cell flips on read with the line's
 * persistence probability; far enough below, a second cell flips too
 * and the word becomes uncorrectable. All flips pass through the real
 * SECDED codec; corrected/uncorrectable outcomes are posted to the ECC
 * error log, which is the only observable Authenticache consumes.
 */

#ifndef AUTH_SIM_CACHE_ARRAY_HPP
#define AUTH_SIM_CACHE_ARRAY_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "ecc/secded.hpp"
#include "sim/environment.hpp"
#include "sim/error_log.hpp"
#include "sim/geometry.hpp"
#include "sim/variation.hpp"
#include "util/rng.hpp"

namespace authenticache::sim {

/** Result of reading one word through ECC. */
struct ReadResult
{
    std::uint64_t data = 0;
    ecc::DecodeStatus status = ecc::DecodeStatus::Ok;
};

/** Result of accessing a whole line. */
struct LineAccessResult
{
    bool corrected = false;       ///< At least one corrected word.
    bool uncorrectable = false;   ///< At least one uncorrectable word.
};

class SramCacheArray
{
  public:
    /**
     * @param field Per-line silicon profile (owned elsewhere; must
     *              outlive the array).
     * @param env Environmental response of this chip.
     * @param log Destination for ECC events.
     * @param access_seed Seed of the per-access randomness stream.
     */
    SramCacheArray(const VminField &field, const EnvironmentModel &env,
                   EccErrorLog &log, std::uint64_t access_seed);

    const CacheGeometry &geometry() const { return field.geometry(); }

    /** Set the array supply voltage (normally via the regulator). */
    void setVddMv(double vdd_mv) { vdd = vdd_mv; }
    double vddMv() const { return vdd; }

    /** Set the environmental operating conditions. */
    void setConditions(const Conditions &c) { conditions = c; }
    const Conditions &currentConditions() const { return conditions; }

    /** Store a full line; data must have wordsPerLine() entries. */
    void writeLine(const LinePoint &p,
                   std::span<const std::uint64_t> data);

    /** Fill a line with a repeating test pattern word. */
    void fillLine(const LinePoint &p, std::uint64_t pattern);

    /** Read one word of a line through the ECC pipe. */
    ReadResult readWord(const LinePoint &p, std::uint32_t word);

    /** Read back a whole line; aggregates word statuses. */
    LineAccessResult readLine(const LinePoint &p);

    /** The codec used by the array (shared by tests). */
    const ecc::SecdedCodec &codec() const { return secded; }

    // Access counters (telemetry).
    std::uint64_t wordReads() const { return nReads; }
    std::uint64_t wordWrites() const { return nWrites; }

  private:
    /** Severity of a fault on this access, if any. */
    enum class FaultKind { None, Single, Double };
    FaultKind faultOn(std::uint64_t line);

    const VminField &field;
    const EnvironmentModel &env;
    EccErrorLog &log;
    ecc::SecdedCodec secded;
    util::Rng rng;

    double vdd = 800.0;
    Conditions conditions;

    std::vector<std::uint64_t> words;
    std::vector<std::uint8_t> checks;
    std::uint64_t nReads = 0;
    std::uint64_t nWrites = 0;
};

} // namespace authenticache::sim

#endif // AUTH_SIM_CACHE_ARRAY_HPP
