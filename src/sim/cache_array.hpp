/**
 * @file
 * Generic ECC-protected storage array over a pluggable fault model
 * and ECC scheme.
 *
 * Every 64-bit word is stored with the check word its EccScheme
 * computes. When the array operates below a line's (environment-
 * shifted) failure threshold, the fault model flips the line's weak
 * cell(s) on read; all flips pass through the real codec and the
 * corrected / detected / uncorrectable outcomes are posted to the ECC
 * error log -- the only observable Authenticache consumes.
 *
 * SramCacheArray is the voltage-sensitive SRAM specialization (Vmin
 * field + environment model + SECDED by default), kept source- and
 * bit-compatible with the pre-plugin implementation.
 */

#ifndef AUTH_SIM_CACHE_ARRAY_HPP
#define AUTH_SIM_CACHE_ARRAY_HPP

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "ecc/scheme.hpp"
#include "ecc/secded.hpp"
#include "sim/environment.hpp"
#include "sim/error_log.hpp"
#include "sim/fault_model.hpp"
#include "sim/geometry.hpp"
#include "sim/variation.hpp"
#include "util/rng.hpp"

namespace authenticache::sim {

/** Result of reading one word through ECC. */
struct ReadResult
{
    std::uint64_t data = 0;
    ecc::DecodeStatus status = ecc::DecodeStatus::Ok;
};

/** Result of accessing a whole line. */
struct LineAccessResult
{
    bool corrected = false;       ///< At least one corrected/detected word.
    bool uncorrectable = false;   ///< At least one uncorrectable word.
};

class EccCacheArray
{
  public:
    /**
     * @param model Substrate fault physics (owned elsewhere; must
     *              outlive the array).
     * @param log Destination for ECC events.
     * @param scheme The protection code (shared with the chip's
     *               stats reporting; must be non-null).
     * @param access_seed Seed of the per-access randomness stream.
     */
    EccCacheArray(const DeviceFaultModel &model, EccErrorLog &log,
                  std::shared_ptr<ecc::EccScheme> scheme,
                  std::uint64_t access_seed);

    const CacheGeometry &geometry() const { return model.geometry(); }

    /** Set the stress level (supply mV / activation-interval units). */
    void setLevel(double level_) { level = level_; }
    double currentLevel() const { return level; }

    // SRAM-era spellings, kept for the voltage-domain call sites.
    void setVddMv(double vdd_mv) { setLevel(vdd_mv); }
    double vddMv() const { return level; }

    /** Set the environmental operating conditions. */
    void setConditions(const Conditions &c) { conditions = c; }
    const Conditions &currentConditions() const { return conditions; }

    /** Store a full line; data must have wordsPerLine() entries. */
    void writeLine(const LinePoint &p,
                   std::span<const std::uint64_t> data);

    /** Fill a line with a repeating test pattern word. */
    void fillLine(const LinePoint &p, std::uint64_t pattern);

    /** Read one word of a line through the ECC pipe. */
    ReadResult readWord(const LinePoint &p, std::uint32_t word);

    /** Read back a whole line; aggregates word statuses. */
    LineAccessResult readLine(const LinePoint &p);

    /** The protection scheme used by the array. */
    const ecc::EccScheme &scheme() const { return *code; }
    ecc::EccScheme &scheme() { return *code; }

    // Access counters (telemetry).
    std::uint64_t wordReads() const { return nReads; }
    std::uint64_t wordWrites() const { return nWrites; }

  private:
    /** Apply the line's weak-cell flip(s) to a staged word. */
    void applyFault(FaultKind kind, std::uint64_t line,
                    std::uint64_t &raw, std::uint64_t &check) const;

    /** Post one decode outcome to the error log. */
    void postEvent(const LinePoint &p, std::uint32_t word,
                   const ecc::DecodeResult &decoded);

    const DeviceFaultModel &model;
    EccErrorLog &log;
    std::shared_ptr<ecc::EccScheme> code;
    util::Rng rng;

    double level = 800.0;
    Conditions conditions;

    std::vector<std::uint64_t> words;
    std::vector<std::uint64_t> checks;
    std::uint64_t nReads = 0;
    std::uint64_t nWrites = 0;
};

namespace detail {

/** Base-from-member holder so the model outlives the array base. */
struct SramModelHolder
{
    SramModelHolder(const VminField &field, const EnvironmentModel &env)
        : model(field, env)
    {
    }

    SramVminFaultModel model;
};

} // namespace detail

/** Voltage-sensitive SRAM cache data array (the paper's substrate). */
class SramCacheArray : private detail::SramModelHolder,
                       public EccCacheArray
{
  public:
    /**
     * @param field Per-line silicon profile (owned elsewhere; must
     *              outlive the array).
     * @param env Environmental response of this chip.
     * @param log Destination for ECC events.
     * @param access_seed Seed of the per-access randomness stream.
     * @param scheme Protection code; null selects SECDED(72,64).
     */
    SramCacheArray(const VminField &field, const EnvironmentModel &env,
                   EccErrorLog &log, std::uint64_t access_seed,
                   std::shared_ptr<ecc::EccScheme> scheme = nullptr);
};

} // namespace authenticache::sim

#endif // AUTH_SIM_CACHE_ARRAY_HPP
