/**
 * @file
 * Cache built-in self-test engine.
 *
 * Implements the two self-test services the paper's error handler
 * provides (Sec 5.2): full-cache sweeps used during calibration and
 * enrollment, and targeted per-line tests used while answering
 * challenges. Tests write known patterns into the line and read them
 * back through the ECC pipe; the error log is drained to learn which
 * lines reported corrected events.
 */

#ifndef AUTH_SIM_SELF_TEST_HPP
#define AUTH_SIM_SELF_TEST_HPP

#include <cstdint>
#include <vector>

#include "sim/cache_array.hpp"
#include "sim/error_log.hpp"
#include "sim/geometry.hpp"
#include "sim/observation.hpp"

namespace authenticache::sim {

class SelfTestEngine
{
  public:
    /**
     * @param array Array under test (any substrate's).
     * @param log The array's error log (drained by the engine).
     */
    SelfTestEngine(EccCacheArray &array, EccErrorLog &log);

    /**
     * Sweep every line at the array's current voltage with the given
     * number of passes; the standard pattern set (checkerboard and
     * inverse) is applied on alternating passes.
     */
    SweepResult sweepAll(std::uint32_t passes = 1);

    /**
     * Test a single line up to @p max_attempts times, stopping at the
     * first correctable event.
     */
    LineTestResult testLine(const LinePoint &p,
                            std::uint32_t max_attempts = 1);

    /** Total individual line tests performed (timing input). */
    std::uint64_t lineTestsPerformed() const { return nLineTests; }

    /** Reset the line-test counter. */
    void resetCounters() { nLineTests = 0; }

  private:
    /** One write+readback pass over a line; true if corrected event. */
    LineTestResult testOnce(const LinePoint &p, std::uint64_t pattern);

    EccCacheArray &array;
    EccErrorLog &log;
    std::uint64_t nLineTests = 0;
    std::uint64_t patternToggle = 0;
};

} // namespace authenticache::sim

#endif // AUTH_SIM_SELF_TEST_HPP
