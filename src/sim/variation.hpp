/**
 * @file
 * Process-variation model for SRAM minimum operating voltage.
 *
 * Every cache line receives, at "manufacturing" time (construction from
 * a chip seed):
 *
 *  - vCorrectable: the supply voltage below which the line exhibits
 *    single-bit (ECC-correctable) errors. Following the hardware
 *    characterization in Sec 3 of the paper, a small fraction of lines
 *    (the "weak tail") land in a window of ~65 mV below the chip's
 *    first-failure voltage Vcorr, at a density of ~2 lines/mV for a
 *    4 MB cache (Figure 1); the bulk of lines only fail far below.
 *  - vUncorrectable: a second, lower threshold below which the line
 *    exhibits double-bit (detectable but uncorrectable) errors. The
 *    gap between the thresholds is what creates the usable operating
 *    window for Authenticache: the voltage floor is calibrated to the
 *    highest vUncorrectable plus a guardband.
 *  - weak word/bit: which cell of the line actually flips; fixed per
 *    line, as parametric SRAM failures pin specific transistors.
 *  - persistence q: per-line probability that a self-test at a voltage
 *    below vCorrectable actually triggers the error; Beta-distributed,
 *    calibrated against the persistence CDF of Figure 11 (74% of
 *    enrolled lines fire on the first attempt, ~94% within four).
 *
 * Spatial placement of weak lines is uniform across sets and ways
 * (Figure 2) and independent across chips (Figure 3).
 */

#ifndef AUTH_SIM_VARIATION_HPP
#define AUTH_SIM_VARIATION_HPP

#include <cstdint>
#include <vector>

#include "sim/geometry.hpp"
#include "util/rng.hpp"

namespace authenticache::sim {

/** Tunable parameters of the variation model, in millivolts. */
struct VariationParams
{
    /** Mean first-correctable-error voltage across chips. */
    double vcorrMeanMv = 720.0;

    /** Chip-to-chip sigma of the first-failure voltage. */
    double vcorrSigmaMv = 8.0;

    /** Width of the weak-tail window below Vcorr. */
    double windowMv = 65.0;

    /**
     * Expected weak lines per mV of window *per 64K lines* (4MB at
     * 64B/8-way). Figure 1 measures ~2 lines/mV at that capacity;
     * the count scales linearly with cache size.
     */
    double tailDensityPerMv = 2.0;

    /** Reference line count the density is quoted at. */
    double densityReferenceLines = 65536.0;

    /**
     * Gap between correctable and uncorrectable thresholds: bounds.
     * Together with bulkHighMv this shapes the usable window: the
     * calibrated floor lands ~uncorrGapMin below Vcorr, which must
     * stay well above the bulk-failure edge or the error population
     * explodes.
     */
    double uncorrGapMinMv = 60.0;
    double uncorrGapMaxMv = 85.0;

    /** Bulk (non-tail) lines fail uniformly in this band below Vcorr. */
    double bulkLowMv = 300.0;
    double bulkHighMv = 120.0;

    /** Beta parameters of the per-line persistence probability. */
    double persistenceAlpha = 1.4;
    double persistenceBeta = 0.492;
};

/** Immutable per-line silicon profile generated from a chip seed. */
class VminField
{
  public:
    /**
     * Manufacture a chip's Vmin field.
     *
     * @param geometry Cache shape.
     * @param params Variation model parameters.
     * @param chip_seed Unique per-chip seed (the "die").
     */
    VminField(const CacheGeometry &geometry, const VariationParams &params,
              std::uint64_t chip_seed);

    const CacheGeometry &geometry() const { return geom; }

    /** Chip's first-failure voltage (highest vCorrectable). */
    double vcorrMv() const { return vcorr; }

    /** Single-bit-error threshold of a line. */
    double vCorrectableMv(std::uint64_t line) const
    {
        return vCorr[line];
    }

    /** Double-bit-error threshold of a line. */
    double vUncorrectableMv(std::uint64_t line) const
    {
        return vCorr[line] - uncorrGap[line];
    }

    /** Persistence probability of a line's weak cell. */
    double persistence(std::uint64_t line) const { return persist[line]; }

    /** Word within the line holding the weak cell. */
    std::uint32_t weakWord(std::uint64_t line) const
    {
        return weakWordIdx[line];
    }

    /**
     * Bit within the protected word that flips; values >= 64 denote a
     * check bit (the ECC bits are SRAM cells too).
     */
    std::uint32_t weakBit(std::uint64_t line) const
    {
        return weakBitIdx[line];
    }

    /** Second bit flipped in the uncorrectable regime. */
    std::uint32_t weakBit2(std::uint64_t line) const
    {
        return weakBit2Idx[line];
    }

    /** Highest vUncorrectable across the chip (the raw floor). */
    double maxUncorrectableMv() const;

    /** Lines whose vCorrectable lies at or above the given voltage. */
    std::vector<std::uint64_t> linesFailingAt(double vdd_mv) const;

  private:
    CacheGeometry geom;
    double vcorr = 0.0;
    std::vector<float> vCorr;
    std::vector<float> uncorrGap;
    std::vector<float> persist;
    std::vector<std::uint8_t> weakWordIdx;
    std::vector<std::uint8_t> weakBitIdx;
    std::vector<std::uint8_t> weakBit2Idx;
};

} // namespace authenticache::sim

#endif // AUTH_SIM_VARIATION_HPP
