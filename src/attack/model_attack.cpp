#include "attack/model_attack.hpp"

#include <algorithm>
#include <cmath>

#include "core/error_index.hpp"

namespace authenticache::attack {

DistanceFieldModel::DistanceFieldModel(const core::CacheGeometry &geom_,
                                       const ModelParams &params_)
    : geom(geom_), params(params_), field(geom_.lines(), 0.0f)
{
}

double
DistanceFieldModel::estimate(const sim::LinePoint &p) const
{
    return field[geom.lineIndex(p)];
}

double
DistanceFieldModel::fieldAt(const sim::LinePoint &p) const
{
    return estimate(p);
}

bool
DistanceFieldModel::predict(const core::ChallengeBit &bit) const
{
    // Mirrors Eq 8 semantics: 1 iff A is strictly farther.
    return estimate(bit.a.line) > estimate(bit.b.line);
}

void
DistanceFieldModel::adjust(const sim::LinePoint &p, double delta)
{
    // Spread the update along the set axis with linear decay: the
    // true distance field is 1-Lipschitz, so neighbors move together.
    const std::int64_t radius = params.kernelSets;
    const std::int64_t sets = geom.sets();
    for (std::int64_t ds = -radius; ds <= radius; ++ds) {
        std::int64_t set = static_cast<std::int64_t>(p.set) + ds;
        if (set < 0 || set >= sets)
            continue;
        double weight = 1.0 - static_cast<double>(std::abs(ds)) /
                                  (static_cast<double>(radius) + 1.0);
        std::uint64_t idx = geom.lineIndex(
            {static_cast<std::uint32_t>(set), p.way});
        double updated = field[idx] + delta * weight;
        field[idx] = static_cast<float>(std::max(0.0, updated));
    }
}

void
DistanceFieldModel::train(const core::ChallengeBit &bit, bool response)
{
    ++nObserved;
    double da = estimate(bit.a.line);
    double db = estimate(bit.b.line);

    // response == 0: d(A) <= d(B); response == 1: d(A) > d(B).
    if (!response) {
        double violation = da - db + params.margin;
        if (violation > 0.0) {
            double step = params.learningRate * violation / 2.0;
            adjust(bit.a.line, -step);
            adjust(bit.b.line, +step);
        }
    } else {
        double violation = db - da + params.margin;
        if (violation > 0.0) {
            double step = params.learningRate * violation / 2.0;
            adjust(bit.a.line, +step);
            adjust(bit.b.line, -step);
        }
    }
}

double
DistanceFieldModel::accuracy(
    const std::vector<core::ChallengeBit> &bits,
    const std::vector<bool> &responses) const
{
    if (bits.empty() || bits.size() != responses.size())
        return 0.0;
    std::size_t correct = 0;
    for (std::size_t i = 0; i < bits.size(); ++i)
        correct += predict(bits[i]) == responses[i];
    return static_cast<double>(correct) /
           static_cast<double>(bits.size());
}

void
DistanceFieldModel::reset()
{
    std::fill(field.begin(), field.end(), 0.0f);
    nObserved = 0;
}

namespace {

/** Ground-truth response bit for a pair on an indexed plane. */
bool
truthBit(const core::ErrorIndex &index, const core::ChallengeBit &bit)
{
    return core::responseBitFromDistances(
        index.distanceOrInfinite(bit.a.line),
        index.distanceOrInfinite(bit.b.line));
}

core::ChallengeBit
randomPair(const core::CacheGeometry &geom, util::Rng &rng)
{
    core::ChallengeBit bit;
    bit.a = core::ChallengePoint{
        geom.pointOf(rng.nextBelow(geom.lines())), 0};
    bit.b = core::ChallengePoint{
        geom.pointOf(rng.nextBelow(geom.lines())), 0};
    return bit;
}

} // namespace

std::vector<LearningCurvePoint>
runModelAttack(const core::ErrorPlane &plane, std::uint64_t total_crps,
               std::size_t checkpoints, std::size_t validation_size,
               const ModelParams &params, util::Rng &rng)
{
    const auto &geom = plane.geometry();
    DistanceFieldModel model(geom, params);
    const core::ErrorIndex index(plane);

    // Fixed held-out validation set.
    std::vector<core::ChallengeBit> val_bits;
    std::vector<bool> val_truth;
    val_bits.reserve(validation_size);
    for (std::size_t i = 0; i < validation_size; ++i) {
        auto bit = randomPair(geom, rng);
        val_bits.push_back(bit);
        val_truth.push_back(truthBit(index, bit));
    }

    std::vector<LearningCurvePoint> curve;
    curve.push_back({0, model.accuracy(val_bits, val_truth)});

    const std::uint64_t per_checkpoint =
        std::max<std::uint64_t>(1, total_crps / checkpoints);
    std::uint64_t trained = 0;
    while (trained < total_crps) {
        std::uint64_t target =
            std::min(total_crps, trained + per_checkpoint);
        for (; trained < target; ++trained) {
            auto bit = randomPair(geom, rng);
            model.train(bit, truthBit(index, bit));
        }
        curve.push_back(
            {trained, model.accuracy(val_bits, val_truth)});
    }
    return curve;
}

} // namespace authenticache::attack
