/**
 * @file
 * Model-building attack (paper Sec 6.7, Figure 16).
 *
 * The attacker passively observes CRP transactions (logical
 * coordinates and response bits) confined to a single error map, and
 * "progressively establishes dependencies between points in the error
 * map": every observed bit is an ordering constraint between the
 * nearest-error distances of two points. The model maintains an
 * estimated distance field over the cache plane and learns from each
 * constraint with a perceptron-style update, spatially smoothed along
 * the set axis -- the true distance field is 1-Lipschitz in the
 * Manhattan metric, so neighboring cells share information, which is
 * what makes the attack (slowly) effective.
 */

#ifndef AUTH_ATTACK_MODEL_ATTACK_HPP
#define AUTH_ATTACK_MODEL_ATTACK_HPP

#include <cstdint>
#include <vector>

#include "core/challenge.hpp"
#include "util/rng.hpp"

namespace authenticache::attack {

/** Learning hyper-parameters. */
struct ModelParams
{
    double learningRate = 0.12;   ///< Step per violated constraint.
    double margin = 1.0;          ///< Required separation.
    std::uint32_t kernelSets = 6; ///< Smoothing radius along sets.
};

class DistanceFieldModel
{
  public:
    DistanceFieldModel(const core::CacheGeometry &geom,
                       const ModelParams &params = {});

    /** Predicted response bit for a challenge pair. */
    bool predict(const core::ChallengeBit &bit) const;

    /**
     * Learn from one observed CRP bit: adjusts the field so the
     * observed ordering holds with a margin.
     */
    void train(const core::ChallengeBit &bit, bool response);

    /** Fraction of correctly predicted bits on a validation set. */
    double accuracy(const std::vector<core::ChallengeBit> &bits,
                    const std::vector<bool> &responses) const;

    /** Observed training constraints so far. */
    std::uint64_t observed() const { return nObserved; }

    /** Current field estimate at a point (for inspection/tests). */
    double fieldAt(const sim::LinePoint &p) const;

    /** Reset all learned state (e.g. after a victim remap). */
    void reset();

  private:
    double estimate(const sim::LinePoint &p) const;
    void adjust(const sim::LinePoint &p, double delta);

    core::CacheGeometry geom;
    ModelParams params;
    std::vector<float> field;
    std::uint64_t nObserved = 0;
};

/** One point of the Fig 16 learning curve. */
struct LearningCurvePoint
{
    std::uint64_t observedCrps = 0;
    double predictionRate = 0.0; ///< Correct bits per response.
};

/**
 * Run the full attack study: stream unique random CRPs from a single
 * error plane through the model, recording held-out prediction
 * accuracy at each checkpoint.
 *
 * @param plane The victim's (logical) error plane.
 * @param total_crps Training constraints to stream.
 * @param checkpoints Number of evenly spaced accuracy measurements.
 * @param validation_size Held-out pairs per measurement.
 */
std::vector<LearningCurvePoint>
runModelAttack(const core::ErrorPlane &plane, std::uint64_t total_crps,
               std::size_t checkpoints, std::size_t validation_size,
               const ModelParams &params, util::Rng &rng);

} // namespace authenticache::attack

#endif // AUTH_ATTACK_MODEL_ATTACK_HPP
