/**
 * @file
 * Replay attacker (paper Sec 4.4 threat model): records frames off the
 * wire and re-injects them later, attempting to reuse an old response
 * to win an authentication.
 */

#ifndef AUTH_ATTACK_REPLAY_HPP
#define AUTH_ATTACK_REPLAY_HPP

#include <optional>
#include <vector>

#include "protocol/channel.hpp"

namespace authenticache::attack {

class ReplayAttacker
{
  public:
    explicit ReplayAttacker(const protocol::Transcript &wiretap)
        : transcript(wiretap)
    {
    }

    /** Most recent response frame seen on the wire, if any. */
    std::optional<std::vector<std::uint8_t>> lastResponseFrame() const;

    /** Most recent client auth request frame, if any. */
    std::optional<std::vector<std::uint8_t>> lastRequestFrame() const;

    /**
     * Replay a captured frame toward the server. The caller then pumps
     * the server and inspects the outcome: against Authenticache the
     * response's nonce is spent, so the server rejects it.
     */
    void replayToServer(protocol::InMemoryChannel &channel,
                        const std::vector<std::uint8_t> &frame) const;

  private:
    const protocol::Transcript &transcript;
};

} // namespace authenticache::attack

#endif // AUTH_ATTACK_REPLAY_HPP
