/**
 * @file
 * Physical-access attacker (paper Sec 4.4).
 *
 * Threat: an attacker with bench access to a stolen device bypasses
 * firmware and extracts the *physical* error map (undervolting the
 * cache and reading the raw ECC logs). Authenticache's second defense
 * layer is the keyed logical remap: challenges reference logical
 * coordinates, so the stolen physical map is only useful together
 * with the remap key K_A.
 *
 * This attacker answers observed logical challenges using the stolen
 * physical map and an optional key guess, quantifying both sides:
 * with the true key the PUF is fully cloned (prediction ~100%);
 * without it the permutation scrambles geometry and prediction falls
 * to coin-flip.
 */

#ifndef AUTH_ATTACK_PHYSICAL_ACCESS_HPP
#define AUTH_ATTACK_PHYSICAL_ACCESS_HPP

#include <optional>

#include "core/challenge.hpp"
#include "core/remap.hpp"

namespace authenticache::attack {

class PhysicalMapAttacker
{
  public:
    /**
     * @param stolen_physical_map Error map extracted from the device.
     * @param key_guess The attacker's guess of K_A (std::nullopt =
     *        no key; the attacker assumes identity mapping).
     */
    PhysicalMapAttacker(core::ErrorMap stolen_physical_map,
                        std::optional<crypto::Key256> key_guess);

    /** Predicted response to a logical challenge. */
    core::Response predict(const core::Challenge &challenge) const;

    /** Fraction of bits predicted correctly. */
    double accuracy(const core::Challenge &challenge,
                    const core::Response &actual) const;

  private:
    core::ErrorMap logicalView; // Under the guessed key (or identity).
};

} // namespace authenticache::attack

#endif // AUTH_ATTACK_PHYSICAL_ACCESS_HPP
