#include "attack/replay.hpp"

namespace authenticache::attack {

namespace {

std::optional<std::vector<std::uint8_t>>
lastFrameOfType(const protocol::Transcript &transcript,
                protocol::MessageType wanted)
{
    const auto &entries = transcript.entries();
    for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
        try {
            auto m = protocol::decodeMessage(it->frame);
            if (protocol::messageType(m) == wanted)
                return it->frame;
        } catch (const protocol::DecodeError &) {
            continue;
        }
    }
    return std::nullopt;
}

} // namespace

std::optional<std::vector<std::uint8_t>>
ReplayAttacker::lastResponseFrame() const
{
    return lastFrameOfType(transcript,
                           protocol::MessageType::ResponseMsg);
}

std::optional<std::vector<std::uint8_t>>
ReplayAttacker::lastRequestFrame() const
{
    return lastFrameOfType(transcript,
                           protocol::MessageType::AuthRequest);
}

void
ReplayAttacker::replayToServer(
    protocol::InMemoryChannel &channel,
    const std::vector<std::uint8_t> &frame) const
{
    channel.sendToServer(frame);
}

} // namespace authenticache::attack
