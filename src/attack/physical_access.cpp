#include "attack/physical_access.hpp"

namespace authenticache::attack {

PhysicalMapAttacker::PhysicalMapAttacker(
    core::ErrorMap stolen_physical_map,
    std::optional<crypto::Key256> key_guess)
    : logicalView([&] {
          crypto::Key256 key = key_guess.value_or(
              crypto::Key256::zero());
          core::LogicalRemap remap(key,
                                   stolen_physical_map.geometry());
          return remap.mapErrorMap(stolen_physical_map);
      }())
{
}

core::Response
PhysicalMapAttacker::predict(const core::Challenge &challenge) const
{
    return core::evaluate(logicalView, challenge);
}

double
PhysicalMapAttacker::accuracy(const core::Challenge &challenge,
                              const core::Response &actual) const
{
    if (challenge.size() == 0 || actual.size() != challenge.size())
        return 0.0;
    core::Response guess = predict(challenge);
    std::size_t agree =
        challenge.size() - guess.hammingDistance(actual);
    return static_cast<double>(agree) /
           static_cast<double>(challenge.size());
}

} // namespace authenticache::attack
