#include "metrics/identifiability.hpp"

#include "util/stats.hpp"

namespace authenticache::metrics {

double
falseAcceptanceRate(std::int64_t threshold, std::uint64_t n,
                    double p_inter)
{
    return util::binomialCdf(n, threshold, p_inter);
}

double
falseRejectionRate(std::int64_t threshold, std::uint64_t n,
                   double p_intra)
{
    return 1.0 - util::binomialCdf(n, threshold, p_intra);
}

ThresholdChoice
eerThreshold(std::uint64_t n, double p_inter, double p_intra)
{
    ThresholdChoice best;
    bool have_best = false;
    for (std::int64_t t = 0; t <= static_cast<std::int64_t>(n); ++t) {
        ThresholdChoice c;
        c.threshold = t;
        c.far = falseAcceptanceRate(t, n, p_inter);
        c.frr = falseRejectionRate(t, n, p_intra);
        if (!have_best || c.errorRate() < best.errorRate()) {
            best = c;
            have_best = true;
        }
    }
    return best;
}

double
misidentificationRate(std::uint64_t n, double p_inter, double p_intra)
{
    return eerThreshold(n, p_inter, p_intra).errorRate();
}

} // namespace authenticache::metrics
