/**
 * @file
 * Identifiability analysis (paper Sec 2.2.3, Eq 3-4).
 *
 * A verifier accepts a response whose Hamming distance from the
 * expected one is at most the identification threshold t_id. With
 * per-bit flip probabilities p_intra (same chip under noise) and
 * p_inter (different chip, ideally 0.5):
 *
 *     FAR(t) = F_bino(t; n, p_inter)      false acceptances
 *     FRR(t) = 1 - F_bino(t; n, p_intra)  false rejections
 *
 * The threshold is chosen at the Equal Error Rate, where the two
 * curves cross.
 */

#ifndef AUTH_METRICS_IDENTIFIABILITY_HPP
#define AUTH_METRICS_IDENTIFIABILITY_HPP

#include <cstdint>

namespace authenticache::metrics {

/** False Acceptance Rate at threshold t (Eq 3). */
double falseAcceptanceRate(std::int64_t threshold, std::uint64_t n,
                           double p_inter);

/** False Rejection Rate at threshold t (Eq 4). */
double falseRejectionRate(std::int64_t threshold, std::uint64_t n,
                          double p_intra);

/** Result of the EER threshold search. */
struct ThresholdChoice
{
    std::int64_t threshold = 0; ///< Accept when HD <= threshold.
    double far = 0.0;
    double frr = 0.0;

    /** max(FAR, FRR): the misidentification rate at this choice. */
    double errorRate() const { return far > frr ? far : frr; }
};

/**
 * Equal-error-rate threshold: the integer t in [0, n] minimizing
 * max(FAR(t), FRR(t)).
 *
 * @param n Response length in bits.
 * @param p_inter Inter-chip per-bit disagreement probability.
 * @param p_intra Intra-chip per-bit flip probability under noise.
 */
ThresholdChoice eerThreshold(std::uint64_t n, double p_inter,
                             double p_intra);

/**
 * Misidentification probability of a complete system: with the EER
 * threshold for the given parameters, the larger of FAR and FRR.
 * This is the quantity the paper's "1 ppm" criterion bounds (Fig 10).
 */
double misidentificationRate(std::uint64_t n, double p_inter,
                             double p_intra);

} // namespace authenticache::metrics

#endif // AUTH_METRICS_IDENTIFIABILITY_HPP
