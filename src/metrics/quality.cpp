#include "metrics/quality.hpp"

#include <cmath>
#include <stdexcept>

namespace authenticache::metrics {

namespace {

void
requireEqualLengths(const std::vector<BitVec> &responses)
{
    if (responses.empty())
        throw std::invalid_argument("metrics: no responses");
    for (const auto &r : responses) {
        if (r.size() != responses.front().size() || r.empty())
            throw std::invalid_argument("metrics: length mismatch");
    }
}

} // namespace

double
uniqueness(const std::vector<BitVec> &responses)
{
    requireEqualLengths(responses);
    const std::size_t k = responses.size();
    if (k < 2)
        throw std::invalid_argument("uniqueness: need >= 2 chips");
    const double n = static_cast<double>(responses.front().size());

    double acc = 0.0;
    for (std::size_t i = 0; i + 1 < k; ++i) {
        for (std::size_t j = i + 1; j < k; ++j) {
            acc += static_cast<double>(
                       responses[i].hammingDistance(responses[j])) /
                   n;
        }
    }
    return 2.0 / (static_cast<double>(k) * (k - 1)) * acc * 100.0;
}

double
reliability(const BitVec &reference,
            const std::vector<BitVec> &noisy_samples)
{
    if (noisy_samples.empty())
        throw std::invalid_argument("reliability: no samples");
    const double n = static_cast<double>(reference.size());
    double acc = 0.0;
    for (const auto &sample : noisy_samples) {
        if (sample.size() != reference.size())
            throw std::invalid_argument("reliability: length mismatch");
        acc += static_cast<double>(reference.hammingDistance(sample)) /
               n;
    }
    return 100.0 -
           acc / static_cast<double>(noisy_samples.size()) * 100.0;
}

double
uniformity(const BitVec &response)
{
    if (response.empty())
        throw std::invalid_argument("uniformity: empty response");
    return static_cast<double>(response.popcount()) /
           static_cast<double>(response.size()) * 100.0;
}

double
uniformity(const std::vector<BitVec> &responses)
{
    requireEqualLengths(responses);
    double acc = 0.0;
    for (const auto &r : responses)
        acc += uniformity(r);
    return acc / static_cast<double>(responses.size());
}

std::vector<double>
bitAliasing(const std::vector<BitVec> &responses)
{
    requireEqualLengths(responses);
    const std::size_t n = responses.front().size();
    std::vector<double> out(n, 0.0);
    for (const auto &r : responses) {
        for (std::size_t j = 0; j < n; ++j)
            out[j] += r.get(j) ? 1.0 : 0.0;
    }
    for (auto &v : out)
        v = v / static_cast<double>(responses.size()) * 100.0;
    return out;
}

double
bitAliasingDeviation(const std::vector<BitVec> &responses)
{
    auto per_bit = bitAliasing(responses);
    double acc = 0.0;
    for (double v : per_bit)
        acc += std::abs(v - 50.0);
    return acc / static_cast<double>(per_bit.size());
}

} // namespace authenticache::metrics
