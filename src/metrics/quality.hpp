/**
 * @file
 * PUF quality metrics of Sec 2.2 of the paper: uniqueness (Eq 1),
 * reliability (Eq 2), uniformity (Eq 5), and bit-aliasing (Eq 6).
 * All return percentages to match the paper's presentation; ideal
 * values are 50% (uniqueness, uniformity, bit-aliasing) and 100%
 * (reliability).
 */

#ifndef AUTH_METRICS_QUALITY_HPP
#define AUTH_METRICS_QUALITY_HPP

#include <vector>

#include "util/bitvec.hpp"

namespace authenticache::metrics {

using util::BitVec;

/**
 * Uniqueness (Eq 1): mean pairwise inter-chip Hamming distance of
 * same-challenge responses from k different chips, as a percentage of
 * the response length. Requires >= 2 equal-length responses.
 */
double uniqueness(const std::vector<BitVec> &responses);

/**
 * Reliability (Eq 2): 100% minus the mean intra-chip Hamming distance
 * between the reference response and each noisy re-measurement, as a
 * percentage of the response length.
 */
double reliability(const BitVec &reference,
                   const std::vector<BitVec> &noisy_samples);

/** Uniformity (Eq 5): percentage of 1s in a single response. */
double uniformity(const BitVec &response);

/** Mean uniformity across many responses of one chip. */
double uniformity(const std::vector<BitVec> &responses);

/**
 * Bit-aliasing (Eq 6): per bit position, the percentage of chips
 * whose response sets that bit; returns one value per position.
 */
std::vector<double> bitAliasing(const std::vector<BitVec> &responses);

/** Mean absolute deviation of bit-aliasing from the 50% ideal. */
double bitAliasingDeviation(const std::vector<BitVec> &responses);

} // namespace authenticache::metrics

#endif // AUTH_METRICS_QUALITY_HPP
