#include "core/error_map.hpp"

#include <algorithm>
#include <stdexcept>

namespace authenticache::core {

ErrorPlane::ErrorPlane(const CacheGeometry &geometry)
    : geom(geometry), bitmap(geometry.lines())
{
}

void
ErrorPlane::add(const LinePoint &p)
{
    std::uint64_t idx = geom.lineIndex(p);
    if (bitmap.get(idx))
        return;
    bitmap.set(idx, true);
    auto it = std::lower_bound(list.begin(), list.end(), p);
    auto pos = it - list.begin();
    list.insert(it, p);
    soaSets.insert(soaSets.begin() + pos, p.set);
    soaWays.insert(soaWays.begin() + pos, p.way);
}

void
ErrorPlane::remove(const LinePoint &p)
{
    std::uint64_t idx = geom.lineIndex(p);
    if (!bitmap.get(idx))
        return;
    bitmap.set(idx, false);
    auto it = std::lower_bound(list.begin(), list.end(), p);
    if (it != list.end() && *it == p) {
        auto pos = it - list.begin();
        list.erase(it);
        soaSets.erase(soaSets.begin() + pos);
        soaWays.erase(soaWays.begin() + pos);
    }
}

bool
ErrorPlane::contains(const LinePoint &p) const
{
    return bitmap.get(geom.lineIndex(p));
}

ErrorMap::ErrorMap(const CacheGeometry &geometry) : geom(geometry) {}

ErrorPlane &
ErrorMap::plane(VddMv level)
{
    auto it = planes.find(level);
    if (it == planes.end())
        it = planes.emplace(level, ErrorPlane(geom)).first;
    return it->second;
}

const ErrorPlane &
ErrorMap::plane(VddMv level) const
{
    auto it = planes.find(level);
    if (it == planes.end())
        throw std::out_of_range("ErrorMap: no plane at that voltage");
    return it->second;
}

std::vector<VddMv>
ErrorMap::levels() const
{
    std::vector<VddMv> out;
    out.reserve(planes.size());
    for (const auto &[level, _] : planes)
        out.push_back(level);
    return out;
}

void
ErrorMap::addSweep(VddMv level, const std::vector<LinePoint> &lines)
{
    ErrorPlane &target = plane(level);
    for (const auto &p : lines)
        target.add(p);
}

std::size_t
ErrorMap::totalErrors() const
{
    std::size_t acc = 0;
    for (const auto &[_, p] : planes)
        acc += p.errorCount();
    return acc;
}

ErrorMap
combineErrorMaps(const std::vector<ErrorMap> &maps,
                 CombinePolicy policy)
{
    if (maps.empty())
        throw std::invalid_argument("combineErrorMaps: no maps");
    const CacheGeometry &geom = maps.front().geometry();
    for (const auto &m : maps) {
        if (!(m.geometry() == geom))
            throw std::invalid_argument(
                "combineErrorMaps: geometry mismatch");
    }

    // Collect the union of levels.
    std::map<VddMv, bool> levels;
    for (const auto &m : maps) {
        for (auto level : m.levels())
            levels[level] = true;
    }

    ErrorMap combined(geom);
    const std::size_t quorum =
        policy == CombinePolicy::Union
            ? 1
            : (policy == CombinePolicy::Intersection
                   ? maps.size()
                   : maps.size() / 2 + 1);

    for (const auto &[level, _] : levels) {
        // Count per-line occurrences across captures.
        std::map<std::uint64_t, std::size_t> counts;
        for (const auto &m : maps) {
            if (!m.hasPlane(level))
                continue;
            for (const auto &e : m.plane(level).errors())
                ++counts[geom.lineIndex(e)];
        }
        ErrorPlane &plane = combined.plane(level);
        for (const auto &[line, count] : counts) {
            if (count >= quorum)
                plane.add(geom.pointOf(line));
        }
    }
    return combined;
}

} // namespace authenticache::core
