/**
 * @file
 * Logical coordinate remapping (paper Sec 4.3, Figure 6).
 *
 * Challenges never carry physical error coordinates: both sides apply
 * a keyed bijection of the line-index space -- Map(K_A) on the server,
 * Unmap(K_A) on the client -- so an eavesdropper only ever observes
 * logical geometry. The bijection is a SipHash-keyed Feistel
 * permutation (crypto::FeistelPermutation); each voltage level gets an
 * independently derived subkey so planes permute independently. The
 * all-zero key yields the identity ("default") mapping used to
 * bootstrap the adaptive remap protocol of Sec 4.5.
 */

#ifndef AUTH_CORE_REMAP_HPP
#define AUTH_CORE_REMAP_HPP

#include <cstdint>
#include <map>

#include "core/challenge.hpp"
#include "core/error_map.hpp"
#include "crypto/feistel.hpp"
#include "crypto/key.hpp"

namespace authenticache::core {

class LogicalRemap
{
  public:
    /**
     * @param key Map key K_A; Key256::zero() selects the identity.
     * @param geometry The coordinate domain.
     */
    LogicalRemap(const crypto::Key256 &key, const CacheGeometry &geometry);

    bool isIdentity() const { return identity; }
    const CacheGeometry &geometry() const { return geom; }
    const crypto::Key256 &key() const { return rootKey; }

    /** Physical -> logical coordinate at a voltage level. */
    LinePoint map(const LinePoint &p, VddMv level) const;

    /** Logical -> physical coordinate at a voltage level. */
    LinePoint unmap(const LinePoint &p, VddMv level) const;

    /** Physical -> logical view of a whole error map. */
    ErrorMap mapErrorMap(const ErrorMap &physical) const;

    /** Map a challenge's points from logical to physical. */
    Challenge unmapChallenge(const Challenge &logical) const;

  private:
    const crypto::FeistelPermutation &permFor(VddMv level) const;

    crypto::Key256 rootKey;
    CacheGeometry geom;
    bool identity;
    // Lazily built per-level permutations (hot path: one level/auth).
    mutable std::map<VddMv, crypto::FeistelPermutation> perms;
};

} // namespace authenticache::core

#endif // AUTH_CORE_REMAP_HPP
