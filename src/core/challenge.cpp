#include "core/challenge.hpp"

#include "core/nearest.hpp"

namespace authenticache::core {

std::uint64_t
pointDistance(const ErrorMap &map, const ChallengePoint &point)
{
    if (!map.hasPlane(point.vddMv))
        return kInfiniteDistance;
    NearestResult r = nearestErrorBrute(map.plane(point.vddMv),
                                        point.line);
    return r.found ? r.distance : kInfiniteDistance;
}

Response
evaluate(const ErrorMap &map, const Challenge &challenge)
{
    Response response(challenge.size());
    for (std::size_t i = 0; i < challenge.size(); ++i) {
        std::uint64_t da = pointDistance(map, challenge.bits[i].a);
        std::uint64_t db = pointDistance(map, challenge.bits[i].b);
        response.set(i, responseBitFromDistances(da, db));
    }
    return response;
}

Challenge
randomChallenge(const CacheGeometry &geom, VddMv level,
                std::size_t bits, util::Rng &rng)
{
    Challenge challenge;
    challenge.bits.reserve(bits);
    auto lines = rng.sampleDistinct(geom.lines(), bits * 2);
    for (std::size_t i = 0; i < bits; ++i) {
        ChallengeBit bit;
        bit.a = ChallengePoint{geom.pointOf(lines[2 * i]), level};
        bit.b = ChallengePoint{geom.pointOf(lines[2 * i + 1]), level};
        challenge.bits.push_back(bit);
    }
    return challenge;
}

} // namespace authenticache::core
