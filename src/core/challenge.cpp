#include "core/challenge.hpp"

#include "core/nearest.hpp"
#include "core/nearest_scan.hpp"

namespace authenticache::core {

std::uint64_t
pointDistance(const ErrorMap &map, const ChallengePoint &point)
{
    if (!map.hasPlane(point.vddMv))
        return kInfiniteDistance;
    // The SIMD scan is bit-identical to nearestErrorBrute at every
    // width (tests/test_nearest_scan.cpp), so evaluation results do
    // not depend on the host's vector capability.
    NearestResult r = nearestErrorScan(map.plane(point.vddMv),
                                       point.line);
    return r.found ? r.distance : kInfiniteDistance;
}

Response
evaluate(const ErrorMap &map, const Challenge &challenge)
{
    Response response(challenge.size());
    for (std::size_t i = 0; i < challenge.size(); ++i) {
        std::uint64_t da = pointDistance(map, challenge.bits[i].a);
        std::uint64_t db = pointDistance(map, challenge.bits[i].b);
        response.set(i, responseBitFromDistances(da, db));
    }
    return response;
}

Response
evaluateIndexed(const ErrorIndexMap &indexes,
                const Challenge &challenge, EvalScratch &scratch,
                util::SimdLevel level)
{
    const std::size_t npts = challenge.size() * 2;
    scratch.arena.reset();
    auto pts = scratch.arena.allocate<LinePoint>(npts);
    auto order = scratch.arena.allocate<std::uint32_t>(npts);
    auto results = scratch.arena.allocate<NearestResult>(npts);
    auto dist = scratch.arena.allocate<std::uint64_t>(npts);

    // Points at a level with no index keep infinite distance --
    // evaluate()'s missing-plane rule.
    for (std::size_t i = 0; i < npts; ++i)
        dist[i] = kInfiniteDistance;

    auto pointAt = [&](std::size_t i) -> const ChallengePoint & {
        const ChallengeBit &bit = challenge.bits[i / 2];
        return (i % 2 == 0) ? bit.a : bit.b;
    };

    // One batched query per plane: gather that level's endpoints
    // contiguously, answer them in one nearestBatch call, scatter
    // the distances back.
    for (const auto &[vdd, index] : indexes) {
        std::size_t m = 0;
        for (std::size_t i = 0; i < npts; ++i) {
            if (pointAt(i).vddMv == vdd) {
                order[m] = static_cast<std::uint32_t>(i);
                pts[m] = pointAt(i).line;
                ++m;
            }
        }
        if (m == 0)
            continue;
        index.nearestBatch(pts.subspan(0, m),
                           results.subspan(0, m), scratch.nearest,
                           level);
        for (std::size_t j = 0; j < m; ++j) {
            dist[order[j]] = results[j].found ? results[j].distance
                                              : kInfiniteDistance;
        }
    }

    Response response(challenge.size());
    for (std::size_t i = 0; i < challenge.size(); ++i) {
        response.set(i, responseBitFromDistances(dist[2 * i],
                                                 dist[2 * i + 1]));
    }
    return response;
}

Response
evaluateIndexed(const ErrorIndexMap &indexes,
                const Challenge &challenge, EvalScratch &scratch)
{
    return evaluateIndexed(indexes, challenge, scratch,
                           util::simdLevel());
}

Challenge
randomChallenge(const CacheGeometry &geom, VddMv level,
                std::size_t bits, util::Rng &rng)
{
    Challenge challenge;
    challenge.bits.reserve(bits);
    auto lines = rng.sampleDistinct(geom.lines(), bits * 2);
    for (std::size_t i = 0; i < bits; ++i) {
        ChallengeBit bit;
        bit.a = ChallengePoint{geom.pointOf(lines[2 * i]), level};
        bit.b = ChallengePoint{geom.pointOf(lines[2 * i + 1]), level};
        challenge.bits.push_back(bit);
    }
    return challenge;
}

} // namespace authenticache::core
