#include "core/error_index.hpp"

#include <algorithm>

#include "core/challenge.hpp"
#include "core/nearest_scan.hpp"

namespace authenticache::core {

ErrorIndex::ErrorIndex(const CacheGeometry &geometry)
    : geom(geometry), rows(geometry.ways())
{
}

ErrorIndex::ErrorIndex(const ErrorPlane &plane)
    : geom(plane.geometry()), rows(plane.geometry().ways())
{
    // The plane's list is sorted by (set, way), so appending per way
    // leaves every row sorted by set.
    for (const auto &e : plane.errors())
        rows[e.way].push_back(e.set);
    count = plane.errorCount();
}

void
ErrorIndex::add(const LinePoint &p)
{
    auto &row = rows[p.way];
    auto it = std::lower_bound(row.begin(), row.end(), p.set);
    if (it != row.end() && *it == p.set)
        return;
    row.insert(it, p.set);
    ++count;
}

void
ErrorIndex::remove(const LinePoint &p)
{
    auto &row = rows[p.way];
    auto it = std::lower_bound(row.begin(), row.end(), p.set);
    if (it == row.end() || *it != p.set)
        return;
    row.erase(it);
    --count;
}

bool
ErrorIndex::contains(const LinePoint &p) const
{
    const auto &row = rows[p.way];
    return std::binary_search(row.begin(), row.end(), p.set);
}

NearestResult
ErrorIndex::nearest(const LinePoint &from) const
{
    NearestResult best;
    for (std::uint32_t way = 0; way < rows.size(); ++way) {
        const auto &row = rows[way];
        if (row.empty())
            continue;
        std::uint64_t dy = from.way > way ? from.way - way
                                          : way - from.way;
        // Rows whose vertical offset alone exceeds the incumbent
        // cannot improve it (nor tie with a smaller coordinate,
        // because a tie at larger total distance is impossible).
        if (best.found && dy > best.distance)
            continue;

        auto consider = [&](std::uint32_t set) {
            ++best.cellsExamined;
            std::uint64_t dx = from.set > set ? from.set - set
                                              : set - from.set;
            std::uint64_t d = dx + dy;
            LinePoint at{set, way};
            if (!best.found || d < best.distance ||
                (d == best.distance && at < best.at)) {
                best.found = true;
                best.distance = d;
                best.at = at;
            }
        };

        // The row's nearest elements flank the query set index; any
        // element further out is strictly farther in-row, and the
        // smaller-set neighbor is considered first so equal-distance
        // ties resolve to the lexicographically smaller coordinate.
        auto it = std::lower_bound(row.begin(), row.end(), from.set);
        if (it != row.begin())
            consider(*(it - 1));
        if (it != row.end())
            consider(*it);
    }
    return best;
}

void
ErrorIndex::nearestBatch(std::span<const LinePoint> queries,
                         std::span<NearestResult> out,
                         NearestScratch &scratch,
                         util::SimdLevel level) const
{
    scratch.arena.reset();
    const std::size_t max_cand = 2 * rows.size();
    auto cand_sets = scratch.arena.allocate<std::uint32_t>(max_cand);
    auto cand_ways = scratch.arena.allocate<std::uint32_t>(max_cand);
    auto cand_d = scratch.arena.allocate<std::uint32_t>(max_cand);

    for (std::size_t q = 0; q < queries.size(); ++q) {
        const LinePoint &from = queries[q];
        // Gather every row's flank candidates (no incumbent pruning:
        // the batch trades a few extra distance lanes for branchless
        // vector work).
        std::size_t n = 0;
        for (std::uint32_t way = 0; way < rows.size(); ++way) {
            const auto &row = rows[way];
            if (row.empty())
                continue;
            auto it =
                std::lower_bound(row.begin(), row.end(), from.set);
            if (it != row.begin()) {
                cand_sets[n] = *(it - 1);
                cand_ways[n] = way;
                ++n;
            }
            if (it != row.end()) {
                cand_sets[n] = *it;
                cand_ways[n] = way;
                ++n;
            }
        }

        NearestResult best;
        best.cellsExamined = n;
        if (n > 0) {
            manhattanBatch(cand_sets.data(), cand_ways.data(), n,
                           from, cand_d.data(), level);
            // Candidates arrive in way order, not lexicographic
            // order, so ties must compare the full coordinate.
            for (std::size_t i = 0; i < n; ++i) {
                LinePoint at{cand_sets[i], cand_ways[i]};
                if (!best.found || cand_d[i] < best.distance ||
                    (cand_d[i] == best.distance && at < best.at)) {
                    best.found = true;
                    best.distance = cand_d[i];
                    best.at = at;
                }
            }
        }
        out[q] = best;
    }
}

void
ErrorIndex::nearestBatch(std::span<const LinePoint> queries,
                         std::span<NearestResult> out,
                         NearestScratch &scratch) const
{
    nearestBatch(queries, out, scratch, util::simdLevel());
}

std::uint64_t
ErrorIndex::distanceOrInfinite(const LinePoint &from) const
{
    auto r = nearest(from);
    return r.found ? r.distance : kInfiniteDistance;
}

ErrorIndexMap
buildErrorIndexes(const ErrorMap &map)
{
    ErrorIndexMap indexes;
    for (VddMv level : map.levels())
        indexes.emplace(level, ErrorIndex(map.plane(level)));
    return indexes;
}

} // namespace authenticache::core
