#include "core/error_index.hpp"

#include <algorithm>

#include "core/challenge.hpp"

namespace authenticache::core {

ErrorIndex::ErrorIndex(const CacheGeometry &geometry)
    : geom(geometry), rows(geometry.ways())
{
}

ErrorIndex::ErrorIndex(const ErrorPlane &plane)
    : geom(plane.geometry()), rows(plane.geometry().ways())
{
    // The plane's list is sorted by (set, way), so appending per way
    // leaves every row sorted by set.
    for (const auto &e : plane.errors())
        rows[e.way].push_back(e.set);
    count = plane.errorCount();
}

void
ErrorIndex::add(const LinePoint &p)
{
    auto &row = rows[p.way];
    auto it = std::lower_bound(row.begin(), row.end(), p.set);
    if (it != row.end() && *it == p.set)
        return;
    row.insert(it, p.set);
    ++count;
}

void
ErrorIndex::remove(const LinePoint &p)
{
    auto &row = rows[p.way];
    auto it = std::lower_bound(row.begin(), row.end(), p.set);
    if (it == row.end() || *it != p.set)
        return;
    row.erase(it);
    --count;
}

bool
ErrorIndex::contains(const LinePoint &p) const
{
    const auto &row = rows[p.way];
    return std::binary_search(row.begin(), row.end(), p.set);
}

NearestResult
ErrorIndex::nearest(const LinePoint &from) const
{
    NearestResult best;
    for (std::uint32_t way = 0; way < rows.size(); ++way) {
        const auto &row = rows[way];
        if (row.empty())
            continue;
        std::uint64_t dy = from.way > way ? from.way - way
                                          : way - from.way;
        // Rows whose vertical offset alone exceeds the incumbent
        // cannot improve it (nor tie with a smaller coordinate,
        // because a tie at larger total distance is impossible).
        if (best.found && dy > best.distance)
            continue;

        auto consider = [&](std::uint32_t set) {
            ++best.cellsExamined;
            std::uint64_t dx = from.set > set ? from.set - set
                                              : set - from.set;
            std::uint64_t d = dx + dy;
            LinePoint at{set, way};
            if (!best.found || d < best.distance ||
                (d == best.distance && at < best.at)) {
                best.found = true;
                best.distance = d;
                best.at = at;
            }
        };

        // The row's nearest elements flank the query set index; any
        // element further out is strictly farther in-row, and the
        // smaller-set neighbor is considered first so equal-distance
        // ties resolve to the lexicographically smaller coordinate.
        auto it = std::lower_bound(row.begin(), row.end(), from.set);
        if (it != row.begin())
            consider(*(it - 1));
        if (it != row.end())
            consider(*it);
    }
    return best;
}

std::uint64_t
ErrorIndex::distanceOrInfinite(const LinePoint &from) const
{
    auto r = nearest(from);
    return r.found ? r.distance : kInfiniteDistance;
}

} // namespace authenticache::core
