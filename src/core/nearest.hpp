/**
 * @file
 * Nearest-error search on the (set, way) plane.
 *
 * Two implementations with identical semantics:
 *
 *  - nearestErrorBrute: scans the plane's error list; the reference
 *    the server uses (it owns the exact enrolled map).
 *  - spiralSearch: the client-side procedure of Sec 5.4 -- explore the
 *    Von Neumann neighborhood of the challenge point outward and
 *    clockwise, range r = 0, 1, 2, ..., testing each candidate cell
 *    with a caller-provided predicate (on hardware, a targeted
 *    self-test) until a cell reports an error.
 *
 * The ring enumerator exploits the plane's extreme aspect ratio (tens
 * of thousands of sets, a handful of ways): instead of walking all 4r
 * ring cells it emits only the <= 2*ways in-bounds ones, ordered along
 * the clockwise perimeter starting due "north" (+way).
 */

#ifndef AUTH_CORE_NEAREST_HPP
#define AUTH_CORE_NEAREST_HPP

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/error_map.hpp"
#include "sim/geometry.hpp"

namespace authenticache::core {

/**
 * Result of a nearest-error query.
 *
 * cellsExamined accounting -- the unified definition every
 * implementation follows (so the Fig 13/14 runtime benches compare
 * like with like): it counts each candidate cell whose error status
 * or distance was actually evaluated, *including* the successful one.
 * Concretely:
 *  - nearestErrorBrute / nearestErrorScan: every error point on the
 *    plane (each is distance-compared exactly once);
 *  - ErrorIndex::nearest: every flank candidate compared (<= two per
 *    way row; rows skipped by the incumbent-distance bound examine
 *    nothing and add nothing);
 *  - ErrorIndex::nearestBatch: every gathered flank candidate (no
 *    row pruning, see error_index.hpp);
 *  - spiralSearch: every cell probed, the terminating hit included.
 * The counts are comparable *units* (cells evaluated), not equal
 * numbers -- each algorithm examines a different candidate set.
 */
struct NearestResult
{
    bool found = false;
    std::uint64_t distance = 0;   ///< Manhattan distance to the hit.
    LinePoint at{};               ///< Coordinates of the hit.
    std::uint64_t cellsExamined = 0;
};

/** Exact nearest error by scanning the plane's error list. */
NearestResult nearestErrorBrute(const ErrorPlane &plane,
                                const LinePoint &from);

/**
 * In-bounds cells at Manhattan radius @p r from @p center, ordered
 * clockwise along the ring perimeter starting north. r = 0 yields the
 * center itself.
 */
std::vector<LinePoint> ringCells(const CacheGeometry &geom,
                                 const LinePoint &center,
                                 std::uint64_t r);

/**
 * Outward clockwise search. The predicate is invoked once per cell in
 * ring order and should return true when the cell reports an error;
 * the first hit terminates the search.
 *
 * The returned distance always matches the map-side searches on an
 * equal error set (rings enumerate cells in exact distance order).
 * The returned *coordinate* follows the client's clockwise-first tie
 * rule of Sec 5.4, which can differ from the map-side lexicographic
 * rule when several errors tie; tests/test_nearest_scan.cpp pins
 * both behaviors.
 *
 * @param geom Plane bounds.
 * @param center Challenge point.
 * @param max_radius Give-up radius (inclusive).
 * @param probe Cell test; typically a targeted self-test.
 */
NearestResult spiralSearch(
    const CacheGeometry &geom, const LinePoint &center,
    std::uint64_t max_radius,
    const std::function<bool(const LinePoint &)> &probe);

/** Largest Manhattan radius needed to cover the whole plane. */
std::uint64_t maxSearchRadius(const CacheGeometry &geom);

} // namespace authenticache::core

#endif // AUTH_CORE_NEAREST_HPP
